"""Integration tests for the full NoC: delivery, pipeline timing,
flow control, back-pressure and fault tolerance on clean and faulty
networks (no trojan yet — that's tests/test_core_*)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import PermanentFault, StuckAtKind, TransientFaultModel
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.util.rng import SeededStream


def simple_net(**kw):
    return Network(NoCConfig(**kw))


def inject(net, pkt_id, src, dst, payload_words=0, vc=0, mem=0):
    net.add_packet(
        Packet(
            pkt_id=pkt_id,
            src_core=src,
            dst_core=dst,
            vc_class=vc,
            mem_addr=mem,
            payload=[0xA5A5] * payload_words,
            created_cycle=net.cycle,
        )
    )


class TestBasicDelivery:
    def test_single_flit_neighbor(self):
        net = simple_net()
        inject(net, 1, 0, 4)  # router 0 -> router 1
        assert net.run_until_drained(200)
        rec = net.stats.completed_records()[0]
        assert rec.hops == 1
        assert not rec.misdelivered

    def test_corner_to_corner(self):
        net = simple_net()
        inject(net, 1, 0, 63)
        assert net.run_until_drained(300)
        rec = net.stats.completed_records()[0]
        assert rec.hops == 6

    def test_same_router_delivery(self):
        net = simple_net()
        inject(net, 1, 0, 2)
        assert net.run_until_drained(100)
        assert net.stats.completed_records()[0].hops == 0

    def test_multi_flit_packet(self):
        net = simple_net()
        inject(net, 1, 0, 63, payload_words=3)
        assert net.run_until_drained(300)
        rec = net.stats.completed_records()[0]
        assert rec.num_flits == 4
        assert rec.flits_ejected == 4

    def test_zero_load_latency_is_pipeline_depth(self):
        # ~5 cycles per hop (BW/RC, VA, SA/ST, LT launch, arrival) plus
        # injection/ejection overhead.
        net = simple_net()
        inject(net, 1, 0, 4)
        net.run_until_drained(100)
        lat = net.stats.completed_records()[0].network_latency
        assert 5 <= lat <= 12

    def test_latency_grows_linearly_with_distance(self):
        lats = []
        for dst_router in (1, 2, 3):
            net = simple_net()
            inject(net, 1, 0, dst_router * 4)
            net.run_until_drained(200)
            lats.append(net.stats.completed_records()[0].network_latency)
        d1 = lats[1] - lats[0]
        d2 = lats[2] - lats[1]
        assert d1 == d2  # constant per-hop cost
        assert 4 <= d1 <= 6

    def test_all_pairs_delivery(self):
        net = simple_net()
        pid = 0
        for src_r in range(0, 16, 5):
            for dst_r in range(0, 16, 3):
                inject(net, pid, src_r * 4, dst_r * 4 + 1)
                pid += 1
        assert net.run_until_drained(3000)
        assert net.stats.packets_completed == pid
        assert net.stats.misdeliveries == 0

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=4),
    )
    def test_random_pairs_property(self, src, dst, vc, words):
        net = simple_net()
        inject(net, 1, src, dst, payload_words=words, vc=vc)
        assert net.run_until_drained(500)
        rec = net.stats.packets[1]
        assert rec.complete
        assert not rec.misdelivered
        assert rec.hops == PAPER_CONFIG.hop_distance(
            PAPER_CONFIG.router_of_core(src), PAPER_CONFIG.router_of_core(dst)
        )


class TestOrderingAndIntegrity:
    def test_per_flow_flit_order_preserved(self):
        net = simple_net()
        got = []
        net.ejection_hooks.append(
            lambda flit, cycle, core: got.append((flit.pkt_id, flit.seq))
        )
        for pid in range(5):
            inject(net, pid, 0, 60, payload_words=3, vc=0)
        assert net.run_until_drained(2000)
        # same flow, same VC: packets arrive in order, flits in seq order
        assert got == [(p, s) for p in range(5) for s in range(4)]

    def test_payload_integrity(self):
        net = simple_net()
        payloads = {}
        net.ejection_hooks.append(
            lambda flit, cycle, core: payloads.setdefault(
                (flit.pkt_id, flit.seq), flit.data
            )
        )
        net.add_packet(
            Packet(
                pkt_id=9,
                src_core=3,
                dst_core=50,
                payload=[0xDEADBEEF, 0x12345678],
            )
        )
        assert net.run_until_drained(500)
        assert payloads[(9, 1)] == 0xDEADBEEF
        assert payloads[(9, 2)] == 0x12345678


class TestContention:
    def test_many_to_one_all_delivered(self):
        net = simple_net()
        pid = 0
        for src in range(0, 64, 4):
            for _ in range(2):
                inject(net, pid, src, 21)  # all to core 21 (router 5)
                pid += 1
        assert net.run_until_drained(5000)
        assert net.stats.packets_completed == pid

    def test_vc_isolation(self):
        # Different VCs on the same path both make progress.
        net = simple_net()
        for pid, vc in enumerate([0, 1, 2, 3] * 4):
            inject(net, pid, 0, 63, vc=vc, payload_words=2)
        assert net.run_until_drained(5000)
        assert net.stats.packets_completed == 16

    def test_throughput_under_load(self):
        net = simple_net()
        for pid in range(40):
            inject(net, pid, (pid * 4) % 64, (pid * 12 + 5) % 64)
        net.run_until_drained(5000)
        assert net.stats.flits_ejected == 40


class TestBackpressureMetrics:
    def test_sample_fields_zero_on_idle_network(self):
        net = simple_net()
        net.run(20)
        s = net.collect_sample()
        assert s.input_utilization == 0
        assert s.output_utilization == 0
        assert s.injection_utilization == 0
        assert s.routers_with_blocked_port == 0
        assert s.routers_all_cores_full == 0

    def test_utilization_rises_under_load(self):
        net = simple_net()
        for pid in range(100):
            inject(net, pid, (pid * 7) % 64, (pid * 13 + 1) % 64,
                   payload_words=3)
        net.run(30)
        s = net.collect_sample()
        assert s.input_utilization + s.injection_utilization > 0


class TestFaultTolerance:
    def test_transient_single_faults_are_absorbed(self):
        net = simple_net()
        stream = SeededStream(1, "transient")
        model = TransientFaultModel(
            net.codec.codeword_bits, 0.2, stream, double_fraction=0.0
        )
        net.attach_tamperer((0, Direction.EAST), model)
        for pid in range(10):
            inject(net, pid, 0, 63, payload_words=2)
        assert net.run_until_drained(3000)
        assert net.stats.packets_completed == 10
        receiver = net.receiver_of((0, Direction.EAST))
        assert receiver.flits_corrected > 0
        assert net.stats.misdeliveries == 0

    def test_transient_double_faults_trigger_retransmission(self):
        net = simple_net()
        stream = SeededStream(2, "transient")
        model = TransientFaultModel(
            net.codec.codeword_bits, 0.3, stream, double_fraction=1.0
        )
        net.attach_tamperer((0, Direction.EAST), model)
        for pid in range(10):
            inject(net, pid, 0, 63, payload_words=2)
        assert net.run_until_drained(5000)
        assert net.stats.packets_completed == 10
        receiver = net.receiver_of((0, Direction.EAST))
        assert receiver.faults_detected > 0
        out = net.output_port_of((0, Direction.EAST))
        assert out.retrans.nacks_received > 0

    def test_retransmission_preserves_payload(self):
        net = simple_net()
        # corrupt every traversal with a double fault on a mid-path link
        stream = SeededStream(3, "transient")
        model = TransientFaultModel(
            net.codec.codeword_bits, 0.5, stream, double_fraction=1.0
        )
        net.attach_tamperer((1, Direction.EAST), model)
        payloads = {}
        net.ejection_hooks.append(
            lambda flit, cycle, core: payloads.setdefault(flit.seq, flit.data)
        )
        net.add_packet(
            Packet(pkt_id=1, src_core=0, dst_core=63, payload=[0xFACE])
        )
        assert net.run_until_drained(2000)
        assert payloads[1] == 0xFACE

    def test_single_stuck_wire_corrected_by_ecc(self):
        net = simple_net()
        fault = PermanentFault.single(
            net.codec.codeword_bits, 20, StuckAtKind.ONE
        )
        net.attach_tamperer((0, Direction.EAST), fault)
        for pid in range(5):
            inject(net, pid, 0, 63, payload_words=1, mem=0xFFFF)
        assert net.run_until_drained(2000)
        assert net.stats.packets_completed == 5
        assert net.stats.misdeliveries == 0

    def test_double_stuck_wires_stall_then_nothing_delivers(self):
        # Two stuck wires = permanent uncorrectable faults on most words:
        # without rerouting mitigation the link NACKs forever and traffic
        # through it starves (this is the substrate the trojan exploits).
        net = simple_net()
        # choose stuck-at-one positions where this packet's codeword
        # carries zeros, so both wires corrupt every traversal
        head = Packet(pkt_id=1, src_core=0, dst_core=63).build_flits(
            PAPER_CONFIG
        )[0]
        cw = net.codec.encode(head.data)
        zeros = [i for i in range(net.codec.codeword_bits) if not cw >> i & 1]
        fault = PermanentFault(
            net.codec.codeword_bits,
            {zeros[0]: StuckAtKind.ONE, zeros[1]: StuckAtKind.ONE},
        )
        net.attach_tamperer((0, Direction.EAST), fault)
        inject(net, 1, 0, 63, mem=0)
        drained = net.run_until_drained(1500, stall_limit=600)
        assert not drained
        assert net.stats.packets_completed == 0


class TestDrainedProperty:
    def test_empty_network_is_drained(self):
        assert simple_net().drained

    def test_not_drained_with_backlog(self):
        net = simple_net()
        inject(net, 1, 0, 63)
        assert not net.drained

    def test_drained_after_completion(self):
        net = simple_net()
        inject(net, 1, 0, 63)
        net.run_until_drained(300)
        assert net.drained
