"""End-to-end observability: attach, observe, export — never perturb.

The load-bearing contract is *pure observation*: a simulation run with
the full observability stack attached must produce byte-identical
``NetworkStats`` (and an equal :class:`RunResult`) to the same run with
nothing attached.  Everything else — event capture, checkpoint/failure
notifications, forensics embedding, the ambient instance, profiling,
runner integration — layers on top of that guarantee.
"""

import dataclasses
import json

import pytest

from repro.core import TargetSpec
from repro.core.detector import LinkVerdict
from repro.core.telemetry import security_report
from repro.experiments.export import to_jsonable
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.obs import profiler as obs_profiler
from repro.obs.collectors import campaign_metrics, link_label
from repro.experiments import runner
from repro.obs.exporters import (
    main as exporters_main,
    validate_events_jsonl,
    validate_metrics_json,
)
from repro.obs.instrument import (
    ObsConfig,
    Observability,
    ambient,
    disable_ambient,
    enable_ambient,
)
from repro.resilience import (
    CampaignSpec,
    ChaosCampaign,
    random_events,
    uniform_traffic,
)
from repro.resilience.watchdog import (
    EscalationEvent,
    EscalationStage,
    RetransWatchdog,
    WatchdogConfig,
)
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
)


def stats_snapshot(sim: Simulation) -> str:
    """Every NetworkStats field as one canonical JSON string."""
    return json.dumps(
        to_jsonable(vars(sim.network.stats)), sort_keys=True
    )


def attacked_scenario(**overrides) -> Scenario:
    """Targeted flow through an infected, mitigated link — exercises
    corruption, retransmission, L-Ob and detector verdicts."""
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0, dst_core=PAPER_CONFIG.core_of(11, 1),
                   mem_addr=0x100, inject_at=i * 40)
        for i in range(8)
    )
    base = dict(
        name="obs-attacked",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(11)),),
        defense=DefenseSpec(mitigated=True),
        max_cycles=4000,
        stall_limit=1500,
    )
    base.update(overrides)
    return Scenario(**base)


def quiet_scenario(**overrides) -> Scenario:
    base = dict(
        name="obs-quiet",
        cfg=NoCConfig(mesh_width=3, mesh_height=3, concentration=1),
        traffic=(SyntheticTraffic(injection_rate=0.05, duration=120, seed=3),),
        max_cycles=600,
        stall_limit=300,
    )
    base.update(overrides)
    return Scenario(**base)


class TestPureObserver:
    def test_observed_run_is_byte_identical(self):
        baseline = Simulation(attacked_scenario())
        base_result = baseline.run()
        base_stats = stats_snapshot(baseline)

        observed = Simulation(attacked_scenario(), obs=ObsConfig())
        obs_result = observed.run()

        assert stats_snapshot(observed) == base_stats
        assert dataclasses.asdict(obs_result) == dataclasses.asdict(
            base_result
        )
        # ...while the observer actually saw the attack
        obs = observed.obs
        assert obs.registry.total("noc_flits_injected") > 0
        assert obs.registry.total("link_corrupted") > 0
        assert obs.registry.total("link_retransmissions") > 0

    def test_no_obs_attaches_no_hooks(self):
        sim = Simulation(quiet_scenario())
        assert sim.obs is None
        assert sim.network.injection_hooks == []
        assert sim.network.ejection_hooks == []

    def test_disabled_obs_attaches_no_hooks(self):
        sim = Simulation(quiet_scenario(), obs=ObsConfig(enabled=False))
        assert sim.obs is not None
        assert sim.network.injection_hooks == []
        assert sim.network.ejection_hooks == []
        assert sim.network.monitors == []
        # finalize on a disabled stack is a no-op, not an error
        sim.run()
        assert sim.obs.registry.snapshot() == {}


class TestEventCapture:
    def test_attack_run_publishes_the_expected_kinds(self):
        sim = Simulation(attacked_scenario(), obs=ObsConfig())
        sim.run()
        events = sim.obs.export_sub.drain()
        kinds = {e.kind for e in events}
        assert {"inject", "deliver", "corrupt", "retransmit"} <= kinds
        assert all(e.run == "obs-attacked" for e in events)
        # cycles are monotone enough to archive: injects are ordered
        injects = [e.cycle for e in events if e.kind == "inject"]
        assert injects == sorted(injects)

    def test_verdict_transitions_become_events_and_counters(self):
        sim = Simulation(attacked_scenario(), obs=ObsConfig())
        sim.run()
        verdicts = [
            e for e in sim.obs.export_sub.drain() if e.kind == "verdict"
        ]
        assert verdicts, "detector verdicts never surfaced as events"
        infected = link_label((0, Direction.EAST))
        assert any(e.data["link"] == infected for e in verdicts)
        assert sim.obs.registry.total("detector_verdict_changes") >= len(
            {(e.data["link"], e.data["verdict"]) for e in verdicts}
        )

    def test_windowed_series_carries_backpressure_channels(self):
        sim = Simulation(attacked_scenario(), obs=ObsConfig(window=32))
        sim.run()
        series = sim.obs.series
        channels = series.channels()
        assert "obs-attacked/input_utilization" in channels
        assert "obs-attacked/output_utilization" in channels
        util = series.channel("obs-attacked/input_utilization")
        assert util and all(start % 32 == 0 for start, _ in util)

    def test_events_off_keeps_metrics_on(self):
        sim = Simulation(attacked_scenario(), obs=ObsConfig(events=False))
        sim.run()
        assert sim.obs.export_sub is None
        assert sim.obs.bus.published == 0
        assert sim.obs.registry.total("noc_flits_injected") > 0


class TestSubscriberOverflow:
    def test_slow_subscriber_drops_new_without_perturbing_the_run(self):
        bare = Simulation(attacked_scenario())
        bare_result = bare.run()
        baseline = stats_snapshot(bare)

        sim = Simulation(attacked_scenario(), obs=ObsConfig())
        slow = sim.obs.bus.subscribe(capacity=8)  # never drained
        result = sim.run()

        # drop-new: the queue holds the oldest 8 events, the rest are
        # counted off, and the accounting balances with the bus
        assert slow.dropped > 0
        assert len(slow) == slow.capacity == 8
        assert slow.received == 8
        assert slow.received + slow.dropped == sim.obs.bus.published
        first_kept = next(iter(slow.peek()))
        assert all(e.cycle >= first_kept.cycle for e in slow.peek())
        # ...while the simulation itself never noticed
        assert stats_snapshot(sim) == baseline
        assert dataclasses.asdict(result) == dataclasses.asdict(
            bare_result
        )
        # the healthy export subscription kept everything
        assert sim.obs.export_sub.dropped == 0

    def test_drops_are_reported_in_the_manifest(self):
        from repro.obs.exporters import build_manifest

        sim = Simulation(attacked_scenario(), obs=ObsConfig(
            queue_capacity=8
        ))
        sim.run()
        sim.obs.finalize(sim)
        manifest = build_manifest(sim.obs)
        assert manifest["events"]["dropped"] > 0
        assert manifest["events"]["queued"] == 8


class TestWatchdogEscalations:
    def test_event_hooks_fire_through_the_ladder_log(self):
        from repro.obs.instrument import _EscalateHook

        obs = Observability(ObsConfig())
        watchdog = RetransWatchdog(WatchdogConfig())
        watchdog.event_hooks.append(_EscalateHook(obs, "ladder"))
        watchdog._log(
            EscalationEvent(
                cycle=120,
                link=(0, Direction.EAST),
                stage=EscalationStage.OBFUSCATE,
                pkt_id=7,
                detail="forced L-Ob",
            )
        )
        assert (
            obs.registry.get(
                "watchdog_escalations", run="ladder", stage="obfuscate"
            ).value
            == 1
        )
        (event,) = obs.export_sub.drain()
        assert event.kind == "escalate"
        assert event.data["link"] == "0->EAST"
        assert event.data["stage"] == "obfuscate"
        assert event.data["pkt_id"] == 7


class TestEngineNotifications:
    def test_checkpoints_emit_events_with_paths(self, tmp_path):
        sim = Simulation(quiet_scenario(), obs=ObsConfig())
        sim.configure_checkpoints(tmp_path, interval=100)
        sim.run()
        checkpoints = [
            e for e in sim.obs.export_sub.drain() if e.kind == "checkpoint"
        ]
        assert checkpoints
        for event in checkpoints:
            assert event.data["checkpoint_cycle"] == event.cycle
            assert event.data["path"].startswith(str(tmp_path))

    def test_on_failure_records_the_trip_and_finalizes(self):
        sim = Simulation(quiet_scenario(), obs=ObsConfig())
        sim.advance_to(50)
        sim.obs.on_failure(sim, RuntimeError("synthetic failure"))
        (event,) = [
            e
            for e in sim.obs.export_sub.drain()
            if e.kind == "sentinel_trip"
        ]
        assert event.data["trip_kind"] == "crash:RuntimeError"
        assert event.data["message"] == "synthetic failure"
        # the final scrape ran: the registry holds the dying state
        assert sim.obs.registry.get("sim_cycles", run="obs-quiet") is not None

    def test_forensics_bundle_embeds_the_metrics_manifest(self, tmp_path):
        sim = Simulation(quiet_scenario(), obs=ObsConfig())
        sim.enable_forensics(tmp_path)
        sim.advance_to(30)
        sim.obs.finalize(sim)
        bundle = sim.forensics.write_bundle(RuntimeError("boom"))
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert "metrics.json" in manifest["files"]
        metrics = validate_metrics_json(bundle / "metrics.json")
        assert metrics["enabled"] is True
        assert "sim_cycles" in metrics["metrics"]

    def test_observed_simulation_still_pickles(self, tmp_path):
        sim = Simulation(quiet_scenario(), obs=ObsConfig())
        sim.advance_to(40)
        path = tmp_path / "mid.ckpt"
        sim.snapshot().save(path)
        clone = Simulation.restore(path)
        assert clone.network.cycle == 40
        assert clone.obs is not None
        clone.run()


class TestAmbient:
    def test_armed_ambient_attaches_every_simulation(self):
        obs = enable_ambient(ObsConfig())
        try:
            sim = Simulation(quiet_scenario())
            assert sim.obs is obs is ambient()
            assert sim.network.injection_hooks
        finally:
            disable_ambient()
        assert ambient() is None
        assert Simulation(quiet_scenario()).obs is None

    def test_explicit_obs_wins_over_ambient(self):
        enable_ambient(ObsConfig())
        try:
            mine = Observability(ObsConfig())
            sim = Simulation(quiet_scenario(), obs=mine)
            assert sim.obs is mine
            assert sim.obs is not ambient()
        finally:
            disable_ambient()


class TestProfiler:
    def test_armed_profiler_attributes_wall_clock_to_phases(self):
        prof = obs_profiler.enable()
        try:
            sim = Simulation(quiet_scenario())
            assert sim.network.profiler is prof
            sim.run()
        finally:
            obs_profiler.disable()
        assert prof.total() > 0
        assert set(prof.seconds) <= set(obs_profiler.PHASE_ORDER)
        assert "traverse" in prof.seconds
        assert "profile:" in prof.report()

    def test_unarmed_simulations_carry_no_profiler(self):
        assert Simulation(quiet_scenario()).network.profiler is None


class TestSamplingCadence:
    def test_zero_interval_disables_sampling(self):
        sim = Simulation(quiet_scenario(sample_interval=0))
        result = sim.run()
        assert result.num_samples == 0
        assert list(sim.network.stats.samples) == []
        assert sim.network.stats.samples.interval is None

    def test_cadence_is_mirrored_onto_the_series(self):
        sim = Simulation(quiet_scenario(sample_interval=20))
        sim.run()
        samples = sim.network.stats.samples
        assert samples.interval == 20
        assert all(s.cycle % 20 == 0 for s in samples)
        rolled = samples.rollup(40, ("input_utilization",), agg="max")
        assert rolled.window == 40


class TestSecurityReportAdapter:
    def test_report_matches_raw_detector_state(self):
        sim = Simulation(attacked_scenario())
        sim.run()
        net = sim.network
        report = security_report(net)
        assert set(report.links) == set(net.links)
        for key, status in report.links.items():
            detector = net.receiver_of(key).detector
            assert status.verdict is detector.verdict
            assert status.faults_observed == detector.faults_observed
            assert status.bist_scans == detector.bist_scans
        infected = report.links[(0, Direction.EAST)]
        assert infected.verdict is LinkVerdict.TROJAN
        assert infected.faults_observed > 0

    def test_unmitigated_network_still_raises(self):
        sim = Simulation(quiet_scenario())
        with pytest.raises(ValueError, match="no threat detectors"):
            security_report(sim.network)


class TestRunnerIntegration:
    def test_json_output_embeds_a_metrics_section(self, tmp_path):
        out = tmp_path / "results.json"
        assert runner.main(["table2", "--json", str(out), "--no-cache"]) == 0
        payload = json.loads(out.read_text())
        # without --obs-dir the section is the deterministic disabled
        # manifest (the CI resume job byte-compares these files)
        assert payload["metrics"] == {"format": 1, "enabled": False}

    def test_obs_dir_arms_ambient_and_exports(self, tmp_path):
        out = tmp_path / "results.json"
        obs_dir = tmp_path / "obs"
        report = runner.run_experiment(
            "fig2", json_path=str(out), obs_dir=str(obs_dir)
        )
        assert "observability exported to" in report
        exported = obs_dir / "fig2"
        assert validate_events_jsonl(exported / "events.jsonl") > 0
        manifest = validate_metrics_json(exported / "metrics.json")
        assert manifest["enabled"] is True
        assert manifest["runs"]
        assert (exported / "metrics.prom").read_text()
        assert exporters_main(["validate", str(exported)]) == 0
        # the run result embeds the same manifest
        payload = json.loads(out.read_text())
        assert payload["metrics"]["enabled"] is True
        # ambient is disarmed afterwards: later sims are unobserved
        assert ambient() is None


class TestCampaignMetrics:
    FUZZ_CFG = NoCConfig(mesh_width=3, mesh_height=3, concentration=1)

    def run_campaign(self):
        spec = CampaignSpec(
            name="obs-fuzz",
            cfg=self.FUZZ_CFG,
            traffic=uniform_traffic(self.FUZZ_CFG, 5, 20, interval=4),
            events=random_events(self.FUZZ_CFG, 5, horizon=200),
            max_cycles=2000,
            validate_every=7,
            seed=5,
        )
        return ChaosCampaign(spec).run()

    def test_reports_embed_deterministic_metrics(self):
        first = self.run_campaign()
        second = self.run_campaign()
        assert first.metrics == second.metrics
        assert first.metrics == campaign_metrics(first)
        delivered = first.metrics["campaign_packets_delivered"]["series"]
        assert delivered[0]["labels"] == {"run": "obs-fuzz"}
        assert (
            delivered[0]["value"] == first.packets_delivered
        )
