"""Unit tests for NoC configuration and flit/packet wire images."""

import pytest
from hypothesis import given, strategies as st

from repro.noc import NoCConfig, PAPER_CONFIG, FlitType, Packet
from repro.noc.flit import (
    FULL_WINDOW,
    pack_header,
    unpack_header,
)
from repro.util.bits import extract_field, mask


class TestNoCConfig:
    def test_paper_platform(self):
        cfg = PAPER_CONFIG
        assert cfg.num_routers == 16
        assert cfg.num_cores == 64
        assert cfg.num_links == 48  # the paper's "TASP on all 48 links"
        assert cfg.num_vcs == 4
        assert cfg.vc_depth == 4
        assert cfg.flit_bits == 64

    def test_router_xy_roundtrip(self):
        cfg = PAPER_CONFIG
        for rid in range(cfg.num_routers):
            x, y = cfg.router_xy(rid)
            assert cfg.router_at(x, y) == rid

    def test_core_mapping(self):
        cfg = PAPER_CONFIG
        assert cfg.router_of_core(0) == 0
        assert cfg.router_of_core(63) == 15
        assert cfg.local_index(5) == 1
        assert cfg.core_of(1, 1) == 5

    def test_hop_distance(self):
        cfg = PAPER_CONFIG
        assert cfg.hop_distance(0, 15) == 6
        assert cfg.hop_distance(0, 0) == 0
        assert cfg.hop_distance(0, 3) == 3

    def test_too_many_routers_rejected(self):
        # the widened header must still fit the flit: 2*rb + 36 bits
        with pytest.raises(ValueError):
            NoCConfig(mesh_width=1 << 7, mesh_height=1 << 7)

    def test_wide_mesh_accepted(self):
        cfg = NoCConfig(mesh_width=8, mesh_height=8)
        assert cfg.num_routers == 64

    def test_bad_vcs_rejected(self):
        with pytest.raises(ValueError):
            NoCConfig(num_vcs=5)

    def test_small_mesh_links(self):
        cfg = NoCConfig(mesh_width=2, mesh_height=2)
        assert cfg.num_links == 8

    def test_1d_mesh(self):
        cfg = NoCConfig(mesh_width=4, mesh_height=1)
        assert cfg.num_links == 6

    def test_out_of_range_router(self):
        with pytest.raises(ValueError):
            PAPER_CONFIG.router_xy(16)

    def test_retrans_depth_minimum(self):
        with pytest.raises(ValueError):
            NoCConfig(retrans_depth=1)


class TestHeaderLayout:
    def test_full_window_is_42_bits(self):
        # the paper's "full" target width (src+dest+vc+mem = 42)
        assert FULL_WINDOW == (0, 42)

    def test_pack_unpack_roundtrip(self):
        word = pack_header(3, 12, 2, 0xDEADBEEF, FlitType.HEAD, 77)
        fields = unpack_header(word)
        assert fields["src_router"] == 3
        assert fields["dst_router"] == 12
        assert fields["vc_class"] == 2
        assert fields["mem_addr"] == 0xDEADBEEF
        assert fields["ftype"] == FlitType.HEAD
        assert fields["pkt_id"] == 77

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=mask(32)),
        st.integers(min_value=0, max_value=mask(20)),
    )
    def test_roundtrip_property(self, src, dst, vc, mem, pid):
        word = pack_header(src, dst, vc, mem, FlitType.SINGLE, pid)
        fields = unpack_header(word)
        assert fields["src_router"] == src
        assert fields["dst_router"] == dst
        assert fields["vc_class"] == vc
        assert fields["mem_addr"] == mem
        assert fields["pkt_id"] == pid

    def test_header_fits_in_64_bits(self):
        word = pack_header(15, 15, 3, mask(32), FlitType.SINGLE, mask(20))
        assert word <= mask(64)

    def test_fields_do_not_overlap(self):
        # setting one field leaves all others zero
        word = pack_header(0, 0, 0, mask(32), FlitType(0), 0)
        assert extract_field(word, 0, 10) == 0
        assert extract_field(word, 42, 22) == 0


class TestPacket:
    def test_single_flit_packet(self):
        p = Packet(pkt_id=1, src_core=0, dst_core=63)
        flits = p.build_flits(PAPER_CONFIG)
        assert len(flits) == 1
        assert flits[0].ftype is FlitType.SINGLE
        assert flits[0].is_head and flits[0].is_tail

    def test_multi_flit_packet_structure(self):
        p = Packet(pkt_id=2, src_core=0, dst_core=63, payload=[1, 2, 3])
        flits = p.build_flits(PAPER_CONFIG)
        assert [f.ftype for f in flits] == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]
        assert [f.seq for f in flits] == [0, 1, 2, 3]
        assert all(f.num_flits == 4 for f in flits)

    def test_routers_derived_from_cores(self):
        p = Packet(pkt_id=3, src_core=5, dst_core=62)
        flits = p.build_flits(PAPER_CONFIG)
        assert flits[0].src_router == 1
        assert flits[0].dst_router == 15

    def test_head_wire_image_matches_fields(self):
        p = Packet(pkt_id=4, src_core=0, dst_core=63, vc_class=1, mem_addr=0xABC)
        head = p.build_flits(PAPER_CONFIG)[0]
        fields = unpack_header(head.data)
        assert fields["dst_router"] == 15
        assert fields["mem_addr"] == 0xABC
        assert fields["vc_class"] == 1

    def test_body_data_is_payload(self):
        p = Packet(pkt_id=5, src_core=0, dst_core=4, payload=[0xFEED, 0xF00D])
        flits = p.build_flits(PAPER_CONFIG)
        assert flits[1].data == 0xFEED
        assert flits[2].data == 0xF00D

    def test_oversized_packet_rejected(self):
        p = Packet(pkt_id=6, src_core=0, dst_core=1, payload=[0] * 10)
        with pytest.raises(ValueError):
            p.build_flits(PAPER_CONFIG)

    def test_bad_vc_rejected(self):
        p = Packet(pkt_id=7, src_core=0, dst_core=1, vc_class=9)
        with pytest.raises(ValueError):
            p.build_flits(PAPER_CONFIG)

    def test_flow_signature(self):
        p = Packet(pkt_id=8, src_core=0, dst_core=63, vc_class=2)
        head = p.build_flits(PAPER_CONFIG)[0]
        assert head.flow_signature == (0, 15, 2)
