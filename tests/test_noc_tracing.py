"""Tests for flit-level event tracing."""

import pytest

from repro.core import TargetSpec, TaspTrojan, build_mitigated_network
from repro.noc import Network, NoCConfig, Packet
from repro.noc.tracing import EventKind, FlitTracer, TraceEvent
from repro.noc.topology import Direction


def run_with_tracer(net, pkt_ids=None, cycles=200, **tracer_kw):
    tracer = FlitTracer.attach(net, pkt_ids, **tracer_kw)
    net.run(cycles)
    return tracer


class TestCleanTrace:
    def test_lifecycle_events_in_order(self):
        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
        tracer = run_with_tracer(net, {1})
        kinds = [e.kind for e in tracer.for_packet(1)]
        assert kinds[0] is EventKind.INJECTED
        assert kinds[-1] is EventKind.EJECTED
        assert EventKind.LAUNCHED in kinds
        assert EventKind.ACKED in kinds
        assert EventKind.CORRUPTED not in kinds
        assert EventKind.NACKED not in kinds

    def test_one_launch_per_hop(self):
        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))  # 6 hops
        tracer = run_with_tracer(net, {1})
        assert tracer.count(EventKind.LAUNCHED) == 6
        assert tracer.count(EventKind.ACKED) == 6

    def test_event_cycles_monotonic(self):
        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63,
                              payload=[1, 2]))
        tracer = run_with_tracer(net, {1})
        cycles = [e.cycle for e in tracer.events]
        assert cycles == sorted(cycles)

    def test_filtering_by_pkt_id(self):
        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
        net.add_packet(Packet(pkt_id=2, src_core=4, dst_core=60))
        tracer = run_with_tracer(net, {2})
        assert all(e.pkt_id == 2 for e in tracer.events)
        assert tracer.events

    def test_unfiltered_traces_everything(self):
        net = Network(NoCConfig())
        for pid in range(3):
            net.add_packet(Packet(pkt_id=pid, src_core=0, dst_core=20))
        tracer = run_with_tracer(net, None)
        assert {e.pkt_id for e in tracer.events} == {0, 1, 2}

    def test_capacity_truncation(self):
        net = Network(NoCConfig())
        for pid in range(20):
            net.add_packet(Packet(pkt_id=pid, src_core=0, dst_core=63))
        tracer = run_with_tracer(net, None, capacity=10)
        assert len(tracer.events) == 10
        assert tracer.truncated
        assert "truncated" in tracer.render()


class TestAttackTrace:
    def test_corruption_and_nacks_visible(self):
        net = Network(NoCConfig())
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
        tracer = run_with_tracer(net, {1}, cycles=100)
        assert tracer.count(EventKind.CORRUPTED) > 3
        assert tracer.count(EventKind.NACKED) > 3
        corrupt = next(
            e for e in tracer.events if e.kind is EventKind.CORRUPTED
        )
        assert corrupt.link == (0, Direction.EAST)
        assert "2 bit" in corrupt.detail

    def test_obfuscation_advice_traced(self):
        net = build_mitigated_network(NoCConfig())
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
        tracer = run_with_tracer(net, {1}, cycles=300)
        advice_events = [
            e for e in tracer.events
            if e.kind is EventKind.NACKED and "obfuscate" in e.detail
        ]
        assert advice_events
        ob_launches = [
            e for e in tracer.events
            if e.kind is EventKind.LAUNCHED and "ob=" in e.detail
        ]
        assert ob_launches
        # and the packet eventually gets through
        assert tracer.count(EventKind.EJECTED) == 1

    def test_render_contains_key_lines(self):
        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=7, src_core=0, dst_core=4))
        tracer = run_with_tracer(net, {7})
        text = tracer.render(7)
        assert "pkt 7" in text
        assert "injected" in text and "ejected" in text


class TestTraceEvent:
    def test_str_format(self):
        e = TraceEvent(5, EventKind.INJECTED, 1, 0)
        assert "NI" in str(e)
        e2 = TraceEvent(9, EventKind.LAUNCHED, 1, 0,
                        link=(3, Direction.NORTH), detail="tag 4")
        assert "3->NORTH" in str(e2) and "tag 4" in str(e2)


class TestRingMode:
    def test_ring_keeps_newest_events(self):
        net = Network(NoCConfig())
        for pid in range(20):
            net.add_packet(Packet(pkt_id=pid, src_core=0, dst_core=63))
        full = FlitTracer.attach(net, None)
        ring = FlitTracer.attach(net, None, capacity=10, ring=True)
        net.run(200)
        assert len(ring.events) == 10
        assert ring.truncated
        # the ring window is exactly the tail of the full trace
        assert list(ring.events) == full.events[-10:]

    def test_ring_under_capacity_keeps_everything(self):
        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=4))
        tracer = run_with_tracer(net, {1}, ring=True)
        assert not tracer.truncated
        kinds = [e.kind for e in tracer.events]
        assert kinds[0] is EventKind.INJECTED
        assert kinds[-1] is EventKind.EJECTED


class TestPicklableHooks:
    def test_traced_network_pickles(self):
        """The launch/ack hooks are named classes, not closures, so a
        traced network can be checkpointed."""
        import pickle

        net = Network(NoCConfig())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
        tracer = FlitTracer.attach(net, None, ring=True)
        net.run(30)
        restored_net, restored_tracer = pickle.loads(
            pickle.dumps((net, tracer))
        )
        # the restored hooks feed the restored tracer, not the old one
        before = len(restored_tracer.events)
        restored_net.run(200)
        assert len(restored_tracer.events) > before
        assert len(tracer.events) == before
