"""Tests for the ASCII mesh visualization."""

import pytest

from repro.experiments.viz import (
    BACKPRESSURE_LEGEND,
    CELL_ALL_CORES_BLOCKED,
    CELL_HALF_CORES_BLOCKED,
    CELL_HEALTHY,
    CELL_OUTPUT_STALLED,
    HEAT_RAMP,
    render_backpressure_map,
    render_link_heatmap,
    render_network_link_heatmap,
    render_router_grid,
)
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction

CFG = PAPER_CONFIG


class TestLinkHeatmap:
    def test_idle_mesh_all_cold(self):
        out = render_link_heatmap(CFG, {})
        # only the coldest glyph appears in link segments
        for glyph in HEAT_RAMP[1:]:
            assert f">{glyph}" not in out

    def test_hot_link_gets_hottest_glyph(self):
        loads = {(0, Direction.EAST): 100.0, (1, Direction.EAST): 1.0}
        out = render_link_heatmap(CFG, loads)
        assert f">{HEAT_RAMP[-1]}" in out

    def test_all_routers_drawn(self):
        out = render_link_heatmap(CFG, {})
        for rid in range(16):
            assert f"[{rid:2d}]" in out

    def test_north_at_top(self):
        out = render_link_heatmap(CFG, {})
        lines = out.splitlines()
        assert "[12]" in lines[1]  # top row is y=3 (routers 12-15)
        assert "[ 0]" in lines[-1]

    def test_title_and_peak(self):
        out = render_link_heatmap(CFG, {(0, Direction.EAST): 5}, title="t")
        assert out.startswith("t (peak=5")

    def test_measured_heatmap_from_network(self):
        net = Network(CFG)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=12))
        net.run_until_drained(500)
        out = render_network_link_heatmap(net)
        # the traversed links are the only warm ones
        assert out.count(HEAT_RAMP[-1]) >= 1


class TestHeatmapBeyondSquareMesh:
    def test_non_square_mesh_stays_aligned(self):
        cfg = NoCConfig(mesh_width=6, mesh_height=2)
        out = render_link_heatmap(cfg, {(0, Direction.EAST): 3.0})
        lines = out.splitlines()
        # two router rows with one vertical row between them
        router_rows = [l for l in lines if l.startswith("[")]
        assert len(router_rows) == 2
        for rid in range(12):
            assert f"[{rid:2d}]" in out

    def test_three_digit_ids_widen_cells_uniformly(self):
        cfg = NoCConfig(mesh_width=16, mesh_height=16)
        out = render_link_heatmap(cfg, {})
        assert "[255]" in out
        assert "[  0]" in out
        router_rows = [
            l for l in out.splitlines() if l.startswith("[")
        ]
        # every full row renders to the same width: no drift
        assert len({len(row) for row in router_rows}) == 1

    def test_vertical_segments_sit_under_their_cells(self):
        cfg = NoCConfig(mesh_width=16, mesh_height=16)
        out = render_link_heatmap(
            cfg, {(0, Direction.NORTH): 9.0}, title="t"
        )
        lines = out.splitlines()
        bottom = lines[-1]
        vrow = lines[-2]
        # the hot northbound glyph column starts inside cell [0]'s span
        assert vrow.index("^") < bottom.index("]")

    def test_torus_wrap_links_go_to_the_overflow_legend(self):
        cfg = NoCConfig(mesh_width=4, mesh_height=4, topology="torus")
        loads = {
            (3, Direction.EAST): 7.0,   # wrap link
            (0, Direction.EAST): 2.0,   # planar link
        }
        out = render_link_heatmap(cfg, loads)
        assert "+1 non-planar link(s)" in out
        assert "3->EAST" in out
        # the wrap load sets the peak even though it is not drawn
        assert "peak=7" in out

    def test_express_links_go_to_the_overflow_legend(self):
        cfg = NoCConfig(mesh_width=6, mesh_height=6, express_interval=2)
        out = render_link_heatmap(
            cfg, {(0, Direction.EXPRESS_EAST): 4.0}
        )
        assert "+1 non-planar link(s)" in out
        assert "0->EXPRESS_EAST" in out

    def test_planar_only_loads_render_without_legend(self):
        out = render_link_heatmap(CFG, {(0, Direction.EAST): 1.0})
        assert "non-planar" not in out


class TestRouterGrid:
    def test_classifier_applied_per_router(self):
        out = render_router_grid(CFG, lambda r: str(r % 10), legend="L")
        assert out.splitlines()[-1] == "L"
        assert "[ 5 ]" in out

    def test_backpressure_map_healthy(self):
        net = Network(CFG)
        net.run(10)
        out = render_backpressure_map(net)
        assert out.count(" . ") == 16
        assert "[XXX]" not in out

    def test_backpressure_map_under_attack(self):
        from repro.core import TargetSpec, TaspTrojan

        net = Network(CFG)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(80):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, created_cycle=0)
            )
        net.run(1000)
        out = render_backpressure_map(net)
        assert CELL_ALL_CORES_BLOCKED in out or CELL_OUTPUT_STALLED in out
        assert "legend" in out

    def test_legend_names_every_cell_glyph(self):
        # the legend is built from the same constants classify returns,
        # so renaming a glyph cannot silently desynchronize the two
        assert BACKPRESSURE_LEGEND.startswith("legend:")
        for glyph in (
            CELL_HEALTHY,
            CELL_HALF_CORES_BLOCKED,
            CELL_OUTPUT_STALLED,
            CELL_ALL_CORES_BLOCKED,
        ):
            assert glyph.strip() in BACKPRESSURE_LEGEND
        net = Network(CFG)
        net.run(10)
        assert render_backpressure_map(net).splitlines()[-1] == (
            BACKPRESSURE_LEGEND
        )
