"""Tests for the attacker-side planner (§III-A link selection)."""

import pytest

from repro.core import TargetSpec
from repro.core.attacker import (
    compare_targets,
    plan_attack,
    victim_flow_volumes,
)
from repro.noc import PAPER_CONFIG
from repro.noc.topology import Direction, links_on_xy_path
from repro.traffic import PROFILES, traffic_weights

CFG = PAPER_CONFIG


def victim_flows_to_router0():
    """All flows toward router 0 weighted by the blackscholes matrix."""
    weights = traffic_weights(CFG, PROFILES["blackscholes"])
    return [(s, 0, w) for (s, d), w in weights.items() if d == 0]


class TestVictimFlowVolumes:
    def test_single_flow(self):
        loads = victim_flow_volumes(CFG, [(0, 3, 2.0)])
        assert loads[(0, Direction.EAST)] == 2.0
        assert loads[(1, Direction.EAST)] == 2.0
        assert loads[(2, Direction.EAST)] == 2.0
        assert len(loads) == 3

    def test_volumes_accumulate(self):
        loads = victim_flow_volumes(CFG, [(0, 2, 1.0), (1, 2, 3.0)])
        assert loads[(1, Direction.EAST)] == 4.0


class TestPlanAttack:
    def test_full_coverage_of_one_destination(self):
        # all traffic INTO router 0 funnels through 2 ingress links
        plan = plan_attack(
            CFG, victim_flows_to_router0(), TargetSpec.for_dest(0),
            coverage_goal=1.0,
        )
        assert plan.coverage == pytest.approx(1.0)
        assert plan.num_implants == 2
        assert set(plan.links) == {
            (1, Direction.WEST), (4, Direction.SOUTH),
        }

    def test_greedy_picks_heaviest_first(self):
        plan = plan_attack(
            CFG, victim_flows_to_router0(), TargetSpec.for_dest(0),
            coverage_goal=0.5,
        )
        assert plan.num_implants == 1

    def test_few_links_suffice_for_localized_victim(self):
        # the paper's claim: a few links a few hops from the primary
        # core cover most of a localized application's traffic
        plan = plan_attack(
            CFG, victim_flows_to_router0(), TargetSpec.for_dest(0),
            coverage_goal=0.9,
        )
        assert plan.num_implants <= 2

    def test_spread_victim_needs_more_implants(self):
        weights = traffic_weights(CFG, PROFILES["fft"])
        flows = [(s, d, w) for (s, d), w in weights.items()]
        with pytest.raises(ValueError):
            plan_attack(CFG, flows, TargetSpec.for_dest(0),
                        coverage_goal=0.95, max_implants=3)

    def test_forbidden_links_respected(self):
        plan = plan_attack(
            CFG, victim_flows_to_router0(), TargetSpec.for_dest(0),
            coverage_goal=0.5,
            forbidden_links=[(1, Direction.WEST)],
        )
        assert (1, Direction.WEST) not in plan.links

    def test_footprint_accounting(self):
        plan = plan_attack(
            CFG, victim_flows_to_router0(), TargetSpec.for_dest(0),
            coverage_goal=1.0,
        )
        from repro.power import tasp_budget

        single = tasp_budget(TargetSpec.for_dest(0))
        assert plan.footprint.area_um2 == pytest.approx(
            2 * single.area_um2
        )
        assert plan.footprint_vs_router < 0.01  # stays under 1% of router

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_attack(CFG, [], TargetSpec.for_dest(0))
        with pytest.raises(ValueError):
            plan_attack(CFG, [(0, 1, 1.0)], TargetSpec.for_dest(0),
                        coverage_goal=0.0)
        with pytest.raises(ValueError):
            plan_attack(CFG, [(0, 1, 0.0)], TargetSpec.for_dest(0))

    def test_planned_links_actually_cover(self):
        flows = victim_flows_to_router0()
        plan = plan_attack(CFG, flows, TargetSpec.for_dest(0),
                           coverage_goal=1.0)
        for src, dst, _ in flows:
            path = links_on_xy_path(CFG, src, dst)
            assert any(link in path for link in plan.links)


class TestCompareTargets:
    def test_wide_targets_cost_more_but_alias_less(self):
        flows = victim_flows_to_router0()
        plans = compare_targets(
            CFG, flows,
            {
                "Dest": TargetSpec.for_dest(0),
                "Full": TargetSpec.full(0, 0, 0, 0x100),
            },
            coverage_goal=1.0,
        )
        dest, full = plans["Dest"], plans["Full"]
        assert full.footprint.area_um2 > dest.footprint.area_um2
        assert full.accidental_trigger_rate < dest.accidental_trigger_rate
        # same links either way: placement depends on traffic, not target
        assert set(full.links) == set(dest.links)
