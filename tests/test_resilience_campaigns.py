"""Seeded fuzz campaigns: random fault compositions, audited end to end.

Each seed composes transient bursts, stuck-at onsets, trojan
activations and link kills on a 3x3 mesh and runs the full resilience
stack.  Outcomes vary by seed (some scenarios are survivable losslessly,
some end in drops, resubmissions and epoch recovery), but three
properties must hold for *every* seed:

* zero invariant violations — no fault composition may corrupt credit,
  sequence or flit conservation;
* closed delivery accounting — every offered packet is either delivered
  or on the failed list, no third state;
* exactly-once delivery — no packet is ever completed twice, even
  across resubmission aliases and epoch boundaries.
"""

import pytest

from repro.noc.config import NoCConfig
from repro.resilience import (
    CampaignSpec,
    ChaosCampaign,
    random_events,
    uniform_traffic,
)

#: small mesh keeps the fuzz fast while still offering alternate routes
FUZZ_CFG = NoCConfig(mesh_width=3, mesh_height=3, concentration=1)

FUZZ_SEEDS = list(range(24))


def run_fuzz_campaign(seed: int):
    spec = CampaignSpec(
        name=f"fuzz-{seed}",
        cfg=FUZZ_CFG,
        traffic=uniform_traffic(FUZZ_CFG, seed, 30, interval=4),
        events=random_events(FUZZ_CFG, seed, horizon=300),
        max_cycles=4000,
        validate_every=7,
        seed=seed,
    )
    return ChaosCampaign(spec).run()


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_fault_composition(seed):
    report = run_fuzz_campaign(seed)
    assert report.violations == (), (
        f"seed {seed}: invariant violations:\n" + "\n".join(report.violations)
    )
    assert report.invariant_checks > 0
    assert (
        report.packets_delivered + report.packets_failed
        == report.packets_offered
    ), f"seed {seed}: delivery accounting does not close"
    assert report.duplicate_deliveries == 0, (
        f"seed {seed}: exactly-once delivery violated"
    )


def test_fuzz_exercises_the_whole_ladder():
    """Sanity on the generator: across the seed set the fuzz must reach
    drops, condemnations and epoch recoveries — otherwise the campaign
    assertions above are vacuous."""
    reports = [run_fuzz_campaign(seed) for seed in (3, 9, 14)]
    assert any(r.packets_dropped > 0 for r in reports)
    assert any(r.condemned_links for r in reports)
    assert any(r.epochs >= 2 for r in reports)
    assert any(r.resubmissions > 0 for r in reports)


def test_fuzz_is_deterministic():
    first = run_fuzz_campaign(7)
    second = run_fuzz_campaign(7)
    assert first == second


# -- failure explanation ---------------------------------------------------
def explain_spec(**overrides):
    """A tiny campaign that reliably deadlocks: an unmitigated,
    unwatched TASP on the victim flow's first hop, plus a harmless
    correctable-noise decoy the explainer must rule out."""
    from repro.core.targets import TargetSpec
    from repro.noc.topology import Direction
    from repro.resilience import (
        TransientBurst,
        TrojanActivation,
        targeted_stream,
    )

    base = dict(
        name="explain-mini",
        cfg=FUZZ_CFG,
        traffic=targeted_stream(FUZZ_CFG, 0, 2, 20, interval=4),
        events=[
            TrojanActivation(at=5, link=(0, Direction.EAST),
                             target=TargetSpec.for_dest(2)),
            TransientBurst(link=(3, Direction.EAST), at=10, duration=100,
                           flip_probability=0.02, double_fraction=0.0),
        ],
        mitigated=False,
        watchdog=None,
        max_cycles=1500,
        deadlock_window=250,
        explain_violations=True,
        explain_budget=16,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestFailureExplanation:
    def test_minimal_cause_names_only_the_trojan(self):
        from repro.resilience import run_campaign

        report = run_campaign(explain_spec())
        assert report.deadlocked and report.failed
        assert report.minimal_events == ("tasp@0-EAST",)
        assert "minimal cause: tasp@0-EAST" in report.summary()

    def test_surviving_run_explains_nothing(self):
        from repro.resilience import run_campaign

        report = run_campaign(explain_spec(events=[]))
        assert not report.failed
        assert report.minimal_events == ()

    def test_explanation_is_opt_in(self):
        from repro.resilience import run_campaign

        report = run_campaign(explain_spec(explain_violations=False))
        assert report.deadlocked
        assert report.minimal_events == ()

    def test_minimal_explaining_events_direct(self):
        from repro.resilience.campaign import minimal_explaining_events

        spec = explain_spec()
        report = ChaosCampaign(spec).run()
        assert report.deadlocked
        labels = minimal_explaining_events(spec, report, max_runs=16)
        assert labels == ("tasp@0-EAST",)
        # a passing report short-circuits without spending runs
        import dataclasses

        passed = dataclasses.replace(
            report, deadlocked=False, violations=()
        )
        assert minimal_explaining_events(spec, passed) == ()

    def test_budget_dry_returns_a_failing_superset(self):
        from repro.resilience.campaign import minimal_explaining_events

        spec = explain_spec()
        report = ChaosCampaign(spec).run()
        labels = minimal_explaining_events(spec, report, max_runs=0)
        # no budget: nothing could be removed, both events remain
        assert set(labels) == {"tasp@0-EAST", "burst@3-EAST"}
