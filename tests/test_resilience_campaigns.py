"""Seeded fuzz campaigns: random fault compositions, audited end to end.

Each seed composes transient bursts, stuck-at onsets, trojan
activations and link kills on a 3x3 mesh and runs the full resilience
stack.  Outcomes vary by seed (some scenarios are survivable losslessly,
some end in drops, resubmissions and epoch recovery), but three
properties must hold for *every* seed:

* zero invariant violations — no fault composition may corrupt credit,
  sequence or flit conservation;
* closed delivery accounting — every offered packet is either delivered
  or on the failed list, no third state;
* exactly-once delivery — no packet is ever completed twice, even
  across resubmission aliases and epoch boundaries.
"""

import pytest

from repro.noc.config import NoCConfig
from repro.resilience import (
    CampaignSpec,
    ChaosCampaign,
    random_events,
    uniform_traffic,
)

#: small mesh keeps the fuzz fast while still offering alternate routes
FUZZ_CFG = NoCConfig(mesh_width=3, mesh_height=3, concentration=1)

FUZZ_SEEDS = list(range(24))


def run_fuzz_campaign(seed: int):
    spec = CampaignSpec(
        name=f"fuzz-{seed}",
        cfg=FUZZ_CFG,
        traffic=uniform_traffic(FUZZ_CFG, seed, 30, interval=4),
        events=random_events(FUZZ_CFG, seed, horizon=300),
        max_cycles=4000,
        validate_every=7,
        seed=seed,
    )
    return ChaosCampaign(spec).run()


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_fault_composition(seed):
    report = run_fuzz_campaign(seed)
    assert report.violations == (), (
        f"seed {seed}: invariant violations:\n" + "\n".join(report.violations)
    )
    assert report.invariant_checks > 0
    assert (
        report.packets_delivered + report.packets_failed
        == report.packets_offered
    ), f"seed {seed}: delivery accounting does not close"
    assert report.duplicate_deliveries == 0, (
        f"seed {seed}: exactly-once delivery violated"
    )


def test_fuzz_exercises_the_whole_ladder():
    """Sanity on the generator: across the seed set the fuzz must reach
    drops, condemnations and epoch recoveries — otherwise the campaign
    assertions above are vacuous."""
    reports = [run_fuzz_campaign(seed) for seed in (3, 9, 14)]
    assert any(r.packets_dropped > 0 for r in reports)
    assert any(r.condemned_links for r in reports)
    assert any(r.epochs >= 2 for r in reports)
    assert any(r.resubmissions > 0 for r in reports)


def test_fuzz_is_deterministic():
    first = run_fuzz_campaign(7)
    second = run_fuzz_campaign(7)
    assert first == second
