"""Unit tests for the receive pipeline: ECC decode, ACK/NACK,
resequencing, header resync (SDC), and duplicate suppression."""

import pytest

from repro.ecc import SECDED_72_64
from repro.noc import PAPER_CONFIG, Packet
from repro.noc.flit import FlitType, pack_header
from repro.noc.link import Link, Transmission
from repro.noc.receiver import EccReceiver
from repro.noc.topology import Direction


def make_link():
    return Link(0, Direction.EAST, 1, latency=1, ack_latency=1)


def make_tx(tag, vc=0, vc_seq=0, dst=63, corrupt=0, pkt_id=None):
    flit = Packet(
        pkt_id=pkt_id if pkt_id is not None else tag,
        src_core=0,
        dst_core=dst,
        mem_addr=0xAB,
    ).build_flits(PAPER_CONFIG)[0]
    return Transmission(
        tag=tag,
        vc=vc,
        vc_seq=vc_seq,
        codeword=SECDED_72_64.encode(flit.data) ^ corrupt,
        flit=flit,
        ob=None,
        launch_cycle=0,
    )


class TestAckNack:
    def test_clean_flit_acked(self):
        link = make_link()
        rx = EccReceiver(PAPER_CONFIG, link)
        rx.process(make_tx(0), cycle=5)
        acks = link.pop_acks(6)
        assert len(acks) == 1 and acks[0].ok
        assert rx.flits_accepted == 1

    def test_corrupt_flit_nacked(self):
        link = make_link()
        rx = EccReceiver(PAPER_CONFIG, link)
        rx.process(make_tx(0, corrupt=0b11), cycle=5)
        acks = link.pop_acks(6)
        assert len(acks) == 1 and not acks[0].ok
        assert rx.faults_detected == 1
        assert rx.staged_count == 0  # rejected flits never stage

    def test_single_bit_fault_corrected_and_acked(self):
        link = make_link()
        rx = EccReceiver(PAPER_CONFIG, link)
        rx.process(make_tx(0, corrupt=0b1), cycle=5)
        assert link.pop_acks(6)[0].ok
        assert rx.flits_corrected == 1
        [(vc, flit)] = rx.take_deliveries(5)
        assert flit.mem_addr == 0xAB  # data intact after correction

    def test_duplicate_transmission_reacked_not_restaged(self):
        # a stale retransmission of an already-accepted flit (its ACK was
        # in flight) must be re-ACKed but not delivered twice
        link = make_link()
        rx = EccReceiver(PAPER_CONFIG, link)
        rx.process(make_tx(0, vc_seq=0), cycle=5)
        rx.process(make_tx(0, vc_seq=0), cycle=6)
        assert len(link.pop_acks(10)) == 2
        assert rx.staged_count == 1


class TestResequencing:
    def test_in_order_delivery(self):
        rx = EccReceiver(PAPER_CONFIG, make_link())
        rx.process(make_tx(0, vc_seq=0), cycle=1)
        rx.process(make_tx(1, vc_seq=1), cycle=2)
        got = [f.pkt_id for _, f in rx.take_deliveries(2)]
        assert got == [0, 1]

    def test_gap_blocks_younger_flit(self):
        rx = EccReceiver(PAPER_CONFIG, make_link())
        rx.process(make_tx(1, vc_seq=1), cycle=1)  # seq 0 missing
        assert rx.take_deliveries(5) == []
        rx.process(make_tx(0, vc_seq=0), cycle=6)
        got = [f.pkt_id for _, f in rx.take_deliveries(6)]
        assert got == [0, 1]

    def test_vcs_resequence_independently(self):
        rx = EccReceiver(PAPER_CONFIG, make_link())
        rx.process(make_tx(1, vc=0, vc_seq=1), cycle=1)  # vc0 gap
        rx.process(make_tx(2, vc=1, vc_seq=0), cycle=1)  # vc1 in order
        got = [f.pkt_id for _, f in rx.take_deliveries(1)]
        assert got == [2]

    def test_release_cycle_respected(self):
        rx = EccReceiver(PAPER_CONFIG, make_link())
        rx.process(make_tx(0, vc_seq=0), cycle=3)
        # staged at cycle 3, deliverable from cycle 3 onward
        assert [f.pkt_id for _, f in rx.take_deliveries(3)] == [0]

    def test_idle_property(self):
        rx = EccReceiver(PAPER_CONFIG, make_link())
        assert rx.idle
        rx.process(make_tx(0, vc_seq=0), cycle=1)
        assert not rx.idle
        rx.take_deliveries(1)
        assert rx.idle


class TestHeaderResync:
    def test_sdc_on_head_reroutes_packet(self):
        # Hardware trusts the wire: if a triple fault miscorrects the
        # dest field, the receiver adopts the (wrong) decoded header.
        link = make_link()
        rx = EccReceiver(PAPER_CONFIG, link)
        flit = Packet(pkt_id=9, src_core=0, dst_core=63).build_flits(
            PAPER_CONFIG
        )[0]
        # craft a miscorrecting word: flip 3 bits such that SECDED
        # "corrects" to something else
        cw = SECDED_72_64.encode(flit.data)
        for pattern in range(0, 60):
            corrupted = cw ^ (0b111 << pattern)
            res = SECDED_72_64.decode(corrupted)
            if res.status.name == "CORRECTED" and res.data != flit.data:
                tx = Transmission(
                    tag=0, vc=0, vc_seq=0, codeword=corrupted, flit=flit,
                    ob=None, launch_cycle=0,
                )
                rx.process(tx, cycle=1)
                [(_, delivered)] = rx.take_deliveries(1)
                from repro.noc.flit import unpack_header

                fields = unpack_header(delivered.data)
                assert delivered.dst_router == fields["dst_router"]
                return
        pytest.skip("no miscorrecting pattern found for this word")

    def test_body_flit_keeps_metadata(self):
        link = make_link()
        rx = EccReceiver(PAPER_CONFIG, link)
        pkt = Packet(pkt_id=9, src_core=0, dst_core=63, payload=[0x1234])
        body = pkt.build_flits(PAPER_CONFIG)[1]
        tx = Transmission(
            tag=0, vc=0, vc_seq=0,
            codeword=SECDED_72_64.encode(body.data), flit=body, ob=None,
            launch_cycle=0,
        )
        rx.process(tx, cycle=1)
        [(_, delivered)] = rx.take_deliveries(1)
        assert delivered.dst_router == 15  # metadata untouched for bodies
        assert delivered.data == 0x1234


class TestObfuscationGuard:
    def test_baseline_receiver_rejects_obfuscated_tx(self):
        from repro.core.lob import Granularity, ObDescriptor, ObMethod

        rx = EccReceiver(PAPER_CONFIG, make_link())
        tx = make_tx(0)
        tx.ob = ObDescriptor(ObMethod.INVERT, Granularity.FULL)
        with pytest.raises(RuntimeError):
            rx.process(tx, cycle=1)
