"""Generality sweep: the simulator and mitigation must work on any mesh
shape, concentration, VC count and buffer depth — not just the paper's
4x4x4 platform."""

import dataclasses

import pytest

from repro.core import TargetSpec, TaspTrojan, build_mitigated_network
from repro.noc import Network, NoCConfig, Packet
from repro.noc.topology import Direction, all_links

SHAPES = [
    dict(mesh_width=2, mesh_height=2, concentration=1),
    dict(mesh_width=4, mesh_height=1, concentration=2),
    dict(mesh_width=2, mesh_height=4, concentration=2),
    dict(mesh_width=3, mesh_height=3, concentration=1),
    dict(mesh_width=4, mesh_height=4, concentration=4),
]

VARIANTS = [
    dict(num_vcs=1, vc_depth=2),
    dict(num_vcs=2, vc_depth=1),
    dict(num_vcs=4, vc_depth=8),
    dict(retrans_depth=2),
    dict(link_latency=3, ack_latency=2),
    dict(credit_latency=3),
]


def all_pairs_workload(cfg, net, stride=3):
    pid = 0
    cores = list(range(0, cfg.num_cores, stride)) or [0]
    for src in cores:
        for dst in cores:
            if src != dst:
                net.add_packet(
                    Packet(pkt_id=pid, src_core=src, dst_core=dst,
                           vc_class=pid % cfg.num_vcs, payload=[pid],
                           created_cycle=0)
                )
                pid += 1
    return pid


@pytest.mark.parametrize(
    "shape", SHAPES, ids=lambda s: f"{s['mesh_width']}x{s['mesh_height']}c{s['concentration']}"
)
class TestMeshShapes:
    def test_clean_delivery(self, shape):
        cfg = NoCConfig(**shape)
        net = Network(cfg)
        offered = all_pairs_workload(cfg, net, stride=2)
        assert net.run_until_drained(8000)
        assert net.stats.packets_completed == offered
        assert net.stats.misdeliveries == 0

    def test_attack_and_mitigation(self, shape):
        cfg = NoCConfig(**shape)
        if cfg.num_links == 0:
            pytest.skip("single-router mesh has no links to infect")
        net = build_mitigated_network(cfg)
        link = all_links(cfg)[0]
        # target the last router so flows cross the first link sometimes
        trojan = TaspTrojan(TargetSpec.for_dest(cfg.num_routers - 1))
        trojan.enable()
        net.attach_tamperer(link, trojan)
        offered = all_pairs_workload(cfg, net, stride=2)
        assert net.run_until_drained(15000, stall_limit=4000)
        assert net.stats.packets_completed == offered


@pytest.mark.parametrize(
    "variant", VARIANTS,
    ids=lambda v: ",".join(f"{k}={val}" for k, val in v.items()),
)
class TestMicroarchVariants:
    def test_clean_delivery(self, variant):
        cfg = NoCConfig(**variant)
        net = Network(cfg)
        pid = 0
        for src in range(0, cfg.num_cores, 9):
            for dst in range(1, cfg.num_cores, 11):
                if src != dst:
                    net.add_packet(
                        Packet(pkt_id=pid, src_core=src, dst_core=dst,
                               vc_class=pid % cfg.num_vcs,
                               payload=[1, 2], created_cycle=0)
                    )
                    pid += 1
        assert net.run_until_drained(10000)
        assert net.stats.packets_completed == pid

    def test_mitigated_attack(self, variant):
        cfg = NoCConfig(**variant)
        net = build_mitigated_network(cfg)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(8):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % cfg.num_vcs, created_cycle=0)
            )
        assert net.run_until_drained(20000, stall_limit=5000)
        assert net.stats.packets_completed == 8


class TestDegenerateShapes:
    def test_single_router_mesh(self):
        cfg = NoCConfig(mesh_width=1, mesh_height=1, concentration=4)
        net = Network(cfg)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=3))
        assert net.run_until_drained(100)
        assert net.stats.packets_completed == 1

    def test_two_router_line(self):
        cfg = NoCConfig(mesh_width=2, mesh_height=1, concentration=1)
        net = Network(cfg)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=1,
                              payload=[0xAB]))
        assert net.run_until_drained(200)
        rec = net.stats.packets[1]
        assert rec.complete and rec.hops == 1
