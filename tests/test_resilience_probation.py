"""Probation and reinstatement: the containment recovery loop.

The load-bearing guarantees, mirroring the admission safety the
condemnation path already proves:

* a reinstated link is *actually* clean — the prober never lets an
  active trojan earn a clean streak, so the only way back into service
  is genuinely passing the BIST sweep;
* reinstatement is the seal run in reverse — the link re-enables, the
  avoid-set shrinks, the ladder restarts from rung zero and the
  receiver starts a fresh sequencing epoch — and it never strands a
  src/dst pair, under any interleaving of condemnations, probes and
  reinstatements (hypothesis-driven);
* a flapping attacker cannot farm reinstatements: exponential flap
  damping converges to permanent condemnation.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TargetSpec, TaspConfig, TaspTrojan
from repro.noc.adaptive import (
    AdaptiveRouting,
    avoid_routing,
    turn_model_connected,
)
from repro.noc.config import PAPER_CONFIG
from repro.noc.flit import layout_for
from repro.noc.network import Network
from repro.noc.topology import Direction
from repro.resilience.containment import (
    ContainmentConfig,
    ContainmentCoordinator,
    ProbationConfig,
)
from repro.resilience.detect import DetectConfig
from repro.resilience.probe import LinkProber, ProbeConfig, ProbeVerdict
from repro.resilience.watchdog import RetransWatchdog, WatchdogConfig
from repro.sim import (
    DefenseSpec,
    Scenario,
    SentinelSpec,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
)
from tests.test_resilience_containment import walk

CFG = PAPER_CONFIG
EAST = Direction.EAST
WEST = Direction.WEST
LINK = (0, EAST)


class _StuckAt:
    """A permanent wire fault: a double-bit flip on every word, past
    SECDED correction (a single stuck bit would be corrected away)."""

    def tamper(self, codeword: int, cycle: int) -> int:
        return codeword ^ 0b11


def _trojan(net: Network, key, target=None) -> TaspTrojan:
    trojan = TaspTrojan(
        target or TargetSpec.for_vc(0),
        TaspConfig(),
        layout=layout_for(net.cfg),
    )
    net.links[key].tamperers.append(trojan)
    return trojan


class TestProberVerdicts:
    def probe(self, net: Network, key=LINK, trial_index=0):
        prober = LinkProber(net.cfg, ProbeConfig())
        return prober.trial(net.links[key], cycle=100,
                            trial_index=trial_index)

    def test_clean_link_scans_clean(self):
        trial = self.probe(Network(CFG))
        assert trial.verdict is ProbeVerdict.CLEAN
        assert trial.plain_failed == 0 and trial.ob_failed == 0
        assert trial.plain_sent > 0 and trial.ob_sent > 0

    def test_active_trojan_never_scans_clean(self):
        """Whatever the comparator keys on, the id/vc sweep trips it —
        an armed trojan must not earn a clean trial."""
        for target in (
            TargetSpec.for_vc(0),
            TargetSpec.for_dest(5),
            TargetSpec.for_src(3),
        ):
            net = Network(CFG)
            trojan = _trojan(net, LINK, target)
            trojan.enable()
            trial = self.probe(net)
            assert trial.verdict is not ProbeVerdict.CLEAN, target

    def test_dormant_trojan_scans_clean(self):
        # kill switch off: the trigger cannot fire, the wire is clean —
        # exactly the state that *should* reinstate
        net = Network(CFG)
        _trojan(net, LINK)  # never enabled
        assert self.probe(net).verdict is ProbeVerdict.CLEAN

    def test_stuck_fault_is_infected(self):
        net = Network(CFG)
        net.links[LINK].tamperers.append(_StuckAt())
        trial = self.probe(net)
        assert trial.verdict is ProbeVerdict.INFECTED
        assert trial.plain_failed == trial.plain_sent
        assert trial.ob_failed == trial.ob_sent

    def test_trials_are_cycle_independent(self):
        """Probe content depends on (seed, link, trial_index) only, so
        the sweep and event engines — which probe at identical cycles
        but via different control flow — generate identical words."""
        net = Network(CFG)
        prober = LinkProber(CFG, ProbeConfig())
        a = prober.trial(net.links[LINK], cycle=100, trial_index=0)
        b = prober.trial(net.links[LINK], cycle=9999, trial_index=0)
        assert (a.plain_sent, a.ob_sent, a.verdict) == \
            (b.plain_sent, b.ob_sent, b.verdict)

    def test_distinct_trials_vary_their_random_probes(self):
        prober = LinkProber(CFG, ProbeConfig(sweep_ids=False,
                                             random_probes=8))
        words_0 = prober._probe_words(Network(CFG).links[LINK], 0)
        words_1 = prober._probe_words(Network(CFG).links[LINK], 1)
        assert words_0 != words_1

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ProbeConfig(random_probes=-1)
        with pytest.raises(ValueError):
            ProbeConfig(sweep_ids=False, random_probes=0)


# ---------------------------------------------------------------------------
# unit-level lifecycle (idle network, hand-driven clock)
# ---------------------------------------------------------------------------
PROBATION = ProbationConfig(
    start_after=50, probe_period=25, required_clean=2, max_trials=8,
    flap_multiplier=2, max_flaps=2,
)


def _attach(probation=PROBATION):
    net = Network(CFG)
    watchdog = RetransWatchdog(WatchdogConfig()).attach(net)
    coordinator = ContainmentCoordinator(
        ContainmentConfig(), probation=probation
    ).attach(net, watchdog)
    return net, watchdog, coordinator


def _condemn(watchdog, *keys):
    watchdog._condemned.update(keys)
    watchdog._pending_condemned.extend(keys)


def _advance(net, coordinator, start: int, until: int, step: int = 25):
    """Hand the coordinator a monotonic clock (the mesh itself stays
    idle, so every probe window is quiescent)."""
    cycle = start
    while cycle < until:
        cycle += step
        coordinator.on_cycle(net, cycle)
    return cycle


class TestProbationLifecycle:
    def seal(self, net, wd, co, key=LINK, cycle=100):
        _condemn(wd, key)
        co.on_cycle(net, cycle)  # idle mesh: contains and seals at once
        assert co.link_states[key] == "sealed"
        return cycle

    def test_first_probe_waits_for_start_after(self):
        net, wd, co = _attach()
        self.seal(net, wd, co)
        assert co._probe_due[LINK] == 150  # 100 + start_after
        co.on_cycle(net, 149)
        assert co.prober.trials_run == 0
        co.on_cycle(net, 150)
        assert co.prober.trials_run == 1

    def test_clean_streak_reinstates(self):
        net, wd, co = _attach()
        self.seal(net, wd, co)
        _advance(net, co, 100, 200)
        assert co.links_reinstated == 1
        assert not co.link_states
        assert not net.links[LINK].disabled
        assert co.avoid == frozenset()
        assert net.route_fn is co._base_route_fn  # xy restored
        assert co.time_to_reinstate[LINK] > 0
        assert [e.kind for e in co.events][-1] == "reinstate"

    def test_reinstatement_restarts_the_ladder_at_rung_zero(self):
        net, wd, co = _attach()
        wd.mark_suspect(LINK)  # detector flag: thresholds halved
        halved = wd._ladder_thresholds(LINK)
        self.seal(net, wd, co)
        _advance(net, co, 100, 200)
        assert LINK not in wd.condemned_links
        assert wd._ladder_thresholds(LINK) != halved
        # the reinstated link's thresholds match a never-suspected one
        assert wd._ladder_thresholds(LINK) == \
            wd._ladder_thresholds((1, EAST))

    def test_reinstatement_opens_a_fresh_sequencing_epoch(self):
        net, wd, co = _attach()
        self.seal(net, wd, co)
        receiver = net.receiver_of(LINK)
        receiver._expected_seq[0] = 17       # sealed-era divergence
        receiver._skipped[0].add(5)
        receiver.poison_packet(123)
        _advance(net, co, 100, 200)
        assert receiver._expected_seq == [0] * CFG.num_vcs
        assert not any(receiver._skipped.values())
        assert not receiver.poisoned_packets

    def test_infected_probe_resets_the_streak(self):
        net, wd, co = _attach()
        stuck = _StuckAt()
        net.links[LINK].tamperers.append(stuck)
        self.seal(net, wd, co)
        _advance(net, co, 100, 175)  # two failing trials
        assert co._clean_trials[LINK] == 0
        assert co.links_reinstated == 0
        net.links[LINK].tamperers.remove(stuck)  # fault clears
        _advance(net, co, 175, 250)
        assert co.links_reinstated == 1

    def test_probe_budget_exhaustion_is_permanent(self):
        net, wd, co = _attach()
        net.links[LINK].tamperers.append(_StuckAt())
        self.seal(net, wd, co)
        _advance(net, co, 100, 2000)
        assert co.prober.trials_run == PROBATION.max_trials
        assert co.links_permanent == 1
        assert co.link_states[LINK] == "sealed"  # still contained
        assert LINK not in co._probe_due  # probing stopped for good
        assert any(
            e.kind == "flap_damp" and "budget" in e.detail
            for e in co.events
        )

    def test_flap_damping_multiplies_the_probe_delay(self):
        net, wd, co = _attach()
        self.seal(net, wd, co)
        _advance(net, co, 100, 200)
        assert co.links_reinstated == 1
        # the attacker re-arms: second condemnation is a flap
        _condemn(wd, LINK)
        co.on_cycle(net, 1000)
        assert co.flap_counts[LINK] == 1
        assert co._probe_due[LINK] == 1000 + PROBATION.start_after * 2

    def test_max_flaps_condemns_permanently(self):
        net, wd, co = _attach()
        cycle = self.seal(net, wd, co)
        for flap in range(PROBATION.max_flaps):
            _advance(net, co, cycle, cycle + 4000)
            assert co.links_reinstated == flap + 1
            cycle += 5000
            _condemn(wd, LINK)
            co.on_cycle(net, cycle)
        assert co.flap_counts[LINK] == PROBATION.max_flaps
        assert co.links_permanent == 1
        assert co.link_states[LINK] == "sealed"
        assert LINK not in co._probe_due

    def test_drop_only_links_probe_too(self):
        """A refused (westbound) condemnation still enters probation:
        drop-only links have no avoid-set entry to retract, but they
        reinstate the same way."""
        net, wd, co = _attach()
        key = (1, WEST)
        _condemn(wd, key)
        co.on_cycle(net, 100)
        assert co.link_states[key] == "drop_only"
        _advance(net, co, 100, 300)
        assert co.links_reinstated == 1
        assert key not in co.link_states

    def test_probation_disabled_means_no_probing(self):
        net, wd, co = _attach(probation=None)
        _condemn(wd, LINK)
        co.on_cycle(net, 100)
        _advance(net, co, 100, 5000)
        assert co.links_reinstated == 0
        assert co.prober is None
        assert co.summary()["probation"] is None

    def test_next_event_cycle_exposes_probe_schedule(self):
        net, wd, co = _attach()
        self.seal(net, wd, co)
        # full-sweep stepping is never quiescent: conservative "now"
        assert co.next_event_cycle(net, 120) == 120
        # under active-set stepping the idle mesh is quiescent (one
        # step prunes the initially-full active sets) and the probe
        # schedule is the only remaining wake
        net._full_sweep = False
        net.step()
        assert net.quiescent
        assert co.next_event_cycle(net, 120) == 150
        assert co.next_event_cycle(net, 160) == 160  # overdue pins now

    def test_summary_shape(self):
        net, wd, co = _attach()
        self.seal(net, wd, co)
        _advance(net, co, 100, 200)
        summary = co.summary()["probation"]
        assert summary["links_reinstated"] == 1
        assert summary["links_permanent"] == 0
        assert summary["still_contained"] == 0
        assert summary["trials_run"] == PROBATION.required_clean
        assert summary["max_time_to_reinstate"] > 0

    def test_rejects_bad_knobs(self):
        for kwargs in (
            {"start_after": 0},
            {"probe_period": 0},
            {"required_clean": 0},
            {"max_trials": 1, "required_clean": 2},
            {"flap_multiplier": 0},
            {"max_flaps": 0},
            {"random_probes": -1},
        ):
            with pytest.raises(ValueError):
                ProbationConfig(**kwargs)


# ---------------------------------------------------------------------------
# property: no interleaving strands a pair
# ---------------------------------------------------------------------------
#: condemnable pool mixing admissible (east) and refusable (west) links
POOL = [(0, EAST), (5, EAST), (9, EAST), (1, WEST), (6, WEST)]


class TestInterleavingsNeverStrand:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(POOL),
                st.sampled_from(["condemn", "wait", "wait-long"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_condemn_probe_reinstate_interleavings(self, script):
        """Random interleavings of condemnations (some repeat = flaps),
        probe windows and reinstatements: the avoid-set stays connected
        at every step, and every src/dst pair stays walkable."""
        net, wd, co = _attach()
        cycle = 100
        for key, op in script:
            if op == "condemn":
                if key not in co.link_states:
                    _condemn(wd, key)
                    co.on_cycle(net, cycle)
            elif op == "wait":
                cycle = _advance(net, co, cycle, cycle + 100)
            else:
                cycle = _advance(net, co, cycle, cycle + 1000)
            cycle += 25
            assert turn_model_connected(CFG, "west-first", co.avoid)
        routing = AdaptiveRouting(CFG, "west-first", co.avoid)
        for a in range(CFG.num_routers):
            for b in range(CFG.num_routers):
                if a != b:
                    walk(routing, a, b)


#: the same no-stranding property beyond the plain mesh: every
#: topology pairs its config with a condemnable pool (wrap links on
#: the torus, an express channel on the express mesh)
TOPOLOGY_POOLS = [
    pytest.param(CFG, POOL, id="mesh"),
    pytest.param(
        dataclasses.replace(CFG, topology="torus"),
        [(0, EAST), (5, EAST), (3, EAST), (1, WEST), (6, WEST),
         (12, Direction.NORTH)],
        id="torus",
    ),
    pytest.param(
        dataclasses.replace(CFG, express_interval=2),
        [(0, EAST), (5, EAST), (9, EAST), (1, WEST),
         (0, Direction.EXPRESS_EAST), (4, Direction.EXPRESS_NORTH)],
        id="express",
    ),
]


class TestInterleavingsNeverStrandAnyTopology:
    """Condemn/probe/reinstate interleavings keep every src/dst pair
    routable on the torus (clear-arc reachability) and on the express
    mesh (express channels folded into the avoid machinery), exactly
    as on the plain mesh."""

    @pytest.mark.parametrize("cfg,pool", TOPOLOGY_POOLS)
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_condemn_probe_reinstate_interleavings(self, cfg, pool, data):
        script = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(pool),
                    st.sampled_from(["condemn", "wait", "wait-long"]),
                ),
                min_size=1,
                max_size=10,
            )
        )
        net = Network(cfg)
        wd = RetransWatchdog(WatchdogConfig()).attach(net)
        co = ContainmentCoordinator(
            ContainmentConfig(), probation=PROBATION
        ).attach(net, wd)
        model = co.reroute_model
        assert model == ("torus-arc" if cfg.topology == "torus"
                         else "west-first")
        cycle = 100
        for key, op in script:
            if op == "condemn":
                if key not in co.link_states:
                    _condemn(wd, key)
                    co.on_cycle(net, cycle)
            elif op == "wait":
                cycle = _advance(net, co, cycle, cycle + 100)
            else:
                cycle = _advance(net, co, cycle, cycle + 1000)
            cycle += 25
            assert turn_model_connected(cfg, model, co.avoid)
        routing = avoid_routing(cfg, model, co.avoid)
        for a in range(cfg.num_routers):
            for b in range(cfg.num_routers):
                if a != b:
                    walk(routing, a, b)


# ---------------------------------------------------------------------------
# end to end: a deactivating trojan heals, identically on both engines
# ---------------------------------------------------------------------------
def _healing_scenario(engine: str = "sweep") -> Scenario:
    return Scenario(
        name="probation-heal",
        cfg=CFG,
        traffic=(
            SyntheticTraffic(pattern="uniform", injection_rate=0.03,
                             payload_words=2, duration=5500, seed=7),
        ),
        trojans=(
            # armed after the detector's warmup (8 windows x 64 cycles)
            # so the baseline it deviates from is attack-free
            TrojanSpec(link=LINK, target=TargetSpec.for_vc(0),
                       config=TaspConfig(), enabled=False,
                       enable_at=600, disable_at=1800),
        ),
        defense=DefenseSpec(
            watchdog=WatchdogConfig(),
            containment=ContainmentConfig(),
            probation=ProbationConfig(start_after=300, probe_period=150,
                                      required_clean=3),
            detector=DetectConfig(),
        ),
        duration=6000,
        sentinel=SentinelSpec(every=200),
        engine=engine,
        seed=3,
    )


class TestDeactivatingTrojanE2E:
    def run_engine(self, engine: str) -> Simulation:
        sim = Simulation(_healing_scenario(engine))
        sim.run()  # sentinel trips raise: finishing proves zero trips
        return sim

    def test_condemned_then_reinstated(self):
        sim = self.run_engine("sweep")
        co = sim.containment
        assert co.links_reinstated == 1
        assert not co.link_states
        assert not sim.network.links[LINK].disabled
        assert co.avoid == frozenset()
        kinds = [e.kind for e in co.events]
        assert "contain" in kinds and "reinstate" in kinds
        # traffic kept flowing after the heal
        assert sim.network.stats.completed_records()
        assert sim.sentinel.checks > 0

    def test_detector_flagged_the_attacked_link_first(self):
        sim = self.run_engine("sweep")
        assert LINK in sim.detector.suspect_links
        flagged_at = min(
            e.cycle for e in sim.detector.events if e.link == LINK
        )
        condemned_at = min(
            e.cycle for e in sim.containment.events if e.kind == "contain"
        )
        assert flagged_at <= condemned_at

    def test_engines_agree_bit_for_bit(self):
        sweep = self.run_engine("sweep")
        event = self.run_engine("event")
        assert sweep.containment.summary() == event.containment.summary()
        assert sweep.detector.summary() == event.detector.summary()
        assert [
            (e.cycle, e.kind, e.link, e.detail)
            for e in sweep.containment.events
        ] == [
            (e.cycle, e.kind, e.link, e.detail)
            for e in event.containment.events
        ]
        assert event.event_core.cycles_skipped > 0  # it really skipped
