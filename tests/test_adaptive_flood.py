"""Tests for turn-model adaptive routing and the flood-DoS attacker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.adaptive import (
    AdaptiveRouting,
    odd_even_candidates,
    west_first_candidates,
)
from repro.noc.topology import Direction, neighbor
from repro.traffic import (
    FloodConfig,
    FloodSource,
    MergedSource,
    SyntheticConfig,
    SyntheticSource,
    uniform_random,
)

CFG = PAPER_CONFIG
ROUTERS = st.integers(min_value=0, max_value=15)


class TestWestFirst:
    def test_westbound_is_deterministic(self):
        # dst west of cur: the only candidate is WEST
        assert west_first_candidates(CFG, 7, 4) == [Direction.WEST]

    def test_eastbound_is_adaptive(self):
        # cur=0, dst=15: east and north both admissible
        cands = west_first_candidates(CFG, 0, 15)
        assert set(cands) == {Direction.EAST, Direction.NORTH}

    def test_at_destination_empty(self):
        assert west_first_candidates(CFG, 9, 9) == []

    @given(ROUTERS, ROUTERS)
    def test_candidates_are_productive(self, cur, dst):
        # every candidate strictly reduces the hop distance
        for d in west_first_candidates(CFG, cur, dst):
            nxt = neighbor(CFG, cur, d)
            assert nxt is not None
            assert CFG.hop_distance(nxt, dst) == CFG.hop_distance(cur, dst) - 1

    @given(ROUTERS, ROUTERS)
    def test_no_west_after_nonwest(self, cur, dst):
        # once a non-west candidate exists, WEST is never among them
        cands = west_first_candidates(CFG, cur, dst)
        if Direction.WEST in cands:
            assert cands == [Direction.WEST]


class TestOddEven:
    @given(ROUTERS, ROUTERS, ROUTERS)
    def test_candidates_are_productive(self, cur, dst, src):
        for d in odd_even_candidates(CFG, cur, dst, src):
            nxt = neighbor(CFG, cur, d)
            assert nxt is not None
            assert CFG.hop_distance(nxt, dst) == CFG.hop_distance(cur, dst) - 1

    @given(ROUTERS, ROUTERS)
    def test_never_empty_unless_arrived(self, cur, dst):
        if cur != dst:
            assert odd_even_candidates(CFG, cur, dst, cur)

    @given(ROUTERS, ROUTERS)
    def test_any_greedy_walk_terminates(self, src, dst):
        # whichever candidate a selection function picks, the packet
        # arrives (turn models only restrict, never strand)
        cur = src
        hops = 0
        while cur != dst:
            cands = odd_even_candidates(CFG, cur, dst, src)
            assert cands, f"stranded at {cur} heading to {dst}"
            cur = neighbor(CFG, cur, cands[-1])
            hops += 1
            assert hops <= 6
        assert hops == CFG.hop_distance(src, dst)


class TestAdaptiveRoutingClass:
    def test_invalid_model(self):
        with pytest.raises(ValueError):
            AdaptiveRouting(CFG, "fully-adaptive")

    def test_route_without_router_handle(self):
        ar = AdaptiveRouting(CFG, "west-first")
        assert ar.route(0, 15) in (Direction.EAST, Direction.NORTH)
        assert ar.route(5, 5) is None

    def test_congestion_steering(self):
        # a network where one admissible output is credit-starved must
        # pick the other
        net = Network(NoCConfig(routing="west-first"))
        router = net.routers[0]
        ar = AdaptiveRouting(CFG, "west-first")
        east = router.outputs[Direction.EAST]
        for vc in range(CFG.num_vcs):
            while east.credits.available(vc) > 0:
                east.credits.consume(vc)
        assert ar.route(0, 15, 0, router) == Direction.NORTH

    @pytest.mark.parametrize("model", ["west-first", "odd-even"])
    def test_all_pairs_deliver_on_network(self, model):
        net = Network(NoCConfig(routing=model))
        pid = 0
        for s in range(0, 64, 13):
            for d in range(0, 64, 11):
                if s != d:
                    net.add_packet(
                        Packet(pkt_id=pid, src_core=s, dst_core=d,
                               payload=[pid])
                    )
                    pid += 1
        assert net.run_until_drained(5000)
        assert net.stats.packets_completed == pid
        assert net.stats.misdeliveries == 0

    @pytest.mark.parametrize("model", ["west-first", "odd-even"])
    def test_heavy_load_no_deadlock(self, model):
        net = Network(NoCConfig(routing=model))
        net.set_traffic(
            SyntheticSource(
                CFG, uniform_random,
                SyntheticConfig(injection_rate=0.04, duration=300,
                                payload_words=2),
                seed=9,
            )
        )
        assert net.run_until_drained(8000, stall_limit=2000)


class TestFloodSource:
    def _flood(self, **kw):
        defaults = dict(
            rogue_cores=(0, 63), victim_cores=(21, 22), rate=1.0
        )
        defaults.update(kw)
        return FloodSource(CFG, FloodConfig(**defaults), seed=1)

    def test_rate_one_injects_every_cycle(self):
        src = self._flood()
        for cycle in range(10):
            assert len(src.generate(cycle)) == 2

    def test_window_respected(self):
        src = self._flood(start_cycle=5, stop_cycle=10)
        assert src.generate(4) == []
        assert len(src.generate(5)) == 2
        assert src.generate(10) == []
        assert src.done(10)

    def test_targets_victims_only(self):
        src = self._flood()
        for cycle in range(20):
            for pkt in src.generate(cycle):
                assert pkt.dst_core in (21, 22)
                assert pkt.src_core in (0, 63)

    def test_pkt_ids_disjoint_from_background(self):
        src = self._flood()
        pkt = src.generate(0)[0]
        assert pkt.pkt_id >= 10_000_000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FloodConfig(rogue_cores=(), victim_cores=(1,))
        with pytest.raises(ValueError):
            FloodConfig(rogue_cores=(0,), victim_cores=(1,), rate=0.0)

    def test_merged_source(self):
        bg = SyntheticSource(
            CFG, uniform_random,
            SyntheticConfig(injection_rate=0.5, duration=5), seed=2,
        )
        merged = MergedSource([bg, self._flood(stop_cycle=5)])
        total = sum(len(merged.generate(c)) for c in range(5))
        assert total > 10
        assert merged.done(5)

    def test_flood_degrades_latency_not_delivery(self):
        # the related-work attack: bandwidth depletion raises latency but
        # (unlike TASP) everything still arrives
        def run(with_flood):
            bg = SyntheticSource(
                CFG, uniform_random,
                SyntheticConfig(injection_rate=0.01, duration=300,
                                payload_words=1),
                seed=3,
            )
            sources = [bg]
            if with_flood:
                sources.append(self._flood(stop_cycle=300))
            net = Network(CFG)
            net.set_traffic(MergedSource(sources))
            net.run_until_drained(6000, stall_limit=2500)
            bg_ids = [p for p in net.stats.packets if p < 10_000_000]
            done = [p for p in bg_ids if net.stats.packets[p].complete]
            lat = sum(
                net.stats.packets[p].total_latency for p in done
            ) / len(done)
            return len(done) / len(bg_ids), lat

        clean_rate, clean_lat = run(False)
        flood_rate, flood_lat = run(True)
        assert clean_rate == 1.0
        assert flood_rate > 0.95
        assert flood_lat > 1.5 * clean_lat


class TestFloodExperiment:
    def test_small_run(self):
        from repro.experiments import flood_routing

        result = flood_routing.run(
            flood_rates=(0.0, 1.0), duration=250, drain_cycles=4000
        )
        for routing in flood_routing.ROUTINGS:
            series = {p.flood_rate: p for p in result.series(routing)}
            assert series[1.0].background_mean_latency > series[
                0.0
            ].background_mean_latency
        c = result.tasp_contrast
        assert c.victim_flows_completed < 0.5 * c.victim_flows_offered
        assert "contrast" in flood_routing.format_result(result)
