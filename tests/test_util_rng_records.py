"""Unit tests for repro.util.rng and repro.util.records."""

import pytest
from hypothesis import given, strategies as st

from repro.util.records import BoundedTable, RingLog, SaturatingCounter
from repro.util.rng import SeededStream, derive_seed, spread


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_nearby_roots_uncorrelated(self):
        # Hash-based derivation: consecutive roots must not yield
        # consecutive seeds.
        s1, s2 = derive_seed(100), derive_seed(101)
        assert abs(s1 - s2) > 1000

    def test_64_bit_range(self):
        for root in range(20):
            assert 0 <= derive_seed(root, "x") < (1 << 64)


class TestSeededStream:
    def test_same_seed_same_draws(self):
        a = SeededStream(7, "traffic")
        b = SeededStream(7, "traffic")
        assert [a.randint(0, 100) for _ in range(50)] == [
            b.randint(0, 100) for _ in range(50)
        ]

    def test_child_independent_of_parent_draws(self):
        a = SeededStream(7, "x")
        _ = [a.randint(0, 10) for _ in range(5)]
        child_after = a.child("c")
        b = SeededStream(7, "x")
        child_before = b.child("c")
        assert child_after.randint(0, 1 << 30) == child_before.randint(0, 1 << 30)

    def test_bits_width(self):
        s = SeededStream(1)
        for _ in range(100):
            assert 0 <= s.bits(8) < 256

    def test_bits_zero_width(self):
        assert SeededStream(1).bits(0) == 0

    def test_chance_extremes(self):
        s = SeededStream(2)
        assert not s.chance(0.0)
        assert s.chance(1.0)

    def test_chance_rate(self):
        s = SeededStream(3)
        hits = sum(s.chance(0.3) for _ in range(10_000))
        assert 2700 < hits < 3300

    def test_geometric_support(self):
        s = SeededStream(4)
        draws = [s.geometric(0.5) for _ in range(200)]
        assert min(draws) >= 1

    def test_geometric_mean(self):
        s = SeededStream(5)
        draws = [s.geometric(0.25) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        assert 3.5 < mean < 4.5  # E = 1/p = 4

    def test_geometric_invalid_p(self):
        with pytest.raises(ValueError):
            SeededStream(1).geometric(0.0)

    def test_pick_distinct_pairs(self):
        s = SeededStream(6)
        pairs = s.pick_distinct_pairs(16, 10)
        assert len(set(pairs)) == 10
        for m in pairs:
            assert bin(m).count("1") == 2

    def test_getstate_setstate_round_trip(self):
        s = SeededStream(9, "ckpt")
        _ = [s.randint(0, 1000) for _ in range(17)]  # advance mid-stream
        state = s.getstate()
        expected = [s.randint(0, 1000) for _ in range(50)]
        _ = [s.bits(13) for _ in range(5)]  # diverge further
        s.setstate(state)
        assert [s.randint(0, 1000) for _ in range(50)] == expected

    def test_setstate_across_instances(self):
        a = SeededStream(10, "x")
        _ = [a.chance(0.5) for _ in range(9)]
        b = SeededStream(999, "unrelated")
        b.setstate(a.getstate())
        assert [b.randint(0, 10**9) for _ in range(20)] == [
            a.randint(0, 10**9) for _ in range(20)
        ]

    def test_getstate_is_a_copy_not_a_view(self):
        s = SeededStream(11)
        state = s.getstate()
        _ = s.randint(0, 100)
        assert s.getstate() != state  # drawing advanced the live state

    def test_weighted_choice_respects_zero_weight(self):
        s = SeededStream(8)
        picks = {s.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}


class TestSpread:
    def test_proportional(self):
        assert spread(10.0, [1, 1, 2]) == [2.5, 2.5, 5.0]

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            spread(1.0, [0, 0])

    @given(st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=8))
    def test_sums_to_total(self, weights):
        parts = spread(42.0, weights)
        assert abs(sum(parts) - 42.0) < 1e-9


class TestRingLog:
    def test_append_and_len(self):
        log = RingLog(3)
        log.append(1)
        log.append(2)
        assert len(log) == 2
        assert list(log) == [1, 2]

    def test_eviction_order(self):
        log = RingLog(3)
        for i in range(5):
            log.append(i)
        assert list(log) == [2, 3, 4]
        assert log.dropped == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingLog(0)

    def test_clear(self):
        log = RingLog(2)
        log.append("x")
        log.clear()
        assert len(log) == 0


class TestBoundedTable:
    def test_put_get(self):
        t = BoundedTable(2)
        t.put("a", 1)
        assert t.get("a") == 1

    def test_lru_eviction(self):
        t = BoundedTable(2)
        t.put("a", 1)
        t.put("b", 2)
        t.get("a")  # refresh a
        t.put("c", 3)  # evicts b
        assert "b" not in t
        assert t.get("a") == 1
        assert t.get("c") == 3

    def test_get_default(self):
        t = BoundedTable(1)
        assert t.get("missing", "d") == "d"

    def test_overwrite_does_not_grow(self):
        t = BoundedTable(2)
        t.put("a", 1)
        t.put("a", 2)
        t.put("b", 3)
        assert len(t) == 2
        assert t.get("a") == 2


class TestSaturatingCounter:
    def test_saturates_up(self):
        c = SaturatingCounter(2)
        for _ in range(10):
            c.up()
        assert c.value == 3
        assert c.saturated

    def test_floors_at_zero(self):
        c = SaturatingCounter(2, initial=1)
        c.down(5)
        assert c.value == 0

    def test_reset(self):
        c = SaturatingCounter(3, initial=5)
        c.reset()
        assert c.value == 0

    def test_bad_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=9)
