"""Cross-process oracle checks for the event engine.

Byte-identity between the sweep and event engines must hold in *fresh
interpreters with different hash seeds* — that is what rules out any
accidental dependence on set/dict iteration order in the skip decision
(``repro.sim.sched`` re-derives candidates from live set-typed active
sets).  Forensics bundles captured from failing runs must also replay
identically when the replay itself runs under the event engine.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import (
    Simulation,
    failure_signature,
    load_bundle,
    planted_deadlock_scenario,
    replay_bundle,
    shrink_bundle,
)
from repro.sim.sentinel import SentinelTrip

from tests.test_sim_engine import chaos_style, fig2_style

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

# Runs one scenario under one engine and prints a canonical digest of
# everything observable: the result record and every stats field.
_CHILD = """
import dataclasses, hashlib, json, sys
from repro.experiments.export import to_jsonable
from tests.test_sim_engine import chaos_style, fig2_style
from repro.sim import Simulation

build = {"fig2": fig2_style, "chaos": chaos_style}[sys.argv[1]]
sim = Simulation(build(), engine=sys.argv[2])
result = sim.run()
payload = json.dumps(
    {
        "result": dataclasses.asdict(result),
        "stats": to_jsonable(vars(sim.network.stats)),
    },
    sort_keys=True,
)
print(hashlib.sha256(payload.encode()).hexdigest())
"""


def _run_child(scenario_key: str, engine: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        SRC_DIR
        + os.pathsep
        + str(Path(SRC_DIR).parent)
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    env["PYTHONHASHSEED"] = hash_seed
    env.pop("REPRO_ENGINE", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, scenario_key, engine],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(Path(SRC_DIR).parent),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestHashSeedImmunity:
    @pytest.mark.parametrize("scenario_key", ["fig2", "chaos"])
    def test_engines_agree_across_hash_seeds(self, scenario_key):
        digests = {
            _run_child(scenario_key, engine, seed)
            for engine in ("sweep", "event")
            for seed in ("0", "1", "12345")
        }
        # one digest across 2 engines x 3 interpreter hash seeds
        assert len(digests) == 1, digests


class TestForensicsUnderEventEngine:
    @pytest.fixture(scope="class")
    def event_bundle(self, tmp_path_factory):
        """A failure bundle captured from an event-engine run."""
        scenario = dataclasses.replace(
            planted_deadlock_scenario(), engine="event"
        )
        out = tmp_path_factory.mktemp("event-forensics")
        sim = Simulation(scenario)
        assert sim.engine == "event"
        sim.enable_forensics(out)
        with pytest.raises(SentinelTrip) as excinfo:
            sim.run()
        return excinfo.value, excinfo.value.repro_bundle

    def test_failure_matches_sweep_engine(self, event_bundle):
        exc, bundle = event_bundle
        sweep = Simulation(planted_deadlock_scenario())
        with pytest.raises(SentinelTrip) as sweep_exc:
            sweep.run()
        assert failure_signature(exc) == failure_signature(sweep_exc.value)
        assert exc.cycle == sweep_exc.value.cycle

    def test_bundle_replays_identically(self, event_bundle):
        _, bundle = event_bundle
        # the bundled scenario carries engine="event", so the replay
        # itself runs event-mode — and must re-raise the same failure
        # at the same cycle
        assert load_bundle(bundle).scenario.engine == "event"
        replayed = replay_bundle(bundle)
        assert isinstance(replayed, SentinelTrip)

    def test_shrunk_bundle_replays_identically(self, event_bundle):
        _, bundle = event_bundle
        result, shrunk_path = shrink_bundle(bundle, max_runs=120)
        assert result.shrunk.engine == "event"
        replayed = replay_bundle(shrunk_path)
        assert isinstance(replayed, SentinelTrip)
