"""Checkpoint/restore: bit-identity, disk format, damage tolerance.

The load-bearing guarantee is proven twice per scenario style:
restoring a mid-run snapshot — in this process and in a *fresh*
process — and running to completion must produce NetworkStats
bit-identical to a run that was never interrupted.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.sim import (
    Checkpoint,
    CheckpointError,
    Simulation,
    engine,
    latest_checkpoint,
    list_checkpoints,
    prune_checkpoints,
    resume_or_build,
)
from repro.sim.checkpoint import checkpoint_path
from tests.test_sim_engine import chaos_style, fig2_style, stats_snapshot

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: child-process side of the fresh-process proof: restore a checkpoint
#: file, run to completion, emit canonical JSON of result + full stats
_CHILD = """\
import dataclasses, json, sys
from repro.experiments.export import to_jsonable
from repro.sim import Simulation

sim = Simulation.restore(sys.argv[1])
result = sim.run()
print(json.dumps(
    {
        "resumed_from": sim.resumed_from_cycle,
        "result": dataclasses.asdict(result),
        "stats": to_jsonable(vars(sim.network.stats)),
    },
    sort_keys=True,
))
"""


def canonical(result, net) -> str:
    return json.dumps(
        {
            "result": dataclasses.asdict(result),
            "stats": stats_snapshot(net),
        },
        sort_keys=True,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("build", [fig2_style, chaos_style])
    def test_restore_in_process(self, build):
        scenario = build()
        straight = Simulation(scenario)
        expected_result = straight.run()
        expected = canonical(expected_result, straight.network)

        sim = Simulation(scenario)
        sim.advance_to(120)
        checkpoint = sim.snapshot()
        resumed = Simulation.restore(checkpoint)
        assert resumed.resumed_from_cycle == 120
        resumed_result = resumed.run()

        assert resumed_result == expected_result
        assert canonical(resumed_result, resumed.network) == expected

    @pytest.mark.parametrize("build", [fig2_style, chaos_style])
    def test_restore_in_fresh_process(self, build, tmp_path):
        scenario = build()
        straight = Simulation(scenario)
        expected = {
            "resumed_from": 120,
            "result": dataclasses.asdict(straight.run()),
            "stats": stats_snapshot(straight.network),
        }

        sim = Simulation(scenario)
        sim.advance_to(120)
        path = sim.snapshot().save(tmp_path / "state.ckpt")

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == json.dumps(expected, sort_keys=True)

    def test_snapshot_is_a_deep_copy(self):
        sim = Simulation(fig2_style())
        sim.advance_to(100)
        checkpoint = sim.snapshot()
        sim.advance_to(200)  # must not disturb the captured state
        restored = Checkpoint.restore(checkpoint)
        assert restored.network.cycle == 100

    def test_unpicklable_hook_is_a_clear_error(self):
        sim = Simulation(fig2_style())
        sim.network.ejection_hooks.append(lambda flit, cycle, core: None)
        with pytest.raises(CheckpointError, match="not snapshot-safe"):
            sim.snapshot()


class TestDiskFormat:
    def _checkpoint(self, cycle=80) -> Checkpoint:
        sim = Simulation(fig2_style())
        sim.advance_to(cycle)
        return sim.snapshot()

    def test_save_load_round_trip(self, tmp_path):
        checkpoint = self._checkpoint()
        path = checkpoint.save(tmp_path / "a.ckpt")
        loaded = Checkpoint.load(path)
        assert loaded == checkpoint
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_truncated_file_is_rejected(self, tmp_path):
        path = self._checkpoint().save(tmp_path / "a.ckpt")
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.load(path)

    def test_garbage_file_is_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b"\x80\x05 definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad header"):
            Checkpoint.load(path)

    def test_unknown_format_is_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b'{"format": 999}\n')
        with pytest.raises(CheckpointError, match="format"):
            Checkpoint.load(path)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            Checkpoint.load(tmp_path / "missing.ckpt")

    def test_stale_code_version_refused_on_restore(self):
        checkpoint = dataclasses.replace(
            self._checkpoint(), code_version="0" * 16
        )
        with pytest.raises(CheckpointError, match="code version"):
            checkpoint.restore()
        # escape hatch for forensics
        assert checkpoint.restore(check_code_version=False) is not None


class TestCheckpointDirectory:
    def test_periodic_checkpoints_and_prune(self, tmp_path):
        scenario = fig2_style()
        sim = Simulation(scenario)
        sim.configure_checkpoints(tmp_path, interval=50, keep=2)
        sim.run()
        found = list_checkpoints(tmp_path, scenario.content_hash())
        assert 1 <= len(found) <= 2  # pruned down to `keep`
        cycles = [int(p.stem.split("-c")[1]) for p in found]
        assert cycles == sorted(cycles)
        assert not list(tmp_path.glob("*.tmp"))

    def test_interrupted_run_resumes_from_latest(self, tmp_path):
        scenario = fig2_style()
        expected = Simulation(scenario).run()

        interrupted = Simulation(scenario)
        interrupted.configure_checkpoints(tmp_path, interval=40)
        interrupted.advance_to(130)  # "killed" here; checkpoints exist

        resumed = resume_or_build(scenario, tmp_path)
        assert resumed.resumed_from_cycle == 120
        assert resumed.run() == expected

    def test_resume_or_build_falls_back_to_fresh(self, tmp_path):
        sim = resume_or_build(fig2_style(), tmp_path)
        assert sim.resumed_from_cycle is None
        assert resume_or_build(fig2_style(), None).resumed_from_cycle is None

    def test_latest_skips_damaged_and_stale_tail(self, tmp_path):
        scenario = fig2_style()
        sim = Simulation(scenario)
        sim.advance_to(60)
        good = sim.snapshot()
        scenario_hash = good.scenario_hash
        good.save(checkpoint_path(tmp_path, scenario_hash, 60))

        sim.advance_to(100)
        newer = sim.snapshot()
        truncated = newer.save(checkpoint_path(tmp_path, scenario_hash, 100))
        truncated.write_bytes(truncated.read_bytes()[:-20])
        stale = dataclasses.replace(newer, code_version="0" * 16)
        stale.save(checkpoint_path(tmp_path, scenario_hash, 110))

        latest = latest_checkpoint(tmp_path, scenario)
        assert latest is not None and latest.cycle == 60

    def test_latest_ignores_other_scenarios(self, tmp_path):
        sim = Simulation(fig2_style())
        sim.advance_to(60)
        sim.snapshot().save(
            checkpoint_path(tmp_path, sim.scenario.content_hash(), 60)
        )
        assert latest_checkpoint(tmp_path, chaos_style()) is None

    def test_prune_keeps_newest(self, tmp_path):
        sim = Simulation(fig2_style())
        sim.advance_to(30)
        checkpoint = sim.snapshot()
        for cycle in (10, 20, 30):
            checkpoint.save(
                checkpoint_path(tmp_path, checkpoint.scenario_hash, cycle)
            )
        prune_checkpoints(tmp_path, checkpoint.scenario_hash, keep=1)
        remaining = list_checkpoints(tmp_path, checkpoint.scenario_hash)
        assert [p.name for p in remaining] == [
            checkpoint_path(tmp_path, checkpoint.scenario_hash, 30).name
        ]

    def test_engine_run_with_checkpoints_and_resume(self, tmp_path):
        scenario = fig2_style()
        expected = engine.run(scenario)
        first = engine.run(
            scenario, checkpoint_interval=60, checkpoint_dir=tmp_path
        )
        assert first == expected
        assert list_checkpoints(tmp_path, scenario.content_hash())
        resumed = engine.run(
            scenario,
            checkpoint_interval=60,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed == expected
