"""Unit + property tests for repro.util.bits."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    BitPermutation,
    bit,
    extract_field,
    insert_field,
    mask,
    parity,
    popcount,
    rotl,
    rotr,
    two_hot_masks,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_byte(self):
        assert mask(8) == 0xFF

    def test_64(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBit:
    def test_zero(self):
        assert bit(0) == 1

    def test_sixty_three(self):
        assert bit(63) == 1 << 63

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bit(-3)


class TestPopcountParity:
    def test_popcount_empty(self):
        assert popcount(0) == 0

    def test_popcount_full_byte(self):
        assert popcount(0xFF) == 8

    def test_parity_even(self):
        assert parity(0b1010) == 0

    def test_parity_odd(self):
        assert parity(0b1011) == 1

    def test_popcount_negative_raises(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(min_value=0, max_value=mask(128)))
    def test_parity_matches_popcount(self, value):
        assert parity(value) == popcount(value) % 2


class TestFields:
    def test_extract_low(self):
        assert extract_field(0xDEADBEEF, 0, 8) == 0xEF

    def test_extract_mid(self):
        assert extract_field(0xDEADBEEF, 8, 8) == 0xBE

    def test_insert_roundtrip(self):
        word = insert_field(0, 10, 6, 0x2A)
        assert extract_field(word, 10, 6) == 0x2A

    def test_insert_preserves_other_bits(self):
        word = mask(32)
        out = insert_field(word, 8, 8, 0)
        assert extract_field(out, 0, 8) == 0xFF
        assert extract_field(out, 16, 16) == 0xFFFF
        assert extract_field(out, 8, 8) == 0

    def test_insert_overflow_raises(self):
        with pytest.raises(ValueError):
            insert_field(0, 0, 4, 16)

    @given(
        st.integers(min_value=0, max_value=mask(64)),
        st.integers(min_value=0, max_value=56),
        st.integers(min_value=1, max_value=8),
        st.data(),
    )
    def test_insert_extract_property(self, word, offset, width, data):
        value = data.draw(st.integers(min_value=0, max_value=mask(width)))
        out = insert_field(word, offset, width, value)
        assert extract_field(out, offset, width) == value


class TestRotations:
    def test_rotl_simple(self):
        assert rotl(0b0001, 1, 4) == 0b0010

    def test_rotl_wrap(self):
        assert rotl(0b1000, 1, 4) == 0b0001

    def test_rotr_inverse_of_rotl(self):
        assert rotr(rotl(0xAB, 3, 8), 3, 8) == 0xAB

    @given(
        st.integers(min_value=0, max_value=mask(64)),
        st.integers(min_value=0, max_value=200),
    )
    def test_rotl_rotr_roundtrip(self, value, amount):
        assert rotr(rotl(value, amount, 64), amount, 64) == value

    @given(st.integers(min_value=0, max_value=mask(64)))
    def test_rotation_preserves_popcount(self, value):
        assert popcount(rotl(value, 17, 64)) == popcount(value)


class TestBitPermutation:
    def test_identity(self):
        perm = BitPermutation.identity(64)
        assert perm.apply(0xDEADBEEFCAFEF00D) == 0xDEADBEEFCAFEF00D

    def test_rotation_matches_rotl(self):
        perm = BitPermutation.rotation(64, 13)
        value = 0x0123456789ABCDEF
        assert perm.apply(value) == rotl(value, 13, 64)

    def test_reject_non_permutation(self):
        with pytest.raises(ValueError):
            BitPermutation([0, 0, 1])

    def test_single_bit_moves_to_mapped_position(self):
        perm = BitPermutation([2, 0, 1])
        assert perm.apply(0b001) == 0b100
        assert perm.apply(0b010) == 0b001
        assert perm.apply(0b100) == 0b010

    @given(st.integers(min_value=0, max_value=mask(64)), st.integers())
    def test_apply_invert_roundtrip(self, value, seed):
        perm = BitPermutation.from_seed(64, seed)
        assert perm.invert(perm.apply(value)) == value

    @given(st.integers(min_value=0, max_value=mask(64)))
    def test_permutation_preserves_popcount(self, value):
        perm = BitPermutation.from_seed(64, 42)
        assert popcount(perm.apply(value)) == popcount(value)

    def test_equality_and_hash(self):
        a = BitPermutation.from_seed(16, 7)
        b = BitPermutation.from_seed(16, 7)
        c = BitPermutation.from_seed(16, 8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestTwoHotMasks:
    def test_count_is_n_choose_2(self):
        assert len(two_hot_masks(8)) == 28

    def test_all_have_exactly_two_bits(self):
        for m in two_hot_masks(10):
            assert popcount(m) == 2

    def test_all_distinct(self):
        masks = two_hot_masks(12)
        assert len(set(masks)) == len(masks)
