"""Unit + property tests for TASP target specs and the trojan FSM."""

import pytest
from hypothesis import given, strategies as st

from repro.core import TargetSpec, TaspConfig, TaspState, TaspTrojan
from repro.ecc import SECDED_72_64, DecodeStatus
from repro.noc.flit import FlitType, pack_header
from repro.util.bits import mask


def header(src=0, dst=15, vc=0, mem=0x100, pid=1):
    return pack_header(src, dst, vc, mem, FlitType.SINGLE, pid)


class TestTargetSpec:
    def test_paper_compare_widths(self):
        # Table I target widths: src 4, dest 4, vc 2, dest_src 8,
        # mem 32, full 42.
        assert TargetSpec.for_src(1).compare_width == 4
        assert TargetSpec.for_dest(1).compare_width == 4
        assert TargetSpec.for_vc(1).compare_width == 2
        assert TargetSpec.for_dest_src(1, 2).compare_width == 8
        assert TargetSpec.for_mem(0xABC).compare_width == 32
        assert TargetSpec.full(1, 2, 3, 4).compare_width == 42

    def test_kind_names(self):
        assert TargetSpec.for_dest(3).kind == "Dest"
        assert TargetSpec.for_src(3).kind == "Src"
        assert TargetSpec.for_dest_src(1, 2).kind == "Dest_Src"
        assert TargetSpec.for_vc(1).kind == "VC"
        assert TargetSpec.for_mem(5).kind == "Mem"
        assert TargetSpec.full(1, 2, 3, 4).kind == "Full"

    def test_dest_match(self):
        spec = TargetSpec.for_dest(15)
        assert spec.matches(header(dst=15))
        assert not spec.matches(header(dst=14))

    def test_src_match(self):
        spec = TargetSpec.for_src(3)
        assert spec.matches(header(src=3))
        assert not spec.matches(header(src=4))

    def test_vc_match(self):
        spec = TargetSpec.for_vc(2)
        assert spec.matches(header(vc=2))
        assert not spec.matches(header(vc=1))

    def test_mem_match(self):
        spec = TargetSpec.for_mem(0xDEAD)
        assert spec.matches(header(mem=0xDEAD))
        assert not spec.matches(header(mem=0xBEEF))

    def test_mem_range_via_mask(self):
        # match a 256-byte "page": ignore low 8 bits
        spec = TargetSpec.for_mem(0xAB00, mem_mask=mask(32) ^ 0xFF)
        assert spec.matches(header(mem=0xAB42))
        assert not spec.matches(header(mem=0xAC00))
        assert spec.compare_width == 24

    def test_full_requires_all_fields(self):
        spec = TargetSpec.full(src=1, dst=2, vc=3, mem=0x99)
        assert spec.matches(header(src=1, dst=2, vc=3, mem=0x99))
        assert not spec.matches(header(src=0, dst=2, vc=3, mem=0x99))
        assert not spec.matches(header(src=1, dst=2, vc=0, mem=0x99))

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            TargetSpec()

    def test_field_range_validation(self):
        with pytest.raises(ValueError):
            TargetSpec.for_dest(1 << 16)
        with pytest.raises(ValueError):
            TargetSpec.for_vc(4)

    def test_wide_mesh_targets_accepted(self):
        # router ids beyond the paper's 16 are legal on wide meshes;
        # matches() interprets them against the mesh's header layout
        spec = TargetSpec.for_dest(63)
        assert spec.dst == 63

    def test_random_match_probability(self):
        assert TargetSpec.for_dest(1).random_match_probability() == 1 / 16
        assert TargetSpec.for_vc(1).random_match_probability() == 1 / 4

    @given(st.integers(min_value=0, max_value=mask(64)))
    def test_dest_match_rate_on_random_words(self, word):
        # a dest target matches exactly when bits 4..7 equal the target
        spec = TargetSpec.for_dest(7)
        assert spec.matches(word) == ((word >> 4 & 0xF) == 7)


class TestTaspConfig:
    def test_defaults_valid(self):
        TaspConfig()

    def test_too_many_states_rejected(self):
        with pytest.raises(ValueError):
            TaspConfig(y_bits=3, num_payload_states=4)

    def test_wrong_wire_count_rejected(self):
        with pytest.raises(ValueError):
            TaspConfig(y_bits=4, wires=(1, 2, 3))

    def test_tiny_counter_rejected(self):
        with pytest.raises(ValueError):
            TaspConfig(y_bits=1)


class TestTaspTrojan:
    def _cw(self, **kw):
        return SECDED_72_64.encode(header(**kw))

    def test_idle_until_kill_switch(self):
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        assert tasp.state is TaspState.IDLE
        cw = self._cw(dst=15)
        assert tasp.tamper(cw, 0) == cw  # dormant: no inspection
        assert tasp.flits_inspected == 0

    def test_active_after_enable(self):
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        tasp.enable()
        assert tasp.state is TaspState.ACTIVE

    def test_non_target_passes_clean(self):
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        tasp.enable()
        cw = self._cw(dst=3)
        assert tasp.tamper(cw, 0) == cw
        assert tasp.flits_inspected == 1
        assert tasp.triggers == 0

    def test_target_gets_exactly_two_flips(self):
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        tasp.enable()
        cw = self._cw(dst=15)
        out = tasp.tamper(cw, 0)
        assert bin(cw ^ out).count("1") == 2
        assert tasp.state is TaspState.ATTACKING

    def test_payload_defeats_secded(self):
        # the whole point: injected faults are detected-uncorrectable
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        tasp.enable()
        for _ in range(10):
            out = tasp.tamper(self._cw(dst=15), 0)
            assert SECDED_72_64.decode(out).status is DecodeStatus.DETECTED

    def test_payload_positions_shift_between_triggers(self):
        tasp = TaspTrojan(
            TargetSpec.for_dest(15), TaspConfig(num_payload_states=4)
        )
        tasp.enable()
        cw = self._cw(dst=15)
        patterns = {cw ^ tasp.tamper(cw, i) for i in range(4)}
        assert len(patterns) == 4  # moving faults (transient disguise)

    def test_payload_cycles_through_states(self):
        tasp = TaspTrojan(
            TargetSpec.for_dest(15), TaspConfig(num_payload_states=3)
        )
        tasp.enable()
        cw = self._cw(dst=15)
        first_round = [cw ^ tasp.tamper(cw, i) for i in range(3)]
        second_round = [cw ^ tasp.tamper(cw, i) for i in range(3)]
        assert first_round == second_round  # periodic FSM

    def test_state_held_between_triggers(self):
        # non-target traffic between triggers must not advance the FSM
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        tasp.enable()
        cw_t = self._cw(dst=15)
        fault1 = cw_t ^ tasp.tamper(cw_t, 0)
        tasp2 = TaspTrojan(TargetSpec.for_dest(15))
        tasp2.enable()
        for i in range(50):
            tasp2.tamper(self._cw(dst=3), i)  # non-targets
        fault2 = cw_t ^ tasp2.tamper(cw_t, 51)
        assert fault1 == fault2

    def test_disable_returns_to_idle(self):
        tasp = TaspTrojan(TargetSpec.for_dest(15))
        tasp.enable()
        tasp.tamper(self._cw(dst=15), 0)
        tasp.disable()
        assert tasp.state is TaspState.IDLE
        cw = self._cw(dst=15)
        assert tasp.tamper(cw, 1) == cw

    def test_payload_wires_within_link(self):
        tasp = TaspTrojan(TargetSpec.for_dest(1), TaspConfig(y_bits=8))
        assert all(0 <= w < 72 for w in tasp.payload_wires)
        assert len(set(tasp.payload_wires)) == 8

    def test_explicit_wires_respected(self):
        cfg = TaspConfig(y_bits=2, num_payload_states=1, wires=(5, 9))
        tasp = TaspTrojan(TargetSpec.for_dest(15), cfg)
        tasp.enable()
        cw = self._cw(dst=15)
        assert cw ^ tasp.tamper(cw, 0) == (1 << 5) | (1 << 9)

    def test_out_of_range_wire_rejected(self):
        with pytest.raises(ValueError):
            TaspTrojan(
                TargetSpec.for_dest(1),
                TaspConfig(y_bits=2, num_payload_states=1, wires=(5, 100)),
            )

    def test_deterministic_given_seed(self):
        a = TaspTrojan(TargetSpec.for_dest(15), TaspConfig(seed=7))
        b = TaspTrojan(TargetSpec.for_dest(15), TaspConfig(seed=7))
        assert a.payload_masks == b.payload_masks

    @given(st.integers(min_value=0, max_value=mask(64)))
    def test_trigger_iff_target_matches(self, word):
        spec = TargetSpec.for_dest(9)
        tasp = TaspTrojan(spec)
        tasp.enable()
        cw = SECDED_72_64.encode(word)
        out = tasp.tamper(cw, 0)
        if spec.matches(word):
            assert out != cw
        else:
            assert out == cw
