"""The async serving boundary: submit, stream, coalesce, cache.

Each test spins a real :class:`DetectionServer` on an ephemeral port
inside one ``asyncio.run`` and talks to it over TCP with the same
:func:`submit_and_stream` helper the CLI uses.  The service-level
guarantees under test:

* two concurrent clients submitting the same scenario share ONE
  simulation and receive byte-identical message streams;
* a resubmission after completion is served from the result cache
  without simulating, with the identical verdict sequence;
* malformed requests produce error messages, never broken connections.
"""

import asyncio
import json

from repro.serve.api import (
    DetectionServer,
    ServeConfig,
    submit_and_stream,
)
from repro.sim.cache import ResultCache

from tests.test_serve_pipeline import dos_scenario, timed_scenario


def serve(test_body, tmp_path):
    """Run ``test_body(server, port)`` against a live server."""

    async def _main():
        server = DetectionServer(
            ServeConfig(port=0, max_jobs=2),
            cache=ResultCache(tmp_path / "cache"),
        )
        await server.start()
        try:
            return await test_body(server, server.bound_port)
        finally:
            await server.stop()

    return asyncio.run(_main())


def submit_request(scenario) -> dict:
    return {"op": "submit", "scenario": scenario.to_dict()}


def stream_text(messages) -> str:
    return json.dumps(
        [m for m in messages if m["type"] == "verdict"], sort_keys=True
    )


class TestProtocol:
    def test_ping_pong(self, tmp_path):
        async def body(server, port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return reply

        assert serve(body, tmp_path) == {"type": "pong"}

    def test_submit_streams_to_a_terminal_result(self, tmp_path):
        async def body(server, port):
            return await submit_and_stream(
                "127.0.0.1", port, submit_request(dos_scenario())
            )

        messages = serve(body, tmp_path)
        assert messages[0]["type"] == "accepted"
        assert messages[0]["cached"] is False
        kinds = [m["type"] for m in messages]
        assert "verdict" in kinds and "snapshot" in kinds
        final = messages[-1]
        assert final["type"] == "result"
        assert final["cached"] is False
        assert final["result"]["name"] == "serve-dos"
        assert final["dropped"] == 0
        # every message names the job it belongs to
        assert len({m["hash"] for m in messages if "hash" in m}) == 1

    def test_streamed_verdicts_match_a_direct_run(self, tmp_path):
        from repro.serve.pipeline import run_streaming

        async def body(server, port):
            return await submit_and_stream(
                "127.0.0.1", port, submit_request(dos_scenario())
            )

        messages = serve(body, tmp_path)
        direct = run_streaming(dos_scenario())
        streamed = [
            {k: v for k, v in m.items() if k not in ("type", "hash")}
            for m in messages
            if m["type"] == "verdict"
        ]
        assert streamed == direct.verdict_stream()
        assert messages[-1]["result"]["cycles"] == direct.result.cycles


class TestCoalescing:
    def test_concurrent_clients_share_one_simulation(self, tmp_path):
        async def body(server, port):
            request = submit_request(dos_scenario())
            first, second = await asyncio.gather(
                submit_and_stream("127.0.0.1", port, request),
                submit_and_stream("127.0.0.1", port, request),
            )
            return server.stats.copy(), first, second

        stats, first, second = serve(body, tmp_path)
        assert stats["submissions"] == 2
        assert stats["jobs_run"] == 1
        assert stats["coalesced"] + stats["cache_hits"] == 1
        assert stream_text(first) == stream_text(second)
        assert first[-1]["result"] == second[-1]["result"]

    def test_different_scenarios_run_separately(self, tmp_path):
        async def body(server, port):
            first, second = await asyncio.gather(
                submit_and_stream(
                    "127.0.0.1", port, submit_request(dos_scenario())
                ),
                submit_and_stream(
                    "127.0.0.1", port, submit_request(timed_scenario())
                ),
            )
            return server.stats.copy(), first, second

        stats, first, second = serve(body, tmp_path)
        assert stats["jobs_run"] == 2
        assert stats["coalesced"] == 0
        assert first[-1]["hash"] != second[-1]["hash"]


class TestCaching:
    def test_resubmission_is_served_from_cache(self, tmp_path):
        async def body(server, port):
            request = submit_request(dos_scenario())
            live = await submit_and_stream("127.0.0.1", port, request)
            cached = await submit_and_stream("127.0.0.1", port, request)
            return server.stats.copy(), live, cached

        stats, live, cached = serve(body, tmp_path)
        assert stats == {
            "submissions": 2, "cache_hits": 1,
            "coalesced": 0, "jobs_run": 1,
        }
        assert cached[0]["cached"] is True
        assert cached[-1]["cached"] is True
        assert stream_text(live) == stream_text(cached)
        assert live[-1]["result"] == cached[-1]["result"]

    def test_cache_survives_a_server_restart(self, tmp_path):
        request = submit_request(dos_scenario())

        async def first_body(server, port):
            return await submit_and_stream("127.0.0.1", port, request)

        async def second_body(server, port):
            messages = await submit_and_stream("127.0.0.1", port, request)
            return server.stats.copy(), messages

        live = serve(first_body, tmp_path)
        stats, cached = serve(second_body, tmp_path)
        assert stats["cache_hits"] == 1 and stats["jobs_run"] == 0
        assert stream_text(live) == stream_text(cached)


class TestErrors:
    def err(self, tmp_path, request):
        async def body(server, port):
            if isinstance(request, dict):
                return await submit_and_stream(
                    "127.0.0.1", port, request
                )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(request + b"\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return [reply]

        return serve(body, tmp_path)

    def test_unknown_op(self, tmp_path):
        (reply,) = self.err(tmp_path, {"op": "frobnicate"})
        assert reply["type"] == "error"
        assert "unknown op" in reply["error"]

    def test_submit_needs_a_scenario(self, tmp_path):
        (reply,) = self.err(tmp_path, {"op": "submit"})
        assert reply["type"] == "error"
        assert "named" in reply["error"]

    def test_unknown_named_scenario(self, tmp_path):
        (reply,) = self.err(
            tmp_path, {"op": "submit", "named": "not-a-scenario"}
        )
        assert reply["type"] == "error"

    def test_unknown_engine(self, tmp_path):
        request = submit_request(dos_scenario())
        request["engine"] = "quantum"
        (reply,) = self.err(tmp_path, request)
        assert reply["type"] == "error"
        assert "engine" in reply["error"]

    def test_invalid_json_line(self, tmp_path):
        (reply,) = self.err(tmp_path, b"{not json")
        assert reply["type"] == "error"
        assert "invalid JSON" in reply["error"]
