"""Tests for observability exporters, validators and bench records."""

import json

import pytest

from repro.obs.events import EVENT_SCHEMA_VERSION, Event
from repro.obs.exporters import (
    ObsExportError,
    build_manifest,
    disabled_manifest,
    main as exporters_main,
    prometheus_text,
    read_events_jsonl,
    validate_events_jsonl,
    validate_metrics_json,
    write_events_jsonl,
    write_metrics_json,
)
from repro.obs.instrument import ObsConfig, Observability
from repro.obs.perf import (
    BENCH_FORMAT,
    bench_record,
    percentile,
    read_bench_file,
    write_bench_file,
)
from repro.obs.registry import MetricsRegistry


EVENTS = [
    Event(kind="inject", cycle=0, run="r", data={"pkt_id": 1}),
    Event(kind="corrupt", cycle=3, run="r",
          data={"link": "0->EAST", "bits": 2}),
]


class TestEventsJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(path, EVENTS) == 2
        assert read_events_jsonl(path) == EVENTS
        assert validate_events_jsonl(path) == 2

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"v": %d, "kind": "inject", "cycle": 0}\n{oops\n'
                        % EVENT_SCHEMA_VERSION)
        with pytest.raises(ObsExportError, match=":2: not JSON"):
            read_events_jsonl(path)

    def test_schema_violation_names_the_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, EVENTS)
        with open(path, "a") as fh:
            fh.write(json.dumps({"v": 999, "kind": "inject", "cycle": 0}))
        with pytest.raises(ObsExportError, match=":3: "):
            validate_events_jsonl(path)


class TestPrometheusText:
    def test_counter_gauge_and_histogram_forms(self):
        reg = MetricsRegistry()
        reg.counter("hits", "how many", link="0->EAST").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("lat", buckets=(10,)).observe(4)
        text = prometheus_text(reg)
        assert "# HELP hits how many" in text
        assert "# TYPE hits counter" in text
        assert 'hits{link="0->EAST"} 3' in text
        assert "depth 7" in text
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 4" in text and "lat_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", label='say "hi"\\').inc()
        text = prometheus_text(reg)
        assert 'label="say \\"hi\\"\\\\"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestMetricsManifest:
    def test_disabled_manifest_is_minimal_and_valid(self, tmp_path):
        path = write_metrics_json(tmp_path / "m.json", disabled_manifest())
        manifest = validate_metrics_json(path)
        assert manifest == {"format": 1, "enabled": False}

    def test_enabled_manifest_round_trips_the_validator(self, tmp_path):
        obs = Observability(ObsConfig())
        obs.registry.counter("noc_flits_injected", run="r").inc(5)
        obs.series.observe(0, "r/input_utilization", 3)
        obs.series.flush()
        obs.bus.emit("inject", 0, "r", pkt_id=1)
        manifest = build_manifest(obs)
        path = write_metrics_json(tmp_path / "metrics.json", manifest)
        checked = validate_metrics_json(path)
        assert checked["enabled"] is True
        assert checked["event_schema_version"] == EVENT_SCHEMA_VERSION
        assert checked["events"]["published"] == 1
        assert "noc_flits_injected" in checked["metrics"]
        assert checked["series"]["points"][0]["values"] == {
            "r/input_utilization": 3
        }

    @pytest.mark.parametrize(
        "payload,complaint",
        [
            ([], "must be an object"),
            ({"format": 99, "enabled": True}, "not.*supported"),
            ({"format": 1, "enabled": "yes"}, "boolean"),
            (
                {"format": 1, "enabled": True, "metrics": {"x": {}},
                 "events": {}, "series": None},
                "no valid kind",
            ),
            (
                {"format": 1, "enabled": True, "metrics": {},
                 "events": {"published": "many"}, "series": None},
                "integer",
            ),
        ],
    )
    def test_validator_rejects_malformed_manifests(
        self, tmp_path, payload, complaint
    ):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ObsExportError, match=complaint):
            validate_metrics_json(path)


class TestExportAll:
    def test_all_configured_paths_written(self, tmp_path):
        config = ObsConfig(
            events_jsonl=str(tmp_path / "out" / "events.jsonl"),
            metrics_json=str(tmp_path / "out" / "metrics.json"),
            prometheus=str(tmp_path / "out" / "metrics.prom"),
        )
        obs = Observability(config)
        obs.registry.counter("hits", run="r").inc()
        obs.bus.emit("inject", 0, "r", pkt_id=1)
        manifest = obs.export()
        assert validate_events_jsonl(config.events_jsonl) == 1
        assert validate_metrics_json(config.metrics_json)["enabled"]
        assert "hits" in (tmp_path / "out" / "metrics.prom").read_text()
        assert manifest["events"]["published"] == 1

    def test_cli_validates_a_directory(self, tmp_path, capsys):
        config = ObsConfig(
            events_jsonl=str(tmp_path / "events.jsonl"),
            metrics_json=str(tmp_path / "metrics.json"),
        )
        obs = Observability(config)
        obs.bus.emit("inject", 0, "r", pkt_id=1)
        obs.export()
        assert exporters_main(["validate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 events" in out and "metrics format 1" in out

    def test_cli_flags_broken_files(self, tmp_path, capsys):
        (tmp_path / "events.jsonl").write_text("{broken\n")
        assert exporters_main(["validate", str(tmp_path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_cli_rejects_empty_directory(self, tmp_path, capsys):
        assert exporters_main(["validate", str(tmp_path)]) == 1
        assert "no .jsonl/.json" in capsys.readouterr().out

    def test_cli_recurses_into_per_experiment_subdirectories(
        self, tmp_path, capsys
    ):
        for name in ("fig11", "table2"):
            config = ObsConfig(
                events_jsonl=str(tmp_path / name / "events.jsonl"),
                metrics_json=str(tmp_path / name / "metrics.json"),
            )
            obs = Observability(config)
            obs.bus.emit("inject", 0, name, pkt_id=1)
            obs.export()
        assert exporters_main(["validate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("1 events") == 2
        assert out.count("metrics format 1") == 2
        assert "4 files checked, all valid" in out

    def test_cli_reports_every_broken_file_not_just_the_first(
        self, tmp_path, capsys
    ):
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "events.jsonl").write_text("{broken\n")
        (tmp_path / "b").mkdir()
        (tmp_path / "b" / "metrics.json").write_text("[]")
        config = ObsConfig(
            events_jsonl=str(tmp_path / "c" / "events.jsonl")
        )
        obs = Observability(config)
        obs.bus.emit("inject", 0, "r", pkt_id=1)
        obs.export()
        assert exporters_main(["validate", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        # both failures surfaced, the good file still validated
        assert out.count("INVALID") == 2
        assert "1 events" in out
        assert "3 files checked, 2 invalid" in out


class TestBenchRecords:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([3.0, 1.0, 2.0], 0.95) == 3.0

    def test_bench_record_derives_cycles_per_sec(self):
        record = bench_record(
            "t", [2.0, 4.0], meta={"cycles": 1000, "scenario_hash": "ab"}
        )
        assert record["median_s"] == 2.0
        assert record["cycles_per_sec"] == 500.0
        assert record["scenario_hash"] == "ab"
        assert record["rounds"] == 2

    def test_write_read_round_trip(self, tmp_path):
        write_bench_file(
            tmp_path, "unit", [bench_record("b", [1.0]),
                               bench_record("a", [2.0])]
        )
        payload = read_bench_file(tmp_path / "BENCH_unit.json")
        assert payload["format"] == BENCH_FORMAT
        assert [r["test"] for r in payload["results"]] == ["a", "b"]
        assert payload["git_sha"]

    def test_read_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="not.*supported"):
            read_bench_file(path)
