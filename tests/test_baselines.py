"""Tests for the e2e obfuscation, TDM QoS and rerouting baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    E2EConfig,
    E2EObfuscator,
    TdmConfig,
    TdmPolicy,
    UnroutableError,
    apply_rerouting,
    updown_table,
)
from repro.core import TargetSpec, TaspTrojan
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction, all_links

CFG = PAPER_CONFIG


def enabled_tasp(target):
    t = TaspTrojan(target)
    t.enable()
    return t


class TestE2EObfuscator:
    def test_roundtrip_restores_payload(self):
        net = Network(CFG, e2e=E2EObfuscator())
        payloads = {}
        net.ejection_hooks.append(
            lambda f, c, core: payloads.setdefault(f.seq, f.data)
        )
        net.add_packet(
            Packet(pkt_id=1, src_core=0, dst_core=63, mem_addr=0xABCD,
                   payload=[0x1234, 0x5678])
        )
        assert net.run_until_drained(500)
        assert payloads[1] == 0x1234
        assert payloads[2] == 0x5678

    def test_mem_field_scrambled_on_the_wire(self):
        ob = E2EObfuscator()
        flit = Packet(
            pkt_id=1, src_core=0, dst_core=63, mem_addr=0xDEAD
        ).build_flits(CFG)[0]
        ob.encode_flit(flit)
        assert flit.mem_addr != 0xDEAD
        ob.decode_flit(flit)
        assert flit.mem_addr == 0xDEAD

    def test_defeats_mem_targeting_trojan(self):
        net = Network(CFG, e2e=E2EObfuscator())
        tasp = enabled_tasp(TargetSpec.for_mem(0x100))
        net.attach_tamperer((0, Direction.EAST), tasp)
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63, mem_addr=0x100)
            )
        assert net.run_until_drained(3000)
        assert net.stats.packets_completed == 10
        assert tasp.triggers == 0

    def test_fails_against_dest_targeting_trojan(self):
        # The paper's point: routing fields cannot be scrambled e2e, so a
        # dest-targeting TASP still triggers (Fig. 11a).
        net = Network(CFG, e2e=E2EObfuscator())
        tasp = enabled_tasp(TargetSpec.for_dest(15))
        net.attach_tamperer((0, Direction.EAST), tasp)
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63, mem_addr=0x100)
            )
        drained = net.run_until_drained(3000, stall_limit=800)
        assert not drained
        assert tasp.triggers > 0
        assert net.stats.packets_completed == 0

    def test_header_routing_fields_stay_cleartext(self):
        ob = E2EObfuscator()
        flit = Packet(pkt_id=1, src_core=0, dst_core=63).build_flits(CFG)[0]
        before_dst = flit.dst_router
        ob.encode_flit(flit)
        assert flit.dst_router == before_dst
        from repro.noc.flit import unpack_header

        assert unpack_header(flit.data)["dst_router"] == 15

    def test_keys_differ_per_flow(self):
        ob = E2EObfuscator()
        assert ob._key(0, 15) != ob._key(0, 14)
        assert ob._key(0, 15) == ob._key(0, 15)


class TestTdmPolicy:
    def _policy(self):
        return TdmPolicy(TdmConfig(num_domains=2), num_vcs=4)

    def test_vc_partition(self):
        p = self._policy()
        assert list(p.vc_partition(0)) == [0, 1]
        assert list(p.vc_partition(1)) == [2, 3]

    def test_vc_for_and_domain_of_vc(self):
        p = self._policy()
        assert p.vc_for(1, 0) == 2
        assert p.domain_of_vc(3) == 1

    def test_cycle_ownership(self):
        p = self._policy()
        f0 = Packet(pkt_id=1, src_core=0, dst_core=4, vc_class=0,
                    domain=0).build_flits(CFG)[0]
        f1 = Packet(pkt_id=2, src_core=0, dst_core=4, vc_class=2,
                    domain=1).build_flits(CFG)[0]
        assert p.flit_may_use_link(f0, 0)
        assert not p.flit_may_use_link(f0, 1)
        assert p.flit_may_use_link(f1, 1)
        assert not p.flit_may_use_switch(f1, 0)

    def test_injection_outside_partition_rejected(self):
        p = self._policy()
        bad = Packet(pkt_id=1, src_core=0, dst_core=4, vc_class=0,
                     domain=1).build_flits(CFG)[0]
        with pytest.raises(ValueError):
            p.may_inject(bad, 0)

    def test_odd_vc_count_rejected(self):
        with pytest.raises(ValueError):
            TdmPolicy(TdmConfig(2), num_vcs=3)

    def test_single_domain_rejected(self):
        with pytest.raises(ValueError):
            TdmConfig(num_domains=1)

    def test_tdm_network_delivers_both_domains(self):
        p = self._policy()
        net = Network(CFG, policy=p)
        for pid in range(8):
            domain = pid % 2
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=p.vc_for(domain), domain=domain)
            )
        assert net.run_until_drained(3000)
        assert net.stats.packets_completed == 8

    def test_attack_contained_to_victim_domain(self):
        # TASP targets D1 traffic (vc 2/3); D0 keeps delivering.
        p = self._policy()
        net = Network(CFG, policy=p)
        tasp = enabled_tasp(TargetSpec.for_vc(2))
        net.attach_tamperer((0, Direction.EAST), tasp)
        # domains run on different cores of router 0 (apps are mapped to
        # disjoint cores), both crossing the infected link
        for pid in range(40):
            domain = pid % 2
            net.add_packet(
                Packet(pkt_id=pid, src_core=domain, dst_core=63,
                       vc_class=p.vc_for(domain), domain=domain,
                       created_cycle=0)
            )
        net.run(4000)
        d0_done = sum(
            1 for pid, r in net.stats.packets.items()
            if pid % 2 == 0 and r.complete
        )
        d1_done = sum(
            1 for pid, r in net.stats.packets.items()
            if pid % 2 == 1 and r.complete
        )
        assert d0_done == 20   # clean domain unaffected
        assert d1_done == 0    # victim domain starved
        assert tasp.triggers > 0


class TestUpDownRouting:
    def test_no_failures_all_pairs_routable(self):
        table = updown_table(CFG, [])
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    path = table.path(src, dst)
                    assert path[0] == src and path[-1] == dst

    def test_paths_avoid_disabled_links(self):
        disabled = [(0, Direction.EAST), (1, Direction.EAST)]
        table = updown_table(CFG, disabled)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path = table.path(src, dst)
                hops = list(zip(path, path[1:]))
                for a, b in hops:
                    for key in disabled:
                        from repro.noc.topology import link_endpoints

                        assert (a, b) != link_endpoints(CFG, key)

    def test_updown_turn_restriction_holds(self):
        # No path may go down then up (deadlock freedom invariant).
        from repro.baselines.reroute import _bfs_levels, _is_up_move

        disabled = {(5, Direction.NORTH)}
        levels = _bfs_levels(CFG, set(disabled))
        table = updown_table(CFG, disabled)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path = table.path(src, dst)
                went_down = False
                for a, b in zip(path, path[1:]):
                    up = _is_up_move(levels, a, b)
                    assert not (went_down and up), (
                        f"down->up turn on {path}"
                    )
                    if not up:
                        went_down = True

    def test_disconnection_raises(self):
        # cut router 0 off entirely (both its outgoing and incoming links)
        cut = [
            (0, Direction.EAST),
            (0, Direction.NORTH),
            (1, Direction.WEST),
            (4, Direction.SOUTH),
        ]
        with pytest.raises(UnroutableError):
            updown_table(CFG, cut)

    def test_rerouted_network_delivers(self):
        net = Network(NoCConfig(routing="table"),
                      routing_table=updown_table(CFG, []))
        infected = [(0, Direction.EAST), (6, Direction.NORTH)]
        apply_rerouting(net, infected)
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63, created_cycle=0)
            )
        assert net.run_until_drained(4000)
        assert net.stats.packets_completed == 10
        for key in infected:
            assert net.links[key].traversals == 0

    def test_reroute_avoids_trojan_entirely(self):
        net = Network(NoCConfig(routing="table"),
                      routing_table=updown_table(CFG, []))
        tasp = enabled_tasp(TargetSpec.for_dest(15))
        net.attach_tamperer((0, Direction.EAST), tasp)
        apply_rerouting(net, [(0, Direction.EAST)])
        for pid in range(10):
            net.add_packet(Packet(pkt_id=pid, src_core=0, dst_core=63))
        assert net.run_until_drained(4000)
        assert net.stats.packets_completed == 10
        assert tasp.triggers == 0

    def test_reroute_costs_hops(self):
        direct = Network(CFG)
        direct.add_packet(Packet(pkt_id=1, src_core=0, dst_core=15))
        direct.run_until_drained(500)
        base_hops = direct.stats.packets[1].hops

        rerouted = Network(NoCConfig(routing="table"),
                           routing_table=updown_table(CFG, []))
        apply_rerouting(rerouted, [(0, Direction.EAST)])
        rerouted.add_packet(Packet(pkt_id=1, src_core=0, dst_core=15))
        rerouted.run_until_drained(500)
        assert rerouted.stats.packets[1].hops >= base_hops

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_infected_sets_routable_property(self, seed):
        from repro.util.rng import SeededStream

        stream = SeededStream(seed, "links")
        links = all_links(CFG)
        infected = stream.sample(links, 4)
        try:
            table = updown_table(CFG, infected)
        except UnroutableError:
            return  # acceptable: failures may disconnect a direction
        for src in range(0, 16, 3):
            for dst in range(1, 16, 4):
                if src != dst:
                    table.path(src, dst)
