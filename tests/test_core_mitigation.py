"""Integration tests: TASP attack + detector + L-Ob on the full NoC.

These exercise the paper's end-to-end claims:

* an enabled TASP on one link starves the targeted flow and builds
  back pressure (DoS) when no mitigation is present;
* the threat detector classifies the link as trojan-infected;
* L-Ob obfuscation gets the targeted flow across the infected link with
  only a few cycles of added latency (graceful degradation).
"""

import pytest

from repro.core import (
    DEFAULT_METHOD_SEQUENCE,
    Granularity,
    LinkVerdict,
    MitigationConfig,
    ObMethod,
    TargetSpec,
    TaspConfig,
    TaspTrojan,
    build_mitigated_network,
)
from repro.core.detector import DetectorConfig
from repro.noc import Network, NoCConfig, Packet
from repro.noc.topology import Direction

CFG = NoCConfig()
INFECTED = (0, Direction.EAST)  # on the xy path from router 0 eastwards


def targeted_traffic(net, count=20, dst_core=63, payload=2):
    for pid in range(count):
        net.add_packet(
            Packet(
                pkt_id=pid,
                src_core=0,
                dst_core=dst_core,
                vc_class=pid % 4,
                mem_addr=0x100,
                payload=[0xBEEF] * payload,
                created_cycle=0,
            )
        )


def enabled_tasp(target=None, **cfg_kw):
    tasp = TaspTrojan(target or TargetSpec.for_dest(15), TaspConfig(**cfg_kw))
    tasp.enable()
    return tasp


class TestAttackWithoutMitigation:
    def test_targeted_flow_starves(self):
        net = Network(CFG)
        tasp = enabled_tasp()
        net.attach_tamperer(INFECTED, tasp)
        targeted_traffic(net)
        drained = net.run_until_drained(4000, stall_limit=800)
        assert not drained
        assert net.stats.packets_completed == 0
        assert tasp.triggers > 10

    def test_back_pressure_builds(self):
        net = Network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net, count=60)
        net.run(1500)
        sample = net.collect_sample()
        assert sample.routers_with_blocked_port >= 1
        assert sample.injection_utilization > 0

    def test_non_targeted_flows_unharmed_before_saturation(self):
        net = Network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        # targeted flow plus a flow avoiding the infected link entirely
        targeted_traffic(net, count=5)
        for pid in range(100, 110):
            net.add_packet(
                Packet(pkt_id=pid, src_core=20, dst_core=56, created_cycle=0)
            )
        net.run(2000)
        others = [
            rec
            for pid, rec in net.stats.packets.items()
            if pid >= 100
        ]
        assert all(rec.complete for rec in others)

    def test_dormant_trojan_is_harmless(self):
        net = Network(CFG)
        tasp = TaspTrojan(TargetSpec.for_dest(15))  # kill switch off
        net.attach_tamperer(INFECTED, tasp)
        targeted_traffic(net)
        assert net.run_until_drained(4000)
        assert net.stats.packets_completed == 20
        assert tasp.flits_inspected == 0


class TestAttackWithMitigation:
    def test_targeted_flow_delivered(self):
        net = build_mitigated_network(CFG)
        tasp = enabled_tasp()
        net.attach_tamperer(INFECTED, tasp)
        targeted_traffic(net)
        assert net.run_until_drained(8000, stall_limit=2000)
        assert net.stats.packets_completed == 20
        assert net.stats.misdeliveries == 0

    def test_link_classified_trojan(self):
        net = build_mitigated_network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net)
        net.run_until_drained(8000, stall_limit=2000)
        detector = net.receiver_of(INFECTED).detector
        assert detector.verdict is LinkVerdict.TROJAN
        assert detector.bist_scans == 1

    def test_bist_does_not_condemn_the_link(self):
        from repro.faults import BistVerdict

        net = build_mitigated_network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net)
        net.run_until_drained(8000, stall_limit=2000)
        report = net.receiver_of(INFECTED).detector.bist_report
        assert report is not None
        assert report.verdict is not BistVerdict.PERMANENT

    def test_graceful_degradation_latency(self):
        # Attack latency should be within a small factor of clean latency
        # (the paper: 1-3 cycle penalty per obfuscated traversal).
        clean = build_mitigated_network(CFG)
        targeted_traffic(clean)
        assert clean.run_until_drained(8000)
        clean_lat = clean.stats.mean_total_latency()

        attacked = build_mitigated_network(CFG)
        attacked.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(attacked)
        assert attacked.run_until_drained(12000, stall_limit=2000)
        attacked_lat = attacked.stats.mean_total_latency()
        assert attacked_lat < clean_lat * 3

    def test_method_log_short_circuits_later_flits(self):
        net = build_mitigated_network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net, count=30)
        net.run_until_drained(12000, stall_limit=2000)
        lob = net.output_port_of(INFECTED).lob
        assert lob.preemptive_sends > 0

    def test_retransmissions_bounded_per_packet(self):
        net = build_mitigated_network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net, count=10)
        net.run_until_drained(8000, stall_limit=2000)
        for rec in net.stats.packets.values():
            # first flit needs ~2 faulted tries before L-Ob engages; with
            # the flow log later packets need none
            assert rec.retransmissions <= 6

    def test_mitigated_clean_network_no_overhead(self):
        plain = Network(CFG)
        targeted_traffic(plain)
        plain.run_until_drained(6000)
        mitigated = build_mitigated_network(CFG)
        targeted_traffic(mitigated)
        mitigated.run_until_drained(6000)
        assert (
            mitigated.stats.mean_total_latency()
            == plain.stats.mean_total_latency()
        )

    def test_scramble_method_works_end_to_end(self):
        # Force the ladder to start at scramble.
        mcfg = MitigationConfig(
            method_sequence=(
                (ObMethod.SCRAMBLE, Granularity.FULL),
                (ObMethod.INVERT, Granularity.FULL),
            )
        )
        net = build_mitigated_network(CFG, mcfg)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net, count=20)
        assert net.run_until_drained(12000, stall_limit=3000)
        assert net.stats.packets_completed == 20
        lob = net.output_port_of(INFECTED).lob
        receiver = net.receiver_of(INFECTED)
        assert lob.obfuscated_sends[ObMethod.SCRAMBLE] > 0
        assert receiver.scrambles_resolved > 0

    def test_reorder_method_fails_against_tasp(self):
        # Flit reordering changes timing, not content: a pattern-matching
        # trojan still triggers, so reorder alone cannot save the flow.
        mcfg = MitigationConfig(
            method_sequence=((ObMethod.REORDER, Granularity.FULL),)
        )
        net = build_mitigated_network(CFG, mcfg)
        net.attach_tamperer(INFECTED, enabled_tasp())
        targeted_traffic(net, count=10)
        drained = net.run_until_drained(4000, stall_limit=1000)
        assert not drained
        assert net.stats.packets_completed < 10


class TestTargetVariants:
    @pytest.mark.parametrize(
        "target",
        [
            TargetSpec.for_dest(15),
            TargetSpec.for_src(0),
            TargetSpec.for_vc(2),
            TargetSpec.for_mem(0x100),
            TargetSpec.for_dest_src(0, 15),
            TargetSpec.full(0, 15, 2, 0x100),
        ],
        ids=lambda t: t.kind,
    )
    def test_every_target_variant_mitigated(self, target):
        net = build_mitigated_network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp(target))
        targeted_traffic(net, count=8)
        assert net.run_until_drained(10000, stall_limit=2500)
        assert net.stats.packets_completed == 8


class TestMultipleTrojans:
    def test_two_infected_links_mitigated(self):
        net = build_mitigated_network(CFG)
        net.attach_tamperer((0, Direction.EAST), enabled_tasp())
        net.attach_tamperer((2, Direction.EAST), enabled_tasp())
        targeted_traffic(net, count=10)
        assert net.run_until_drained(12000, stall_limit=3000)
        assert net.stats.packets_completed == 10

    def test_trojan_plus_transient_noise(self):
        from repro.faults import TransientFaultModel
        from repro.util.rng import SeededStream

        net = build_mitigated_network(CFG)
        net.attach_tamperer(INFECTED, enabled_tasp())
        net.attach_tamperer(
            (1, Direction.EAST),
            TransientFaultModel(
                net.codec.codeword_bits, 0.05, SeededStream(5, "noise")
            ),
        )
        targeted_traffic(net, count=10)
        assert net.run_until_drained(12000, stall_limit=3000)
        assert net.stats.packets_completed == 10
