"""Scenario shrinking: 1-minimality, determinism, budgets.

The planted-deadlock scenario is the canonical workload: two traffic
flows, a killer fault and a decoy fault, of which exactly one packet
and the killer explain the livelock.  The shrinker must find that core
— and *only* that core — deterministically and within its run budget.
"""

import dataclasses

import pytest

from repro.sim import (
    ShrinkError,
    Simulation,
    failure_signature,
    load_bundle,
    planted_deadlock_scenario,
    replay_bundle,
    shrink_bundle,
    shrink_scenario,
)
from repro.sim.sentinel import SentinelTrip
from repro.sim.shrink import ddmin, greedy_min_subset, main as shrink_main


def fails_with(scenario, signature) -> bool:
    try:
        Simulation(scenario).run()
    except Exception as exc:
        return failure_signature(exc) == signature
    return False


@pytest.fixture(scope="module")
def planted_shrink():
    """One shrink of the planted scenario, shared by read-only tests."""
    return shrink_scenario(planted_deadlock_scenario())


class TestMinimizers:
    def core_predicate(self, calls):
        def still_fails(candidate):
            calls.append(tuple(candidate))
            return 3 in candidate and 7 in candidate

        return still_fails

    def test_greedy_finds_the_core(self):
        calls = []
        kept = greedy_min_subset(
            list(range(10)), self.core_predicate(calls)
        )
        assert kept == [3, 7]

    def test_ddmin_finds_the_core(self):
        calls = []
        kept = ddmin(list(range(40)), self.core_predicate(calls))
        assert kept == [3, 7]
        # chunked removal beats one-at-a-time on a 40-element list
        assert len(calls) < 40 * 3

    def test_empty_and_unremovable(self):
        assert greedy_min_subset([], lambda c: True) == []
        assert greedy_min_subset([1, 2], lambda c: len(c) == 2) == [1, 2]
        assert ddmin([5], lambda c: True) == [5]


class TestShrinkScenario:
    def test_shrunk_still_fails_same_way(self, planted_shrink):
        assert planted_shrink.signature == "livelock"
        assert fails_with(planted_shrink.shrunk, "livelock")

    def test_shrunk_is_a_subset(self, planted_shrink):
        original, shrunk = planted_shrink.original, planted_shrink.shrunk
        for field_name in ("trojans", "faults"):
            kept = getattr(shrunk, field_name)
            pool = list(getattr(original, field_name))
            assert all(spec in pool for spec in kept)
        # every kept packet existed in the original schedules
        original_packets = {
            p for t in original.traffic for p in t.packets
        }
        for t in shrunk.traffic:
            assert set(t.packets) <= original_packets

    def test_finds_the_planted_core(self, planted_shrink):
        shrunk = planted_shrink.shrunk
        assert len(shrunk.traffic) == 1
        assert len(shrunk.traffic[0].packets) == 1
        assert shrunk.traffic[0].packets[0].src_core == 0  # the victim
        assert len(shrunk.faults) == 1
        assert "killer" in shrunk.faults[0].labels
        assert shrunk.max_cycles < planted_shrink.original.max_cycles
        assert not planted_shrink.budget_exhausted

    def test_one_minimal(self, planted_shrink):
        """Removing any single remaining flow or fault makes the
        scenario pass: the shrink really is 1-minimal."""
        shrunk = planted_shrink.shrunk
        for field_name in ("traffic", "faults"):
            items = getattr(shrunk, field_name)
            for index in range(len(items)):
                candidate = dataclasses.replace(
                    shrunk,
                    **{field_name: items[:index] + items[index + 1:]},
                )
                assert not fails_with(candidate, "livelock")

    def test_deterministic(self, planted_shrink):
        again = shrink_scenario(planted_deadlock_scenario())
        assert (
            again.shrunk.content_hash()
            == planted_shrink.shrunk.content_hash()
        )
        assert again.runs == planted_shrink.runs

    def test_diff_names_the_removals(self, planted_shrink):
        diff = planted_shrink.diff()
        assert "failure signature: livelock" in diff
        assert "removed" in diff and "kept" in diff
        assert "max_cycles:" in diff

    def test_budget_exhaustion_keeps_a_failing_scenario(self):
        result = shrink_scenario(planted_deadlock_scenario(), max_runs=3)
        assert result.budget_exhausted
        assert result.runs <= 3
        assert fails_with(result.shrunk, "livelock")

    def test_passing_scenario_refused(self):
        scenario = dataclasses.replace(
            planted_deadlock_scenario(), faults=()
        )
        with pytest.raises(ShrinkError, match="does not fail"):
            shrink_scenario(scenario)

    def test_wrong_signature_refused(self):
        with pytest.raises(ShrinkError, match="deadlock"):
            shrink_scenario(
                planted_deadlock_scenario(), signature="deadlock"
            )


class TestShrinkBundle:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("shrink")
        sim = Simulation(planted_deadlock_scenario())
        sim.enable_forensics(out)
        with pytest.raises(SentinelTrip) as excinfo:
            sim.run()
        return excinfo.value.repro_bundle

    def test_emits_replayable_shrunk_bundle(self, bundle):
        result, out = shrink_bundle(bundle)
        assert out.parent == bundle.parent
        assert "-shrunk" in out.name
        shrunk = load_bundle(out)
        assert shrunk.signature == "livelock"
        assert shrunk.scenario.name.endswith("-shrunk")
        assert (out / "shrink-diff.txt").read_text().startswith(
            "failure signature:"
        )
        replayed = replay_bundle(out)
        assert failure_signature(replayed) == "livelock"

    def test_cli_asserts_localization(self, bundle, capsys):
        code = shrink_main([
            str(bundle),
            "--assert-max-traffic", "2",
            "--assert-max-attacks", "1",
        ])
        printed = capsys.readouterr().out
        assert code == 0, printed
        assert "shrunk bundle:" in printed

    def test_cli_assertion_failure(self, bundle, capsys):
        assert shrink_main([str(bundle), "--assert-max-attacks", "0"]) == 1
        assert "ASSERTION FAILED" in capsys.readouterr().out

    def test_cli_rejects_garbage(self, tmp_path, capsys):
        assert shrink_main([str(tmp_path)]) == 1
        assert "shrink FAILED" in capsys.readouterr().out
