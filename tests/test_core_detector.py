"""Unit tests for the threat source detector (paper Fig. 6)."""

import pytest

from repro.core import (
    DetectorConfig,
    Granularity,
    LinkVerdict,
    ObDescriptor,
    ObMethod,
    TargetSpec,
    TaspConfig,
    TaspTrojan,
    ThreatDetector,
)
from repro.ecc import SECDED_72_64, DecodeStatus
from repro.faults import BistScanner, PermanentFault, StuckAtKind
from repro.noc import PAPER_CONFIG, Packet
from repro.noc.link import Link, Transmission
from repro.noc.topology import Direction
from repro.util.rng import SeededStream


def make_link(tamperer=None):
    link = Link(0, Direction.EAST, 1)
    if tamperer is not None:
        link.tamperers.append(tamperer)
    return link


def make_tx(tag=0, ob=None, dst=60):
    flit = Packet(pkt_id=tag, src_core=0, dst_core=dst, mem_addr=0x5).build_flits(
        PAPER_CONFIG
    )[0]
    return Transmission(
        tag=tag, vc=0, vc_seq=tag, codeword=SECDED_72_64.encode(flit.data),
        flit=flit, ob=ob, launch_cycle=0,
    )


def detected_result(tx, flips=0b11):
    return SECDED_72_64.decode(tx.codeword ^ flips)


def make_detector(link=None, bist=True, **cfg_kw):
    link = link or make_link()
    scanner = (
        BistScanner(72, SeededStream(1, "bist")) if bist else None
    )
    return ThreatDetector(DetectorConfig(**cfg_kw), link, scanner)


class TestFirstFault:
    def test_first_fault_plain_retransmission(self):
        det = make_detector()
        tx = make_tx()
        advice = det.on_fault(tx, 10, detected_result(tx))
        assert not advice.enable_obfuscation
        assert det.verdict is LinkVerdict.UNKNOWN

    def test_fault_history_recorded(self):
        det = make_detector()
        tx = make_tx(tag=7)
        det.on_fault(tx, 10, detected_result(tx))
        rec = det.history.get(7)
        assert rec.fault_count == 1
        assert rec.flow_signature == tx.flit.flow_signature
        assert rec.first_cycle == 10


class TestRepeatFault:
    def test_second_fault_enables_obfuscation(self):
        det = make_detector()
        tx = make_tx()
        det.on_fault(tx, 10, detected_result(tx))
        advice = det.on_fault(tx, 14, detected_result(tx))
        assert advice.enable_obfuscation
        assert advice.method_index == 0

    def test_second_fault_triggers_bist_once(self):
        det = make_detector()
        tx = make_tx()
        det.on_fault(tx, 10, detected_result(tx))
        det.on_fault(tx, 14, detected_result(tx))
        det.on_fault(tx, 18, detected_result(tx))
        assert det.bist_scans == 1

    def test_obfuscated_fault_advances_method(self):
        det = make_detector()
        tx = make_tx()
        det.on_fault(tx, 10, detected_result(tx))
        det.on_fault(tx, 14, detected_result(tx))
        tx_ob = make_tx(ob=ObDescriptor(ObMethod.INVERT, Granularity.FULL))
        advice = det.on_fault(tx_ob, 18, detected_result(tx_ob))
        assert advice.method_index == 1


class TestClassification:
    def test_moving_faults_bist_clean_is_trojan(self):
        tasp = TaspTrojan(TargetSpec.for_dest(15), TaspConfig(seed=3))
        tasp.enable()
        det = make_detector(make_link(tasp))
        tx = make_tx(dst=60)  # dst router 15: targeted
        # two retries with different payload states -> distinct syndromes
        r1 = SECDED_72_64.decode(tasp.tamper(tx.codeword, 0))
        det.on_fault(tx, 10, r1)
        r2 = SECDED_72_64.decode(tasp.tamper(tx.codeword, 1))
        det.on_fault(tx, 14, r2)
        assert det.verdict is LinkVerdict.TROJAN

    def test_stuck_wires_classified_permanent(self):
        tx = make_tx()
        # pick stuck polarities that disagree with this codeword so both
        # wires corrupt every traversal
        zero_bit = next(i for i in range(72) if not tx.codeword >> i & 1)
        one_bit = next(i for i in range(72) if tx.codeword >> i & 1)
        fault = PermanentFault(
            72, {zero_bit: StuckAtKind.ONE, one_bit: StuckAtKind.ZERO}
        )
        det = make_detector(make_link(fault))
        res = SECDED_72_64.decode(fault.tamper(tx.codeword, 0))
        assert res.status is DecodeStatus.DETECTED
        det.on_fault(tx, 10, res)
        det.on_fault(tx, 14, res)
        assert det.verdict is LinkVerdict.PERMANENT

    def test_resolved_fault_classified_transient(self):
        det = make_detector()
        tx = make_tx()
        det.on_fault(tx, 10, detected_result(tx))
        det.on_clean(tx, 14)  # retry passed untouched
        assert det.verdict is LinkVerdict.TRANSIENT
        assert det.transient_resolutions == 1
        assert det.history.get(tx.tag) is None

    def test_obfuscation_success_counted(self):
        det = make_detector()
        tx = make_tx(ob=ObDescriptor(ObMethod.INVERT, Granularity.FULL))
        det.on_clean(tx, 5)
        assert det.obfuscation_successes == 1

    def test_bist_disabled_configuration(self):
        det = make_detector(bist_enabled=False)
        tx = make_tx()
        det.on_fault(tx, 10, detected_result(tx))
        det.on_fault(tx, 14, detected_result(tx))
        assert det.bist_scans == 0

    def test_permanent_verdict_sticky(self):
        fault = PermanentFault(
            72, {11: StuckAtKind.ONE, 40: StuckAtKind.ZERO}
        )
        det = make_detector(make_link(fault))
        tx = make_tx()
        res = detected_result(tx)
        det.on_fault(tx, 10, res)
        det.on_fault(tx, 14, res)
        assert det.verdict is LinkVerdict.PERMANENT
        # later moving faults do not downgrade the verdict
        det.on_fault(tx, 18, detected_result(tx, flips=0b101))
        assert det.verdict is LinkVerdict.PERMANENT


class TestHistoryBounds:
    def test_history_is_bounded(self):
        det = make_detector(history_capacity=4)
        for tag in range(10):
            tx = make_tx(tag=tag)
            det.on_fault(tx, tag, detected_result(tx))
        assert len(det.history) <= 4

    def test_repeat_threshold_configurable(self):
        det = make_detector(repeat_threshold=3, bist=False, bist_enabled=False)
        tx = make_tx()
        a1 = det.on_fault(tx, 1, detected_result(tx))
        a2 = det.on_fault(tx, 2, detected_result(tx))
        a3 = det.on_fault(tx, 3, detected_result(tx))
        assert not a1.enable_obfuscation
        assert not a2.enable_obfuscation
        assert a3.enable_obfuscation
