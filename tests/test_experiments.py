"""Fast sanity tests of the experiment harness (small parameters; the
full-size runs live in benchmarks/)."""

import pytest

from repro.experiments import (
    ablations,
    fig1_traffic,
    fig2_faults,
    fig8_overhead,
    fig10_speedup,
    fig11_backpressure,
    fig12_qos,
    table1_tasp,
    table2_mitigation,
)
from repro.experiments.common import (
    format_table,
    make_app_trace,
    pick_infected_links,
    xy_link_loads,
)
from repro.noc import PAPER_CONFIG
from repro.traffic import PROFILES


class TestCommon:
    def test_xy_link_loads_conserve_flits(self):
        trace = make_app_trace(PAPER_CONFIG, PROFILES["blackscholes"], 200)
        loads = xy_link_loads(PAPER_CONFIG, trace)
        # total traversals = sum over packets of hops * flits
        expected = sum(
            PAPER_CONFIG.hop_distance(
                PAPER_CONFIG.router_of_core(p.src_core),
                PAPER_CONFIG.router_of_core(p.dst_core),
            )
            * p.num_flits()
            for p in trace.packets
        )
        assert sum(loads.values()) == expected

    def test_pick_infected_links_routable_and_distinct(self):
        trace = make_app_trace(PAPER_CONFIG, PROFILES["ferret"], 200)
        links = pick_infected_links(PAPER_CONFIG, trace, 7, seed=3)
        assert len(set(links)) == 7
        from repro.baselines import updown_table

        updown_table(PAPER_CONFIG, links)  # must not raise

    def test_pick_zero_links(self):
        trace = make_app_trace(PAPER_CONFIG, PROFILES["fft"], 100)
        assert pick_infected_links(PAPER_CONFIG, trace, 0) == []

    def test_format_table(self):
        out = format_table(["a", "b"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "333" in lines[3]


class TestFig1:
    def test_runs_and_formats(self):
        result = fig1_traffic.run(duration=200)
        text = fig1_traffic.format_result(result)
        assert "router-to-router" in text
        assert result.primary_router == 0
        assert abs(sum(result.link_share.values()) - 1.0) < 1e-9


class TestFig2:
    def test_small_run_shapes(self):
        result = fig2_faults.run(packets=4)
        clean = result.curves["clean"]
        assert clean[6] > clean[1]
        assert result.curves["trojan (no mitigation)"][3] is None
        assert result.curves["trojan (L-Ob)"][3] is not None
        assert "stall" in fig2_faults.format_result(result)


class TestFig8AndTables:
    def test_fig8(self):
        report = fig8_overhead.run()
        assert "Router dynamic power" in fig8_overhead.format_result(report)

    def test_table1(self):
        result = table1_tasp.run()
        assert len(result.rows) == 6
        assert "Table I" in table1_tasp.format_result(result)

    def test_table2(self):
        result = table2_mitigation.run()
        assert result.total.pct_router_area < 5
        assert "Table II" in table2_mitigation.format_result(result)


class TestFig10:
    def test_single_app_small(self):
        result = fig10_speedup.run(
            apps=("blackscholes",), fractions=(0.0, 0.10), duration=250
        )
        points = {p.infected_fraction: p for p in result.points}
        assert points[0.0].speedup == 1.0
        assert points[0.10].speedup > 1.0
        assert "speedup" in fig10_speedup.format_result(result)


class TestFig11:
    def test_small_run(self):
        result = fig11_backpressure.run(
            warmup=400, window=500, rate_scale=3.5, sample_every=25
        )
        assert result.trojan_triggers > 0
        assert (
            result.headline["peak_blocked_routers"]
            > result.headline["peak_blocked_routers_clean"]
        )
        assert "back-pressure" in fig11_backpressure.format_result(result)


class TestFig12:
    def test_small_run(self):
        result = fig12_qos.run(warmup=400, window=600, sample_every=50)
        h = result.headline
        assert h["tdm_victim_domain_completions"] < h[
            "tdm_victim_domain_baseline"
        ]
        assert h["tdm_clean_domain_completions"] >= 0.9 * h[
            "tdm_clean_domain_baseline"
        ]
        assert "QoS containment" in fig12_qos.format_result(result)


class TestAblations:
    def test_target_width_small(self):
        points = ablations.target_width_ablation(samples=2000)
        by = {p.kind: p for p in points}
        assert by["VC"].accidental_trigger_rate > by[
            "Dest"
        ].accidental_trigger_rate

    def test_payload_states_small(self):
        points = ablations.payload_state_ablation(state_counts=(1, 4))
        assert points[1].distinct_syndromes >= points[0].distinct_syndromes

    def test_retrans_depth_small(self):
        points = ablations.retrans_depth_ablation(depths=(2, 8),
                                                  max_cycles=500)
        assert points[0].cycles_to_port_stall <= points[1].cycles_to_port_stall

    def test_methods_small(self):
        points = ablations.method_effectiveness_ablation(
            packets=4, max_cycles=3000
        )
        by = {(p.method, p.granularity): p.effective for p in points}
        assert by[("invert", "full")]
        assert not by[("reorder", "full")]


class TestRunner:
    def test_list_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "table2" in out

    def test_unknown_experiment(self):
        from repro.experiments.runner import main

        assert main(["nope"]) == 2

    def test_run_light_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out
