"""Tests for the Fort-NoCs packet-certification layer."""

import pytest

from repro.baselines import E2EConfig, E2EObfuscator
from repro.core import TargetSpec, TaspConfig, TaspTrojan
from repro.faults import TransientFaultModel
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.util.rng import SeededStream


def certified_network(**cfg_kw):
    e2e = E2EObfuscator(E2EConfig(certify=True))
    return Network(NoCConfig(**cfg_kw), e2e=e2e), e2e


class TestCleanCertification:
    def test_every_packet_verified(self):
        net, e2e = certified_network()
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       mem_addr=0x40 + pid, payload=[pid, pid * 7])
            )
        assert net.run_until_drained(3000)
        assert e2e.certificates_issued == 10
        assert e2e.certificates_verified == 10
        assert e2e.certificate_failures == []

    def test_certificate_costs_one_flit(self):
        net, e2e = certified_network()
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=4))
        assert net.run_until_drained(500)
        # single-flit packet grew to head + certificate
        assert net.stats.packets[1].num_flits == 2

    def test_certificate_word_is_scrambled_on_the_wire(self):
        # the certificate flit travels through the payload scrambler like
        # any other word
        e2e = E2EObfuscator(E2EConfig(certify=True))
        pkt = Packet(pkt_id=1, src_core=0, dst_core=63, payload=[0xAA])
        e2e.prepare_packet(pkt)
        cert_plain = pkt.payload[-1]
        flits = pkt.build_flits(PAPER_CONFIG)
        e2e.encode_flit(flits[-1])
        assert flits[-1].data != cert_plain

    def test_single_flit_packets_supported(self):
        net, e2e = certified_network()
        net.add_packet(Packet(pkt_id=1, src_core=5, dst_core=50))
        assert net.run_until_drained(500)
        assert e2e.certificates_verified == 1


class TestSdcDetection:
    def test_weight3_trojan_sdc_caught_end_to_end(self):
        # a 3-bit payload miscorrects into silent corruption that s2s
        # SECDED cannot see; the e2e certificate catches every instance
        net, e2e = certified_network()
        trojan = TaspTrojan(
            TargetSpec.for_dest(15), TaspConfig(payload_weight=3)
        )
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(12):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, mem_addr=0x9, payload=[0x1234],
                       created_cycle=0)
            )
        net.run_until_drained(4000, stall_limit=1200)
        corrupted = net.stats.misdeliveries
        assert corrupted > 0
        assert len(e2e.certificate_failures) >= corrupted
        assert (
            e2e.certificates_verified + len(e2e.certificate_failures) == 12
        )

    def test_failure_reasons_recorded(self):
        net, e2e = certified_network()
        trojan = TaspTrojan(
            TargetSpec.for_dest(15), TaspConfig(payload_weight=3)
        )
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, payload=[0xF00], created_cycle=0)
            )
        net.run_until_drained(4000, stall_limit=1200)
        reasons = {f.reason for f in e2e.certificate_failures}
        assert reasons <= {
            "misdelivered", "certificate mismatch", "flit count mismatch",
        }
        assert reasons

    def test_transient_faults_do_not_false_positive(self):
        # s2s SECDED corrects/retransmits transients before the NI sees
        # them: certification must stay silent
        net, e2e = certified_network()
        net.attach_tamperer(
            (0, Direction.EAST),
            TransientFaultModel(
                net.codec.codeword_bits, 0.2,
                SeededStream(3, "t"), double_fraction=0.5,
            ),
        )
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       payload=[pid], created_cycle=0)
            )
        assert net.run_until_drained(4000)
        assert e2e.certificate_failures == []
        assert e2e.certificates_verified == 10

    def test_certification_cannot_prevent_the_dos(self):
        # the paper's point: the 2-bit payload never reaches the NI at
        # all — endpoint integrity checking is powerless against it
        net, e2e = certified_network()
        trojan = TaspTrojan(TargetSpec.for_dest(15))  # weight 2
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, created_cycle=0)
            )
        drained = net.run_until_drained(3000, stall_limit=800)
        assert not drained
        assert net.stats.packets_completed == 0
        assert e2e.certificate_failures == []  # nothing ever arrived


class TestCertificationOffByDefault:
    def test_default_config_does_not_certify(self):
        net = Network(NoCConfig(), e2e=E2EObfuscator())
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=4))
        assert net.run_until_drained(500)
        assert net.stats.packets[1].num_flits == 1
