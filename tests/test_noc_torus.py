"""Topology layer beyond the plain mesh: torus wrap, dateline VC
discipline, clear-arc containment routing, and express channels."""

import dataclasses
import pickle

import pytest

from repro.noc.adaptive import (
    AdaptiveRouting,
    avoid_routing,
    turn_model_connected,
    west_first_candidates,
)
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.network import Network
from repro.noc.routing import xy_route
from repro.noc.topology import (
    BASE_DIRECTIONS,
    Direction,
    arc_sources,
    all_links,
    base_direction,
    dateline_high,
    is_express,
    link_endpoints,
    links_on_xy_path,
    neighbor,
    step_delta,
    topology_spec,
)
from repro.noc.torus import TorusArcRouting, torus_connected
from tests.test_resilience_containment import walk

TORUS = dataclasses.replace(PAPER_CONFIG, topology="torus")
TORUS8 = NoCConfig(mesh_width=8, mesh_height=8, topology="torus")
EXPRESS = dataclasses.replace(
    PAPER_CONFIG, mesh_width=6, mesh_height=6, express_interval=2
)


class TestConfigValidation:
    def test_torus_requires_ring_dimensions(self):
        with pytest.raises(ValueError):
            NoCConfig(mesh_width=2, mesh_height=4, topology="torus")

    def test_torus_requires_even_vcs(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TORUS, num_vcs=3)

    def test_torus_requires_xy_routing(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TORUS, routing="west-first")

    def test_torus_rejects_express(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TORUS, express_interval=2)

    def test_express_interval_bounds(self):
        for bad in (1, 6, 9):
            with pytest.raises(ValueError):
                dataclasses.replace(EXPRESS, express_interval=bad)

    def test_express_rejects_odd_even(self):
        with pytest.raises(ValueError):
            dataclasses.replace(EXPRESS, routing="odd-even")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PAPER_CONFIG, topology="hypercube")

    def test_topology_spec_kinds(self):
        assert topology_spec(PAPER_CONFIG).kind == "mesh"
        assert topology_spec(TORUS).kind == "torus"
        assert topology_spec(TORUS).wraps
        assert topology_spec(EXPRESS).kind == "express"
        assert not topology_spec(EXPRESS).wraps


class TestTorusTopology:
    def test_wrap_neighbors(self):
        # east edge wraps to the west edge of the same row
        assert neighbor(TORUS, 3, Direction.EAST) == 0
        assert neighbor(TORUS, 0, Direction.WEST) == 3
        # top wraps to bottom of the same column
        assert neighbor(TORUS, 13, Direction.NORTH) == 1
        assert neighbor(TORUS, 1, Direction.SOUTH) == 13

    def test_every_router_has_four_links(self):
        links = all_links(TORUS)
        assert len(links) == 4 * TORUS.num_routers
        for router in range(TORUS.num_routers):
            assert sum(1 for key in links if key[0] == router) == 4

    def test_hop_distance_uses_short_arc(self):
        # (0,0) -> (3,0): one wrap hop west, not three east
        assert TORUS.hop_distance(0, 3) == 1
        assert TORUS8.hop_distance(0, 7) == 1
        assert TORUS8.hop_distance(0, 36) == 8  # (0,0)->(4,4), 4+4

    def test_xy_route_wraps_through_the_short_arc(self):
        # 0 -> 3 on a 4-wide torus: WEST through the wrap link
        assert xy_route(TORUS, 0, 3) is Direction.WEST
        path = links_on_xy_path(TORUS, 0, 3)
        assert path == [(0, Direction.WEST)]

    def test_xy_path_lengths_match_hop_distance(self):
        for src in range(TORUS.num_routers):
            for dst in range(TORUS.num_routers):
                path = links_on_xy_path(TORUS, src, dst)
                assert len(path) == TORUS.hop_distance(src, dst)


class TestDateline:
    def test_mesh_is_never_high(self):
        for direction in BASE_DIRECTIONS:
            assert not dateline_high(PAPER_CONFIG, 3, 0, direction)

    def test_east_high_at_wrap_and_after(self):
        # source (1,0) heading east: low until the wrap column
        assert not dateline_high(TORUS8, 1, 1, Direction.EAST)
        assert not dateline_high(TORUS8, 5, 1, Direction.EAST)
        # allocating the wrap hop itself is high
        assert dateline_high(TORUS8, 7, 1, Direction.EAST)
        # wrapped positions sit below the source column: still high
        assert dateline_high(TORUS8, 0, 1, Direction.EAST)

    def test_west_mirrors_east(self):
        assert not dateline_high(TORUS8, 5, 6, Direction.WEST)
        assert dateline_high(TORUS8, 0, 6, Direction.WEST)  # wrap hop
        assert dateline_high(TORUS8, 7, 6, Direction.WEST)  # wrapped

    def test_arc_crosses_wrap_at_most_once(self):
        # every xy path flips low->high at most once per dimension and
        # never flips back — the acyclicity hinge of the discipline
        for src in range(TORUS8.num_routers):
            for dst in range(TORUS8.num_routers):
                cur = src
                seen_high = {Direction.EAST: False, Direction.WEST: False,
                             Direction.NORTH: False, Direction.SOUTH: False}
                for router, direction in links_on_xy_path(TORUS8, src, dst):
                    high = dateline_high(TORUS8, router, src, direction)
                    if seen_high[direction]:
                        assert high, "dateline class flipped high->low"
                    seen_high[direction] = high
                    cur = neighbor(TORUS8, router, direction)
                assert cur == dst


class TestTorusArcRouting:
    def test_requires_torus(self):
        with pytest.raises(ValueError):
            TorusArcRouting(PAPER_CONFIG)

    def test_degenerates_to_wrap_xy_with_no_avoid(self):
        routing = TorusArcRouting(TORUS8)
        for src in range(TORUS8.num_routers):
            for dst in range(TORUS8.num_routers):
                if src != dst:
                    assert routing.route(src, dst, src) is xy_route(
                        TORUS8, src, dst
                    )

    def test_blocked_short_arc_takes_the_long_arc(self):
        # 0 -> 2 eastward needs (0,E),(1,E); block (1,E): go west
        routing = TorusArcRouting(TORUS8, avoid=[(1, Direction.EAST)])
        assert routing.route(0, 2, 0) is Direction.WEST
        links = walk(routing, 0, 2)
        assert (1, Direction.EAST) not in links

    def test_both_arcs_blocked_drains_into_short_arc(self):
        routing = TorusArcRouting(
            TORUS8,
            avoid=[(0, Direction.EAST), (7, Direction.WEST)],
        )
        # row 0: both x-arcs 0->1 are cut; the short arc is the drain
        assert routing.route(0, 1, 0) is Direction.EAST

    def test_avoided_links_never_crossed_when_admitted(self):
        avoid = frozenset(
            [(9, Direction.EAST), (27, Direction.EAST),
             (45, Direction.NORTH)]
        )
        assert torus_connected(TORUS8, avoid)
        routing = TorusArcRouting(TORUS8, avoid)
        for src in range(0, TORUS8.num_routers, 3):
            for dst in range(TORUS8.num_routers):
                if src != dst:
                    walk(routing, src, dst)

    def test_pickles(self):
        routing = TorusArcRouting(TORUS8, avoid=[(1, Direction.EAST)])
        clone = pickle.loads(pickle.dumps(routing))
        assert clone.avoid == routing.avoid
        assert clone.route(0, 2, 0) is routing.route(0, 2, 0)


class TestTorusConnected:
    def test_empty_avoid_is_connected(self):
        assert torus_connected(TORUS8, ())

    def test_single_link_keeps_the_other_arc(self):
        assert torus_connected(TORUS8, [(0, Direction.EAST)])

    def test_severed_row_disconnects(self):
        # cut both arcs between (0,0) and (1,0): the row pair is stuck
        avoid = [(0, Direction.EAST), (7, Direction.WEST)]
        assert not torus_connected(TORUS8, avoid)

    def test_dispatched_through_turn_model_connected(self):
        assert turn_model_connected(TORUS8, "torus-arc",
                                    [(0, Direction.EAST)])
        assert not turn_model_connected(
            TORUS8, "torus-arc",
            [(0, Direction.EAST), (7, Direction.WEST)],
        )

    def test_avoid_routing_factory_dispatch(self):
        assert isinstance(
            avoid_routing(TORUS8, "torus-arc"), TorusArcRouting
        )
        assert isinstance(
            avoid_routing(PAPER_CONFIG, "west-first"), AdaptiveRouting
        )


class TestExpressChannels:
    def test_express_neighbors_span_k(self):
        assert neighbor(EXPRESS, 0, Direction.EXPRESS_EAST) == 2
        assert neighbor(EXPRESS, 0, Direction.EXPRESS_NORTH) == 12
        # no wrap, no partial span
        assert neighbor(EXPRESS, 5, Direction.EXPRESS_EAST) is None
        assert neighbor(EXPRESS, 4, Direction.EXPRESS_EAST) is None

    def test_express_absent_on_plain_mesh(self):
        for direction in Direction:
            if is_express(direction):
                assert neighbor(PAPER_CONFIG, 5, direction) is None

    def test_step_delta_scales_by_interval(self):
        assert step_delta(EXPRESS, Direction.EXPRESS_EAST) == (2, 0)
        assert step_delta(EXPRESS, Direction.EXPRESS_SOUTH) == (0, -2)
        assert step_delta(EXPRESS, Direction.EAST) == (1, 0)

    def test_base_direction_folds(self):
        assert base_direction(Direction.EXPRESS_WEST) is Direction.WEST
        assert base_direction(Direction.NORTH) is Direction.NORTH

    def test_hop_distance_uses_express_spans(self):
        # (0,0) -> (5,0): two express hops + one base = 3, not 5
        assert EXPRESS.hop_distance(0, 5) == 3
        assert EXPRESS.hop_distance(0, 4) == 2
        assert EXPRESS.hop_distance(0, 1) == 1

    def test_xy_route_prefers_express_until_remainder(self):
        assert xy_route(EXPRESS, 0, 5) is Direction.EXPRESS_EAST
        assert xy_route(EXPRESS, 2, 5) is Direction.EXPRESS_EAST
        assert xy_route(EXPRESS, 4, 5) is Direction.EAST

    def test_west_first_candidates_include_express(self):
        candidates = west_first_candidates(EXPRESS, 0, 5)
        assert candidates[0] is Direction.EXPRESS_EAST
        assert Direction.EAST in candidates
        # westbound must still go west first — express west included
        candidates = west_first_candidates(EXPRESS, 5, 0)
        assert Direction.EXPRESS_WEST in candidates

    def test_west_first_walks_with_avoided_express_link(self):
        avoid = frozenset([(0, Direction.EXPRESS_EAST),
                           (8, Direction.EAST)])
        assert turn_model_connected(EXPRESS, "west-first", avoid)
        routing = AdaptiveRouting(EXPRESS, "west-first", avoid)
        for src in range(0, EXPRESS.num_routers, 5):
            for dst in range(EXPRESS.num_routers):
                if src != dst:
                    walk(routing, src, dst)

    def test_no_net_zero_express_cycle(self):
        # the 180-degree ban is by base class: after a base NORTH hop,
        # EXPRESS_SOUTH is banned too (a N,N,EXPRESS_S loop has zero
        # displacement and would be a channel cycle)
        routing = AdaptiveRouting(EXPRESS, "west-first")
        states = routing.live_states(0)
        # folded successor states only ever carry base-class bans
        assert all(
            banned is None or banned in BASE_DIRECTIONS
            for _, banned in states
        )


class TestArcSources:
    def test_positive_and_negative(self):
        assert arc_sources(1, 3, 8, True) == [1, 2]
        assert arc_sources(1, 7, 8, False) == [1, 0]
        assert arc_sources(6, 1, 8, True) == [6, 7, 0]

    def test_excludes_destination(self):
        assert 3 not in arc_sources(0, 3, 8, True)

    def test_empty_when_already_there(self):
        assert arc_sources(2, 2, 8, True) == []


class TestTorusNetworkEndToEnd:
    def test_wrap_links_materialize(self):
        net = Network(TORUS)
        assert len(net.links) == 4 * TORUS.num_routers
        assert (3, Direction.EAST) in net.links
        assert link_endpoints(TORUS, (3, Direction.EAST)) == (3, 0)

    def test_traffic_drains_across_the_wrap(self):
        from repro.noc import Packet

        net = Network(TORUS)
        # 0 -> core of router 3: xy takes the single west wrap hop
        net.add_packet(Packet(pkt_id=1, src_core=0,
                              dst_core=3 * TORUS.concentration))
        net.run_until_drained(500)
        assert net.stats.packets_completed == 1
        loads = net.link_load()
        assert loads.get((0, Direction.WEST), 0) >= 1
