"""Tests for the metrics registry (repro.obs.registry)."""

import json
import pickle

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NOOP_METRIC,
)


class TestHandles:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("flits_total")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert reg.total("flits_total") == 4

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy")
        g.set(7)
        g.dec(2)
        g.inc()
        assert g.value == 6

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(10, 100))
        for v in (1, 10, 11, 100, 5000):
            h.observe(v)
        snap = h.value
        # values <= bound land in that bucket (Prometheus "le")
        assert snap["buckets"] == {"10": 2, "100": 4, "+Inf": 5}
        assert snap["sum"] == 1 + 10 + 11 + 100 + 5000
        assert snap["count"] == 5

    def test_histogram_default_buckets_cover_paper_range(self):
        assert DEFAULT_BUCKETS[0] == 8 and DEFAULT_BUCKETS[-1] == 4096

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestLabelSets:
    def test_same_labels_same_handle(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", link="0->EAST", run="x")
        b = reg.counter("hits", run="x", link="0->EAST")  # order-free
        assert a is b
        a.inc()
        assert b.value == 1

    def test_different_labels_different_children(self):
        reg = MetricsRegistry()
        reg.counter("hits", link="a").inc()
        reg.counter("hits", link="b").inc(2)
        assert reg.total("hits") == 3
        assert reg.get("hits", link="b").value == 2
        assert reg.get("hits", link="missing") is None
        assert reg.get("absent_family") is None

    def test_label_values_coerced_to_strings(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", router=3)
        b = reg.counter("hits", router="3")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("thing")

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")


class TestDisabled:
    def test_disabled_registry_hands_out_the_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("anything", whatever="x")
        assert c is NOOP_METRIC
        assert reg.histogram("h") is NOOP_METRIC
        c.inc()
        c.observe(5)
        c.set(9)
        assert c.value == 0
        # nothing was recorded anywhere
        assert reg.families() == []
        assert reg.snapshot() == {}
        assert reg.total("anything") == 0


class TestSnapshot:
    def test_snapshot_is_deterministic_across_insertion_order(self):
        def build(order):
            reg = MetricsRegistry()
            for name, labels in order:
                reg.counter(name, **labels).inc()
            return json.dumps(reg.snapshot(), sort_keys=True)

        entries = [
            ("b_metric", {"link": "z"}),
            ("a_metric", {"link": "a"}),
            ("b_metric", {"link": "a"}),
        ]
        assert build(entries) == build(list(reversed(entries)))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.gauge("util", "help text", link="0->EAST").set(3)
        snap = reg.snapshot()
        assert snap == {
            "util": {
                "kind": "gauge",
                "help": "help text",
                "series": [
                    {"labels": {"link": "0->EAST"}, "value": 3},
                ],
            }
        }

    def test_total_over_histogram_counts_observations(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", run="x")
        h.observe(1)
        h.observe(2)
        assert reg.total("lat") == 2


def test_registry_pickles_with_live_handles():
    reg = MetricsRegistry()
    reg.counter("hits", link="a").inc(5)
    reg.histogram("lat").observe(12)
    clone = pickle.loads(pickle.dumps(reg))
    assert clone.snapshot() == reg.snapshot()
    clone.counter("hits", link="a").inc()
    assert clone.total("hits") == 6
