"""Unit tests for arbiters, credits, retransmission buffers and links."""

import pytest

from repro.noc.arbiters import MatrixArbiter, RoundRobinArbiter
from repro.noc.credit import CreditTracker
from repro.noc.flit import FlitType, Packet
from repro.noc.link import AckMessage, Link, Transmission
from repro.noc.retrans import EntryState, NackAdvice, RetransBuffer
from repro.noc import PAPER_CONFIG
from repro.noc.topology import Direction


def make_flit(pkt_id=1, src=0, dst=63):
    return Packet(pkt_id=pkt_id, src_core=src, dst_core=dst).build_flits(
        PAPER_CONFIG
    )[0]


class TestRoundRobinArbiter:
    def test_grants_only_requester(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, True, False, False]) == 1

    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False] * 4) is None

    def test_rotates_priority(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_starvation_freedom(self):
        arb = RoundRobinArbiter(4)
        seen = set()
        for _ in range(8):
            seen.add(arb.grant([True] * 4))
        assert seen == {0, 1, 2, 3}

    def test_skips_non_requesters(self):
        arb = RoundRobinArbiter(3)
        arb.grant([True, True, True])  # winner 0, pointer at 1
        assert arb.grant([True, False, False]) == 0

    def test_grant_indices(self):
        arb = RoundRobinArbiter(5)
        assert arb.grant_indices([3]) == 3
        assert arb.grant_indices([]) is None

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).grant([True])


class TestMatrixArbiter:
    def test_least_recently_granted(self):
        arb = MatrixArbiter(3)
        first = arb.grant([True, True, True])
        second = arb.grant([True, True, True])
        assert first != second

    def test_all_get_served(self):
        arb = MatrixArbiter(3)
        seen = {arb.grant([True, True, True]) for _ in range(3)}
        assert seen == {0, 1, 2}

    def test_single_requester(self):
        arb = MatrixArbiter(4)
        assert arb.grant([False, False, True, False]) == 2


class TestCreditTracker:
    def test_initial_credits(self):
        t = CreditTracker(4, 4)
        assert all(t.available(v) == 4 for v in range(4))

    def test_consume_release_roundtrip(self):
        t = CreditTracker(2, 2, latency=1)
        t.consume(0)
        assert t.available(0) == 1
        t.release(0, cycle=5)
        t.tick(5)  # not yet visible
        assert t.available(0) == 1
        t.tick(6)
        assert t.available(0) == 2

    def test_consume_without_credit_raises(self):
        t = CreditTracker(1, 1)
        t.consume(0)
        with pytest.raises(RuntimeError):
            t.consume(0)

    def test_overflow_detected(self):
        t = CreditTracker(1, 1, latency=0)
        t.release(0, 0)
        with pytest.raises(RuntimeError):
            t.tick(0)

    def test_credit_conservation(self):
        t = CreditTracker(1, 4, latency=2)
        for _ in range(4):
            t.consume(0)
        for c in range(3):
            t.release(0, c)
        t.tick(10)
        # outstanding = depth - credits - pending = 4 - 3 - 0
        assert t.outstanding(0) == 1
        assert t.available(0) == 3

    def test_zero_latency(self):
        t = CreditTracker(1, 1, latency=0)
        t.consume(0)
        t.release(0, 3)
        t.tick(3)
        assert t.available(0) == 1


class TestRetransBuffer:
    def test_admit_until_full(self):
        buf = RetransBuffer(2)
        assert buf.admit(make_flit(1), 0, 0) is not None
        assert buf.admit(make_flit(2), 0, 0) is not None
        assert buf.is_full
        assert buf.admit(make_flit(3), 0, 0) is None

    def test_tags_unique_and_monotonic(self):
        buf = RetransBuffer(4)
        tags = [buf.admit(make_flit(i), 0, 0) for i in range(4)]
        assert tags == sorted(set(tags))

    def test_pick_ready_oldest_first(self):
        buf = RetransBuffer(4)
        t1 = buf.admit(make_flit(1), 0, 0)
        t2 = buf.admit(make_flit(2), 0, 1)
        assert buf.pick_ready(5).tag == t1
        buf.mark_launched(t1, 5)
        assert buf.pick_ready(5).tag == t2

    def test_ack_frees_slot(self):
        buf = RetransBuffer(1)
        tag = buf.admit(make_flit(1), 0, 0)
        buf.mark_launched(tag, 0)
        buf.on_ack(tag)
        assert buf.is_empty
        assert buf.admit(make_flit(2), 0, 1) is not None

    def test_nack_rearms_entry(self):
        buf = RetransBuffer(2)
        tag = buf.admit(make_flit(1), 0, 0)
        buf.mark_launched(tag, 0)
        assert buf.pick_ready(1) is None  # in flight
        buf.on_nack(tag)
        entry = buf.pick_ready(1)
        assert entry.tag == tag
        assert entry.state is EntryState.READY
        assert entry.flit.retransmissions == 1

    def test_nack_carries_advice(self):
        buf = RetransBuffer(2)
        tag = buf.admit(make_flit(1), 0, 0)
        buf.mark_launched(tag, 0)
        advice = NackAdvice(enable_obfuscation=True, method_index=2)
        buf.on_nack(tag, advice)
        assert buf.get(tag).ob_advice.method_index == 2

    def test_double_launch_raises(self):
        buf = RetransBuffer(2)
        tag = buf.admit(make_flit(1), 0, 0)
        buf.mark_launched(tag, 0)
        with pytest.raises(RuntimeError):
            buf.mark_launched(tag, 1)

    def test_selective_repeat_interleave(self):
        # A NACKed older entry does not block a younger ready entry once
        # the older one is in flight again (paper Fig. 7: flit 3 passes
        # while flit 2 awaits retransmission).
        buf = RetransBuffer(4)
        t1 = buf.admit(make_flit(1), 0, 0)
        t2 = buf.admit(make_flit(2), 0, 0)
        buf.mark_launched(t1, 0)
        buf.on_nack(t1)
        assert buf.pick_ready(1).tag == t1  # retransmit first (oldest)
        buf.mark_launched(t1, 1)
        assert buf.pick_ready(2).tag == t2  # younger proceeds meanwhile

    def test_defer_until_reorder(self):
        buf = RetransBuffer(4)
        t1 = buf.admit(make_flit(1), 0, 0)
        t2 = buf.admit(make_flit(2), 0, 0)
        buf.get(t1).defer_until = 10
        assert buf.pick_ready(5).tag == t2
        assert buf.pick_ready(10).tag == t1

    def test_oldest_wait(self):
        buf = RetransBuffer(2)
        buf.admit(make_flit(1), 0, 3)
        assert buf.oldest_wait(10) == 7
        assert RetransBuffer(2).oldest_wait(10) == 0

    def test_ack_unknown_tag_ignored(self):
        buf = RetransBuffer(2)
        assert buf.on_ack(999) is None
        buf.on_nack(999)  # no crash


class TestLink:
    def _link(self):
        return Link(0, Direction.EAST, 1, latency=1, ack_latency=1)

    def _tx(self, codeword=0xABC):
        return Transmission(
            tag=0, vc=0, vc_seq=0, codeword=codeword, flit=make_flit(),
            ob=None, launch_cycle=0,
        )

    def test_delivery_after_latency(self):
        link = self._link()
        link.launch(self._tx(), cycle=5)
        assert link.pop_arrivals(5) == []
        arrivals = link.pop_arrivals(6)
        assert len(arrivals) == 1

    def test_tamper_chain_applied_at_launch(self):
        link = self._link()

        class Flip:
            def tamper(self, cw, cycle):
                return cw ^ 0b11

        link.tamperers.append(Flip())
        tx = self._tx(codeword=0)
        link.launch(tx, 0)
        assert tx.codeword == 0b11
        assert link.corrupted_traversals == 1

    def test_acks_delayed(self):
        link = self._link()
        link.send_ack(AckMessage(tag=7, ok=True), cycle=3)
        assert link.pop_acks(3) == []
        acks = link.pop_acks(4)
        assert len(acks) == 1 and acks[0].tag == 7

    def test_idle_tracking(self):
        link = self._link()
        assert link.idle
        link.launch(self._tx(), 0)
        assert not link.idle
        link.pop_arrivals(1)
        assert link.idle

    def test_traversal_counter(self):
        link = self._link()
        for c in range(5):
            link.launch(self._tx(), c)
        assert link.traversals == 5
