"""Runner CLI: alias dedupe, seed threading, caching, parallel fan-out."""

import json

import pytest

from repro.experiments import runner, table1_tasp, table2_mitigation


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir


class TestExecutionPlan:
    def test_aliases_fold_once(self):
        plan = runner.execution_plan()
        assert "fig9" in plan
        assert "table1" not in plan  # same module as fig9
        assert len(plan) == len(set(plan))

    def test_first_alias_wins(self):
        assert runner.execution_plan(["table1", "fig9"]) == ["table1"]
        assert runner.execution_plan(["fig9", "table1"]) == ["fig9"]

    def test_all_covers_every_module(self):
        modules = {runner.EXPERIMENTS[n][0] for n in runner.execution_plan()}
        assert modules == {m for m, _ in runner.EXPERIMENTS.values()}


class TestSeedThreading:
    def test_seedable_module_gets_seed(self):
        from repro.experiments import load_curve

        assert runner._seed_kwargs(load_curve, 7) == {"seed": 7}

    def test_unseedable_module_is_untouched(self):
        assert runner._seed_kwargs(table1_tasp, 7) == {}

    def test_no_flag_means_module_defaults(self):
        from repro.experiments import load_curve

        assert runner._seed_kwargs(load_curve, None) == {}

    def test_seed_changes_cache_key(self):
        assert runner._cache_key(table2_mitigation, 0) != \
            runner._cache_key(table2_mitigation, 1)

    def test_aliases_share_cache_key(self):
        # fig9 and table1 resolve to the same module, hence one entry
        assert runner._cache_key(runner.EXPERIMENTS["fig9"][0], None) == \
            runner._cache_key(runner.EXPERIMENTS["table1"][0], None)


class TestCachedRuns:
    def test_second_run_replays_without_simulating(
        self, isolated_cache, capsys, monkeypatch
    ):
        assert runner.main(["table2"]) == 0
        first = capsys.readouterr().out

        def boom(*a, **k):  # pragma: no cover - would fail the test
            raise AssertionError("re-simulated on a cache hit")

        monkeypatch.setattr(table2_mitigation, "run", boom)
        assert runner.main(["table2"]) == 0
        second = capsys.readouterr().out
        assert "(cached)" in second
        # identical report modulo the timing line
        strip = lambda s: [l for l in s.splitlines() if "completed in" not in l]
        assert strip(first) == strip(second)

    def test_no_cache_flag_bypasses(self, isolated_cache, capsys, monkeypatch):
        assert runner.main(["table2"]) == 0
        capsys.readouterr()
        calls = []
        real = table2_mitigation.run
        monkeypatch.setattr(
            table2_mitigation, "run",
            lambda *a, **k: calls.append(1) or real(*a, **k),
        )
        assert runner.main(["table2", "--no-cache"]) == 0
        assert calls  # simulated despite the warm cache
        assert "(cached)" not in capsys.readouterr().out

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "elsewhere"
        assert runner.main(["table2", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert any(cache_dir.rglob("*.json"))


class TestParallelJson:
    def run_all_cheap(self, tmp_path, tag, jobs):
        out = tmp_path / tag / "results.json"
        out.parent.mkdir()
        code = runner.main(
            ["fig9", "table2", "--json", str(out), "--jobs", str(jobs),
             "--no-cache"]
        )
        assert code == 0
        return {
            p.name: json.loads(p.read_text())
            for p in out.parent.glob("results-*.json")
        }

    def test_jobs2_matches_serial(self, tmp_path, capsys):
        serial = self.run_all_cheap(tmp_path, "serial", jobs=1)
        parallel = self.run_all_cheap(tmp_path, "parallel", jobs=2)
        capsys.readouterr()
        assert set(serial) == {"results-fig9.json", "results-table2.json"}
        assert serial == parallel

    def test_single_experiment_json_unsuffixed(self, tmp_path, capsys):
        out = tmp_path / "one.json"
        assert runner.main(["table2", "--json", str(out), "--no-cache"]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["experiment"] == "table2"


class TestCliErrors:
    def test_unknown_experiment(self, capsys):
        assert runner.main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_list(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in runner.EXPERIMENTS:
            assert name in out
