"""Runner CLI: alias dedupe, seed threading, caching, parallel fan-out,
interrupt handling, resume and quarantine."""

import json
import os

import pytest

from repro.experiments import runner, table1_tasp, table2_mitigation


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir


class TestExecutionPlan:
    def test_aliases_fold_once(self):
        plan = runner.execution_plan()
        assert "fig9" in plan
        assert "table1" not in plan  # same module as fig9
        assert len(plan) == len(set(plan))

    def test_first_alias_wins(self):
        assert runner.execution_plan(["table1", "fig9"]) == ["table1"]
        assert runner.execution_plan(["fig9", "table1"]) == ["fig9"]

    def test_all_covers_every_module(self):
        modules = {runner.EXPERIMENTS[n][0] for n in runner.execution_plan()}
        assert modules == {m for m, _ in runner.EXPERIMENTS.values()}


class TestSeedThreading:
    def test_seedable_module_gets_seed(self):
        from repro.experiments import load_curve

        assert runner._seed_kwargs(load_curve, 7) == {"seed": 7}

    def test_unseedable_module_is_untouched(self):
        assert runner._seed_kwargs(table1_tasp, 7) == {}

    def test_no_flag_means_module_defaults(self):
        from repro.experiments import load_curve

        assert runner._seed_kwargs(load_curve, None) == {}

    def test_seed_changes_cache_key(self):
        assert runner._cache_key(table2_mitigation, 0) != \
            runner._cache_key(table2_mitigation, 1)

    def test_aliases_share_cache_key(self):
        # fig9 and table1 resolve to the same module, hence one entry
        assert runner._cache_key(runner.EXPERIMENTS["fig9"][0], None) == \
            runner._cache_key(runner.EXPERIMENTS["table1"][0], None)


class TestCachedRuns:
    def test_second_run_replays_without_simulating(
        self, isolated_cache, capsys, monkeypatch
    ):
        assert runner.main(["table2"]) == 0
        first = capsys.readouterr().out

        def boom(*a, **k):  # pragma: no cover - would fail the test
            raise AssertionError("re-simulated on a cache hit")

        monkeypatch.setattr(table2_mitigation, "run", boom)
        assert runner.main(["table2"]) == 0
        second = capsys.readouterr().out
        assert "(cached)" in second
        # identical report modulo the timing line
        strip = lambda s: [l for l in s.splitlines() if "completed in" not in l]
        assert strip(first) == strip(second)

    def test_no_cache_flag_bypasses(self, isolated_cache, capsys, monkeypatch):
        assert runner.main(["table2"]) == 0
        capsys.readouterr()
        calls = []
        real = table2_mitigation.run
        monkeypatch.setattr(
            table2_mitigation, "run",
            lambda *a, **k: calls.append(1) or real(*a, **k),
        )
        assert runner.main(["table2", "--no-cache"]) == 0
        assert calls  # simulated despite the warm cache
        assert "(cached)" not in capsys.readouterr().out

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "elsewhere"
        assert runner.main(["table2", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert any(cache_dir.rglob("*.json"))


class TestParallelJson:
    def run_all_cheap(self, tmp_path, tag, jobs):
        out = tmp_path / tag / "results.json"
        out.parent.mkdir()
        code = runner.main(
            ["fig9", "table2", "--json", str(out), "--jobs", str(jobs),
             "--no-cache"]
        )
        assert code == 0
        return {
            p.name: json.loads(p.read_text())
            for p in out.parent.glob("results-*.json")
        }

    def test_jobs2_matches_serial(self, tmp_path, capsys):
        serial = self.run_all_cheap(tmp_path, "serial", jobs=1)
        parallel = self.run_all_cheap(tmp_path, "parallel", jobs=2)
        capsys.readouterr()
        assert set(serial) == {"results-fig9.json", "results-table2.json"}
        assert serial == parallel

    def test_single_experiment_json_unsuffixed(self, tmp_path, capsys):
        out = tmp_path / "one.json"
        assert runner.main(["table2", "--json", str(out), "--no-cache"]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["experiment"] == "table2"


def _fake_worker(calls=None, fail=None, interrupt_on=None):
    """An instant stand-in for runner._worker with scripted outcomes."""

    def fake(task):
        name = task[0]
        if calls is not None:
            calls.append(name)
        if name == interrupt_on:
            raise KeyboardInterrupt
        if name == fail:
            return (name, False, 0.0, "Traceback: boom", "RuntimeError: boom")
        return (name, True, 0.0, f"[{name} ok]", "")

    return fake


class TestInterruptAndResume:
    PLAN = ["fig9", "table2", "flood"]

    def run_plan(self, state, extra=()):
        return runner.main(
            self.PLAN + ["--state", str(state), "--no-cache", *extra]
        )

    def test_interrupt_prints_partial_table_and_exits_130(
        self, tmp_path, capsys, monkeypatch
    ):
        state = tmp_path / "state.json"
        monkeypatch.setattr(
            runner, "_worker", _fake_worker(interrupt_on="table2")
        )
        assert self.run_plan(state) == 130
        captured = capsys.readouterr()
        # the completed experiment made it into the pass/fail table
        assert "fig9" in captured.out and "pass" in captured.out
        assert "1/1 experiments passed" in captured.out
        assert "--resume" in captured.err
        assert state.exists()

    def test_resume_skips_completed_and_clears_state(
        self, tmp_path, capsys, monkeypatch
    ):
        state = tmp_path / "state.json"
        monkeypatch.setattr(
            runner, "_worker", _fake_worker(interrupt_on="table2")
        )
        assert self.run_plan(state) == 130
        capsys.readouterr()

        calls: list = []
        monkeypatch.setattr(runner, "_worker", _fake_worker(calls))
        assert self.run_plan(state, ["--resume"]) == 0
        captured = capsys.readouterr()
        assert calls == ["table2", "flood"]  # fig9 replayed from state
        assert "[fig9 ok]" in captured.out
        assert "3/3 experiments passed" in captured.out
        assert not state.exists()  # a clean batch leaves nothing behind

    def test_resume_reruns_failures(self, tmp_path, capsys, monkeypatch):
        state = tmp_path / "state.json"
        monkeypatch.setattr(runner, "_worker", _fake_worker(fail="table2"))
        assert self.run_plan(state) == 1
        capsys.readouterr()

        calls: list = []
        monkeypatch.setattr(runner, "_worker", _fake_worker(calls))
        assert self.run_plan(state, ["--resume"]) == 0
        capsys.readouterr()
        assert calls == ["table2"]  # only the failure runs again

    def test_resume_ignores_state_from_other_invocation(
        self, tmp_path, capsys, monkeypatch
    ):
        state = tmp_path / "state.json"
        monkeypatch.setattr(
            runner, "_worker", _fake_worker(interrupt_on="flood")
        )
        assert self.run_plan(state) == 130
        capsys.readouterr()

        calls: list = []
        monkeypatch.setattr(runner, "_worker", _fake_worker(calls))
        # different seed => different state key => everything reruns
        assert self.run_plan(state, ["--resume", "--seed", "9"]) == 0
        capsys.readouterr()
        assert calls == self.PLAN

    def test_garbage_state_file_is_a_fresh_start(
        self, tmp_path, capsys, monkeypatch
    ):
        state = tmp_path / "state.json"
        state.write_text("{ not json")
        calls: list = []
        monkeypatch.setattr(runner, "_worker", _fake_worker(calls))
        assert self.run_plan(state, ["--resume"]) == 0
        capsys.readouterr()
        assert calls == self.PLAN


class TestStateRetryTiming:
    """Retry timing rides along in the state file and survives resume."""

    def test_retries_round_trip(self, tmp_path):
        state = tmp_path / "state.json"
        rows = {"fig9": ("fig9", True, 1.2, "[ok]", "")}
        retries = {
            "fig9": {"attempts": 3, "delays": [0.01, 0.02], "seconds": 4.5}
        }
        runner._save_state(state, "key-1", rows, retries)
        loaded_rows, loaded_retries = runner._load_state(state, "key-1")
        assert loaded_rows == rows
        assert loaded_retries == retries

    def test_pre_retry_state_files_still_load(self, tmp_path):
        # state written before retry timing existed has no "retries" key
        state = tmp_path / "state.json"
        runner._save_state(
            state, "key-1", {"fig9": ("fig9", True, 1.2, "[ok]", "")}
        )
        with open(state, encoding="utf-8") as fh:
            data = json.load(fh)
        del data["retries"]
        state.write_text(json.dumps(data), encoding="utf-8")
        rows, retries = runner._load_state(state, "key-1")
        assert "fig9" in rows
        assert retries == {}

    def test_retries_for_unknown_rows_are_dropped(self, tmp_path):
        state = tmp_path / "state.json"
        runner._save_state(
            state, "key-1",
            {"fig9": ("fig9", True, 1.2, "[ok]", "")},
            {"ghost": {"attempts": 2, "delays": [0.5], "seconds": 1.0},
             "fig9": "not-a-dict"},
        )
        _, retries = runner._load_state(state, "key-1")
        assert retries == {}


class TestQuarantine:
    def test_dead_worker_is_quarantined_not_fatal(
        self, tmp_path, capsys, monkeypatch
    ):
        state = tmp_path / "state.json"

        def fake(task):
            name = task[0]
            if name == "fig9":
                os._exit(5)  # dies in the forked worker, posts nothing
            return (name, True, 0.0, f"[{name} ok]", "")

        monkeypatch.setattr(runner, "_worker", fake)
        code = runner.main(
            [
                "fig9", "table2", "flood",
                "--jobs", "2", "--max-retries", "1",
                "--state", str(state), "--no-cache",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "quarantined: fig9" in captured.out
        assert "2/3 experiments passed" in captured.out
        assert "worker died" in captured.err
        assert "[table2 ok]" in captured.out and "[flood ok]" in captured.out
        # quarantine leaves the state file for a later --resume
        assert state.exists()


class TestCliErrors:
    def test_unknown_experiment(self, capsys):
        assert runner.main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_list(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in runner.EXPERIMENTS:
            assert name in out


class TestForensicsWiring:
    """--forensics-dir / --shrink: bundle paths flow into rows."""

    def doomed_module(self, tmp_path, bundle=None):
        import types

        def failing_run():
            exc = RuntimeError("sentinel tripped")
            if bundle is not None:
                exc.repro_bundle = bundle
            raise exc

        return types.SimpleNamespace(
            __name__="doomed", run=failing_run,
            format_result=lambda result: "",
        )

    def test_worker_names_the_bundle(self, tmp_path, monkeypatch):
        bundle = tmp_path / "doomed" / "doomed-c000000000096.repro"
        monkeypatch.setitem(
            runner.EXPERIMENTS, "doomed",
            (self.doomed_module(tmp_path, bundle), "planted failure"),
        )
        name, ok, _, report, error = runner._worker(
            ("doomed", None, None, None, False, str(tmp_path), False, None)
        )
        assert (name, ok) == ("doomed", False)
        assert f"[bundle: {bundle}]" in error
        assert f"[repro bundle: {bundle}]" in report
        # the env var armed in the worker never leaks out
        assert "REPRO_FORENSICS_DIR" not in os.environ

    def test_worker_arms_the_environment(self, tmp_path, monkeypatch):
        import types

        seen = {}

        def spying_run():
            seen["dir"] = os.environ.get("REPRO_FORENSICS_DIR")
            return {}

        module = types.SimpleNamespace(
            __name__="spy", run=spying_run,
            format_result=lambda result: "[spy ok]",
        )
        monkeypatch.setitem(runner.EXPERIMENTS, "spy", (module, "spy"))
        _, ok, _, _, _ = runner._worker(
            ("spy", None, None, None, False, str(tmp_path / "fx"), False,
             None)
        )
        assert ok
        assert seen["dir"] == str(tmp_path / "fx" / "spy")
        assert "REPRO_FORENSICS_DIR" not in os.environ

    def test_worker_shrinks_on_request(self, tmp_path, monkeypatch):
        import types

        bundle = tmp_path / "doomed" / "doomed-c000000000096.repro"
        monkeypatch.setitem(
            runner.EXPERIMENTS, "doomed",
            (self.doomed_module(tmp_path, bundle), "planted failure"),
        )
        shrunk = tmp_path / "doomed" / "doomed-shrunk-c000000000042.repro"
        fake_result = types.SimpleNamespace(
            diff=lambda: "traffic: 2 -> 1"
        )
        import repro.sim.shrink as shrink_mod

        monkeypatch.setattr(
            shrink_mod, "shrink_bundle",
            lambda b: (fake_result, shrunk),
        )
        _, ok, _, report, error = runner._worker(
            ("doomed", None, None, None, False, str(tmp_path), True, None)
        )
        assert not ok
        assert f"[shrunk: {shrunk}]" in error
        assert "traffic: 2 -> 1" in report

    def test_worker_reports_shrink_failure(self, tmp_path, monkeypatch):
        import types

        bundle = tmp_path / "doomed" / "missing.repro"
        monkeypatch.setitem(
            runner.EXPERIMENTS, "doomed",
            (self.doomed_module(tmp_path, bundle), "planted failure"),
        )
        _, ok, _, report, error = runner._worker(
            ("doomed", None, None, None, False, str(tmp_path), True, None)
        )
        assert not ok
        assert "[shrink failed:" in report  # bundle path doesn't exist
        assert f"[bundle: {bundle}]" in error

    def test_shrink_requires_forensics_dir(self, capsys):
        assert runner.main(["table2", "--shrink"]) == 2
        assert "--forensics-dir" in capsys.readouterr().err

    def test_quarantine_rows_name_salvaged_bundles(
        self, tmp_path, capsys, monkeypatch
    ):
        """A worker that dies outright can still leave bundles on disk;
        the quarantine row must point at them."""
        forensics = tmp_path / "fx"
        left_behind = forensics / "fig9" / "fig9-c000000000123.repro"
        left_behind.mkdir(parents=True)

        def fake(task):
            name = task[0]
            if name == "fig9":
                os._exit(5)
            return (name, True, 0.0, f"[{name} ok]", "")

        monkeypatch.setattr(runner, "_worker", fake)
        code = runner.main(
            [
                "fig9", "table2", "flood",
                "--jobs", "2", "--max-retries", "0",
                "--state", str(tmp_path / "state.json"), "--no-cache",
                "--forensics-dir", str(forensics),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "quarantined: fig9" in captured.out
        assert str(left_behind) in captured.err  # row error names it
