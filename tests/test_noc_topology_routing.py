"""Unit + property tests for mesh topology and routing."""

import pytest
from hypothesis import given, strategies as st

from repro.noc import NoCConfig, PAPER_CONFIG
from repro.noc.routing import TableRouting, xy_route, yx_route
from repro.noc.topology import (
    BASE_DIRECTIONS,
    Direction,
    OPPOSITE,
    all_links,
    is_express,
    link_endpoints,
    links_on_xy_path,
    neighbor,
    neighbors,
)

CFG = PAPER_CONFIG
ROUTERS = st.integers(min_value=0, max_value=CFG.num_routers - 1)


class TestTopology:
    def test_corner_has_two_neighbors(self):
        assert len(neighbors(CFG, 0)) == 2

    def test_center_has_four_neighbors(self):
        assert len(neighbors(CFG, 5)) == 4

    def test_edge_has_three_neighbors(self):
        assert len(neighbors(CFG, 1)) == 3

    def test_neighbor_directions(self):
        n = neighbors(CFG, 5)  # (1,1)
        assert n[Direction.EAST] == 6
        assert n[Direction.WEST] == 4
        assert n[Direction.NORTH] == 9
        assert n[Direction.SOUTH] == 1

    def test_off_mesh_is_none(self):
        assert neighbor(CFG, 0, Direction.WEST) is None
        assert neighbor(CFG, 0, Direction.SOUTH) is None

    def test_48_links_on_paper_mesh(self):
        assert len(all_links(CFG)) == 48

    def test_links_are_unique(self):
        links = all_links(CFG)
        assert len(set(links)) == len(links)

    @given(ROUTERS, st.sampled_from(list(Direction)))
    def test_neighbor_symmetry(self, router, direction):
        n = neighbor(CFG, router, direction)
        if n is not None:
            assert neighbor(CFG, n, OPPOSITE[direction]) == router

    def test_link_endpoints(self):
        assert link_endpoints(CFG, (0, Direction.EAST)) == (0, 1)
        with pytest.raises(ValueError):
            link_endpoints(CFG, (0, Direction.WEST))

    def test_every_corner_loses_the_same_two_directions(self):
        """Boundary sweep: each corner's off-mesh directions."""
        corners = {
            0: {Direction.WEST, Direction.SOUTH},
            3: {Direction.EAST, Direction.SOUTH},
            12: {Direction.WEST, Direction.NORTH},
            15: {Direction.EAST, Direction.NORTH},
        }
        for router, off_mesh in corners.items():
            for direction in BASE_DIRECTIONS:
                result = neighbor(CFG, router, direction)
                assert (result is None) == (direction in off_mesh)

    def test_express_directions_absent_on_plain_mesh(self):
        for router in range(CFG.num_routers):
            for direction in Direction:
                if is_express(direction):
                    assert neighbor(CFG, router, direction) is None

    def test_8x8_link_count(self):
        """2 directed links per interior edge: 2 * 2 * 7 * 8."""
        from repro.noc import NoCConfig

        mesh8 = NoCConfig(mesh_width=8, mesh_height=8)
        links = all_links(mesh8)
        assert len(links) == 224
        assert len(set(links)) == 224

    def test_xy_path_to_self_is_empty(self):
        assert links_on_xy_path(CFG, 5, 5) == []

    def test_xy_path_same_row_is_straight(self):
        assert links_on_xy_path(CFG, 4, 7) == [
            (4, Direction.EAST), (5, Direction.EAST), (6, Direction.EAST)
        ]
        assert links_on_xy_path(CFG, 7, 4) == [
            (7, Direction.WEST), (6, Direction.WEST), (5, Direction.WEST)
        ]

    def test_xy_path_same_column_is_straight(self):
        assert links_on_xy_path(CFG, 1, 13) == [
            (1, Direction.NORTH), (5, Direction.NORTH),
            (9, Direction.NORTH),
        ]

    @given(ROUTERS, ROUTERS)
    def test_xy_path_links_chain_src_to_dst(self, src, dst):
        """Each link starts where the previous one ended; the chain
        spans src to dst with minimal length."""
        path = links_on_xy_path(CFG, src, dst)
        cur = src
        for key in path:
            assert key[0] == cur
            cur = link_endpoints(CFG, key)[1]
        assert cur == dst
        sx, sy = CFG.router_xy(src)
        dx, dy = CFG.router_xy(dst)
        assert len(path) == abs(dx - sx) + abs(dy - sy)


class TestXYRouting:
    @given(ROUTERS, ROUTERS)
    def test_reaches_destination(self, src, dst):
        cur = src
        for _ in range(CFG.num_routers):
            step = xy_route(CFG, cur, dst)
            if step is None:
                break
            cur = neighbor(CFG, cur, step)
        assert cur == dst

    @given(ROUTERS, ROUTERS)
    def test_minimal_path(self, src, dst):
        hops = 0
        cur = src
        while True:
            step = xy_route(CFG, cur, dst)
            if step is None:
                break
            cur = neighbor(CFG, cur, step)
            hops += 1
        assert hops == CFG.hop_distance(src, dst)

    def test_x_before_y(self):
        # 0 -> 15: go east first
        assert xy_route(CFG, 0, 15) == Direction.EAST
        # aligned in x: go north
        assert xy_route(CFG, 3, 15) == Direction.NORTH

    def test_at_destination(self):
        assert xy_route(CFG, 7, 7) is None

    @given(ROUTERS, ROUTERS)
    def test_yx_reaches_destination(self, src, dst):
        cur = src
        for _ in range(CFG.num_routers):
            step = yx_route(CFG, cur, dst)
            if step is None:
                break
            cur = neighbor(CFG, cur, step)
        assert cur == dst

    def test_yx_y_first(self):
        assert yx_route(CFG, 0, 15) == Direction.NORTH

    def test_links_on_xy_path(self):
        path = links_on_xy_path(CFG, 0, 15)
        assert len(path) == 6
        assert path[0] == (0, Direction.EAST)
        assert path[2] == (2, Direction.EAST)
        assert path[3] == (3, Direction.NORTH)


class TestTableRouting:
    def test_from_xy_matches_xy(self):
        table = TableRouting.from_xy(CFG)
        for src in range(CFG.num_routers):
            for dst in range(CFG.num_routers):
                if src != dst:
                    assert table.route(src, dst) == xy_route(CFG, src, dst)

    def test_path_helper(self):
        table = TableRouting.from_xy(CFG)
        assert table.path(0, 15) == [0, 1, 2, 3, 7, 11, 15]

    def test_missing_entry_raises(self):
        table = TableRouting(CFG, {(0, 1): Direction.EAST})
        with pytest.raises(KeyError):
            table.route(0, 2)

    def test_route_at_destination_is_none(self):
        table = TableRouting(CFG, {})
        assert table.route(3, 3) is None

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            TableRouting(CFG, {(0, 5): Direction.WEST})  # off-mesh

    def test_self_route_rejected(self):
        with pytest.raises(ValueError):
            TableRouting(CFG, {(1, 1): Direction.EAST})

    def test_loop_detected(self):
        table = TableRouting(
            CFG, {(0, 2): Direction.EAST, (1, 2): Direction.WEST}
        )
        with pytest.raises(RuntimeError):
            table.path(0, 2)
