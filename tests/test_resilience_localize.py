"""TopologyLocalizer: footprint fusion, clustering, non-maximum
suppression, and the stream/version contract — driven by synthetic
DetectionEvents so every geometry is exact."""

import dataclasses

import pytest

from repro.noc.config import NoCConfig
from repro.noc.topology import Direction
from repro.resilience.detect import DetectionEvent
from repro.resilience.localize import (
    AttackerEstimate,
    LocalizeConfig,
    TopologyLocalizer,
)

CFG = NoCConfig(mesh_width=8, mesh_height=8)
EAST = Direction.EAST
WEST = Direction.WEST


def link_flag(cycle, link, z):
    return DetectionEvent(cycle, "suspect_link", link=link, z=z)


def router_flag(cycle, router, z):
    return DetectionEvent(cycle, "suspect_router", router=router, z=z)


def make(cfg=CFG, **knobs):
    return TopologyLocalizer(cfg, LocalizeConfig(**knobs))


class TestConfigValidation:
    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            LocalizeConfig(cluster_radius=-1)

    def test_rejects_negative_min_score(self):
        with pytest.raises(ValueError):
            LocalizeConfig(min_score=-0.5)

    def test_rejects_zero_attacker_cap(self):
        with pytest.raises(ValueError):
            LocalizeConfig(max_attackers=0)


class TestFootprintIngestion:
    def test_repeated_flag_keeps_strongest_z(self):
        loc = make(min_score=0.0)
        loc._on_detect(link_flag(100, (9, EAST), z=4.0))
        loc._on_detect(link_flag(200, (9, EAST), z=9.0))
        loc._on_detect(link_flag(300, (9, EAST), z=2.0))  # weaker: dropped
        assert loc.flags_fused == 2
        assert len(loc._footprints) == 1
        assert loc._footprints[("link", (9, EAST))].z == 9.0

    def test_unknown_kind_ignored(self):
        loc = make(min_score=0.0)
        loc._on_detect(DetectionEvent(50, "heartbeat"))
        assert loc.flags_fused == 0
        assert loc.estimates() == ()

    def test_router_only_footprints_place_nothing(self):
        # back-pressure symptoms alone name no channel
        loc = make(min_score=0.0)
        loc._on_detect(router_flag(100, 9, z=20.0))
        loc._on_detect(router_flag(100, 10, z=20.0))
        assert loc.estimates() == ()
        assert loc.summary()["footprints"] == 2


class TestClusteringAndScoring:
    def test_single_flag_places_the_flagged_link(self):
        loc = make(min_score=5.0)
        loc._on_detect(link_flag(100, (9, EAST), z=8.0))
        (est,) = loc.estimates()
        assert est == AttackerEstimate(
            link=(9, EAST), router=9, score=8.0, cluster_size=1, cycle=100
        )

    def test_min_score_gates_the_cluster(self):
        loc = make(min_score=10.0)
        loc._on_detect(link_flag(100, (9, EAST), z=6.0))
        assert loc.estimates() == ()
        loc._on_detect(link_flag(164, (10, EAST), z=6.0))  # mass now 12
        assert len(loc.estimates()) == 1

    def test_neighboring_footprints_sharpen_the_strongest(self):
        # attacker at (9,E); upstream spill on (8,E) and congestion at
        # router 10 — one cluster, one estimate, at the true link
        loc = make(min_score=5.0)
        loc._on_detect(link_flag(100, (9, EAST), z=12.0))
        loc._on_detect(link_flag(110, (8, EAST), z=3.0))
        loc._on_detect(router_flag(120, 10, z=4.0))
        (est,) = loc.estimates()
        assert est.link == (9, EAST)
        assert est.cluster_size == 3
        # explains all three footprints at distance <= 1
        assert est.score > 12.0

    def test_distant_clusters_stay_separate(self):
        loc = make(min_score=5.0, cluster_radius=2)
        loc._on_detect(link_flag(100, (0, EAST), z=8.0))
        loc._on_detect(link_flag(100, (54, EAST), z=8.0))
        links = {e.link for e in loc.estimates()}
        assert links == {(0, EAST), (54, EAST)}

    def test_clustering_wraps_on_the_torus(self):
        # routers 0 and 7 are 7 hops apart on the mesh, 1 on the torus
        torus = dataclasses.replace(CFG, topology="torus")
        for cfg, expected_clusters in ((CFG, 2), (torus, 1)):
            loc = make(cfg=cfg, min_score=0.0, cluster_radius=2)
            loc._on_detect(link_flag(100, (0, EAST), z=8.0))
            loc._on_detect(link_flag(100, (7, WEST), z=8.0))
            sizes = sorted(e.cluster_size for e in loc.estimates())
            if expected_clusters == 1:
                assert all(size == 2 for size in sizes)
            else:
                assert sizes == [1, 1]


class TestNonMaximumSuppression:
    def test_false_flag_adjacent_to_attacker_merges_into_it(self):
        loc = make(min_score=5.0, cluster_radius=2)
        loc._on_detect(link_flag(100, (9, EAST), z=12.0))
        loc._on_detect(link_flag(100, (10, EAST), z=2.0))  # spillover
        (est,) = loc.estimates()
        assert est.link == (9, EAST)

    def test_bridged_cluster_still_yields_one_estimate_per_attacker(self):
        # two true attackers 4 hops apart, chained into ONE cluster by
        # a congested router midway — NMS must split them back out
        loc = make(min_score=5.0, cluster_radius=2)
        loc._on_detect(link_flag(100, (8, EAST), z=12.0))
        loc._on_detect(router_flag(100, 10, z=3.0))  # the bridge
        loc._on_detect(link_flag(100, (12, EAST), z=12.0))
        estimates = loc.estimates()
        assert {e.link for e in estimates} == {(8, EAST), (12, EAST)}
        assert all(e.cluster_size == 3 for e in estimates)

    def test_tie_breaks_on_smallest_link_key(self):
        loc = make(min_score=0.0, cluster_radius=0)
        # equal z, far apart, radius 0: both survive — but make them
        # adjacent with radius 1 and the smaller key must win
        loc = make(min_score=0.0, cluster_radius=1)
        loc._on_detect(link_flag(100, (9, EAST), z=8.0))
        loc._on_detect(link_flag(100, (10, EAST), z=8.0))
        kept = {e.link for e in loc.estimates()}
        assert (9, EAST) in kept
        assert (10, EAST) not in kept

    def test_max_attackers_keeps_the_strongest(self):
        loc = make(min_score=0.0, cluster_radius=0, max_attackers=2)
        for router, z in ((0, 3.0), (18, 9.0), (36, 6.0), (54, 12.0)):
            loc._on_detect(link_flag(100, (router, EAST), z=z))
        links = [e.link for e in loc.estimates()]
        assert links == [(54, EAST), (18, EAST)]


class TestStreamContract:
    def test_version_bumps_only_on_placement_changes(self):
        loc = make(min_score=5.0)
        assert loc.version == 0
        loc._on_detect(link_flag(100, (9, EAST), z=8.0))
        assert loc.version == 1
        # same placement, higher score: silent refinement
        loc._on_detect(link_flag(200, (9, EAST), z=11.0))
        assert loc.version == 1
        loc._on_detect(link_flag(300, (54, EAST), z=8.0))
        assert loc.version == 2

    def test_events_mirror_fresh_estimates(self):
        loc = make(min_score=5.0)
        seen = []
        loc.event_hooks.append(seen.append)
        loc._on_detect(link_flag(100, (9, EAST), z=8.0))
        loc._on_detect(link_flag(150, (9, EAST), z=9.0))
        assert [e.link for e in loc.events] == [(9, EAST)]
        assert seen == loc.events
        assert seen[0].kind == "estimate"
        assert "cluster=1" in seen[0].detail

    def test_detach_unsubscribes(self):
        from repro.noc.network import Network
        from repro.resilience.detect import (
            DetectConfig,
            TrafficStatsDetector,
        )
        from repro.resilience.watchdog import RetransWatchdog, WatchdogConfig

        net = Network(CFG)
        wd = RetransWatchdog(WatchdogConfig()).attach(net)
        det = TrafficStatsDetector(DetectConfig()).attach(net, wd)
        loc = TopologyLocalizer(CFG).attach(det)
        assert loc._on_detect in det.event_hooks
        loc.detach()
        assert loc._on_detect not in det.event_hooks
        loc.detach()  # idempotent

    def test_summary_shape(self):
        loc = make(min_score=5.0)
        loc._on_detect(link_flag(100, (9, EAST), z=8.0))
        summary = loc.summary()
        assert summary["flags_fused"] == 1
        assert summary["footprints"] == 1
        (est,) = summary["estimates"]
        assert est == {
            "link": "9->EAST",
            "router": 9,
            "score": 8.0,
            "cluster_size": 1,
            "cycle": 100,
        }
