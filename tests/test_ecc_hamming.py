"""Unit + property tests for the SECDED codec.

The trojan's entire attack rests on three codec properties, all proven
here over random words:

1. round-trip identity for clean words;
2. every 1-bit error is corrected to the original data;
3. every 2-bit error is detected but NOT corrected (forces retransmission).
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import SECDED_72_64, DecodeStatus, Secded
from repro.util.bits import mask, parity

WORDS = st.integers(min_value=0, max_value=mask(64))


class TestConstruction:
    def test_codeword_width(self):
        assert SECDED_72_64.codeword_bits == 72

    def test_check_bits(self):
        assert SECDED_72_64.check_bits == 7

    def test_small_code(self):
        c = Secded(8)
        # 8 data bits need 4 Hamming checks + extended bit = 13.
        assert c.codeword_bits == 13

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Secded(0)

    def test_encode_out_of_range(self):
        with pytest.raises(ValueError):
            SECDED_72_64.encode(1 << 64)

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            SECDED_72_64.decode(1 << 72)


class TestCleanPath:
    @given(WORDS)
    def test_roundtrip(self, data):
        cw = SECDED_72_64.encode(data)
        res = SECDED_72_64.decode(cw)
        assert res.status is DecodeStatus.CLEAN
        assert res.data == data
        assert res.syndrome == 0

    @given(WORDS)
    def test_codeword_has_even_parity(self, data):
        assert parity(SECDED_72_64.encode(data)) == 0

    @given(WORDS)
    def test_extract_matches_encode(self, data):
        assert SECDED_72_64.extract(SECDED_72_64.encode(data)) == data

    def test_zero_word(self):
        assert SECDED_72_64.encode(0) == 0

    def test_encoding_is_linear(self):
        # Linearity is what makes L-Ob's scramble (XOR of two flits)
        # land on a valid codeword of the XOR of the payloads.
        a, b = 0xDEADBEEFCAFEF00D, 0x0123456789ABCDEF
        ea, eb = SECDED_72_64.encode(a), SECDED_72_64.encode(b)
        assert ea ^ eb == SECDED_72_64.encode(a ^ b)

    @given(WORDS, WORDS)
    def test_linearity_property(self, a, b):
        c = SECDED_72_64
        assert c.encode(a) ^ c.encode(b) == c.encode(a ^ b)


class TestSingleErrorCorrection:
    @given(WORDS, st.integers(min_value=0, max_value=71))
    def test_any_single_flip_corrected(self, data, pos):
        cw = SECDED_72_64.encode(data) ^ (1 << pos)
        res = SECDED_72_64.decode(cw)
        assert res.status is DecodeStatus.CORRECTED
        assert res.data == data
        assert res.corrected_bit == pos

    def test_extended_parity_bit_flip(self):
        data = 0x5555AAAA5555AAAA
        cw = SECDED_72_64.encode(data) ^ (1 << 71)
        res = SECDED_72_64.decode(cw)
        assert res.status is DecodeStatus.CORRECTED
        assert res.data == data
        assert res.corrected_bit == 71

    def test_exhaustive_single_errors_on_one_word(self):
        data = 0xFEEDFACEDEADBEEF
        cw = SECDED_72_64.encode(data)
        for pos in range(72):
            res = SECDED_72_64.decode(cw ^ (1 << pos))
            assert res.status is DecodeStatus.CORRECTED
            assert res.data == data


class TestDoubleErrorDetection:
    @given(
        WORDS,
        st.integers(min_value=0, max_value=71),
        st.integers(min_value=0, max_value=71),
    )
    def test_any_double_flip_detected(self, data, p1, p2):
        if p1 == p2:
            return
        cw = SECDED_72_64.encode(data) ^ (1 << p1) ^ (1 << p2)
        res = SECDED_72_64.decode(cw)
        assert res.status is DecodeStatus.DETECTED
        assert res.needs_retransmission

    @settings(max_examples=20)
    @given(WORDS)
    def test_exhaustive_adjacent_double_errors(self, data):
        cw = SECDED_72_64.encode(data)
        for pos in range(71):
            corrupted = cw ^ (0b11 << pos)
            assert (
                SECDED_72_64.decode(corrupted).status is DecodeStatus.DETECTED
            )

    def test_all_pairs_on_small_code(self):
        c = Secded(8)
        cw = c.encode(0xA7)
        for p1, p2 in itertools.combinations(range(c.codeword_bits), 2):
            res = c.decode(cw ^ (1 << p1) ^ (1 << p2))
            assert res.status is DecodeStatus.DETECTED


class TestTripleErrors:
    def test_triple_error_not_flagged_clean(self):
        # Triple errors may miscorrect (SDC) but must never decode CLEAN
        # to the original codeword silently claiming zero errors AND
        # original data.
        data = 0x0F0F0F0F0F0F0F0F
        cw = SECDED_72_64.encode(data)
        corrupted = cw ^ 0b111
        res = SECDED_72_64.decode(corrupted)
        if res.status is DecodeStatus.CLEAN:
            # would require the error to be a codeword, impossible for
            # weight-3 in a distance-4 code
            pytest.fail("triple error decoded as CLEAN")

    def test_triple_error_may_miscorrect(self):
        # Documenting (not just tolerating) SDC behaviour: at least one
        # triple error on this word miscorrects to wrong data.
        data = 0x1234567812345678
        cw = SECDED_72_64.encode(data)
        saw_sdc = False
        for pos in range(0, 69):
            res = SECDED_72_64.decode(cw ^ (0b111 << pos))
            if res.status is DecodeStatus.CORRECTED and res.data != data:
                saw_sdc = True
                break
        assert saw_sdc


class TestSyndromes:
    @given(WORDS, st.integers(min_value=0, max_value=70))
    def test_single_error_syndrome_is_position(self, data, pos):
        cw = SECDED_72_64.encode(data) ^ (1 << pos)
        res = SECDED_72_64.decode(cw)
        assert res.syndrome == pos + 1

    @given(WORDS)
    def test_clean_zero_syndrome(self, data):
        assert SECDED_72_64.syndrome(SECDED_72_64.encode(data)) == 0

    def test_double_error_syndrome_is_xor_of_positions(self):
        data = 0xCAFE
        cw = SECDED_72_64.encode(data)
        p1, p2 = 5, 9
        res = SECDED_72_64.decode(cw ^ (1 << p1) ^ (1 << p2))
        assert res.syndrome == (p1 + 1) ^ (p2 + 1)


class TestDataPositionMapping:
    def test_mapping_is_consistent_with_extract(self):
        c = SECDED_72_64
        for data_idx in (0, 1, 31, 63):
            cw_idx = c.data_index_to_codeword_index(data_idx)
            cw = c.encode(1 << data_idx)
            assert cw >> cw_idx & 1 == 1

    def test_positions_skip_powers_of_two(self):
        c = SECDED_72_64
        check_indices = {0, 1, 3, 7, 15, 31, 63}
        for data_idx in range(64):
            assert c.data_index_to_codeword_index(data_idx) not in check_indices
