"""Fault-injection campaigns with continuous invariant auditing.

Every conservation law must hold each cycle no matter what combination
of trojans, stuck wires, transient noise, obfuscation and QoS policies
is active — this is the harness that catches flow-control bugs.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import TdmConfig, TdmPolicy
from repro.core import TargetSpec, TaspConfig, TaspTrojan, build_mitigated_network
from repro.faults import PermanentFault, StuckAtKind, TransientFaultModel
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.invariants import InvariantViolation, NetworkValidator
from repro.noc.topology import Direction
from repro.traffic import SyntheticConfig, SyntheticSource, uniform_random
from repro.util.rng import SeededStream


def audited_run(net, cycles, every=3):
    validator = NetworkValidator(net)
    for i in range(cycles):
        net.step()
        if i % every == 0:
            validator.check()
    validator.check()
    return validator.report


class TestCleanNetworkInvariants:
    def test_idle_network(self):
        report = audited_run(Network(PAPER_CONFIG), 50)
        assert report.ok and report.checks > 10

    def test_loaded_network(self):
        net = Network(PAPER_CONFIG)
        net.set_traffic(
            SyntheticSource(
                PAPER_CONFIG, uniform_random,
                SyntheticConfig(injection_rate=0.03, duration=150,
                                payload_words=2),
                seed=1,
            )
        )
        assert audited_run(net, 400).ok

    def test_multi_flit_contention(self):
        net = Network(PAPER_CONFIG)
        for pid in range(60):
            net.add_packet(
                Packet(pkt_id=pid, src_core=(pid * 4) % 64, dst_core=21,
                       vc_class=pid % 4, payload=[pid] * 3, created_cycle=0)
            )
        assert audited_run(net, 600).ok


class TestInvariantsUnderAttack:
    def test_unmitigated_trojan_deadlock_conserves(self):
        # even a deadlocking network must never corrupt flow control
        net = Network(PAPER_CONFIG)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(40):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, created_cycle=0)
            )
        assert audited_run(net, 800).ok

    def test_mitigated_trojan_conserves(self):
        net = build_mitigated_network(PAPER_CONFIG)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(30):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, payload=[0xAB], created_cycle=0)
            )
        assert audited_run(net, 800).ok

    def test_scramble_heavy_mitigation_conserves(self):
        from repro.core import Granularity, MitigationConfig, ObMethod

        mcfg = MitigationConfig(
            method_sequence=(
                (ObMethod.SCRAMBLE, Granularity.FULL),
                (ObMethod.INVERT, Granularity.FULL),
            )
        )
        net = build_mitigated_network(PAPER_CONFIG, mcfg)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        for pid in range(25):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, payload=[0xCD], created_cycle=0)
            )
        assert audited_run(net, 1000).ok

    def test_transient_storm_conserves(self):
        net = Network(PAPER_CONFIG)
        for i, key in enumerate([(0, Direction.EAST), (5, Direction.NORTH),
                                 (10, Direction.WEST)]):
            net.attach_tamperer(
                key,
                TransientFaultModel(
                    net.codec.codeword_bits, 0.3,
                    SeededStream(i, "storm"), double_fraction=0.5,
                ),
            )
        net.set_traffic(
            SyntheticSource(
                PAPER_CONFIG, uniform_random,
                SyntheticConfig(injection_rate=0.02, duration=200),
                seed=4,
            )
        )
        assert audited_run(net, 500).ok

    def test_tdm_policy_conserves(self):
        policy = TdmPolicy(TdmConfig(2), 4)
        net = Network(PAPER_CONFIG, policy=policy)
        for pid in range(40):
            domain = pid % 2
            net.add_packet(
                Packet(pkt_id=pid, src_core=domain, dst_core=63,
                       vc_class=policy.vc_for(domain), domain=domain,
                       created_cycle=0)
            )
        assert audited_run(net, 500).ok

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_fault_campaign_property(self, seed):
        """Random combination of fault sources: conservation always holds."""
        stream = SeededStream(seed, "campaign")
        net = Network(PAPER_CONFIG)
        from repro.noc.topology import all_links

        links = all_links(PAPER_CONFIG)
        for key in stream.sample(links, 3):
            kind = stream.randint(0, 2)
            if kind == 0:
                net.attach_tamperer(
                    key,
                    TransientFaultModel(
                        net.codec.codeword_bits,
                        stream.random() * 0.3,
                        stream.child("t", key),
                    ),
                )
            elif kind == 1:
                net.attach_tamperer(
                    key,
                    PermanentFault.single(
                        net.codec.codeword_bits,
                        stream.randint(0, 71),
                        StuckAtKind(stream.randint(0, 1)),
                    ),
                )
            else:
                trojan = TaspTrojan(
                    TargetSpec.for_dest(stream.randint(0, 15)),
                    TaspConfig(seed=seed),
                )
                trojan.enable()
                net.attach_tamperer(key, trojan)
        net.set_traffic(
            SyntheticSource(
                PAPER_CONFIG, uniform_random,
                SyntheticConfig(injection_rate=0.02, duration=120),
                seed=seed,
            )
        )
        assert audited_run(net, 300, every=7).ok


class TestValidatorDetectsCorruption:
    def test_buffer_overflow_detected(self):
        net = Network(PAPER_CONFIG)
        vc = net.routers[0].inputs[("inj", 0)].vcs[0]
        flit = Packet(pkt_id=1, src_core=0, dst_core=4).build_flits(
            PAPER_CONFIG
        )[0]
        vc.buffer.extend([flit] * 5)  # force over capacity
        validator = NetworkValidator(net)
        with pytest.raises(InvariantViolation):
            validator.check()

    def test_credit_leak_detected(self):
        net = Network(PAPER_CONFIG)
        out = net.output_port_of((0, Direction.EAST))
        out.credits._credits[0] -= 1  # leak a credit
        validator = NetworkValidator(net)
        with pytest.raises(InvariantViolation):
            validator.check()

    def test_holder_corruption_detected(self):
        net = Network(PAPER_CONFIG)
        out = net.output_port_of((0, Direction.EAST))
        out.holders[0] = (("inj", 0), 1)
        net.routers[0].inputs[("inj", 0)].vcs[1].out_vc = 3  # disagree
        validator = NetworkValidator(net)
        with pytest.raises(InvariantViolation):
            validator.check()

    def test_report_collects_without_raise(self):
        net = Network(PAPER_CONFIG)
        out = net.output_port_of((0, Direction.EAST))
        out.credits._credits[0] -= 1
        validator = NetworkValidator(net)
        report = validator.check(raise_on_violation=False)
        assert not report.ok
        assert "credit conservation" in report.violations[0]


class TestReportHygiene:
    def test_violation_is_runtime_error_with_report(self):
        net = Network(PAPER_CONFIG)
        out = net.output_port_of((0, Direction.EAST))
        out.credits._credits[0] -= 1
        validator = NetworkValidator(net)
        with pytest.raises(InvariantViolation) as excinfo:
            validator.check()
        assert isinstance(excinfo.value, RuntimeError)
        assert not isinstance(excinfo.value, AssertionError)
        assert excinfo.value.report is validator.report

    def test_identical_messages_fold_into_duplicates(self):
        net = Network(PAPER_CONFIG)
        out = net.output_port_of((0, Direction.EAST))
        out.credits._credits[0] -= 1
        validator = NetworkValidator(net)
        for _ in range(5):
            validator.check(raise_on_violation=False)
        report = validator.report
        assert len(report.violations) == 1
        assert report.duplicates == 4
        assert report.total_failures == 5
        assert report.by_family == {"credit": 1}

    def test_distinct_overflow_past_the_cap(self):
        from repro.noc.invariants import ValidationReport

        report = ValidationReport(max_violations=2)
        for i in range(5):
            report.record("credit", f"violation {i}")
        assert len(report.violations) == 2
        assert report.overflow == 3
        assert report.duplicates == 0
        assert report.total_failures == 5
        assert report.by_family == {"credit": 5}

    def test_family_selection_skips_unselected_checks(self):
        net = Network(PAPER_CONFIG)
        out = net.output_port_of((0, Direction.EAST))
        out.credits._credits[0] -= 1  # a credit-family corruption
        scoped = NetworkValidator(net, families=("buffer", "holder"))
        assert scoped.check().ok  # credit family never ran
        assert not NetworkValidator(net).check(
            raise_on_violation=False
        ).ok

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="families"):
            NetworkValidator(Network(PAPER_CONFIG), families=("karma",))

    def test_unknown_flit_scope_rejected(self):
        with pytest.raises(ValueError, match="flit_scope"):
            NetworkValidator(Network(PAPER_CONFIG), flit_scope="mostly")

    def test_active_scope_agrees_on_flit_conservation(self):
        """Active-scoped and full flit sweeps reach the same verdict on
        a live network (settled components hold no flits)."""
        net = Network(PAPER_CONFIG)
        for pid in range(10):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, created_cycle=0)
            )
        active = NetworkValidator(net, families=("flit",),
                                  flit_scope="active")
        full = NetworkValidator(net, families=("flit",))
        for _ in range(300):
            net.step()
            assert active.check().ok == full.check().ok
