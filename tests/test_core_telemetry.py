"""Tests for chip-level security telemetry."""

import pytest

from repro.core import (
    LinkVerdict,
    TargetSpec,
    TaspTrojan,
    build_mitigated_network,
)
from repro.core.telemetry import security_report
from repro.faults import PermanentFault, StuckAtKind
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction


def attack_and_run(net, count=15):
    for pid in range(count):
        net.add_packet(
            Packet(pkt_id=pid, src_core=0, dst_core=63, vc_class=pid % 4,
                   mem_addr=0x11, payload=[0xEE], created_cycle=0)
        )
    net.run_until_drained(8000, stall_limit=2000)


class TestSecurityReport:
    def test_clean_network_reports_no_suspects(self):
        net = build_mitigated_network(PAPER_CONFIG)
        attack_and_run(net)
        report = security_report(net)
        assert len(report.links) == 48
        assert report.suspicious_links == []
        assert "no condemned links" in report.summary()

    def test_trojan_link_identified(self):
        net = build_mitigated_network(PAPER_CONFIG)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        attack_and_run(net)
        report = security_report(net)
        assert report.trojan_links == [(0, Direction.EAST)]
        assert report.permanent_links == []
        status = report.links[(0, Direction.EAST)]
        assert status.verdict is LinkVerdict.TROJAN
        assert status.corrupted_traversals > 0
        assert report.total_faults > 0

    def test_permanent_link_identified(self):
        net = build_mitigated_network(PAPER_CONFIG)
        # stuck wires chosen against a real codeword
        flit = Packet(pkt_id=0, src_core=0, dst_core=63).build_flits(
            PAPER_CONFIG
        )[0]
        cw = net.codec.encode(flit.data)
        zero = next(i for i in range(72) if not cw >> i & 1)
        one = next(i for i in range(72) if cw >> i & 1)
        net.attach_tamperer(
            (0, Direction.EAST),
            PermanentFault(
                72, {zero: StuckAtKind.ONE, one: StuckAtKind.ZERO}
            ),
        )
        attack_and_run(net, count=5)
        report = security_report(net)
        assert (0, Direction.EAST) in report.permanent_links

    def test_lob_traffic_aggregated(self):
        net = build_mitigated_network(PAPER_CONFIG)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        attack_and_run(net, count=25)
        report = security_report(net)
        assert sum(report.obfuscated_sends.values()) > 0
        assert report.preemptive_sends > 0
        assert "L-Ob traffic" in report.summary()

    def test_two_suspects_both_listed(self):
        net = build_mitigated_network(PAPER_CONFIG)
        for key in ((0, Direction.EAST), (2, Direction.EAST)):
            trojan = TaspTrojan(TargetSpec.for_dest(15))
            trojan.enable()
            net.attach_tamperer(key, trojan)
        attack_and_run(net, count=15)
        report = security_report(net)
        assert len(report.suspicious_links) == 2

    def test_unmitigated_network_rejected(self):
        with pytest.raises(ValueError):
            security_report(Network(PAPER_CONFIG))
