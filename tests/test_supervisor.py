"""Supervised batch execution: timeouts, crashes, backoff, quarantine.

The hang/crash workers here are real misbehaviour in real child
processes — ``time.sleep`` past the timeout and ``os._exit`` without
posting a result — not mocks, so these tests exercise the kill and
death-detection paths end to end.
"""

import os
import time

import pytest

from repro.experiments.supervisor import (
    Supervisor,
    SupervisorConfig,
    SupervisorInterrupt,
    TaskOutcome,
)

#: fast-failure policy so the quarantine paths run in well under a second
FAST = dict(backoff_base=0.01, backoff_cap=0.05, poll_interval=0.01)


def _ok(value):
    return {"value": value}


def _hang(seconds):
    time.sleep(seconds)
    return "woke up"


def _crash():
    os._exit(17)  # dies without posting a result


def _raise():
    raise ValueError("deterministic bug")


def _flaky(marker_path):
    # fails (hard) the first time, succeeds once the marker exists
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("seen")
        os._exit(3)
    return "recovered"


class TestHappyPath:
    def test_results_in_task_order(self):
        outcomes = Supervisor(SupervisorConfig(jobs=3, **FAST)).run(
            [(name, _ok, (name,)) for name in ("c", "a", "b")]
        )
        assert [o.task_id for o in outcomes] == ["c", "a", "b"]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert [o.result for o in outcomes] == [
            {"value": "c"}, {"value": "a"}, {"value": "b"},
        ]

    def test_on_complete_fires_per_task(self):
        seen = []
        supervisor = Supervisor(
            SupervisorConfig(jobs=2, **FAST),
            on_complete=lambda outcome: seen.append(outcome.task_id),
        )
        supervisor.run([(str(i), _ok, (i,)) for i in range(4)])
        assert sorted(seen) == ["0", "1", "2", "3"]

    def test_raising_task_is_retried_then_quarantined(self):
        # an exception inside fn is a failed attempt at this layer
        # (the experiment runner catches its own exceptions instead)
        (outcome,) = Supervisor(
            SupervisorConfig(jobs=1, max_retries=1, **FAST)
        ).run([("boom", _raise, ())])
        assert not outcome.ok and outcome.quarantined
        assert outcome.attempts == 2
        assert "ValueError: deterministic bug" in outcome.failures[-1]


class TestHangingWorker:
    def test_hang_is_killed_retried_and_quarantined(self):
        config = SupervisorConfig(
            jobs=2, timeout=0.3, max_retries=2, **FAST
        )
        started = time.monotonic()
        outcomes = Supervisor(config).run(
            [
                ("hung", _hang, (60.0,)),
                ("good", _ok, ("fine",)),
            ]
        )
        elapsed = time.monotonic() - started
        by_id = {o.task_id: o for o in outcomes}

        hung = by_id["hung"]
        assert not hung.ok and hung.quarantined
        assert hung.attempts == config.max_retries + 1
        assert all("timeout" in f for f in hung.failures)
        assert "timeout" in hung.error

        # the healthy task completed despite its poisoned neighbour
        assert by_id["good"].ok and by_id["good"].result == {"value": "fine"}
        # workers were killed, not waited out (3 attempts << 60s sleep)
        assert elapsed < 30

    def test_backoff_spaces_the_retries(self):
        config = SupervisorConfig(
            jobs=1, timeout=0.1, max_retries=2,
            backoff_base=0.2, backoff_cap=10.0, poll_interval=0.01,
        )
        started = time.monotonic()
        (outcome,) = Supervisor(config).run([("hung", _hang, (60.0,))])
        elapsed = time.monotonic() - started
        assert outcome.quarantined and outcome.attempts == 3
        # 3 timeouts (0.3s) + backoffs of 0.2s and 0.4s
        assert elapsed >= 0.3 + 0.2 + 0.4


class TestCrashingWorker:
    def test_crash_is_detected_retried_and_quarantined(self):
        config = SupervisorConfig(jobs=2, max_retries=2, **FAST)
        outcomes = Supervisor(config).run(
            [
                ("dead", _crash, ()),
                ("good", _ok, (1,)),
            ]
        )
        by_id = {o.task_id: o for o in outcomes}
        dead = by_id["dead"]
        assert not dead.ok and dead.quarantined
        assert dead.attempts == config.max_retries + 1
        assert all("worker died" in f for f in dead.failures)
        assert "exitcode 17" in dead.error
        assert by_id["good"].ok

    def test_flaky_task_recovers_on_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        (outcome,) = Supervisor(
            SupervisorConfig(jobs=1, max_retries=2, **FAST)
        ).run([("flaky", _flaky, (marker,))])
        assert outcome.ok
        assert outcome.result == "recovered"
        assert outcome.attempts == 2
        assert len(outcome.failures) == 1  # the first, crashed attempt

    def test_quarantine_outcome_shape(self):
        (outcome,) = Supervisor(
            SupervisorConfig(jobs=1, max_retries=0, **FAST)
        ).run([("dead", _crash, ())])
        assert isinstance(outcome, TaskOutcome)
        assert outcome.attempts == 1
        assert len(outcome.failures) == 1


class TestRetryJitter:
    """Retry delays are jittered, bounded and seed-deterministic."""

    CFG = dict(
        jobs=1, max_retries=2, jitter=0.5,
        backoff_base=0.01, backoff_cap=1.0, poll_interval=0.01,
    )

    def _delays(self, seed):
        (outcome,) = Supervisor(
            SupervisorConfig(seed=seed, **self.CFG)
        ).run([("dead", _crash, ())])
        return outcome.retry_delays

    def test_delays_recorded_within_jitter_band(self):
        delays = self._delays(seed=1)
        assert len(delays) == 2  # one per retry, none for the final attempt
        for attempt, delay in enumerate(delays):
            base = 0.01 * (2 ** attempt)
            assert base <= delay <= base * 1.5

    def test_same_seed_replays_the_same_schedule(self):
        assert self._delays(seed=3) == self._delays(seed=3)

    def test_different_seeds_desynchronise(self):
        assert self._delays(seed=3) != self._delays(seed=4)

    def test_recovered_task_keeps_its_retry_history(self, tmp_path):
        marker = str(tmp_path / "marker")
        (outcome,) = Supervisor(
            SupervisorConfig(jobs=1, max_retries=2, **FAST)
        ).run([("flaky", _flaky, (marker,))])
        assert outcome.ok
        assert len(outcome.retry_delays) == 1


class TestInterrupt:
    def test_interrupt_kills_workers_and_reports_partial(self, monkeypatch):
        finished = []
        supervisor = Supervisor(
            SupervisorConfig(jobs=1, **FAST),
            on_complete=lambda outcome: finished.append(outcome.task_id),
        )
        # Ctrl-C arrives while the second (hung) task is running
        original_drain = supervisor._drain

        def interrupting_drain(results, arrived):
            original_drain(results, arrived)
            if finished:
                raise KeyboardInterrupt

        monkeypatch.setattr(supervisor, "_drain", interrupting_drain)
        started = time.monotonic()
        with pytest.raises(SupervisorInterrupt) as excinfo:
            supervisor.run(
                [("first", _ok, (1,)), ("hung", _hang, (60.0,))]
            )
        assert time.monotonic() - started < 30  # hung worker was killed
        partial = excinfo.value.outcomes
        assert [o.task_id for o in partial] == ["first"]
        assert partial[0].ok


class TestArtifactSalvage:
    def test_quarantine_collects_artifacts(self, tmp_path):
        bundle = tmp_path / "dead-c000000000042.repro"
        by_id = {o.task_id: o for o in Supervisor(
            SupervisorConfig(jobs=2, max_retries=0, **FAST),
            artifacts_for=lambda task_id: (
                [str(bundle)] if task_id == "dead" else []
            ),
        ).run([("dead", _crash, ()), ("good", _ok, (1,))])}
        assert by_id["dead"].quarantined
        assert by_id["dead"].artifacts == (str(bundle),)
        # successful tasks never get artifacts attached
        assert by_id["good"].ok and by_id["good"].artifacts == ()

    def test_artifact_hook_failure_is_swallowed(self):
        def broken_hook(task_id):
            raise OSError("disk gone")

        (outcome,) = Supervisor(
            SupervisorConfig(jobs=1, max_retries=0, **FAST),
            artifacts_for=broken_hook,
        ).run([("dead", _crash, ())])
        assert outcome.quarantined
        assert outcome.artifacts == ()
