"""Tests for synthetic patterns, app profiles and trace replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import Network, NoCConfig, PAPER_CONFIG
from repro.traffic import (
    AppTraceSource,
    PROFILES,
    SyntheticConfig,
    SyntheticSource,
    Trace,
    TraceReplaySource,
    bit_complement,
    hotspot,
    neighbor,
    record_trace,
    traffic_weights,
    transpose,
    uniform_random,
)
from repro.util.rng import SeededStream

CFG = PAPER_CONFIG


class TestPatterns:
    def test_uniform_never_self(self):
        stream = SeededStream(1)
        for src in range(64):
            for _ in range(20):
                assert uniform_random(CFG, src, stream) != src

    def test_uniform_covers_cores(self):
        stream = SeededStream(2)
        seen = {uniform_random(CFG, 0, stream) for _ in range(2000)}
        assert len(seen) == 63

    def test_bit_complement(self):
        assert bit_complement(CFG, 0, None) == 63
        assert bit_complement(CFG, 63, None) == 0
        assert bit_complement(CFG, 5, None) == 58

    def test_transpose(self):
        # core 4 is local index 0 of router 1 at (1,0); transpose router
        # is (0,1) = router 4
        assert transpose(CFG, 4, None) == 16

    def test_transpose_diagonal_fixed(self):
        # router 0 transposes to itself; core unchanged
        assert transpose(CFG, 2, None) == 2

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose(NoCConfig(mesh_width=2, mesh_height=1), 0, None)

    def test_neighbor_wraps(self):
        assert neighbor(CFG, 63, None) == 0

    def test_hotspot_fraction(self):
        stream = SeededStream(3)
        pattern = hotspot((21,), fraction=0.7)
        hits = sum(
            1 for _ in range(2000) if pattern(CFG, 0, stream) == 21
        )
        assert 1250 < hits < 1550

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot(())
        with pytest.raises(ValueError):
            hotspot((1,), fraction=0.0)


class TestSyntheticSource:
    def test_rate_statistics(self):
        src = SyntheticSource(
            CFG, uniform_random,
            SyntheticConfig(injection_rate=0.01, duration=500), seed=4,
        )
        total = sum(len(src.generate(c)) for c in range(500))
        expected = 0.01 * 64 * 500
        assert 0.75 * expected < total < 1.25 * expected

    def test_duration_respected(self):
        src = SyntheticSource(
            CFG, uniform_random, SyntheticConfig(duration=10), seed=1
        )
        for c in range(10):
            src.generate(c)
        assert src.generate(10) == []
        assert src.done(10)

    def test_max_packets_cap(self):
        src = SyntheticSource(
            CFG, uniform_random,
            SyntheticConfig(injection_rate=1.0, max_packets=7), seed=1,
        )
        total = sum(len(src.generate(c)) for c in range(10))
        assert total == 7
        assert src.done(99)

    def test_deterministic_across_instances(self):
        a = SyntheticSource(CFG, uniform_random, SyntheticConfig(), seed=9)
        b = SyntheticSource(CFG, uniform_random, SyntheticConfig(), seed=9)
        pa = [(p.src_core, p.dst_core) for p in a.generate(0)]
        pb = [(p.src_core, p.dst_core) for p in b.generate(0)]
        assert pa == pb

    def test_drives_network_end_to_end(self):
        net = Network(CFG)
        net.set_traffic(
            SyntheticSource(
                CFG, uniform_random,
                SyntheticConfig(injection_rate=0.01, duration=100,
                                payload_words=1),
                seed=5,
            )
        )
        assert net.run_until_drained(3000)
        assert net.stats.packets_completed == net.stats.packets_injected > 0


class TestAppProfiles:
    def test_four_paper_apps_present(self):
        for name in ("blackscholes", "facesim", "ferret", "fft"):
            assert name in PROFILES

    def test_extended_benchmark_library(self):
        # the paper "analyzed a dozen more benchmarks"; the library ships
        # ten profiles with distinct memory regions and localization
        assert len(PROFILES) >= 10
        bases = [p.mem_base for p in PROFILES.values()]
        assert len(set(bases)) == len(bases)

    def test_swaptions_most_localized_canneal_least(self):
        def concentration(name):
            w = traffic_weights(CFG, PROFILES[name])
            total = sum(w.values())
            return sum(sorted(w.values(), reverse=True)[:16]) / total

        assert concentration("swaptions") > concentration("blackscholes")
        assert concentration("canneal") < concentration("blackscholes")

    def test_weights_positive_and_complete(self):
        w = traffic_weights(CFG, PROFILES["blackscholes"])
        assert len(w) == 16 * 15
        assert all(v > 0 for v in w.values())

    def test_blackscholes_localized_at_router0(self):
        # Fig. 1: traffic localizes around the primary router and decays
        # with distance from it.
        w = traffic_weights(CFG, PROFILES["blackscholes"])
        near = w[(0, 1)]
        far = w[(12, 15)]  # both endpoints far from router 0
        assert near > 4 * far

    def test_distance_decay_monotone(self):
        w = traffic_weights(CFG, PROFILES["blackscholes"])
        # from router 0: weight to routers 1, 2, 3 decreases with distance
        assert w[(0, 1)] > w[(0, 2)] > w[(0, 3)]

    def test_ferret_spreads_wider_than_blackscholes(self):
        bs = traffic_weights(CFG, PROFILES["blackscholes"])
        fr = traffic_weights(CFG, PROFILES["ferret"])

        def concentration(weights):
            total = sum(weights.values())
            top = sum(sorted(weights.values(), reverse=True)[:16])
            return top / total

        assert concentration(bs) > concentration(fr)

    def test_source_generates_and_is_deterministic(self):
        a = AppTraceSource(CFG, PROFILES["fft"], seed=3, duration=200)
        b = AppTraceSource(CFG, PROFILES["fft"], seed=3, duration=200)
        ta = [(p.src_core, p.dst_core, p.created_cycle)
              for c in range(200) for p in a.generate(c)]
        tb = [(p.src_core, p.dst_core, p.created_cycle)
              for c in range(200) for p in b.generate(c)]
        assert ta == tb
        assert len(ta) > 10

    def test_profile_mem_regions_distinct(self):
        src = AppTraceSource(CFG, PROFILES["facesim"], seed=1, duration=100)
        pkts = [p for c in range(100) for p in src.generate(c)]
        assert all(
            p.mem_addr >> 24 == PROFILES["facesim"].mem_base >> 24
            for p in pkts
        )

    @settings(max_examples=4, deadline=None)
    @given(st.sampled_from(sorted(PROFILES)))
    def test_every_profile_runs_on_network(self, name):
        net = Network(CFG)
        net.set_traffic(AppTraceSource(CFG, PROFILES[name], seed=2,
                                       duration=150))
        assert net.run_until_drained(4000)
        assert net.stats.packets_completed > 0


class TestTraceReplay:
    def _trace(self):
        src = AppTraceSource(CFG, PROFILES["blackscholes"], seed=7,
                             duration=150)
        return record_trace(src, CFG, 150, "bs")

    def test_record_produces_sorted_packets(self):
        trace = self._trace()
        cycles = [p.created_cycle for p in trace.packets]
        assert cycles == sorted(cycles)
        assert len(trace) > 0

    def test_router_matrix_totals(self):
        trace = self._trace()
        matrix = trace.router_matrix(CFG)
        assert sum(sum(row) for row in matrix) == len(trace)
        assert all(matrix[i][i] == 0 for i in range(16))

    def test_source_counts_match_matrix(self):
        trace = self._trace()
        matrix = trace.router_matrix(CFG)
        counts = trace.source_counts(CFG)
        assert counts == [sum(row) for row in matrix]

    def test_replay_is_identical_workload(self):
        trace = self._trace()
        results = []
        for _ in range(2):
            net = Network(CFG)
            net.set_traffic(TraceReplaySource(trace))
            assert net.run_until_drained(6000)
            results.append(
                (net.stats.packets_completed, net.stats.mean_total_latency())
            )
        assert results[0] == results[1]

    def test_replay_does_not_mutate_trace(self):
        trace = self._trace()
        originals = [(p.pkt_id, tuple(p.payload)) for p in trace.packets]
        net = Network(CFG)
        net.set_traffic(TraceReplaySource(trace))
        net.run_until_drained(6000)
        assert [(p.pkt_id, tuple(p.payload)) for p in trace.packets] == originals

    def test_two_replays_from_same_source_object(self):
        trace = self._trace()
        replay = TraceReplaySource(trace)
        net = Network(CFG)
        net.set_traffic(replay)
        net.run_until_drained(6000)
        replay.reset()
        net2 = Network(CFG)
        net2.set_traffic(replay)
        assert net2.run_until_drained(6000)
        assert net2.stats.packets_completed == net.stats.packets_completed
