"""Direct unit tests of the router pipeline stages (RC, VA, SA/ST),
exercising them without the full network loop."""

import pytest

from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.router import SchedulingPolicy
from repro.noc.topology import Direction


def fresh_router(rid=5):
    """A fully wired router embedded in a throwaway network."""
    net = Network(PAPER_CONFIG)
    return net, net.routers[rid]


def head_flit(src=20, dst=63, vc=0, payload=0):
    pkt = Packet(
        pkt_id=1, src_core=src, dst_core=dst, vc_class=vc,
        payload=[payload] if payload else [],
    )
    return pkt.build_flits(PAPER_CONFIG)[0]


def seat_flit(router, in_key, vc_idx, flit, cycle=-1):
    vc = router.inputs[in_key].vcs[vc_idx]
    flit.last_move_cycle = cycle
    vc.push(flit)
    return vc


class TestRouteCompute:
    def test_rc_eastbound(self):
        net, router = fresh_router(rid=5)
        vc = seat_flit(router, ("inj", 0), 0, head_flit(src=20, dst=28))
        router.route_compute(cycle=1)
        assert vc.route_out == Direction.EAST  # router 5 -> 7 goes east
        assert vc.rc_cycle == 1

    def test_rc_local_ejection(self):
        net, router = fresh_router(rid=5)
        # dst core 22 lives on router 5, local index 2
        vc = seat_flit(router, Direction.WEST, 1, head_flit(src=0, dst=22))
        router.route_compute(cycle=1)
        assert vc.route_out == ("ej", 2)

    def test_rc_waits_one_cycle_after_arrival(self):
        net, router = fresh_router()
        vc = seat_flit(router, ("inj", 0), 0, head_flit(), cycle=3)
        router.route_compute(cycle=3)  # same cycle as arrival: no RC
        assert vc.route_out is None
        router.route_compute(cycle=4)
        assert vc.route_out is not None

    def test_rc_skips_body_flits(self):
        net, router = fresh_router()
        pkt = Packet(pkt_id=1, src_core=20, dst_core=63, payload=[1])
        body = pkt.build_flits(PAPER_CONFIG)[1]
        vc = seat_flit(router, ("inj", 0), 0, body)
        router.route_compute(cycle=1)
        assert vc.route_out is None

    def test_rc_idempotent(self):
        net, router = fresh_router()
        vc = seat_flit(router, ("inj", 0), 0, head_flit())
        router.route_compute(cycle=1)
        first = (vc.route_out, vc.rc_cycle)
        router.route_compute(cycle=2)
        assert (vc.route_out, vc.rc_cycle) == first


class TestVcAllocation:
    def _routed_vc(self, router, cycle=1):
        vc = seat_flit(router, ("inj", 0), 0, head_flit(src=20, dst=28))
        router.route_compute(cycle)
        return vc

    def test_va_grants_free_vc(self):
        net, router = fresh_router(5)
        vc = self._routed_vc(router)
        router.vc_allocate(cycle=2)
        assert vc.out_vc is not None
        out = router.outputs[Direction.EAST]
        assert out.holders[vc.out_vc] == (("inj", 0), 0)

    def test_va_waits_cycle_after_rc(self):
        net, router = fresh_router(5)
        vc = self._routed_vc(router, cycle=1)
        router.vc_allocate(cycle=1)  # same cycle as RC
        assert vc.out_vc is None

    def test_va_no_double_grant(self):
        net, router = fresh_router(5)
        vc = self._routed_vc(router)
        router.vc_allocate(cycle=2)
        granted = vc.out_vc
        router.vc_allocate(cycle=3)
        assert vc.out_vc == granted

    def test_va_exhausted_vcs_block(self):
        net, router = fresh_router(5)
        out = router.outputs[Direction.EAST]
        out.holders = [(("inj", 3), 0)] * PAPER_CONFIG.num_vcs  # all held
        vc = self._routed_vc(router)
        router.vc_allocate(cycle=2)
        assert vc.out_vc is None

    def test_va_one_grant_per_output_per_cycle(self):
        net, router = fresh_router(5)
        vc_a = seat_flit(router, ("inj", 0), 0, head_flit(src=20, dst=28))
        vc_b = seat_flit(router, ("inj", 1), 0, head_flit(src=21, dst=28))
        router.route_compute(cycle=1)
        router.vc_allocate(cycle=2)
        granted = [v for v in (vc_a, vc_b) if v.out_vc is not None]
        assert len(granted) == 1
        router.vc_allocate(cycle=3)
        assert vc_a.out_vc is not None and vc_b.out_vc is not None


class TestSwitchTraverse:
    def _ready_vc(self, router):
        vc = seat_flit(router, ("inj", 0), 0, head_flit(src=20, dst=28))
        router.route_compute(cycle=1)
        router.vc_allocate(cycle=2)
        return vc

    def test_st_moves_flit_to_retrans(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)
        moved = router.switch_traverse(cycle=3)
        assert moved == 1
        assert vc.occupancy == 0
        out = router.outputs[Direction.EAST]
        assert out.retrans.occupancy == 1

    def test_st_consumes_credit(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)
        out = router.outputs[Direction.EAST]
        before = out.credits.available(vc.out_vc)
        router.switch_traverse(cycle=3)
        # vc.out_vc was reset (single flit = tail) so capture earlier
        assert sum(out.credits.snapshot()) == 4 * PAPER_CONFIG.vc_depth - 1
        assert before >= 1

    def test_st_waits_cycle_after_va(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)
        assert router.switch_traverse(cycle=2) == 0  # same cycle as VA

    def test_st_blocked_by_full_retrans(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)
        out = router.outputs[Direction.EAST]
        while not out.retrans.is_full:
            out.retrans.admit(head_flit(), 0, 0)
        assert router.switch_traverse(cycle=3) == 0
        assert vc.occupancy == 1

    def test_st_blocked_without_credits(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)
        out = router.outputs[Direction.EAST]
        grant = vc.out_vc
        while out.credits.available(grant) > 0:
            out.credits.consume(grant)
        assert router.switch_traverse(cycle=3) == 0

    def test_st_tail_resets_vc_state(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)  # single-flit packet: head==tail
        router.switch_traverse(cycle=3)
        assert vc.route_out is None and vc.out_vc is None

    def test_st_tail_keeps_holder_until_ack(self):
        net, router = fresh_router(5)
        vc = self._ready_vc(router)
        grant = vc.out_vc
        router.switch_traverse(cycle=3)
        out = router.outputs[Direction.EAST]
        assert out.holders[grant] is not None  # released only on tail ACK

    def test_st_one_winner_per_output(self):
        net, router = fresh_router(5)
        vc_a = seat_flit(router, ("inj", 0), 0, head_flit(src=20, dst=28))
        vc_b = seat_flit(router, ("inj", 1), 0, head_flit(src=21, dst=28))
        router.route_compute(1)
        router.vc_allocate(2)
        router.vc_allocate(3)
        moved = router.switch_traverse(4)
        assert moved == 1  # same output port: crossbar serializes

    def test_st_parallel_outputs(self):
        net, router = fresh_router(5)
        vc_a = seat_flit(router, ("inj", 0), 0, head_flit(src=20, dst=28))
        vc_b = seat_flit(router, ("inj", 1), 0, head_flit(src=21, dst=36))
        router.route_compute(1)  # east and north
        router.vc_allocate(2)
        moved = router.switch_traverse(3)
        assert moved == 2

    def test_policy_gates_switch(self):
        class NoSwitch(SchedulingPolicy):
            def flit_may_use_switch(self, flit, cycle):
                return False

        net, router = fresh_router(5)
        router.policy = NoSwitch()
        vc = self._ready_vc(router)
        assert router.switch_traverse(cycle=3) == 0


class TestLatencyPercentiles:
    def test_percentiles_and_histogram(self):
        net = Network(NoCConfig())
        for pid in range(30):
            net.add_packet(
                Packet(pkt_id=pid, src_core=(pid * 4) % 64,
                       dst_core=(pid * 12 + 5) % 64, created_cycle=0)
            )
        net.run_until_drained(3000)
        p50 = net.stats.latency_percentile(0.5)
        p99 = net.stats.latency_percentile(0.99)
        assert p50 is not None and p99 >= p50
        hist = net.stats.latency_histogram(bucket=20)
        assert sum(hist.values()) == net.stats.packets_completed
        assert all(k % 20 == 0 for k in hist)

    def test_percentile_validation(self):
        net = Network(NoCConfig())
        with pytest.raises(ValueError):
            net.stats.latency_percentile(1.5)
        with pytest.raises(ValueError):
            net.stats.latency_histogram(bucket=0)

    def test_empty_stats(self):
        net = Network(NoCConfig())
        assert net.stats.latency_percentile(0.5) is None
        assert net.stats.latency_histogram() == {}
