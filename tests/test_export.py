"""Tests for structured result export."""

import dataclasses
import enum
import json

import pytest

from repro.experiments import fig8_overhead, table1_tasp, table2_mitigation
from repro.experiments.export import load_result, save_result, to_jsonable
from repro.noc.topology import Direction


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class Inner:
    value: int
    tag: Color


@dataclasses.dataclass
class Outer:
    name: str
    items: list
    table: dict


class TestToJsonable:
    def test_nested_dataclasses(self):
        out = to_jsonable(Outer("x", [Inner(1, Color.RED)], {"a": 2}))
        assert out == {
            "name": "x",
            "items": [{"value": 1, "tag": "RED"}],
            "table": {"a": 2},
        }

    def test_enum_values(self):
        assert to_jsonable(Color.RED) == "RED"
        assert to_jsonable(Direction.EAST) == "EAST"

    def test_tuple_keys_flattened(self):
        out = to_jsonable({(0, Direction.EAST): 5})
        assert out == {"0->EAST": 5}

    def test_tuples_become_lists(self):
        assert to_jsonable((1, 2, 3)) == [1, 2, 3]

    def test_none_and_scalars(self):
        assert to_jsonable(None) is None
        assert to_jsonable(3.5) == 3.5

    def test_everything_json_serializable(self):
        for module in (table1_tasp, table2_mitigation, fig8_overhead):
            json.dumps(to_jsonable(module.run()))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        result = table1_tasp.run()
        path = save_result(result, tmp_path / "t1.json", "table1")
        data = load_result(path)
        assert data["experiment"] == "table1"
        kinds = [row["kind"] for row in data["result"]["rows"]]
        assert "Full" in kinds and "Dest" in kinds

    def test_runner_json_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out_file = tmp_path / "fig8.json"
        assert main(["fig8", "--json", str(out_file)]) == 0
        assert out_file.exists()
        data = load_result(out_file)
        assert "router_dynamic_shares" in data["result"]
