"""Unit tests for fault models and BIST classification."""

import pytest

from repro.ecc import SECDED_72_64, DecodeStatus
from repro.faults import (
    BistScanner,
    BistVerdict,
    PermanentFault,
    StuckAtKind,
    TransientFaultModel,
)
from repro.faults.models import CompositeTamperer
from repro.util.rng import SeededStream


class TestTransientFaultModel:
    def test_zero_probability_never_flips(self):
        model = TransientFaultModel(72, 0.0, SeededStream(1))
        for cycle in range(100):
            assert model.tamper(0xABCD, cycle) == 0xABCD
        assert model.events == 0

    def test_certain_probability_always_flips(self):
        model = TransientFaultModel(72, 1.0, SeededStream(2), double_fraction=0.0)
        for cycle in range(50):
            out = model.tamper(0, cycle)
            assert bin(out).count("1") == 1
        assert model.events == 50

    def test_double_fraction_yields_two_flips(self):
        model = TransientFaultModel(72, 1.0, SeededStream(3), double_fraction=1.0)
        out = model.tamper(0, 0)
        assert bin(out).count("1") == 2

    def test_rate_statistics(self):
        model = TransientFaultModel(72, 0.1, SeededStream(4))
        for cycle in range(10_000):
            model.tamper(0, cycle)
        assert 800 < model.events < 1200

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            TransientFaultModel(72, 1.5, SeededStream(1))

    def test_single_flip_is_correctable_by_secded(self):
        model = TransientFaultModel(72, 1.0, SeededStream(5), double_fraction=0.0)
        data = 0xDEADBEEF12345678
        cw = SECDED_72_64.encode(data)
        res = SECDED_72_64.decode(model.tamper(cw, 0))
        assert res.status is DecodeStatus.CORRECTED
        assert res.data == data


class TestPermanentFault:
    def test_stuck_at_zero_forces_zero(self):
        fault = PermanentFault.single(72, 5, StuckAtKind.ZERO)
        assert fault.tamper(1 << 5, 0) == 0
        assert fault.tamper(0, 0) == 0

    def test_stuck_at_one_forces_one(self):
        fault = PermanentFault.single(72, 3, StuckAtKind.ONE)
        assert fault.tamper(0, 0) == 1 << 3

    def test_only_manifests_on_disagreement(self):
        fault = PermanentFault.single(72, 7, StuckAtKind.ZERO)
        fault.tamper(0, 0)  # agrees, no corruption
        assert fault.activations == 0
        fault.tamper(1 << 7, 0)
        assert fault.activations == 1

    def test_positions_listing(self):
        fault = PermanentFault(
            72, {3: StuckAtKind.ZERO, 10: StuckAtKind.ONE}
        )
        assert fault.positions == [3, 10]

    def test_out_of_range_position(self):
        with pytest.raises(ValueError):
            PermanentFault.single(8, 9)

    def test_empty_positions(self):
        with pytest.raises(ValueError):
            PermanentFault(72, {})

    def test_stuck_wire_triggers_retransmission_path(self):
        # A single stuck wire yields at most a single-bit error per word:
        # corrected, not retransmitted -- unlike the trojan's 2-bit payload.
        fault = PermanentFault.single(72, 11, StuckAtKind.ZERO)
        data = (1 << 64) - 1
        cw = SECDED_72_64.encode(data)
        res = SECDED_72_64.decode(fault.tamper(cw, 0))
        assert res.status in (DecodeStatus.CORRECTED, DecodeStatus.CLEAN)


class TestCompositeTamperer:
    def test_applies_in_order(self):
        f1 = PermanentFault.single(8, 0, StuckAtKind.ONE)
        f2 = PermanentFault.single(8, 1, StuckAtKind.ONE)
        chain = CompositeTamperer([f1, f2])
        assert chain.tamper(0, 0) == 0b11

    def test_empty_chain_is_identity(self):
        assert CompositeTamperer([]).tamper(0x55, 0) == 0x55


class TestBist:
    def _scanner(self, seed=9):
        return BistScanner(72, SeededStream(seed))

    def test_clean_link(self):
        report = self._scanner().scan(lambda cw, cyc: cw)
        assert report.verdict is BistVerdict.CLEAN
        assert report.patterns_failed == 0
        assert report.permanent_positions == ()

    def test_detects_stuck_at_zero(self):
        fault = PermanentFault.single(72, 17, StuckAtKind.ZERO)
        report = self._scanner().scan(fault.tamper)
        assert report.verdict is BistVerdict.PERMANENT
        assert 17 in report.permanent_positions

    def test_detects_stuck_at_one(self):
        fault = PermanentFault.single(72, 40, StuckAtKind.ONE)
        report = self._scanner().scan(fault.tamper)
        assert report.verdict is BistVerdict.PERMANENT
        assert 40 in report.permanent_positions

    def test_detects_multiple_stuck_wires(self):
        fault = PermanentFault(
            72, {2: StuckAtKind.ZERO, 33: StuckAtKind.ONE, 70: StuckAtKind.ZERO}
        )
        report = self._scanner().scan(fault.tamper)
        assert report.verdict is BistVerdict.PERMANENT
        assert set(report.permanent_positions) == {2, 33, 70}

    def test_transient_storm_reported_inconsistent(self):
        model = TransientFaultModel(72, 0.8, SeededStream(10))
        report = self._scanner().scan(model.tamper)
        assert report.verdict is BistVerdict.INCONSISTENT

    def test_duration_accounts_for_patterns(self):
        report = self._scanner().scan(lambda cw, cyc: cw)
        assert report.duration_cycles >= report.patterns_sent

    def test_scan_counter(self):
        scanner = self._scanner()
        scanner.scan(lambda cw, cyc: cw)
        scanner.scan(lambda cw, cyc: cw)
        assert scanner.scans_run == 2
