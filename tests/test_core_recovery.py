"""Tests for epoch-based recovery (freeze / drain / reroute / resubmit)."""

import pytest

from repro.core import TargetSpec, TaspTrojan
from repro.core.recovery import RecoveryManager
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction

INFECTED = (0, Direction.EAST)


def attacked_manager(packets=15, payload=1):
    net = Network(PAPER_CONFIG)
    trojan = TaspTrojan(TargetSpec.for_dest(15))
    trojan.enable()
    net.attach_tamperer(INFECTED, trojan)
    manager = RecoveryManager(net)
    for pid in range(packets):
        manager.offer(
            Packet(pkt_id=pid, src_core=0, dst_core=63, vc_class=pid % 4,
                   payload=[pid] * payload, created_cycle=0)
        )
    return manager, trojan


class TestLedger:
    def test_offer_tracks_packets(self):
        net = Network(PAPER_CONFIG)
        manager = RecoveryManager(net)
        manager.offer(Packet(pkt_id=1, src_core=0, dst_core=4))
        assert len(manager.undelivered()) == 1
        net.run_until_drained(500)
        assert manager.undelivered() == []
        assert manager.delivered == 1

    def test_duplicate_pkt_id_rejected(self):
        manager = RecoveryManager(Network(PAPER_CONFIG))
        manager.offer(Packet(pkt_id=1, src_core=0, dst_core=4))
        with pytest.raises(ValueError):
            manager.offer(Packet(pkt_id=1, src_core=0, dst_core=8))

    def test_ledger_copies_are_pristine(self):
        manager = RecoveryManager(Network(PAPER_CONFIG))
        pkt = Packet(pkt_id=1, src_core=0, dst_core=4, payload=[7])
        manager.offer(pkt)
        pkt.payload[0] = 99  # caller mutates after offering
        assert manager._ledger[1].payload == [7]


class TestRecoverySequence:
    def test_exactly_once_delivery_across_epochs(self):
        manager, trojan = attacked_manager()
        # epoch 0: the attack pins the targeted flow
        assert not manager.run_epoch(2500, stall_limit=600)
        delivered_before = manager.delivered
        assert delivered_before < 15

        # detect -> condemn -> recover
        fresh = manager.recover([INFECTED])
        assert fresh is manager.network
        assert manager.run_epoch(6000)
        assert manager.delivered == 15
        assert manager.undelivered() == []
        # ledger-level exactly-once: every pkt_id complete exactly once
        assert sum(
            1 for pid in range(15)
            if manager.network.stats.packets[pid].complete
        ) == 15

    def test_report_contents(self):
        manager, _ = attacked_manager(packets=8)
        manager.run_epoch(2000, stall_limit=500)
        manager.recover([INFECTED], reconfiguration_cycles=100)
        report = manager.reports[-1]
        assert report.condemned == (INFECTED,)
        assert not report.drained_cleanly  # the trojan pinned packets
        assert report.packets_resubmitted > 0
        assert report.downtime_cycles >= 100

    def test_condemned_links_unused_in_new_epoch(self):
        manager, trojan = attacked_manager(packets=10)
        manager.run_epoch(2000, stall_limit=500)
        before = manager.network.links[INFECTED].traversals
        fresh = manager.recover([INFECTED])
        manager.run_epoch(6000)
        assert fresh.links[INFECTED].traversals == 0
        assert trojan.triggers > 0  # it did fire in epoch 0

    def test_trojans_persist_across_epochs(self):
        # the implant is in the silicon: carrying it over matters when
        # the new routes still cross other infected links
        manager, trojan = attacked_manager(packets=6)
        manager.run_epoch(1500, stall_limit=400)
        fresh = manager.recover([INFECTED])
        assert trojan in fresh.links[INFECTED].tamperers

    def test_clean_network_recovery_is_cheap(self):
        # recovering a healthy network: drains fully, resubmits nothing
        net = Network(PAPER_CONFIG)
        manager = RecoveryManager(net)
        for pid in range(5):
            manager.offer(Packet(pkt_id=pid, src_core=0, dst_core=63,
                                 created_cycle=0))
        manager.run_epoch(2000)
        manager.recover([(5, Direction.NORTH)])
        report = manager.reports[-1]
        assert report.drained_cleanly
        assert report.packets_resubmitted == 0
        assert manager.delivered == 5

    def test_new_epoch_clock_includes_downtime(self):
        manager, _ = attacked_manager(packets=5)
        manager.run_epoch(1500, stall_limit=400)
        old_cycle = manager.network.cycle
        fresh = manager.recover([INFECTED], reconfiguration_cycles=64)
        assert fresh.cycle >= old_cycle + 64

    def test_multiple_recoveries(self):
        manager, _ = attacked_manager(packets=10)
        manager.run_epoch(1500, stall_limit=400)
        manager.recover([INFECTED])
        # a second condemnation later (another link) must also work
        manager.run_epoch(4000)
        manager.recover([INFECTED, (4, Direction.EAST)])
        assert manager.run_epoch(6000)
        assert manager.delivered == 10
        assert len(manager.reports) == 2
