"""Scenario declarations: JSON round-trips and content hashing."""

import dataclasses
import json

import pytest

from repro.core import (
    Granularity,
    MitigationConfig,
    ObMethod,
    TargetSpec,
    TaspConfig,
)
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.resilience.containment import ContainmentConfig, ProbationConfig
from repro.resilience.detect import DetectConfig
from repro.resilience.localize import LocalizeConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim import (
    AppTraffic,
    DefenseSpec,
    DropAttackSpec,
    ExplicitTraffic,
    FloodTraffic,
    PacketSpec,
    Scenario,
    ScenarioDecodeError,
    SyntheticTraffic,
    TransientFaultSpec,
    TrojanSpec,
    trojan_specs,
)


def rich_scenario() -> Scenario:
    """One of everything: all traffic kinds, scheduled trojans, faults,
    and a fully-populated defense stack."""
    return Scenario(
        name="kitchen-sink",
        cfg=dataclasses.replace(PAPER_CONFIG, routing="west-first"),
        traffic=(
            SyntheticTraffic(pattern="transpose", injection_rate=0.05,
                             duration=200, seed=3),
            AppTraffic(profile="ferret", seed=5, duration=300,
                       rate_scale=2.0, cores=(0, 2, 4), domain=1,
                       vc_classes=(2,), pkt_id_base=500),
            FloodTraffic(rogue_cores=(1, 3), victim_cores=(20, 21),
                         rate=0.5, start_cycle=50, stop_cycle=250, seed=9),
            ExplicitTraffic(packets=(
                PacketSpec(pkt_id=7, src_core=0, dst_core=63, inject_at=12,
                           vc_class=1, mem_addr=0x55, payload=(1, 2)),
            )),
        ),
        trojans=(
            TrojanSpec(link=(0, Direction.EAST),
                       target=TargetSpec.for_dest(15),
                       config=TaspConfig(seed=4), enabled=False,
                       enable_at=100, disable_at=250),
        ),
        faults=(
            TransientFaultSpec(link=(1, Direction.NORTH), rate=0.1,
                               double_fraction=0.5, seed=2,
                               labels=("t", 3)),
        ),
        attacks=(
            DropAttackSpec(link=(3, Direction.EAST), drop_probability=0.8,
                           enable_at=60, disable_at=350, seed=6),
        ),
        defense=DefenseSpec(
            mitigated=True,
            mitigation=MitigationConfig(
                method_sequence=((ObMethod.SHUFFLE, Granularity.HEADER),),
            ),
            e2e=True,
            watchdog=WatchdogConfig(),
            containment=ContainmentConfig(max_actions_per_cycle=2),
            probation=ProbationConfig(required_clean=4, max_flaps=2),
            detector=DetectConfig(window=32, consecutive=3),
            localizer=LocalizeConfig(cluster_radius=3, min_score=5.0),
            tdm_domains=2,
            rerouted_links=((2, Direction.WEST),),
        ),
        duration=400,
        sample_interval=25,
        seed=11,
    )


class TestRoundTrip:
    def test_default_scenario(self):
        s = Scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_rich_scenario(self):
        s = rich_scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_json_is_actually_json(self):
        # the wire format survives a strict encode/decode cycle
        text = rich_scenario().to_json()
        assert Scenario.from_dict(json.loads(text)) == rich_scenario()

    def test_decoded_traffic_keeps_types(self):
        s = Scenario.from_json(rich_scenario().to_json())
        kinds = [type(t).__name__ for t in s.traffic]
        assert kinds == ["SyntheticTraffic", "AppTraffic", "FloodTraffic",
                         "ExplicitTraffic"]

    def test_attack_and_containment_round_trip(self):
        s = Scenario.from_json(rich_scenario().to_json())
        (attack,) = s.attacks
        assert isinstance(attack, DropAttackSpec)
        assert attack.link == (3, Direction.EAST)
        assert attack.drop_probability == 0.8
        assert isinstance(s.defense.containment, ContainmentConfig)
        assert s.defense.containment.max_actions_per_cycle == 2

    def test_probation_and_detector_round_trip(self):
        s = Scenario.from_json(rich_scenario().to_json())
        assert isinstance(s.defense.probation, ProbationConfig)
        assert s.defense.probation.required_clean == 4
        assert s.defense.probation.max_flaps == 2
        assert isinstance(s.defense.detector, DetectConfig)
        assert s.defense.detector.window == 32
        (trojan,) = s.trojans
        assert trojan.disable_at == 250

    def test_pre_containment_documents_still_decode(self):
        # scenarios serialized before attacks/containment existed
        data = json.loads(rich_scenario().to_json())
        del data["attacks"]
        del data["defense"]["containment"]
        s = Scenario.from_dict(data)
        assert s.attacks == ()
        assert s.defense.containment is None


class TestContentHash:
    def test_stable_across_calls(self):
        s = rich_scenario()
        assert s.content_hash() == rich_scenario().content_hash()

    def test_survives_round_trip(self):
        s = rich_scenario()
        assert Scenario.from_json(s.to_json()).content_hash() == \
            s.content_hash()

    def test_name_is_part_of_identity(self):
        s = Scenario()
        assert dataclasses.replace(s, name="other").content_hash() != \
            s.content_hash()

    def test_every_field_matters(self):
        base = Scenario()
        variants = [
            dataclasses.replace(base, seed=1),
            dataclasses.replace(base, duration=100),
            dataclasses.replace(base, max_cycles=99),
            dataclasses.replace(base, sample_interval=7),
            dataclasses.replace(
                base, cfg=dataclasses.replace(PAPER_CONFIG, num_vcs=2)
            ),
            dataclasses.replace(
                base, traffic=(SyntheticTraffic(),)
            ),
            dataclasses.replace(
                base,
                trojans=trojan_specs([(0, Direction.EAST)],
                                     TargetSpec.for_dest(15)),
            ),
            dataclasses.replace(base, defense=DefenseSpec(mitigated=True)),
        ]
        hashes = {v.content_hash() for v in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_trojan_seed_convention(self):
        # i-th infected link gets seed + i, like attach_trojans always did
        specs = trojan_specs(
            [(0, Direction.EAST), (1, Direction.WEST)],
            TargetSpec.for_dest(15),
            config=TaspConfig(seed=10),
        )
        assert [s.config.seed for s in specs] == [10, 11]


class TestRecoveryBackCompat:
    """The recovery-loop fields (``TrojanSpec.disable_at``,
    ``DefenseSpec.probation`` / ``.detector``) are encoded only when
    set, so every scenario from before this layer existed serializes —
    and therefore content-hashes — byte-identically."""

    def pr7_scenario(self) -> Scenario:
        """A scenario using everything *except* the recovery loop."""
        return Scenario(
            name="pre-recovery",
            trojans=trojan_specs([(0, Direction.EAST)],
                                 TargetSpec.for_dest(15)),
            defense=DefenseSpec(
                mitigated=True,
                watchdog=WatchdogConfig(),
                containment=ContainmentConfig(),
            ),
            duration=400,
            seed=11,
        )

    def test_unset_fields_never_reach_the_wire(self):
        data = json.loads(self.pr7_scenario().to_json())
        assert "probation" not in data["defense"]
        assert "detector" not in data["defense"]
        assert all("disable_at" not in t for t in data["trojans"])

    def test_pre_recovery_documents_still_decode(self):
        data = json.loads(self.pr7_scenario().to_json())
        s = Scenario.from_dict(data)
        assert s.defense.probation is None
        assert s.defense.detector is None
        assert s.trojans[0].disable_at is None

    def test_hash_unchanged_by_the_new_fields_existing(self):
        # the canonical JSON is the hash input: no new keys on the
        # unset path means the hash is the pre-recovery hash
        s = self.pr7_scenario()
        assert Scenario.from_json(s.to_json()).content_hash() == \
            s.content_hash()

    def test_recovery_fields_are_part_of_identity(self):
        s = self.pr7_scenario()
        probed = dataclasses.replace(
            s, defense=dataclasses.replace(
                s.defense, probation=ProbationConfig()
            )
        )
        detected = dataclasses.replace(
            s, defense=dataclasses.replace(
                s.defense, detector=DetectConfig()
            )
        )
        hashes = {s.content_hash(), probed.content_hash(),
                  detected.content_hash()}
        assert len(hashes) == 3

    def test_disable_at_must_follow_enable_at(self):
        with pytest.raises(ValueError):
            TrojanSpec(link=(0, Direction.EAST),
                       target=TargetSpec.for_dest(15),
                       enable_at=200, disable_at=100)


class TestTopologyBackCompat:
    """The topology-layer fields (``NoCConfig.topology`` /
    ``.express_interval``, ``DefenseSpec.localizer``) are encoded only
    when set, so every scenario from before the topology layer existed
    serializes — and therefore content-hashes — byte-identically."""

    def pr8_scenario(self) -> Scenario:
        """A scenario using everything *except* the topology layer."""
        return Scenario(
            name="pre-topology",
            trojans=trojan_specs([(0, Direction.EAST)],
                                 TargetSpec.for_dest(15)),
            defense=DefenseSpec(
                mitigated=True,
                watchdog=WatchdogConfig(),
                containment=ContainmentConfig(),
                detector=DetectConfig(),
            ),
            duration=400,
            seed=11,
        )

    def test_unset_fields_never_reach_the_wire(self):
        data = json.loads(self.pr8_scenario().to_json())
        assert "topology" not in data["cfg"]
        assert "express_interval" not in data["cfg"]
        assert "localizer" not in data["defense"]

    def test_pre_topology_documents_still_decode(self):
        data = json.loads(self.pr8_scenario().to_json())
        # a pre-PR9 encoder never wrote the new keys at all; decoding
        # such a document must produce the mesh defaults
        for key in ("topology", "express_interval"):
            assert key not in data["cfg"]
        s = Scenario.from_dict(data)
        assert s.cfg.topology == "mesh"
        assert s.cfg.express_interval == 0
        assert s.defense.localizer is None

    def test_hash_unchanged_by_the_new_fields_existing(self):
        s = self.pr8_scenario()
        assert Scenario.from_json(s.to_json()).content_hash() == \
            s.content_hash()

    def test_topology_fields_are_part_of_identity(self):
        s = self.pr8_scenario()
        torus = dataclasses.replace(
            s, cfg=dataclasses.replace(s.cfg, topology="torus")
        )
        express = dataclasses.replace(
            s, cfg=dataclasses.replace(s.cfg, express_interval=2)
        )
        localized = dataclasses.replace(
            s, defense=dataclasses.replace(
                s.defense, localizer=LocalizeConfig()
            )
        )
        hashes = {s.content_hash(), torus.content_hash(),
                  express.content_hash(), localized.content_hash()}
        assert len(hashes) == 4

    def test_torus_scenario_round_trips(self):
        s = Scenario(
            name="torus",
            cfg=dataclasses.replace(PAPER_CONFIG, topology="torus"),
            defense=DefenseSpec(
                watchdog=WatchdogConfig(),
                containment=ContainmentConfig(),
                detector=DetectConfig(),
                localizer=LocalizeConfig(cluster_radius=1),
            ),
            duration=300,
            seed=5,
        )
        decoded = Scenario.from_json(s.to_json())
        assert decoded == s
        assert decoded.cfg.topology == "torus"
        assert decoded.defense.localizer == LocalizeConfig(cluster_radius=1)

    def test_localizer_requires_detector(self):
        from repro.sim.engine import Simulation

        bad = Scenario(
            name="no-detector",
            defense=DefenseSpec(
                watchdog=WatchdogConfig(),
                containment=ContainmentConfig(),
                localizer=LocalizeConfig(),
            ),
            duration=100,
        )
        with pytest.raises(ValueError, match="detector"):
            Simulation(bad)


class TestDecodeErrors:
    """Damaged scenario dicts fail loudly, naming the offending key."""

    def decode_traffic(self, spec: dict):
        data = json.loads(rich_scenario().to_json())
        data["traffic"] = [spec]
        return Scenario.from_dict(data)

    def test_unknown_traffic_kind_names_the_kind(self):
        with pytest.raises(ScenarioDecodeError) as excinfo:
            self.decode_traffic({"kind": "psychic"})
        assert "unknown kind 'psychic'" in str(excinfo.value)
        assert "synthetic" in str(excinfo.value)  # known kinds listed

    def test_missing_kind_names_the_key(self):
        with pytest.raises(ScenarioDecodeError, match="missing required key 'kind'"):
            self.decode_traffic({"injection_rate": 0.1})

    def test_extra_traffic_key_is_named(self):
        with pytest.raises(ScenarioDecodeError) as excinfo:
            self.decode_traffic(
                {"kind": "synthetic", "injection_rate": 0.1, "warp": 9}
            )
        assert "'warp'" in str(excinfo.value)

    def test_missing_top_level_key_is_named(self):
        data = json.loads(rich_scenario().to_json())
        del data["seed"]
        with pytest.raises(ScenarioDecodeError, match="missing required key 'seed'"):
            Scenario.from_dict(data)

    def test_extra_cfg_key_is_named(self):
        data = json.loads(rich_scenario().to_json())
        data["cfg"]["hyperdrive"] = True
        with pytest.raises(ScenarioDecodeError) as excinfo:
            Scenario.from_dict(data)
        assert "'hyperdrive'" in str(excinfo.value)

    def test_unsupported_format_is_rejected(self):
        data = json.loads(rich_scenario().to_json())
        data["format"] = 999
        with pytest.raises(ScenarioDecodeError, match="format 999 not supported"):
            Scenario.from_dict(data)

    def test_decode_error_is_a_value_error(self):
        # callers that guarded with ValueError keep working
        assert issubclass(ScenarioDecodeError, ValueError)
