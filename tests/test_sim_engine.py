"""Engine semantics: scenario wiring and active-set/full-sweep identity."""

import dataclasses

from repro.core import TargetSpec
from repro.experiments.export import to_jsonable
from repro.noc.config import PAPER_CONFIG
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.topology import Direction
from repro.resilience.watchdog import WatchdogConfig
from repro.sim import (
    AppTraffic,
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
    engine,
)


def stats_snapshot(net: Network) -> dict:
    """Every NetworkStats field (counters, per-packet records, samples)
    as plain JSON types, for bit-exact comparison."""
    return to_jsonable(vars(net.stats))


def fig2_style() -> Scenario:
    """Drain-heavy targeted flow through an infected, mitigated link."""
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0, dst_core=PAPER_CONFIG.core_of(11, 1),
                   mem_addr=0x100, inject_at=i * 40)
        for i in range(8)
    )
    return Scenario(
        name="fig2-style",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(11)),
        ),
        defense=DefenseSpec(mitigated=True),
        max_cycles=4000,
        stall_limit=1500,
    )


def chaos_style() -> Scenario:
    """Watchdog ladder + delayed trojan over live app traffic."""
    return Scenario(
        name="chaos-style",
        cfg=PAPER_CONFIG,
        traffic=(
            AppTraffic(profile="blackscholes", duration=400),
            SyntheticTraffic(injection_rate=0.01, duration=400, seed=7),
        ),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(15),
                       enabled=False, enable_at=50),
        ),
        defense=DefenseSpec(watchdog=WatchdogConfig()),
        max_cycles=3000,
        stall_limit=1200,
    )


class TestActiveSetIdentity:
    def run_both(self, scenario):
        active = Simulation(scenario)
        full = Simulation(scenario, full_sweep=True)
        assert not active.network.full_sweep
        assert full.network.full_sweep
        ra = active.run()
        rf = full.run()
        return active, full, ra, rf

    def test_fig2_style_bit_identical(self):
        active, full, ra, rf = self.run_both(fig2_style())
        assert ra == rf
        assert stats_snapshot(active.network) == stats_snapshot(full.network)

    def test_chaos_style_bit_identical(self):
        active, full, ra, rf = self.run_both(chaos_style())
        assert ra == rf
        assert stats_snapshot(active.network) == stats_snapshot(full.network)
        # the delayed trojan really fired in both runs
        assert active.trojans[0].triggers == full.trojans[0].triggers > 0

    def test_settled_network_prunes_to_empty(self):
        sim = Simulation(fig2_style())
        sim.run()
        net = sim.network
        for _ in range(5):
            net.step()
        assert not net._active_routers
        assert not net._active_links


class TestEngineWiring:
    def test_scheduled_source_matches_add_packet(self):
        """ExplicitTraffic replays exactly like pre-loading the backlog."""
        specs = tuple(
            PacketSpec(pkt_id=i, src_core=0, dst_core=63, vc_class=i % 4,
                       mem_addr=0x55)
            for i in range(10)
        )
        via_engine = engine.build(
            Scenario(cfg=PAPER_CONFIG,
                     traffic=(ExplicitTraffic(packets=specs),))
        )
        via_engine.run_until_drained(3000)

        manual = Network(PAPER_CONFIG)
        for s in specs:
            manual.add_packet(
                Packet(pkt_id=s.pkt_id, src_core=s.src_core,
                       dst_core=s.dst_core, vc_class=s.vc_class,
                       mem_addr=s.mem_addr, created_cycle=0)
            )
        manual.run_until_drained(3000)
        assert stats_snapshot(via_engine) == stats_snapshot(manual)

    def test_run_returns_result(self):
        result = engine.run(fig2_style())
        assert result.completed
        assert result.packets_completed == 8
        assert result.name == "fig2-style"

    def test_build_applies_defense_stack(self):
        scenario = dataclasses.replace(
            fig2_style(),
            defense=DefenseSpec(
                mitigated=True, e2e=True, tdm_domains=2,
                watchdog=WatchdogConfig(),
            ),
        )
        sim = Simulation(scenario)
        assert sim.network.e2e is not None
        assert sim.network.policy is not None
        assert sim.watchdog is not None

    def test_reroute_defense_avoids_condemned_link(self):
        scenario = dataclasses.replace(
            fig2_style(),
            trojans=(),
            defense=DefenseSpec(rerouted_links=((0, Direction.EAST),)),
        )
        result = engine.run(scenario)
        assert result.completed
        assert result.packets_completed == 8
