"""Watchdog escalation ladder: acceptance and regression campaigns.

The acceptance scenario pins a retransmission slot with TASP and then
kills the link outright; the watchdog must walk the whole ladder
(backoff -> forced obfuscation -> drop-with-notify -> condemn) and end
in epoch recovery with every packet delivered exactly once.  The
regression scenario proves graceful degradation is strictly opt-in:
with the watchdog disabled the paper's TASP deadlock reproduces
unchanged and nothing is ever dropped.
"""

import pytest

from repro.core.targets import TargetSpec
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.resilience import (
    CampaignSpec,
    ChaosCampaign,
    EscalationStage,
    LinkKill,
    RetransWatchdog,
    TrojanActivation,
    WatchdogConfig,
    targeted_stream,
    uniform_traffic,
)

ATTACK_LINK = (0, Direction.EAST)
TARGET = TargetSpec.for_dest(15)


def _victim_traffic(heavy=False):
    if heavy:
        return targeted_stream(
            PAPER_CONFIG, 0, 63, 40, interval=4
        ) + uniform_traffic(PAPER_CONFIG, 1, 60, interval=2)
    return targeted_stream(
        PAPER_CONFIG, 0, 63, 10, interval=10
    ) + uniform_traffic(PAPER_CONFIG, 1, 24, interval=6)


@pytest.fixture(scope="module")
def ladder_report():
    spec = CampaignSpec(
        name="ladder",
        cfg=PAPER_CONFIG,
        traffic=_victim_traffic(),
        events=[
            TrojanActivation(link=ATTACK_LINK, at=20, target=TARGET),
            LinkKill(link=ATTACK_LINK, at=60),
        ],
        max_cycles=6000,
    )
    return ChaosCampaign(spec).run()


@pytest.fixture(scope="module")
def deadlock_report():
    spec = CampaignSpec(
        name="no-watchdog",
        cfg=PAPER_CONFIG,
        traffic=_victim_traffic(heavy=True),
        events=[TrojanActivation(link=ATTACK_LINK, at=10, target=TARGET)],
        mitigated=False,
        watchdog=None,
        max_cycles=2500,
        deadlock_window=400,
    )
    return ChaosCampaign(spec).run()


@pytest.fixture(scope="module")
def bare_watchdog_report():
    spec = CampaignSpec(
        name="bare-watchdog",
        cfg=PAPER_CONFIG,
        traffic=_victim_traffic(heavy=True),
        events=[TrojanActivation(link=ATTACK_LINK, at=10, target=TARGET)],
        mitigated=False,
        max_cycles=8000,
    )
    return ChaosCampaign(spec).run()


class TestEscalationLadder:
    """Acceptance: TASP + link kill on a mitigated network."""

    def test_campaign_ends_live(self, ladder_report):
        assert not ladder_report.deadlocked
        assert ladder_report.drained

    def test_full_ladder_walked(self, ladder_report):
        stages = ladder_report.escalation_stages
        assert stages == tuple(
            s.value for s in EscalationStage
        ), f"expected the full ladder, got {stages}"

    def test_ladder_counters_nonzero(self, ladder_report):
        assert ladder_report.backoffs > 0
        assert ladder_report.obfuscations_forced > 0
        assert ladder_report.packets_dropped > 0
        assert ladder_report.flits_degraded > 0

    def test_condemnation_triggers_epoch_recovery(self, ladder_report):
        assert ATTACK_LINK in ladder_report.condemned_links
        assert ladder_report.epochs >= 2
        assert ladder_report.recovery_cycles

    def test_exactly_once_delivery(self, ladder_report):
        assert ladder_report.delivered_all
        assert ladder_report.duplicate_deliveries == 0
        assert ladder_report.resubmissions > 0

    def test_invariants_hold_throughout(self, ladder_report):
        assert ladder_report.invariant_checks > 0
        assert ladder_report.violations == ()

    def test_detection_latency_bounded(self, ladder_report):
        assert ladder_report.time_to_detect is not None
        assert ladder_report.time_to_detect < 100
        assert ladder_report.time_to_recover is not None


class TestDeadlockRegression:
    """Without the watchdog the paper's DoS deadlock must reproduce."""

    def test_tasp_deadlocks_without_watchdog(self, deadlock_report):
        assert deadlock_report.deadlocked
        assert deadlock_report.cycles < 1500

    def test_degradation_is_opt_in(self, deadlock_report):
        # no watchdog => nothing may ever be dropped or resubmitted
        assert deadlock_report.flits_degraded == 0
        assert deadlock_report.packets_dropped == 0
        assert deadlock_report.resubmissions == 0
        assert deadlock_report.backoffs == 0

    def test_victim_packets_starve(self, deadlock_report):
        assert not deadlock_report.delivered_all
        assert deadlock_report.packets_failed > 0

    def test_deadlock_still_conserves(self, deadlock_report):
        # a wedged network must not corrupt flow control
        assert deadlock_report.violations == ()


class TestBareWatchdogSurvival:
    """No L-Ob rung available: retries, drops and rerouting must do."""

    def test_survives_and_delivers(self, bare_watchdog_report):
        assert not bare_watchdog_report.deadlocked
        assert bare_watchdog_report.delivered_all
        assert bare_watchdog_report.duplicate_deliveries == 0

    def test_obfuscation_rung_skipped(self, bare_watchdog_report):
        # unmitigated network has no L-Ob hardware to engage
        assert bare_watchdog_report.obfuscations_forced == 0
        assert bare_watchdog_report.packets_dropped > 0
        assert bare_watchdog_report.epochs >= 2

    def test_invariants_hold(self, bare_watchdog_report):
        assert bare_watchdog_report.violations == ()


class TestPartitionRisk:
    """Condemnations that strand minimal-xy traffic must say so."""

    def _condemn(self, link, cycle=100):
        from repro.noc.network import Network

        net = Network(PAPER_CONFIG)
        watchdog = RetransWatchdog(WatchdogConfig()).attach(net)
        watchdog._drops_per_link[link] = (
            watchdog.config.condemn_after_drops
        )
        watchdog._maybe_condemn(net, link, cycle, ladder_active=False)
        return watchdog

    def test_corner_router_east_strands_three_quadrants(self):
        """Regression: the corner router's east link is the sole xy
        first hop for every destination off its column — the risk event
        must name all twelve."""
        watchdog = self._condemn((0, Direction.EAST))
        risks = watchdog.take_partition_risks()
        assert len(risks) == 1
        risk = risks[0]
        assert risk.link == (0, Direction.EAST)
        assert len(risk.stranded_dsts) == 12
        assert set(risk.stranded_dsts) == {
            r for r in range(16) if r % 4 != 0
        }

    def test_corner_router_north_strands_own_column(self):
        watchdog = self._condemn((0, Direction.NORTH))
        (risk,) = watchdog.take_partition_risks()
        assert set(risk.stranded_dsts) == {4, 8, 12}

    def test_risk_rides_along_with_condemnation(self):
        watchdog = self._condemn((0, Direction.EAST))
        assert watchdog.take_condemned() == [(0, Direction.EAST)]
        assert watchdog.partition_risks  # kept beyond the take() queue


class TestSharedRouterLadders:
    """Two infected links on one router run independent ladders."""

    @pytest.fixture(scope="class")
    def shared(self):
        from repro.resilience.containment import ContainmentConfig
        from repro.sim import (
            DefenseSpec,
            Scenario,
            SentinelSpec,
            Simulation,
            SyntheticTraffic,
            TrojanSpec,
        )

        scenario = Scenario(
            name="shared-router",
            cfg=PAPER_CONFIG,
            traffic=(
                SyntheticTraffic(
                    injection_rate=0.04, duration=1500, seed=5
                ),
            ),
            trojans=(
                TrojanSpec((5, Direction.EAST), TargetSpec.for_vc(0),
                           enable_at=100),
                TrojanSpec((5, Direction.NORTH), TargetSpec.for_vc(0),
                           enable_at=100),
            ),
            defense=DefenseSpec(
                watchdog=WatchdogConfig(),
                containment=ContainmentConfig(),
            ),
            duration=2200,
            sentinel=SentinelSpec(every=100),
            seed=9,
        )
        sim = Simulation(scenario)
        ladder_links = set()
        sim.watchdog.event_hooks.append(
            lambda event: ladder_links.add(event.link)
        )
        sim.run()  # sentinel trip raises; finishing proves zero trips
        return sim, ladder_links

    def test_both_ladders_escalated(self, shared):
        _, ladder_links = shared
        assert {(5, Direction.EAST), (5, Direction.NORTH)} <= ladder_links

    def test_both_links_contained_without_tripping(self, shared):
        sim, _ = shared
        assert sim.sentinel.report.ok
        contained = sim.containment.contained_links
        assert {(5, Direction.EAST), (5, Direction.NORTH)} <= contained

    def test_vertical_link_fell_back_to_drop_only(self, shared):
        """(5, NORTH) is a sole route for its column under west-first
        (no vertical detours exist), so the coordinator must refuse the
        reroute and leave the ladder in drop-only mode — while (5,
        EAST) is rerouted around."""
        sim, _ = shared
        states = sim.containment.link_states
        assert states[(5, Direction.NORTH)] == "drop_only"
        assert states[(5, Direction.EAST)] in ("draining", "sealed")


class TestWatchdogConfig:
    def test_rejects_misordered_ladder(self):
        with pytest.raises(ValueError):
            WatchdogConfig(backoff_after=5, obfuscate_after=3)
        with pytest.raises(ValueError):
            WatchdogConfig(obfuscate_after=8, max_retries=7)
        with pytest.raises(ValueError):
            WatchdogConfig(backoff_base=0)

    def test_default_ladder_is_ordered(self):
        cfg = WatchdogConfig()
        assert cfg.backoff_after < cfg.obfuscate_after < cfg.max_retries

    def test_attach_is_idempotent_across_epochs(self):
        from repro.noc.network import Network

        watchdog = RetransWatchdog(WatchdogConfig())
        first = Network(PAPER_CONFIG)
        watchdog.attach(first)
        second = Network(PAPER_CONFIG)
        watchdog.attach(second)
        assert watchdog not in first.monitors
        assert second.monitors == [watchdog]
