"""Watchdog escalation ladder: acceptance and regression campaigns.

The acceptance scenario pins a retransmission slot with TASP and then
kills the link outright; the watchdog must walk the whole ladder
(backoff -> forced obfuscation -> drop-with-notify -> condemn) and end
in epoch recovery with every packet delivered exactly once.  The
regression scenario proves graceful degradation is strictly opt-in:
with the watchdog disabled the paper's TASP deadlock reproduces
unchanged and nothing is ever dropped.
"""

import pytest

from repro.core.targets import TargetSpec
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.resilience import (
    CampaignSpec,
    ChaosCampaign,
    EscalationStage,
    LinkKill,
    RetransWatchdog,
    TrojanActivation,
    WatchdogConfig,
    targeted_stream,
    uniform_traffic,
)

ATTACK_LINK = (0, Direction.EAST)
TARGET = TargetSpec.for_dest(15)


def _victim_traffic(heavy=False):
    if heavy:
        return targeted_stream(
            PAPER_CONFIG, 0, 63, 40, interval=4
        ) + uniform_traffic(PAPER_CONFIG, 1, 60, interval=2)
    return targeted_stream(
        PAPER_CONFIG, 0, 63, 10, interval=10
    ) + uniform_traffic(PAPER_CONFIG, 1, 24, interval=6)


@pytest.fixture(scope="module")
def ladder_report():
    spec = CampaignSpec(
        name="ladder",
        cfg=PAPER_CONFIG,
        traffic=_victim_traffic(),
        events=[
            TrojanActivation(link=ATTACK_LINK, at=20, target=TARGET),
            LinkKill(link=ATTACK_LINK, at=60),
        ],
        max_cycles=6000,
    )
    return ChaosCampaign(spec).run()


@pytest.fixture(scope="module")
def deadlock_report():
    spec = CampaignSpec(
        name="no-watchdog",
        cfg=PAPER_CONFIG,
        traffic=_victim_traffic(heavy=True),
        events=[TrojanActivation(link=ATTACK_LINK, at=10, target=TARGET)],
        mitigated=False,
        watchdog=None,
        max_cycles=2500,
        deadlock_window=400,
    )
    return ChaosCampaign(spec).run()


@pytest.fixture(scope="module")
def bare_watchdog_report():
    spec = CampaignSpec(
        name="bare-watchdog",
        cfg=PAPER_CONFIG,
        traffic=_victim_traffic(heavy=True),
        events=[TrojanActivation(link=ATTACK_LINK, at=10, target=TARGET)],
        mitigated=False,
        max_cycles=8000,
    )
    return ChaosCampaign(spec).run()


class TestEscalationLadder:
    """Acceptance: TASP + link kill on a mitigated network."""

    def test_campaign_ends_live(self, ladder_report):
        assert not ladder_report.deadlocked
        assert ladder_report.drained

    def test_full_ladder_walked(self, ladder_report):
        stages = ladder_report.escalation_stages
        assert stages == tuple(
            s.value for s in EscalationStage
        ), f"expected the full ladder, got {stages}"

    def test_ladder_counters_nonzero(self, ladder_report):
        assert ladder_report.backoffs > 0
        assert ladder_report.obfuscations_forced > 0
        assert ladder_report.packets_dropped > 0
        assert ladder_report.flits_degraded > 0

    def test_condemnation_triggers_epoch_recovery(self, ladder_report):
        assert ATTACK_LINK in ladder_report.condemned_links
        assert ladder_report.epochs >= 2
        assert ladder_report.recovery_cycles

    def test_exactly_once_delivery(self, ladder_report):
        assert ladder_report.delivered_all
        assert ladder_report.duplicate_deliveries == 0
        assert ladder_report.resubmissions > 0

    def test_invariants_hold_throughout(self, ladder_report):
        assert ladder_report.invariant_checks > 0
        assert ladder_report.violations == ()

    def test_detection_latency_bounded(self, ladder_report):
        assert ladder_report.time_to_detect is not None
        assert ladder_report.time_to_detect < 100
        assert ladder_report.time_to_recover is not None


class TestDeadlockRegression:
    """Without the watchdog the paper's DoS deadlock must reproduce."""

    def test_tasp_deadlocks_without_watchdog(self, deadlock_report):
        assert deadlock_report.deadlocked
        assert deadlock_report.cycles < 1500

    def test_degradation_is_opt_in(self, deadlock_report):
        # no watchdog => nothing may ever be dropped or resubmitted
        assert deadlock_report.flits_degraded == 0
        assert deadlock_report.packets_dropped == 0
        assert deadlock_report.resubmissions == 0
        assert deadlock_report.backoffs == 0

    def test_victim_packets_starve(self, deadlock_report):
        assert not deadlock_report.delivered_all
        assert deadlock_report.packets_failed > 0

    def test_deadlock_still_conserves(self, deadlock_report):
        # a wedged network must not corrupt flow control
        assert deadlock_report.violations == ()


class TestBareWatchdogSurvival:
    """No L-Ob rung available: retries, drops and rerouting must do."""

    def test_survives_and_delivers(self, bare_watchdog_report):
        assert not bare_watchdog_report.deadlocked
        assert bare_watchdog_report.delivered_all
        assert bare_watchdog_report.duplicate_deliveries == 0

    def test_obfuscation_rung_skipped(self, bare_watchdog_report):
        # unmitigated network has no L-Ob hardware to engage
        assert bare_watchdog_report.obfuscations_forced == 0
        assert bare_watchdog_report.packets_dropped > 0
        assert bare_watchdog_report.epochs >= 2

    def test_invariants_hold(self, bare_watchdog_report):
        assert bare_watchdog_report.violations == ()


class TestWatchdogConfig:
    def test_rejects_misordered_ladder(self):
        with pytest.raises(ValueError):
            WatchdogConfig(backoff_after=5, obfuscate_after=3)
        with pytest.raises(ValueError):
            WatchdogConfig(obfuscate_after=8, max_retries=7)
        with pytest.raises(ValueError):
            WatchdogConfig(backoff_base=0)

    def test_default_ladder_is_ordered(self):
        cfg = WatchdogConfig()
        assert cfg.backoff_after < cfg.obfuscate_after < cfg.max_retries

    def test_attach_is_idempotent_across_epochs(self):
        from repro.noc.network import Network

        watchdog = RetransWatchdog(WatchdogConfig())
        first = Network(PAPER_CONFIG)
        watchdog.attach(first)
        second = Network(PAPER_CONFIG)
        watchdog.attach(second)
        assert watchdog not in first.monitors
        assert second.monitors == [watchdog]
