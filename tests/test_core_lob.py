"""Unit + property tests for the L-Ob obfuscation codec and encoder."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DEFAULT_METHOD_SEQUENCE,
    Granularity,
    LObCodec,
    LObEncoder,
    ObDescriptor,
    ObMethod,
    PENALTY_CYCLES,
    TargetSpec,
)
from repro.noc import PAPER_CONFIG, Packet
from repro.noc.retrans import NackAdvice, RetransBuffer
from repro.util.bits import mask

WORDS = st.integers(min_value=0, max_value=mask(64))
PURE_METHODS = [ObMethod.INVERT, ObMethod.SHUFFLE]
GRANULARITIES = list(Granularity)


class TestLObCodec:
    @given(WORDS, st.sampled_from(PURE_METHODS), st.sampled_from(GRANULARITIES))
    def test_undo_inverts_apply(self, data, method, gran):
        codec = LObCodec(seed=11)
        assert codec.undo(codec.apply(data, method, gran), method, gran) == data

    @given(WORDS)
    def test_invert_full_is_complement(self, data):
        codec = LObCodec()
        assert codec.apply(data, ObMethod.INVERT, Granularity.FULL) == (
            data ^ mask(64)
        )

    def test_header_granularity_preserves_payload_bits(self):
        codec = LObCodec(seed=3)
        data = 0xFFFF_FFFF_FFFF_FFFF
        out = codec.apply(data, ObMethod.INVERT, Granularity.HEADER)
        # header window is bits 0..41; bits 42..63 untouched
        assert out >> 42 == data >> 42
        assert out & mask(42) == 0

    def test_payload_granularity_preserves_header_bits(self):
        codec = LObCodec(seed=3)
        data = mask(64)
        out = codec.apply(data, ObMethod.INVERT, Granularity.PAYLOAD)
        assert out & mask(42) == mask(42)
        assert out >> 42 == 0

    def test_shuffle_changes_header_pattern(self):
        codec = LObCodec(seed=5)
        data = 0x0000_0000_0000_00F0  # dest field = 15
        out = codec.apply(data, ObMethod.SHUFFLE, Granularity.FULL)
        assert out != data

    def test_different_links_different_secrets(self):
        a, b = LObCodec(seed=1), LObCodec(seed=2)
        data = 0x123456789ABCDEF0
        assert a.apply(data, ObMethod.SHUFFLE, Granularity.FULL) != b.apply(
            data, ObMethod.SHUFFLE, Granularity.FULL
        )

    def test_same_seed_same_transform(self):
        a, b = LObCodec(seed=9), LObCodec(seed=9)
        data = 0xCAFEBABE
        assert a.apply(data, ObMethod.SHUFFLE, Granularity.FULL) == b.apply(
            data, ObMethod.SHUFFLE, Granularity.FULL
        )

    def test_scramble_not_a_codec_transform(self):
        codec = LObCodec()
        with pytest.raises(ValueError):
            codec.apply(0, ObMethod.SCRAMBLE, Granularity.FULL)

    @given(WORDS, st.sampled_from(GRANULARITIES))
    def test_obfuscation_defeats_dest_target(self, mem_bits, gran):
        # Inverting or shuffling the header must change the dest field
        # pattern for (almost) any flit; specifically dest=15 -> not 15
        # after invert.
        codec = LObCodec(seed=2)
        data = (15 << 4) | (mem_bits & ~(0xF << 4))
        out = codec.apply(data, ObMethod.INVERT, Granularity.FULL)
        assert (out >> 4) & 0xF != 15

    def test_penalties_match_paper(self):
        # 1 cycle for invert/shuffle, 1-2 for scramble (we charge 2)
        assert PENALTY_CYCLES[ObMethod.INVERT] == 1
        assert PENALTY_CYCLES[ObMethod.SHUFFLE] == 1
        assert PENALTY_CYCLES[ObMethod.SCRAMBLE] == 2


def make_entry(buf, pkt_id=1, dst=60, vc=0, cycle=0):
    flit = Packet(
        pkt_id=pkt_id, src_core=0, dst_core=dst, vc_class=vc, mem_addr=0x42
    ).build_flits(PAPER_CONFIG)[0]
    tag = buf.admit(flit, vc, cycle)
    entry = buf.get(tag)
    entry.vc_seq = tag
    return entry


class TestLObEncoder:
    def _encoder(self, **kw):
        return LObEncoder(LObCodec(seed=4), **kw)

    def test_plain_send_without_advice(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        entry = make_entry(buf)
        got = enc.select_and_encode([entry], 0)
        assert got == (entry, entry.flit.data, None)

    def test_advised_entry_gets_obfuscated(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        entry = make_entry(buf)
        entry.ob_advice = NackAdvice(enable_obfuscation=True, method_index=0)
        sel, data, desc = enc.select_and_encode([entry], 0)
        assert sel is entry
        assert desc.method is ObMethod.INVERT
        assert data == entry.flit.data ^ mask(64)

    def test_method_index_walks_sequence(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        entry = make_entry(buf)
        entry.ob_advice = NackAdvice(enable_obfuscation=True, method_index=1)
        _, _, desc = enc.select_and_encode([entry], 0)
        assert (desc.method, desc.granularity) == DEFAULT_METHOD_SEQUENCE[1]

    def test_scramble_picks_partner(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        target = make_entry(buf, pkt_id=1)
        partner = make_entry(buf, pkt_id=2, dst=8)
        scramble_idx = DEFAULT_METHOD_SEQUENCE.index(
            (ObMethod.SCRAMBLE, Granularity.FULL)
        )
        target.ob_advice = NackAdvice(True, scramble_idx)
        sel, data, desc = enc.select_and_encode([target, partner], 0)
        assert sel is target
        assert desc.method is ObMethod.SCRAMBLE
        assert desc.partner_tag == partner.tag
        assert data == target.flit.data ^ partner.flit.data

    def test_scramble_without_partner_falls_back(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        target = make_entry(buf)
        scramble_idx = DEFAULT_METHOD_SEQUENCE.index(
            (ObMethod.SCRAMBLE, Granularity.FULL)
        )
        target.ob_advice = NackAdvice(True, scramble_idx)
        sel, data, desc = enc.select_and_encode([target], 0)
        assert sel is target
        assert desc.method is not ObMethod.SCRAMBLE

    def test_reorder_defers_and_sends_next(self):
        enc = LObEncoder(
            LObCodec(seed=4),
            method_sequence=((ObMethod.REORDER, Granularity.FULL),),
            reorder_window=6,
        )
        buf = RetransBuffer(4)
        target = make_entry(buf, pkt_id=1)
        other = make_entry(buf, pkt_id=2)
        target.ob_advice = NackAdvice(True, 0)
        sel, data, desc = enc.select_and_encode([target, other], cycle=10)
        assert sel is other
        assert desc is None
        assert target.defer_until == 16
        assert enc.reorders == 1

    def test_reorder_alone_idles_link(self):
        enc = LObEncoder(
            LObCodec(seed=4),
            method_sequence=((ObMethod.REORDER, Granularity.FULL),),
        )
        buf = RetransBuffer(4)
        target = make_entry(buf)
        target.ob_advice = NackAdvice(True, 0)
        assert enc.select_and_encode([target], 0) is None

    def test_success_logging_enables_preemption(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        first = make_entry(buf, pkt_id=1)
        first.ob_advice = NackAdvice(True, 0)
        enc.select_and_encode([first], 0)
        assert enc.link_suspicious
        enc.record_success(
            first.flit.flow_signature,
            ObDescriptor(ObMethod.INVERT, Granularity.FULL),
        )
        # a later flit of the same flow is pre-obfuscated without advice
        later = make_entry(buf, pkt_id=2)
        sel, data, desc = enc.select_and_encode([later], 5)
        assert desc is not None
        assert desc.method is ObMethod.INVERT
        assert enc.preemptive_sends == 1

    def test_no_preemption_while_link_clean(self):
        enc = self._encoder()
        enc.record_success(
            (0, 15, 0), ObDescriptor(ObMethod.INVERT, Granularity.FULL)
        )
        buf = RetransBuffer(4)
        entry = make_entry(buf)
        _, _, desc = enc.select_and_encode([entry], 0)
        assert desc is None  # link never showed trouble

    def test_counters(self):
        enc = self._encoder()
        buf = RetransBuffer(4)
        e = make_entry(buf)
        e.ob_advice = NackAdvice(True, 0)
        enc.select_and_encode([e], 0)
        assert enc.obfuscated_sends[ObMethod.INVERT] == 1

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            LObEncoder(LObCodec(), method_sequence=())
