"""Containment coordinator: admission safety, budget, quarantine.

The load-bearing guarantee is *no condemnation may strand traffic*:
every avoid-set the coordinator admits keeps every src/dst pair
routable under the reroute turn model with 180-degree turns banned —
verified here both by the admission predicate and by literally walking
packets through the rerouted mesh.  The rest covers the global action
budget (jittered, deterministic), invariant-safe sealing, the region
quarantine escalation with its locality gate, the pure-observer
identity, and the network-wide packet purge behind the drop stage.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TargetSpec
from repro.noc.adaptive import AdaptiveRouting, turn_model_connected
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.invariants import NetworkValidator
from repro.noc.network import Network
from repro.noc.topology import Direction, OPPOSITE, all_links, neighbor
from repro.resilience.containment import (
    ContainmentConfig,
    ContainmentCoordinator,
    SAFE_REROUTE_MODELS,
)
from repro.resilience.watchdog import (
    EscalationStage,
    RetransWatchdog,
    WatchdogConfig,
)
from repro.sim import (
    DefenseSpec,
    Scenario,
    SentinelSpec,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
)
from repro.sim.scenario import (
    DropAttackSpec,
    coordinated_trojans,
    distributed_flood,
)
from tests.test_sim_engine import fig2_style, stats_snapshot

CFG = PAPER_CONFIG
MESH8 = NoCConfig(mesh_width=8, mesh_height=8)
EAST = Direction.EAST


class _Probe:
    """Minimal router stand-in: carries the arrival port so route()
    enforces the 180-degree ban, with no congestion information."""

    outputs: dict = {}

    def __init__(self, arrival):
        self.routing_input = arrival


def walk(routing: AdaptiveRouting, src: int, dst: int) -> list:
    """Route one packet hop by hop; returns the traversed links.

    Asserts the walk terminates at ``dst`` without ever crossing an
    avoided link or taking a 180-degree turn.
    """
    cfg = routing.cfg
    cur, arrival = src, None
    links = []
    for _ in range(cfg.num_routers * 4):
        if cur == dst:
            return links
        d = routing.route(cur, dst, src, _Probe(arrival))
        assert d is not None, f"stranded at {cur} en route {src}->{dst}"
        assert (cur, d) not in routing.avoid, (
            f"walk {src}->{dst} crossed avoided link {(cur, d)}"
        )
        assert d is not arrival, f"180-degree turn at {cur}"
        links.append((cur, d))
        cur = neighbor(cfg, cur, d)
        assert cur is not None
        arrival = OPPOSITE[d]
    raise AssertionError(f"walk {src}->{dst} did not terminate: {links}")


def admit_sequence(cfg: NoCConfig, candidates) -> frozenset:
    """Replay the coordinator's admission policy over a condemnation
    sequence: each link joins the avoid-set only if connectivity
    survives; the rest are refused (drop-only fallback)."""
    avoid: frozenset = frozenset()
    for key in candidates:
        if turn_model_connected(cfg, "west-first", avoid | {key}):
            avoid = avoid | {key}
    return avoid


class TestAdmissionNeverStrands:
    """Property: admitted avoid-sets keep every pair routable."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(all_links(CFG)),
            min_size=1, max_size=6, unique=True,
        )
    )
    def test_random_condemnation_sequences_4x4(self, condemned):
        avoid = admit_sequence(CFG, condemned)
        routing = AdaptiveRouting(CFG, "west-first", avoid)
        for src in range(CFG.num_routers):
            for dst in range(CFG.num_routers):
                if src != dst:
                    walk(routing, src, dst)

    def test_coordinated_attack_set_8x8(self):
        """The distributed campaign's five-trojan avoid-set, walked
        exhaustively from every corner and every attacked row."""
        condemned = [(9, EAST), (18, EAST), (27, EAST), (36, EAST),
                     (45, EAST)]
        avoid = admit_sequence(MESH8, condemned)
        assert avoid == frozenset(condemned)  # all admissible
        routing = AdaptiveRouting(MESH8, "west-first", avoid)
        for src in (0, 7, 56, 63, 9, 18, 27, 36, 45):
            for dst in range(MESH8.num_routers):
                if src != dst:
                    walk(routing, src, dst)

    def test_westbound_sole_route_is_refused(self):
        """A westbound link is its traffic's only legal route under
        west-first (no turns into west exist), so condemning it must
        fail the admission check."""
        assert not turn_model_connected(
            CFG, "west-first", {(1, Direction.WEST)}
        )

    def test_eastbound_link_is_admissible(self):
        assert turn_model_connected(CFG, "west-first", {(0, EAST)})

    def test_refused_set_would_really_strand(self):
        """Admission refusals are not conservative noise: with the
        refused link forced into the avoid-set anyway, the backward
        fixpoint shows a genuinely dead state."""
        routing = AdaptiveRouting(CFG, "west-first", {(1, Direction.WEST)})
        live = routing.live_states(0)
        assert (1, None) not in live


def _attach(cfg, config=None):
    net = Network(cfg)
    watchdog = RetransWatchdog(WatchdogConfig()).attach(net)
    coordinator = ContainmentCoordinator(config).attach(net, watchdog)
    return net, watchdog, coordinator


def _condemn(watchdog, *keys):
    """Inject condemnations the way the ladder raises them."""
    watchdog._condemned.update(keys)
    watchdog._pending_condemned.extend(keys)


class TestCoordinatorDecisions:
    def test_eastbound_condemnation_is_rerouted(self):
        net, wd, co = _attach(CFG)
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=100)
        assert co.avoid == frozenset({(0, EAST)})
        assert co.links_rerouted == 1 and co.links_refused == 0
        # an idle network drains vacuously, so the same cycle seals it
        assert [e.kind for e in co.events] == ["contain", "seal"]

    def test_westbound_condemnation_falls_back_to_drop_only(self):
        net, wd, co = _attach(CFG)
        _condemn(wd, (1, Direction.WEST))
        co.on_cycle(net, cycle=100)
        assert co.link_states[(1, Direction.WEST)] == "drop_only"
        assert co.avoid == frozenset()  # routing untouched
        assert co.links_refused == 1
        assert any(
            e.kind == "refuse" and "partition" in e.detail
            for e in co.events
        )

    def test_idle_draining_link_is_sealed(self):
        net, wd, co = _attach(CFG)
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=100)
        assert co.link_states[(0, EAST)] == "sealed"
        assert net.links[(0, EAST)].disabled
        assert co.links_sealed == 1

    def test_sealing_waits_for_committed_upstream_packet(self):
        """A head flit already route-computed toward the condemned
        output pins the seal: disabling the link would strand it at VC
        allocation forever."""
        net, wd, co = _attach(CFG)
        vc = net.routers[0].inputs[("inj", 0)].vcs[0]
        vc.route_out = EAST
        vc.cur_pkt = 7
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=100)
        assert co.link_states[(0, EAST)] == "draining"
        assert not net.links[(0, EAST)].disabled
        vc.reset_packet_state()
        co.on_cycle(net, cycle=101)
        assert co.link_states[(0, EAST)] == "sealed"

    def test_sealing_waits_for_held_downstream_vc(self):
        """A held VC means a wormhole is mid-transfer: sealing between
        its flits would cut it and leak holders downstream."""
        net, wd, co = _attach(CFG)
        out = net.output_port_of((0, EAST))
        out.holders[0] = (("inj", 0), 0)
        out.holder_pkts[0] = 7
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=100)
        assert co.link_states[(0, EAST)] == "draining"
        out.holders[0] = None
        out.holder_pkts[0] = None
        co.on_cycle(net, cycle=101)
        assert co.link_states[(0, EAST)] == "sealed"

    def test_partition_risks_are_consumed_and_logged(self):
        net, wd, co = _attach(CFG)
        wd._drops_per_link[(0, EAST)] = wd.config.condemn_after_drops
        wd._maybe_condemn(net, (0, EAST), cycle=50, ladder_active=False)
        co.on_cycle(net, cycle=50)
        assert len(co.partition_risks) == 1
        assert co.partition_risks[0].link == (0, EAST)
        assert any(e.kind == "partition_risk" for e in co.events)

    def test_summary_shape(self):
        net, wd, co = _attach(CFG)
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=100)
        summary = co.summary()
        assert summary["reroute_model"] == "west-first"
        assert summary["links_rerouted"] == 1
        assert summary["time_to_contain"] == {"0->EAST": 0}
        assert summary["max_time_to_contain"] == 0

    def test_time_to_contain_measures_from_ladder_onset(self):
        net, wd, co = _attach(CFG)
        co._first_ladder_cycle[(0, EAST)] = 40
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=100)
        assert co.time_to_contain[(0, EAST)] == 60

    def test_detach_restores_watchdog_ownership(self):
        net, wd, co = _attach(CFG)
        assert wd.action_gate is not None
        co.detach()
        assert wd.action_gate is None
        assert co not in net.monitors

    def test_yx_routing_has_no_safe_reroute(self):
        net = Network(dataclasses.replace(CFG, routing="yx"))
        wd = RetransWatchdog(WatchdogConfig()).attach(net)
        co = ContainmentCoordinator().attach(net, wd)
        assert co.reroute_model is None
        _condemn(wd, (0, EAST))
        co.on_cycle(net, cycle=10)
        assert co.link_states[(0, EAST)] == "drop_only"
        assert any("no deadlock-safe" in e.detail for e in co.events)


class TestActionBudget:
    def _gate(self, co, key, cycle):
        return co._gate(EscalationStage.DROP, key, cycle)

    def test_budget_caps_actions_per_cycle(self):
        _, _, co = _attach(CFG, ContainmentConfig(max_actions_per_cycle=2))
        links = [(0, EAST), (1, EAST), (2, EAST)]
        grants = [self._gate(co, k, 10) for k in links]
        assert grants == [True, True, False]
        assert co.actions_allowed == 2 and co.actions_denied == 1

    def test_denied_link_backs_off_then_retries(self):
        _, _, co = _attach(CFG, ContainmentConfig(
            max_actions_per_cycle=1, retry_base=8, retry_cap=64,
        ))
        assert self._gate(co, (0, EAST), 10)
        assert not self._gate(co, (1, EAST), 10)
        retry_at = co._next_try[(1, EAST)]
        assert 10 < retry_at <= 10 + 8 * 2  # base + full jitter
        # retrying early is denied without consuming budget
        assert not self._gate(co, (1, EAST), retry_at - 1)
        assert self._gate(co, (1, EAST), retry_at)
        assert (1, EAST) not in co._next_try  # state cleared on grant

    def test_backoff_is_exponential_and_jitter_deterministic(self):
        def deny_schedule():
            _, _, co = _attach(CFG, ContainmentConfig(
                max_actions_per_cycle=1, seed=5,
            ))
            delays = []
            cycle = 0
            for _ in range(5):
                assert self._gate(co, (0, EAST), cycle)  # eats budget
                assert not self._gate(co, (1, EAST), cycle)
                delays.append(co._next_try[(1, EAST)] - cycle)
                cycle = co._next_try[(1, EAST)]
            return delays

        first = deny_schedule()
        assert first == deny_schedule()  # same seed, same schedule
        assert first == sorted(first)  # monotone (exponential ladder)
        assert first[-1] > first[0]

    def test_desynchronizes_parallel_ladders(self):
        """Two links denied in the same cycle must not retry in
        lockstep — that is the thundering-herd the jitter exists for."""
        _, _, co = _attach(CFG, ContainmentConfig(
            max_actions_per_cycle=1, retry_base=64, retry_cap=4096,
        ))
        schedules = {}
        for link in ((1, EAST), (2, EAST), (3, EAST)):
            delays = []
            for level in range(4):
                assert self._gate(co, (0, EAST), level)  # eats budget
                assert not self._gate(co, link, level)
                delays.append(co._next_try[link] - level)
                co._next_try.pop(link)  # isolate levels
            schedules[link] = tuple(delays)
        assert len(set(schedules.values())) == 3


class TestRegionQuarantine:
    CLUSTER = ((9, EAST), (10, EAST), (17, EAST))

    def test_localized_cluster_escalates_to_quarantine(self):
        net, wd, co = _attach(MESH8)
        _condemn(wd, *self.CLUSTER)
        co.on_cycle(net, cycle=500)
        assert co.quarantines == 1
        quarantine = [e for e in co.events if e.kind == "quarantine"]
        assert len(quarantine) == 1
        # the rectangle spans routers (1,1)..(3,2); its eastbound inner
        # links are quarantined preemptively, including never-condemned
        # (18, EAST)
        assert (18, EAST) in co.avoid
        # the idle network drains vacuously, so it is already sealed
        assert co.link_states[(18, EAST)] == "sealed"
        # westbound/vertical inner links survive (sole routes)
        assert (10, Direction.WEST) not in co.avoid
        assert turn_model_connected(MESH8, "west-first", co.avoid)

    def test_scattered_attack_is_not_quarantined(self):
        """Condemnations spread across the mesh fail the locality gate:
        walling off most of the mesh would cost more than the per-link
        containment already in force."""
        net, wd, co = _attach(MESH8)
        _condemn(wd, (9, EAST), (27, EAST), (45, EAST))
        co.on_cycle(net, cycle=500)
        assert co.quarantines == 0
        assert any(
            e.kind == "refuse" and "not localized" in e.detail
            for e in co.events
        )

    def test_below_threshold_no_quarantine(self):
        net, wd, co = _attach(MESH8)
        _condemn(wd, (9, EAST), (10, EAST))
        co.on_cycle(net, cycle=500)
        assert co.quarantines == 0

    def test_quarantine_can_be_disabled(self):
        net, wd, co = _attach(MESH8, ContainmentConfig(quarantine=False))
        _condemn(wd, *self.CLUSTER)
        co.on_cycle(net, cycle=500)
        assert co.quarantines == 0
        assert (18, EAST) not in co.avoid

    def test_rect_is_attempted_once(self):
        net, wd, co = _attach(MESH8)
        _condemn(wd, *self.CLUSTER)
        co.on_cycle(net, cycle=500)
        _condemn(wd, (18, EAST))  # same rectangle, already quarantined
        co.on_cycle(net, cycle=600)
        assert co.quarantines == 1


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ContainmentConfig(max_actions_per_cycle=0)
        with pytest.raises(ValueError):
            ContainmentConfig(retry_base=16, retry_cap=8)
        with pytest.raises(ValueError):
            ContainmentConfig(jitter=-0.1)
        with pytest.raises(ValueError):
            ContainmentConfig(reroute_model="zigzag")
        with pytest.raises(ValueError):
            ContainmentConfig(quarantine_threshold=1)
        with pytest.raises(ValueError):
            ContainmentConfig(quarantine_max_fraction=0.0)

    def test_safe_models_cover_xy(self):
        assert SAFE_REROUTE_MODELS["xy"] == "west-first"


class TestPureObserver:
    """With a watchdog that never condemns, the coordinator must be
    byte-invisible — the single-trojan paper figures stay identical
    with containment enabled."""

    def test_fig2_style_bit_identical_with_containment(self):
        def run(containment):
            scenario = dataclasses.replace(
                fig2_style(),
                defense=DefenseSpec(
                    mitigated=True,
                    watchdog=WatchdogConfig(),
                    containment=containment,
                ),
            )
            sim = Simulation(scenario)
            return sim, sim.run()

        bare, rb = run(None)
        contained, rc = run(ContainmentConfig())
        assert rb == rc
        assert stats_snapshot(bare.network) == stats_snapshot(
            contained.network
        )
        assert contained.containment.contained_links == frozenset()
        assert contained.containment.actions_denied == 0

    def test_containment_requires_watchdog(self):
        scenario = dataclasses.replace(
            fig2_style(),
            defense=DefenseSpec(containment=ContainmentConfig()),
        )
        with pytest.raises(ValueError, match="watchdog"):
            Simulation(scenario)


class TestPurgePacket:
    """The network-wide flush behind the drop stage: no trace of the
    condemned packet survives, and conservation still balances."""

    def _sim_with_traffic(self):
        scenario = Scenario(
            name="purge-probe",
            cfg=CFG,
            traffic=(
                SyntheticTraffic(
                    injection_rate=0.1, duration=60, seed=3
                ),
            ),
            max_cycles=2000,
            stall_limit=500,
        )
        return Simulation(scenario)

    def _in_flight_pkt(self, net):
        for router in net.routers:
            for port in router.inputs.items():
                for vc in port[1].vcs:
                    if vc.buffer:
                        return vc.buffer[0].pkt_id
        return None

    def test_purge_removes_every_trace_and_conserves(self):
        sim = self._sim_with_traffic()
        for _ in range(40):
            sim.step()
        net = sim.network
        pkt_id = self._in_flight_pkt(net)
        assert pkt_id is not None
        purged = net.purge_packet(pkt_id, net.cycle)
        assert purged > 0
        for router in net.routers:
            for port in router.inputs.values():
                for vc in port.vcs:
                    assert all(f.pkt_id != pkt_id for f in vc.buffer)
                    assert vc.cur_pkt != pkt_id
            for out in router.outputs.values():
                assert all(p != pkt_id for p in out.holder_pkts)
        # conservation holds across the purge and the rest of the run
        NetworkValidator(net).check(raise_on_violation=True)
        sim.run()
        NetworkValidator(net).check(raise_on_violation=True)


def containment_acceptance_scenario() -> Scenario:
    """A scaled-down distributed campaign that fits in the tier-1
    budget: two coordinated trojans, a flood, and a gray-hole on a 4x4
    mesh with the full defense stack and the sentinel auditing."""
    duration = 2600
    return Scenario(
        name="containment-acceptance",
        cfg=CFG,
        traffic=(
            SyntheticTraffic(
                injection_rate=0.02, payload_words=2,
                duration=duration - 200, seed=7,
            ),
        )
        + distributed_flood(
            rogue_cores=(4,), victim_cores=(60,),
            rate=0.2, start_cycle=150,
            stop_cycle=duration - 200, seed=11,
        ),
        trojans=coordinated_trojans(
            ((1, EAST), (9, EAST)),
            TargetSpec.for_vc(0),
            start=200,
            stagger=80,
        ),
        attacks=(
            DropAttackSpec(
                link=(6, EAST), drop_probability=1.0, enable_at=300
            ),
        ),
        defense=DefenseSpec(
            watchdog=WatchdogConfig(),
            containment=ContainmentConfig(),
        ),
        duration=duration,
        sentinel=SentinelSpec(every=100),
        seed=2,
    )


class TestAcceptanceCampaign:
    @pytest.fixture(scope="class")
    def survived(self):
        sim = Simulation(containment_acceptance_scenario())
        sim.run()  # a sentinel trip raises: finishing proves zero trips
        return sim

    def test_sentinel_stayed_clean(self, survived):
        assert survived.sentinel.checks >= 20
        assert survived.sentinel.report.ok

    def test_attacked_links_contained_in_bounded_time(self, survived):
        co = survived.containment
        assert {(1, EAST), (9, EAST)} <= co.contained_links
        assert co.summary()["max_time_to_contain"] < 1500

    def test_budget_actually_gated(self, survived):
        co = survived.containment
        assert co.actions_allowed > 0
        assert co.actions_denied > 0

    def test_benign_traffic_kept_flowing(self, survived):
        delivered = sum(
            1
            for record in survived.network.stats.completed_records()
            if record.pkt_id < 10_000_000
        )
        assert delivered > 500
