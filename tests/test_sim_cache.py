"""Result cache: hits, misses, and invalidation."""

import json

import pytest

from repro.noc.config import PAPER_CONFIG
from repro.sim import (
    ExplicitTraffic,
    PacketSpec,
    ResultCache,
    Scenario,
    cached_run,
    code_version,
    spec_hash,
)
from repro.sim import cache as cache_mod


def tiny_scenario(name="cache-tiny") -> Scenario:
    return Scenario(
        name=name,
        cfg=PAPER_CONFIG,
        traffic=(
            ExplicitTraffic(packets=(
                PacketSpec(pkt_id=0, src_core=0, dst_core=5),
            )),
        ),
        max_cycles=500,
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_miss_then_hit(self, cache):
        key = spec_hash({"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}

    def test_corrupt_entry_is_a_miss(self, cache):
        key = spec_hash({"x": 2})
        path = cache.put(key, {"value": 1})
        path.write_text("{ not json")
        assert cache.get(key) is None

    def test_stale_code_version_is_a_miss(self, cache):
        key = spec_hash({"x": 3})
        path = cache.put(key, {"value": 1})
        entry = json.loads(path.read_text())
        entry["code_version"] = "0" * 16
        # a version bump renames the entry file too; rewrite in place to
        # simulate an old tree's leftover colliding on the same path
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_truncated_entry_is_a_miss(self, cache):
        key = spec_hash({"x": 20})
        path = cache.put(key, {"value": 1})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get(key) is None

    def test_garbage_binary_entry_is_a_miss(self, cache):
        key = spec_hash({"x": 21})
        path = cache.put(key, {"value": 1})
        path.write_bytes(b"\x00\xff garbage \x80")
        assert cache.get(key) is None

    def test_non_dict_entry_is_a_miss(self, cache):
        key = spec_hash({"x": 22})
        path = cache.put(key, {"value": 1})
        path.write_text('["a", "list"]')
        assert cache.get(key) is None

    def test_entries_carry_format_stamp(self, cache):
        key = spec_hash({"x": 23})
        path = cache.put(key, {"value": 1})
        assert json.loads(path.read_text())["format"] == cache_mod.CACHE_FORMAT

    def test_unknown_format_stamp_is_a_miss(self, cache):
        key = spec_hash({"x": 24})
        path = cache.put(key, {"value": 1})
        entry = json.loads(path.read_text())
        entry["format"] = cache_mod.CACHE_FORMAT + 1
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_missing_format_stamp_is_a_miss(self, cache):
        # pre-versioning entries must not be revived
        key = spec_hash({"x": 25})
        path = cache.put(key, {"value": 1})
        entry = json.loads(path.read_text())
        del entry["format"]
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_entries_shard_by_hash_prefix(self, cache):
        key = spec_hash({"x": 4})
        path = cache.put(key, {})
        assert path.parent.name == key[:2]
        assert code_version() in path.name

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert ResultCache().root == tmp_path / "env-cache"


class TestCachedRun:
    def test_second_run_skips_simulation(self, cache, monkeypatch):
        first = cached_run(tiny_scenario(), cache)

        def boom(*a, **k):  # pragma: no cover - would fail the test
            raise AssertionError("simulated on a cache hit")

        monkeypatch.setattr(cache_mod, "run", boom)
        second = cached_run(tiny_scenario(), cache)
        assert second == first
        assert second.packets_completed == 1

    def test_different_scenarios_do_not_collide(self, cache):
        a = cached_run(tiny_scenario("a"), cache)
        b = cached_run(tiny_scenario("b"), cache)
        assert a.name == "a" and b.name == "b"

    def test_spec_hash_is_order_insensitive(self):
        assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})
        assert spec_hash({"a": 1}) != spec_hash({"a": 2})
