"""Event engine: wheel mechanics, engine selection, oracle identity.

The sweep engine is the oracle: every behaviour-bearing artifact
(stats, results, checkpoints) produced under ``engine="event"`` must be
bit-identical to the sweep run of the same scenario.  Cross-process
``PYTHONHASHSEED`` immunity lives in ``tests/test_engine_oracle.py``.
"""

import dataclasses
import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.export import to_jsonable
from repro.sim import (
    ENGINE_ENV,
    EventCore,
    Scenario,
    ScenarioDecodeError,
    Simulation,
    SyntheticTraffic,
    WakeupWheel,
    engine,
)

from tests.test_sim_engine import chaos_style, fig2_style, stats_snapshot

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def canonical(result, net) -> str:
    return json.dumps(
        {
            "result": dataclasses.asdict(result),
            "stats": stats_snapshot(net),
        },
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# wheel mechanics
# ---------------------------------------------------------------------------
class TestWakeupWheel:
    def test_fifo_within_a_cycle(self):
        wheel = WakeupWheel()
        wheel.schedule(5, "b")
        wheel.schedule(5, "a")
        wheel.schedule(5, "c")
        assert wheel.pop_due(5) == ["b", "a", "c"]

    def test_cycle_order_across_buckets(self):
        wheel = WakeupWheel()
        wheel.schedule(9, "late")
        wheel.schedule(3, "early")
        wheel.schedule(6, "mid")
        assert wheel.pop_due(10) == ["early", "mid", "late"]

    def test_schedule_is_idempotent_per_cycle(self):
        wheel = WakeupWheel()
        for _ in range(4):
            wheel.schedule(2, "t")
        wheel.schedule(3, "t")  # same token, other cycle: kept
        assert len(wheel) == 2
        assert wheel.pop_due(99) == ["t", "t"]

    def test_next_cycle_discards_stale_buckets(self):
        wheel = WakeupWheel()
        wheel.schedule(1, "old")
        wheel.schedule(8, "new")
        assert wheel.next_cycle(5) == 8
        # the stale bucket is really gone, not just skipped
        assert len(wheel) == 1

    def test_next_cycle_empty(self):
        assert WakeupWheel().next_cycle(0) is None
        assert not WakeupWheel()

    def test_pop_due_leaves_future_buckets(self):
        wheel = WakeupWheel()
        wheel.schedule(4, "now")
        wheel.schedule(7, "later")
        assert wheel.pop_due(4) == ["now"]
        assert wheel.next_cycle(0) == 7

    def test_pickle_round_trip_preserves_order(self):
        wheel = WakeupWheel()
        wheel.schedule(5, "b")
        wheel.schedule(5, "a")
        wheel.schedule(2, "z")
        clone = pickle.loads(pickle.dumps(wheel))
        assert clone.pop_due(9) == ["z", "b", "a"]


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_default_is_sweep(self):
        sim = Simulation(fig2_style())
        assert sim.engine == "sweep"
        assert sim.event_core is None

    def test_explicit_event(self):
        sim = Simulation(fig2_style(), engine="event")
        assert sim.engine == "event"
        assert isinstance(sim.event_core, EventCore)

    def test_scenario_field_selects_event(self):
        scenario = dataclasses.replace(fig2_style(), engine="event")
        sim = Simulation(scenario)
        assert sim.engine == "event"

    def test_env_var_overrides_scenario(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "event")
        sim = Simulation(fig2_style())
        assert sim.engine == "event"

    def test_explicit_param_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "event")
        sim = Simulation(fig2_style(), engine="sweep")
        assert sim.engine == "sweep"

    def test_full_sweep_forces_sweep_engine(self):
        sim = Simulation(fig2_style(), full_sweep=True, engine="event")
        assert sim.engine == "sweep"
        assert sim.event_core is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulation(fig2_style(), engine="warp")

    def test_unknown_env_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "warp")
        with pytest.raises(ValueError, match="unknown engine"):
            Simulation(fig2_style())


class TestScenarioEngineField:
    def test_round_trip(self):
        scenario = dataclasses.replace(fig2_style(), engine="event")
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_sweep_not_emitted(self):
        # older scenario files stay byte-stable: the default engine is
        # omitted from the encoding entirely
        assert "engine" not in fig2_style().to_dict()

    def test_content_hash_ignores_engine(self):
        # both engines produce identical artifacts, so cache entries
        # and checkpoints are shared across them by design
        base = fig2_style()
        event = dataclasses.replace(base, engine="event")
        assert base.content_hash() == event.content_hash()

    def test_unknown_engine_value_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(fig2_style(), engine="warp")

    def test_unknown_encoded_engine_rejected(self):
        data = fig2_style().to_dict()
        data["engine"] = "warp"
        with pytest.raises(ScenarioDecodeError):
            Scenario.from_dict(data)


# ---------------------------------------------------------------------------
# oracle identity
# ---------------------------------------------------------------------------
class TestEventVsSweepIdentity:
    def run_both(self, scenario):
        sweep = Simulation(scenario, engine="sweep")
        event = Simulation(scenario, engine="event")
        return sweep, event, sweep.run(), event.run()

    @pytest.mark.parametrize("build", [fig2_style, chaos_style])
    def test_bit_identical(self, build):
        sweep, event, rs, re_ = self.run_both(build())
        assert rs == re_
        assert canonical(rs, sweep.network) == canonical(re_, event.network)

    def test_event_engine_actually_skips(self):
        _, event, _, result = self.run_both(fig2_style())
        core = event.event_core
        assert core.cycles_skipped > 0
        assert core.leaps > 0
        # every skipped cycle still counts against the simulated total
        assert result.cycles == event.network.cycle

    def test_wake_accounting_is_deterministic(self):
        a = Simulation(fig2_style(), engine="event")
        b = Simulation(fig2_style(), engine="event")
        a.run()
        b.run()
        assert a.event_core.wake_counts == b.event_core.wake_counts
        assert a.event_core.cycles_skipped == b.event_core.cycles_skipped

    def test_delayed_trojan_fires_identically(self):
        # chaos_style arms its trojan at cycle 50 via a scheduled
        # enable; the event engine must not teleport past the edge
        sweep, event, _, _ = self.run_both(chaos_style())
        assert event.trojans[0].triggers == sweep.trojans[0].triggers > 0

    def test_torus_defense_stack_identical(self):
        # wrap routing, dateline VCs, and the detect->localize->
        # targeted-quarantine pipeline under both engines
        from repro.core import TargetSpec
        from repro.noc.config import NoCConfig
        from repro.noc.topology import Direction
        from repro.resilience.containment import ContainmentConfig
        from repro.resilience.detect import DetectConfig
        from repro.resilience.localize import LocalizeConfig
        from repro.resilience.watchdog import WatchdogConfig
        from repro.sim import DefenseSpec, TrojanSpec

        scenario = Scenario(
            name="torus-oracle",
            cfg=NoCConfig(mesh_width=4, mesh_height=4, topology="torus"),
            traffic=(
                SyntheticTraffic(injection_rate=0.03, duration=1400,
                                 seed=7),
            ),
            trojans=(
                TrojanSpec((5, Direction.EAST), TargetSpec.for_vc(0),
                           enabled=False, enable_at=700),
            ),
            defense=DefenseSpec(
                watchdog=WatchdogConfig(),
                containment=ContainmentConfig(),
                detector=DetectConfig(),
                localizer=LocalizeConfig(),
            ),
            duration=1600,
        )
        sweep, event, rs, re_ = self.run_both(scenario)
        assert rs == re_
        assert canonical(rs, sweep.network) == canonical(re_, event.network)
        assert (
            sweep.localizer.summary() == event.localizer.summary()
        )
        assert (
            sweep.containment.summary() == event.containment.summary()
        )

    def test_express_mesh_identical(self):
        from repro.noc.config import NoCConfig

        scenario = Scenario(
            name="express-oracle",
            cfg=NoCConfig(mesh_width=6, mesh_height=6,
                          express_interval=2),
            traffic=(
                SyntheticTraffic(injection_rate=0.03, duration=800,
                                 seed=5),
            ),
            duration=1000,
        )
        sweep, event, rs, re_ = self.run_both(scenario)
        assert rs == re_
        assert canonical(rs, sweep.network) == canonical(re_, event.network)

    def test_stall_abort_identical(self):
        # a flow that dies mid-run must abort at the same cycle: the
        # trojan drops everything and nothing is mitigated
        from repro.sim import DefenseSpec

        scenario = dataclasses.replace(
            fig2_style(),
            defense=DefenseSpec(),
            max_cycles=4000,
            stall_limit=300,
        )
        sweep, event, rs, re_ = self.run_both(scenario)
        assert not rs.completed
        assert rs == re_
        assert canonical(rs, sweep.network) == canonical(re_, event.network)

    def test_advance_to_duration_identical(self):
        scenario = chaos_style()
        sweep = Simulation(scenario, engine="sweep")
        event = Simulation(scenario, engine="event")
        for target in (30, 49, 50, 51, 400, 1500):
            sweep.advance_to(target)
            event.advance_to(target)
            assert sweep.network.cycle == event.network.cycle == target
            assert stats_snapshot(sweep.network) == stats_snapshot(
                event.network
            )

    def test_synthetic_traffic_pins_the_clock(self):
        # Bernoulli sources draw RNG every non-done cycle, so nothing
        # may be skipped while one is live
        scenario = Scenario(
            cfg=fig2_style().cfg,
            traffic=(SyntheticTraffic(injection_rate=0.005, duration=300),),
            max_cycles=2000,
            stall_limit=800,
        )
        sweep, event, rs, re_ = self.run_both(scenario)
        assert rs == re_
        assert canonical(rs, sweep.network) == canonical(re_, event.network)

    def test_sentinel_cadence_identical(self):
        from repro.sim.sentinel import SentinelSpec

        scenario = dataclasses.replace(
            fig2_style(), sentinel=SentinelSpec(every=50)
        )
        sweep, event, rs, re_ = self.run_both(scenario)
        assert rs == re_
        assert sweep.sentinel.checks == event.sentinel.checks > 0
        assert canonical(rs, sweep.network) == canonical(re_, event.network)


# ---------------------------------------------------------------------------
# checkpoints carry the scheduler
# ---------------------------------------------------------------------------
_CHILD = """
import dataclasses, json, sys
from repro.experiments.export import to_jsonable
from repro.sim import Simulation
sim = Simulation.restore(sys.argv[1])
result = sim.run()
print(json.dumps(
    {
        "engine": sim.engine,
        "result": dataclasses.asdict(result),
        "stats": to_jsonable(vars(sim.network.stats)),
    },
    sort_keys=True,
))
"""


class TestEventCheckpoints:
    def test_mid_run_restore_continues_identically(self):
        scenario = fig2_style()
        straight = Simulation(scenario, engine="event")
        expected_result = straight.run()
        expected = canonical(expected_result, straight.network)

        sim = Simulation(scenario, engine="event")
        sim.advance_to(120)
        resumed = Simulation.restore(sim.snapshot())
        assert resumed.engine == "event"
        assert resumed.event_core is not None
        resumed_result = resumed.run()
        assert resumed_result == expected_result
        assert canonical(resumed_result, resumed.network) == expected

    def test_restore_in_fresh_process(self, tmp_path):
        scenario = fig2_style()
        straight = Simulation(scenario, engine="event")
        expected = {
            "engine": "event",
            "result": dataclasses.asdict(straight.run()),
            "stats": stats_snapshot(straight.network),
        }

        sim = Simulation(scenario, engine="event")
        sim.advance_to(120)
        path = sim.snapshot().save(tmp_path / "state.ckpt")

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == json.dumps(expected, sort_keys=True)

    def test_periodic_checkpoints_identical_under_event(self, tmp_path):
        # the checkpoint cadence lands cycles, so checkpointed event
        # runs still match the sweep bit-for-bit
        scenario = fig2_style()
        sweep = Simulation(scenario, engine="sweep")
        rs = sweep.run()

        event = Simulation(scenario, engine="event")
        event.configure_checkpoints(tmp_path, interval=60)
        re_ = event.run()
        assert rs == re_
        assert canonical(rs, sweep.network) == canonical(re_, event.network)
        assert list(tmp_path.glob("*.ckpt"))

    def test_engine_mode_survives_resume_or_build(self, tmp_path):
        scenario = fig2_style()
        sim = Simulation(scenario, engine="event")
        sim.configure_checkpoints(tmp_path, interval=50)
        sim.advance_to(130)  # "killed" here; checkpoints exist

        resumed = engine.resume_or_build(
            scenario, tmp_path, engine="event"
        )
        assert resumed.resumed_from_cycle is not None
        assert resumed.engine == "event"
        result = resumed.run()

        straight = Simulation(scenario, engine="sweep").run()
        assert result == straight
