"""Tests for the structured event schema and bus (repro.obs.events)."""

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventBus,
    EventSchemaError,
    Subscription,
    event_from_dict,
    events_to_jsonable,
    validate_event_dict,
)


class TestSchema:
    def test_round_trip(self):
        event = Event(
            kind="corrupt", cycle=42, run="fig11",
            data={"pkt_id": 7, "seq": 1, "link": "0->EAST", "bits": 2},
        )
        payload = event.to_dict()
        assert payload["v"] == EVENT_SCHEMA_VERSION
        assert event_from_dict(payload) == event

    @pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
    def test_every_kind_round_trips_with_full_payload(self, kind):
        data = {key: 1 for key in EVENT_KINDS[kind]}
        event = Event(kind=kind, cycle=0, run="r", data=data)
        assert event_from_dict(event.to_dict()) == event

    def test_version_mismatch_rejected(self):
        payload = Event(kind="inject", cycle=1).to_dict()
        payload["v"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(EventSchemaError, match="schema version"):
            validate_event_dict(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(EventSchemaError, match="unknown event kind"):
            validate_event_dict({"v": EVENT_SCHEMA_VERSION,
                                 "kind": "teleport", "cycle": 0})

    def test_unexpected_data_keys_rejected(self):
        payload = Event(kind="verdict", cycle=5).to_dict()
        payload["surprise"] = True
        with pytest.raises(EventSchemaError, match="unexpected data keys"):
            validate_event_dict(payload)

    def test_non_integer_cycle_rejected(self):
        with pytest.raises(EventSchemaError, match="cycle"):
            validate_event_dict({"v": EVENT_SCHEMA_VERSION,
                                 "kind": "inject", "cycle": "soon"})

    def test_events_to_jsonable(self):
        events = [Event(kind="inject", cycle=c) for c in range(3)]
        dicts = events_to_jsonable(events)
        assert [d["cycle"] for d in dicts] == [0, 1, 2]


class TestBus:
    def test_emit_without_subscribers_builds_nothing(self):
        bus = EventBus()
        assert bus.emit("inject", 0, pkt_id=1) is None
        assert bus.published == 0
        assert not bus.active

    def test_fan_out_to_all_subscriptions(self):
        bus = EventBus()
        a = bus.subscribe()
        b = bus.subscribe()
        event = bus.emit("deliver", 9, "run", pkt_id=3, seq=0, core=1)
        assert event is not None and bus.published == 1
        assert a.drain() == [event]
        assert list(b.peek()) == [event]

    def test_bounded_queue_drops_and_counts_never_blocks(self):
        bus = EventBus()
        sub = bus.subscribe(capacity=2)
        for cycle in range(5):
            bus.emit("inject", cycle)
        assert len(sub) == 2
        assert sub.dropped == 3
        assert sub.received == 2
        # the oldest events are the ones kept (drop-new policy)
        assert [e.cycle for e in sub.drain()] == [0, 1]
        assert len(sub) == 0
        # publishing kept going the whole time
        assert bus.published == 5

    def test_slow_subscriber_does_not_affect_others(self):
        bus = EventBus()
        tiny = bus.subscribe(capacity=1)
        big = bus.subscribe(capacity=100)
        for cycle in range(4):
            bus.emit("inject", cycle)
        assert len(tiny) == 1 and tiny.dropped == 3
        assert len(big) == 4 and big.dropped == 0

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)  # second removal is a no-op
        assert bus.emit("inject", 0) is None

    def test_subscription_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Subscription(0)
