"""Failure forensics: bundle capture, deterministic replay, CLI.

A failing run with forensics armed must leave a complete ``*.repro``
bundle, and replaying that bundle must re-raise the *same* failure
signature at the *same* cycle — that determinism is what makes the
shrinker's oracle trustworthy.
"""

import json
import pickle

import pytest

from repro.noc.invariants import InvariantViolation
from repro.noc.tracing import FlitTracer
from repro.sim import (
    Checkpoint,
    ForensicsError,
    Simulation,
    engine,
    failure_signature,
    load_bundle,
    planted_deadlock_scenario,
    replay_bundle,
)
from repro.sim.forensics import (
    BUNDLE_FORMAT,
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    SCENARIO_NAME,
    TRACE_NAME,
    VIOLATION_NAME,
    main as forensics_main,
)
from repro.sim.sentinel import SentinelTrip


@pytest.fixture(scope="module")
def planted_bundle(tmp_path_factory):
    """One captured planted-failure bundle shared by the read-only
    tests (each makes its own when it mutates anything)."""
    out = tmp_path_factory.mktemp("forensics")
    sim = Simulation(planted_deadlock_scenario())
    sim.enable_forensics(out)
    with pytest.raises(SentinelTrip) as excinfo:
        sim.run()
    return excinfo.value, excinfo.value.repro_bundle


class TestBundleCapture:
    def test_bundle_is_complete(self, planted_bundle):
        exc, bundle = planted_bundle
        assert bundle is not None and bundle.is_dir()
        assert bundle.suffix == ".repro"
        names = sorted(p.name for p in bundle.iterdir())
        assert names == sorted([
            MANIFEST_NAME, SCENARIO_NAME, CHECKPOINT_NAME,
            VIOLATION_NAME, TRACE_NAME,
        ])

    def test_manifest_fields(self, planted_bundle):
        exc, bundle = planted_bundle
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        scenario = planted_deadlock_scenario()
        assert manifest["format"] == BUNDLE_FORMAT
        assert manifest["name"] == scenario.name
        assert manifest["scenario_hash"] == scenario.content_hash()
        assert manifest["signature"] == "livelock"
        assert manifest["cycle"] == exc.cycle
        assert manifest["checkpoint_cycle"] <= exc.cycle
        assert sorted(manifest["files"]) == sorted(
            p.name for p in bundle.iterdir()
        )

    def test_violation_payload(self, planted_bundle):
        exc, bundle = planted_bundle
        violation = json.loads((bundle / VIOLATION_NAME).read_text())
        assert violation["signature"] == "livelock"
        assert violation["type"] == "SentinelTrip"
        assert violation["cycle"] == exc.cycle
        assert "re-sent" in violation["message"]

    def test_trace_window_ends_at_failure(self, planted_bundle):
        exc, bundle = planted_bundle
        trace = (bundle / TRACE_NAME).read_text()
        assert "pkt" in trace  # flit events were captured

    def test_bundled_scenario_round_trips(self, planted_bundle):
        _, bundle = planted_bundle
        assert (
            load_bundle(bundle).scenario == planted_deadlock_scenario()
        )

    def test_no_forensics_no_bundle(self):
        sim = Simulation(planted_deadlock_scenario())
        with pytest.raises(SentinelTrip) as excinfo:
            sim.run()
        assert not hasattr(excinfo.value, "repro_bundle")

    def test_engine_run_env_var(self, tmp_path, monkeypatch):
        """Forked runner workers arm forensics via the environment."""
        monkeypatch.setenv("REPRO_FORENSICS_DIR", str(tmp_path / "fx"))
        with pytest.raises(SentinelTrip) as excinfo:
            engine.run(planted_deadlock_scenario())
        bundle = excinfo.value.repro_bundle
        assert bundle is not None
        assert bundle.parent == tmp_path / "fx"

    def test_collision_suffix(self, tmp_path, planted_bundle):
        """Two failures at the same cycle in the same directory get
        distinct bundle names."""
        for _ in range(2):
            sim = Simulation(planted_deadlock_scenario())
            sim.enable_forensics(tmp_path)
            with pytest.raises(SentinelTrip):
                sim.run()
        bundles = sorted(p.name for p in tmp_path.glob("*.repro"))
        assert len(bundles) == 2
        assert bundles[0] != bundles[1]


class TestReplay:
    def test_replay_reproduces(self, planted_bundle):
        exc, bundle = planted_bundle
        replayed = replay_bundle(bundle)
        assert failure_signature(replayed) == "livelock"
        assert replayed.cycle == exc.cycle

    def test_replay_is_deterministic(self, planted_bundle):
        _, bundle = planted_bundle
        a = replay_bundle(bundle)
        b = replay_bundle(bundle)
        assert str(a) == str(b)
        assert a.cycle == b.cycle

    def test_replay_sim_does_not_rebundle(self, planted_bundle):
        _, bundle = planted_bundle
        sim = Simulation.replay(bundle)
        assert sim.forensics is None
        with pytest.raises(SentinelTrip) as excinfo:
            sim.run()
        assert not hasattr(excinfo.value, "repro_bundle")

    def test_not_a_bundle(self, tmp_path):
        with pytest.raises(ForensicsError, match="not a repro bundle"):
            load_bundle(tmp_path)

    def test_unsupported_format(self, tmp_path, planted_bundle):
        _, bundle = planted_bundle
        bad = tmp_path / "bad.repro"
        bad.mkdir()
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        manifest["format"] = BUNDLE_FORMAT + 1
        (bad / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ForensicsError, match="format"):
            load_bundle(bad)


class TestRecorderState:
    def test_ring_tracer_keeps_newest(self):
        scenario = planted_deadlock_scenario()
        sim = Simulation(scenario)
        tracer = FlitTracer.attach(sim.network, capacity=5, ring=True)
        with pytest.raises(SentinelTrip):
            sim.run()
        assert len(tracer.events) == 5
        assert tracer.truncated  # older events were evicted
        cycles = [e.cycle for e in tracer.events]
        assert cycles == sorted(cycles)

    def test_forensics_snapshot_does_not_nest(self, tmp_path):
        """Checkpointing a sim with forensics armed must drop the held
        last-good snapshot (a snapshot inside a snapshot would grow
        without bound) and stay picklable despite the tracer hooks."""
        sim = Simulation(planted_deadlock_scenario())
        forensics = sim.enable_forensics(tmp_path)
        for _ in range(10):
            sim.step()
        checkpoint = Checkpoint.capture(sim)
        restored = checkpoint.restore()
        assert restored.forensics is not None
        assert restored.forensics.last_good is None
        state = pickle.loads(pickle.dumps(forensics.__getstate__()))
        assert state["last_good"] is None

    def test_restored_recorder_without_snapshot_refuses(self, tmp_path):
        sim = Simulation(planted_deadlock_scenario())
        sim.enable_forensics(tmp_path)
        restored = Checkpoint.capture(sim).restore()
        with pytest.raises(ForensicsError, match="last-good"):
            restored.forensics.write_bundle(ValueError("x"))


class TestFailureSignature:
    def test_sentinel_trip_uses_kind(self):
        assert failure_signature(
            SentinelTrip("deadlock", 3, "m")
        ) == "deadlock"

    def test_invariant_violation(self):
        assert failure_signature(InvariantViolation("m")) == "invariant"

    def test_other_exceptions(self):
        assert failure_signature(ValueError("m")) == "crash:ValueError"


class TestCli:
    def test_demo_then_replay(self, tmp_path, capsys):
        out = tmp_path / "demo"
        assert forensics_main(["demo", "--dir", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "failure: livelock" in printed
        bundles = list(out.glob("*.repro"))
        assert len(bundles) == 1
        assert forensics_main(["replay", str(bundles[0])]) == 0
        assert "replay ok: livelock" in capsys.readouterr().out

    def test_replay_of_garbage_fails(self, tmp_path, capsys):
        assert forensics_main(["replay", str(tmp_path)]) == 1
        assert "replay FAILED" in capsys.readouterr().out
