"""SECDED property tests across codec widths.

The library defaults to SECDED(72,64) but supports any data width —
these properties must hold for all of them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import DecodeStatus, Secded
from repro.util.bits import mask

WIDTHS = [4, 8, 16, 32, 64, 128]
CODECS = {w: Secded(w) for w in WIDTHS}


@pytest.mark.parametrize("width", WIDTHS)
class TestPerWidth:
    def test_check_bit_count_is_minimal(self, width):
        codec = CODECS[width]
        r = codec.check_bits
        # Hamming bound: 2^r >= width + r + 1, and r-1 must not suffice
        assert 2**r >= width + r + 1
        assert 2 ** (r - 1) < width + (r - 1) + 1

    def test_roundtrip_all_ones(self, width):
        codec = CODECS[width]
        data = mask(width)
        assert codec.decode(codec.encode(data)).data == data

    def test_single_error_exhaustive(self, width):
        codec = CODECS[width]
        data = 0x5A5A5A5A5A5A5A5A5A5A5A5A5A5A5A5A & mask(width)
        cw = codec.encode(data)
        for pos in range(codec.codeword_bits):
            res = codec.decode(cw ^ (1 << pos))
            assert res.status is DecodeStatus.CORRECTED
            assert res.data == data

    def test_adjacent_double_errors_detected(self, width):
        codec = CODECS[width]
        cw = codec.encode(0x33 & mask(width))
        for pos in range(codec.codeword_bits - 1):
            res = codec.decode(cw ^ (0b11 << pos))
            assert res.status is DecodeStatus.DETECTED


class TestCrossWidthProperties:
    @settings(max_examples=60)
    @given(
        st.sampled_from(WIDTHS),
        st.data(),
    )
    def test_roundtrip_property(self, width, data):
        codec = CODECS[width]
        value = data.draw(st.integers(min_value=0, max_value=mask(width)))
        res = codec.decode(codec.encode(value))
        assert res.status is DecodeStatus.CLEAN
        assert res.data == value

    @settings(max_examples=60)
    @given(st.sampled_from(WIDTHS), st.data())
    def test_linearity_property(self, width, data):
        codec = CODECS[width]
        a = data.draw(st.integers(min_value=0, max_value=mask(width)))
        b = data.draw(st.integers(min_value=0, max_value=mask(width)))
        assert codec.encode(a) ^ codec.encode(b) == codec.encode(a ^ b)

    @settings(max_examples=60)
    @given(st.sampled_from(WIDTHS), st.data())
    def test_random_double_error_detected_property(self, width, data):
        codec = CODECS[width]
        value = data.draw(st.integers(min_value=0, max_value=mask(width)))
        p1 = data.draw(
            st.integers(min_value=0, max_value=codec.codeword_bits - 1)
        )
        p2 = data.draw(
            st.integers(min_value=0, max_value=codec.codeword_bits - 1)
        )
        if p1 == p2:
            return
        cw = codec.encode(value) ^ (1 << p1) ^ (1 << p2)
        assert codec.decode(cw).status is DecodeStatus.DETECTED

    def test_overhead_shrinks_relatively_with_width(self):
        # check-bit overhead fraction decreases with data width
        fractions = [
            CODECS[w].check_bits / w for w in WIDTHS
        ]
        assert fractions == sorted(fractions, reverse=True)
