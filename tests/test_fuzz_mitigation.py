"""Property fuzz: the mitigation's delivery guarantee.

For any trojan target, any infected link, and any (modest) workload
that the clean network can deliver, the mitigated network must deliver
it too — that is the paper's graceful-degradation contract.  Hypothesis
explores the configuration space; each example is a full simulation.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    TargetSpec,
    TaspConfig,
    TaspTrojan,
    build_mitigated_network,
)
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import all_links
from repro.util.rng import SeededStream

LINKS = all_links(PAPER_CONFIG)

target_specs = st.one_of(
    st.integers(min_value=0, max_value=15).map(TargetSpec.for_dest),
    st.integers(min_value=0, max_value=15).map(TargetSpec.for_src),
    st.integers(min_value=0, max_value=3).map(TargetSpec.for_vc),
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    ).map(lambda sd: TargetSpec.for_dest_src(*sd)),
    st.integers(min_value=0, max_value=(1 << 32) - 1).map(
        TargetSpec.for_mem
    ),
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    target=target_specs,
    link_idx=st.integers(min_value=0, max_value=len(LINKS) - 1),
    seed=st.integers(min_value=0, max_value=10_000),
    payload_states=st.integers(min_value=1, max_value=8),
)
def test_mitigated_network_always_delivers(
    target, link_idx, seed, payload_states
):
    stream = SeededStream(seed, "fuzz")
    net = build_mitigated_network(PAPER_CONFIG)
    trojan = TaspTrojan(
        target,
        TaspConfig(num_payload_states=payload_states, seed=seed),
    )
    trojan.enable()
    net.attach_tamperer(LINKS[link_idx], trojan)

    offered = 0
    for pid in range(12):
        src = stream.randint(0, 63)
        dst = stream.randint(0, 63)
        if src == dst:
            continue
        net.add_packet(
            Packet(
                pkt_id=pid,
                src_core=src,
                dst_core=dst,
                vc_class=stream.randint(0, 3),
                mem_addr=stream.bits(32),
                payload=[stream.bits(64)
                         for _ in range(stream.randint(0, 2))],
                created_cycle=0,
            )
        )
        offered += 1

    drained = net.run_until_drained(25000, stall_limit=6000)
    assert drained, (
        f"mitigation failed: target={target}, link={LINKS[link_idx]}, "
        f"seed={seed}"
    )
    assert net.stats.packets_completed == offered
    assert net.stats.misdeliveries == 0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_trojans=st.integers(min_value=2, max_value=4),
)
def test_multiple_random_trojans_mitigated(seed, num_trojans):
    stream = SeededStream(seed, "multi")
    net = build_mitigated_network(PAPER_CONFIG)
    for i, key in enumerate(stream.sample(LINKS, num_trojans)):
        trojan = TaspTrojan(
            TargetSpec.for_dest(stream.randint(0, 15)),
            TaspConfig(seed=seed + i),
        )
        trojan.enable()
        net.attach_tamperer(key, trojan)
    offered = 0
    for pid in range(10):
        src, dst = stream.randint(0, 63), stream.randint(0, 63)
        if src == dst:
            continue
        net.add_packet(
            Packet(pkt_id=pid, src_core=src, dst_core=dst,
                   vc_class=stream.randint(0, 3), created_cycle=0)
        )
        offered += 1
    assert net.run_until_drained(30000, stall_limit=8000)
    assert net.stats.packets_completed == offered
