"""Tests for cycle-windowed time series (repro.obs.series)."""

import pickle

import pytest

from repro.noc.stats import Sample
from repro.obs.series import SampleSeries, WindowedSeries


def make_sample(cycle, input_util=0, output_util=0):
    return Sample(
        cycle=cycle,
        input_utilization=input_util,
        output_utilization=output_util,
        injection_utilization=0,
        routers_with_blocked_port=0,
        routers_all_cores_full=0,
        routers_half_cores_full=0,
    )


class TestWindowedSeries:
    def test_rollup_matches_hand_computed_trace(self):
        # window 8, max agg: the exact rollup the heatmap series uses
        series = WindowedSeries(8, agg="max")
        trace = [(0, 3), (4, 7), (7, 5), (8, 2), (12, 9), (16, 1)]
        for cycle, value in trace:
            series.observe(cycle, "util", value)
        series.flush()
        assert series.channel("util") == [(0, 7), (8, 9), (16, 1)]

    @pytest.mark.parametrize(
        "agg,expected",
        [
            ("last", 5),
            ("sum", 15),
            ("max", 7),
            ("min", 3),
            ("mean", 5.0),
        ],
    )
    def test_every_agg(self, agg, expected):
        series = WindowedSeries(10, agg=agg)
        for cycle, value in ((0, 3), (4, 7), (9, 5)):
            series.observe(cycle, "c", value)
        series.flush()
        assert series.channel("c") == [(0, expected)]

    def test_windows_are_aligned_not_relative(self):
        series = WindowedSeries(100)
        series.observe(250, "c", 1)  # lands in [200, 300)
        series.flush()
        assert series.channel("c") == [(200, 1)]

    def test_backwards_cycles_rejected(self):
        series = WindowedSeries(8)
        series.observe(16, "c", 1)
        with pytest.raises(ValueError, match="before the open window"):
            series.observe(0, "c", 1)

    def test_silent_windows_are_absent_not_zero(self):
        series = WindowedSeries(8)
        series.observe(0, "a", 1)
        series.observe(0, "b", 2)
        series.observe(24, "a", 3)  # window 8..16 never observed
        series.flush()
        assert series.channel("a") == [(0, 1), (24, 3)]
        assert series.channel("b") == [(0, 2)]
        assert series.channels() == ["a", "b"]
        assert series.channels(prefix="b") == ["b"]

    def test_flush_is_idempotent(self):
        series = WindowedSeries(8)
        series.observe(0, "c", 1)
        series.flush()
        series.flush()
        assert len(series.points) == 1

    def test_to_jsonable_sorts_channels(self):
        series = WindowedSeries(4, agg="sum")
        series.observe(0, "z", 1)
        series.observe(1, "a", 2)
        series.flush()
        assert series.to_jsonable() == {
            "window": 4,
            "agg": "sum",
            "points": [{"start": 0, "values": {"a": 2, "z": 1}}],
        }

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WindowedSeries(0)
        with pytest.raises(ValueError):
            WindowedSeries(8, agg="median")


class TestSampleSeries:
    def test_is_a_list(self):
        series = SampleSeries()
        series.append(make_sample(0))
        series.append(make_sample(10))
        assert isinstance(series, list)
        assert len(series) == 2
        assert series[1].cycle == 10

    def test_interval_metadata(self):
        series = SampleSeries(interval=10)
        assert series.interval == 10
        assert SampleSeries().interval is None

    def test_channel_extraction(self):
        series = SampleSeries(
            [make_sample(0, input_util=3), make_sample(10, input_util=5)]
        )
        assert series.channel("input_utilization") == [(0, 3), (10, 5)]

    def test_rollup_vs_hand_computed(self):
        series = SampleSeries(
            [
                make_sample(0, input_util=3, output_util=1),
                make_sample(10, input_util=9, output_util=0),
                make_sample(20, input_util=4, output_util=6),
            ],
            interval=10,
        )
        rolled = series.rollup(
            20, ("input_utilization", "output_utilization"), agg="max"
        )
        assert rolled.channel("input_utilization") == [(0, 9), (20, 4)]
        assert rolled.channel("output_utilization") == [(0, 1), (20, 6)]

    def test_pickle_preserves_samples_and_interval(self):
        series = SampleSeries([make_sample(0), make_sample(5)], interval=5)
        clone = pickle.loads(pickle.dumps(series))
        assert isinstance(clone, SampleSeries)
        assert clone.interval == 5
        assert [s.cycle for s in clone] == [0, 5]
