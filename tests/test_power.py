"""Tests for the area/power/timing model.

Assertions encode the paper's published anchors and *shapes*: exact
matches where the model is calibrated (Dest), tolerance bands where the
structural model predicts (everything else).
"""

import pytest

from repro.core import TargetSpec, TaspConfig
from repro.noc import NoCConfig, PAPER_CONFIG
from repro.power import (
    Budget,
    CLOCK_PERIOD_NS,
    LIB,
    PAPER_TABLE1,
    PAPER_TARGETS,
    fig8_report,
    global_wire_area,
    lob_budget,
    noc_budget,
    router_breakdown,
    table1_rows,
    table2_rows,
    tasp_budget,
    threat_detector_budget,
)

CFG = PAPER_CONFIG


class TestBudget:
    def test_add_cells_accumulates(self):
        b = Budget()
        b.add_cells(LIB.AND2, 10, activity=0.5)
        assert b.area_um2 == pytest.approx(10.6)
        assert b.dynamic_uw == pytest.approx(3.0)
        assert b.leakage_nw == pytest.approx(6.0)

    def test_activity_zero_no_dynamic(self):
        b = Budget()
        b.add_cells(LIB.DFF, 100, activity=0.0)
        assert b.dynamic_uw == 0.0
        assert b.leakage_nw > 0

    def test_delay_is_max_not_sum(self):
        a = Budget(delay_ns=0.1)
        b = Budget(delay_ns=0.3)
        assert (a + b).delay_ns == 0.3

    def test_bad_activity_rejected(self):
        with pytest.raises(ValueError):
            Budget().add_cells(LIB.INV, 1, activity=1.5)


class TestTable1:
    def test_dest_anchor_exact(self):
        b = tasp_budget(TargetSpec.for_dest(15))
        paper = PAPER_TABLE1["Dest"]
        assert b.area_um2 == pytest.approx(paper[0], rel=1e-3)
        assert b.dynamic_uw == pytest.approx(paper[1], rel=1e-3)
        assert b.leakage_nw == pytest.approx(paper[2], rel=1e-3)

    def test_src_equals_dest(self):
        assert (
            tasp_budget(TargetSpec.for_src(3)).area_um2
            == tasp_budget(TargetSpec.for_dest(3)).area_um2
        )

    @pytest.mark.parametrize("kind", ["Full", "Mem", "VC", "Dest_Src"])
    def test_predicted_areas_near_paper(self, kind):
        b = tasp_budget(PAPER_TARGETS[kind])
        assert b.area_um2 == pytest.approx(PAPER_TABLE1[kind][0], rel=0.10)

    def test_area_ordering_matches_paper(self):
        # Full > Mem > Dest_Src > Dest = Src > VC (paper Fig. 9)
        areas = {
            kind: tasp_budget(spec).area_um2
            for kind, spec in PAPER_TARGETS.items()
        }
        assert areas["Full"] > areas["Mem"] > areas["Dest_Src"]
        assert areas["Dest_Src"] > areas["Dest"] == areas["Src"] > areas["VC"]

    def test_full_dynamic_dominates(self):
        rows = {r.kind: r for r in table1_rows()}
        assert rows["Full"].budget.dynamic_uw > 2 * rows["Dest"].budget.dynamic_uw

    def test_all_variants_meet_timing(self):
        # every variant fits the LT stage at 2 GHz (paper: "fits well
        # within the 0.5 ns window")
        for row in table1_rows():
            assert row.meets_timing
            assert row.budget.delay_ns <= 0.25

    def test_compare_widths(self):
        widths = {r.kind: r.compare_width for r in table1_rows()}
        assert widths == {
            "Full": 42, "Dest": 4, "Src": 4, "Dest_Src": 8, "Mem": 32,
            "VC": 2,
        }

    def test_bigger_payload_counter_costs_area(self):
        small = tasp_budget(
            TargetSpec.for_dest(1), TaspConfig(y_bits=4, num_payload_states=2)
        )
        large = tasp_budget(
            TargetSpec.for_dest(1), TaspConfig(y_bits=16, num_payload_states=16)
        )
        assert large.area_um2 > small.area_um2
        assert large.leakage_nw > small.leakage_nw


class TestRouterBreakdown:
    def test_dynamic_shares_match_fig8(self):
        shares = router_breakdown(CFG).dynamic_shares()
        assert shares["buffer"] == pytest.approx(0.71, abs=0.05)
        assert shares["crossbar"] == pytest.approx(0.18, abs=0.04)
        assert shares["allocator"] == pytest.approx(0.04, abs=0.03)
        assert shares["clock"] == pytest.approx(0.06, abs=0.03)

    def test_leakage_shares_match_fig8(self):
        shares = router_breakdown(CFG).leakage_shares()
        assert shares["buffer"] == pytest.approx(0.88, abs=0.04)
        assert shares["crossbar"] == pytest.approx(0.09, abs=0.03)

    def test_tasp_below_one_percent_of_router(self):
        router = router_breakdown(CFG).total
        tasp = tasp_budget(PAPER_TARGETS["Dest"])
        assert tasp.dynamic_uw / router.dynamic_uw < 0.01
        assert tasp.area_um2 / router.area_um2 < 0.01

    def test_shares_sum_to_one(self):
        assert sum(router_breakdown(CFG).dynamic_shares().values()) == pytest.approx(1.0)
        assert sum(router_breakdown(CFG).leakage_shares().values()) == pytest.approx(1.0)

    def test_buffers_scale_with_vcs(self):
        small = router_breakdown(NoCConfig(num_vcs=2)).buffer
        big = router_breakdown(NoCConfig(num_vcs=4)).buffer
        assert big.area_um2 > 1.5 * small.area_um2


class TestNoCRollup:
    def test_area_shares_match_fig8(self):
        shares = noc_budget(CFG, num_tasps=1).area_shares()
        assert shares["global_wire"] == pytest.approx(0.86, abs=0.04)
        assert shares["active"] == pytest.approx(0.13, abs=0.04)
        assert shares["tasp"] < 0.01

    def test_worst_case_all_48_links(self):
        # Fig. 8 top-right: TASP on all 48 links ~ 0.56% of NoC dynamic
        shares = noc_budget(CFG, num_tasps=48).dynamic_shares()
        assert shares["tasp"] == pytest.approx(0.0056, abs=0.003)
        assert shares["routers"] > 0.99

    def test_wire_area_scales_with_links(self):
        assert global_wire_area(CFG) == pytest.approx(
            48 * global_wire_area(NoCConfig(mesh_width=2, mesh_height=1)) / 2
        )

    def test_fig8_report_complete(self):
        report = fig8_report(CFG)
        assert set(report.router_dynamic_shares) == {
            "buffer", "crossbar", "allocator", "clock", "tasp",
        }
        assert sum(report.noc_area_shares.values()) == pytest.approx(1.0)


class TestTable2:
    def test_mitigation_overhead_matches_paper(self):
        # paper: ~2% area, ~6% excess power in the router
        rows = {r.name: r for r in table2_rows(CFG)}
        total = rows["Total mitigation"]
        assert 1.0 < total.pct_router_area < 4.0
        assert 3.5 < total.pct_router_dynamic < 8.0

    def test_modules_meet_timing(self):
        for row in table2_rows(CFG):
            assert row.meets_timing

    def test_total_is_sum_of_modules(self):
        rows = {r.name: r for r in table2_rows(CFG)}
        parts = (
            rows["Threat detector"].budget.area_um2
            + rows["L-Ob (4 ports)"].budget.area_um2
        )
        assert rows["Total mitigation"].budget.area_um2 == pytest.approx(parts)

    def test_detector_smaller_than_lob(self):
        det = threat_detector_budget(CFG)
        lob = lob_budget(CFG)
        assert det.area_um2 < lob.area_um2  # one shared detector, 4 L-Obs
