"""Streaming classifiers: the detector's rules, re-applied to frames.

The z-score classifier must behave channel-for-channel like
:class:`~repro.resilience.detect.TrafficStatsDetector` (same Welford
core, same warmup/streak policy); the localizer classifier must fuse
flags into the same topology-aware estimates the in-sim localizer
produces.
"""

import pytest

from repro.noc.config import PAPER_CONFIG, NoCConfig
from repro.noc.topology import Direction, all_links
from repro.obs.collectors import link_label
from repro.resilience.detect import DetectConfig
from repro.resilience.localize import LocalizeConfig
from repro.serve.classify import (
    LocalizerClassifier,
    Verdict,
    ZScoreClassifier,
    default_classifiers,
)
from repro.serve.features import FeatureFrame


QUICK = DetectConfig(window=10, warmup_windows=2, consecutive=2)


def frame(start, *, window=10, run="r", nacks=None, inflight=0,
          detects=None) -> FeatureFrame:
    f = FeatureFrame(run=run, start=start, window=window)
    for label, n in (nacks or {}).items():
        f.link(label)["nacks"] = n
    f.inflight = inflight
    f.detects = list(detects or [])
    return f


def feed(classifier, frames):
    out = []
    for f in frames:
        out.extend(classifier.observe(f))
    return out


class TestZScoreClassifier:
    def test_nack_spike_flags_after_the_streak(self):
        clf = ZScoreClassifier(QUICK)
        quiet = [frame(i * 10, nacks={"0->EAST": i % 2}) for i in range(6)]
        assert feed(clf, quiet) == []
        # one anomalous window is not enough (consecutive=2)...
        assert clf.observe(frame(60, nacks={"0->EAST": 40})) == []
        # ...the second flags, stamped with the window-close cycle
        (verdict,) = clf.observe(frame(70, nacks={"0->EAST": 40}))
        assert verdict.kind == "suspect_link"
        assert verdict.subject == "0->EAST"
        assert verdict.cycle == 80
        assert verdict.source == "zscore"
        assert verdict.score > QUICK.z_threshold

    def test_a_channel_flags_only_once(self):
        clf = ZScoreClassifier(QUICK)
        feed(clf, [frame(i * 10, nacks={"L": i % 2}) for i in range(6)])
        hot = [frame((6 + i) * 10, nacks={"L": 40}) for i in range(6)]
        verdicts = feed(clf, hot)
        assert len([v for v in verdicts if v.subject == "L"]) == 1

    def test_quiet_stream_stays_silent(self):
        clf = ZScoreClassifier(QUICK)
        assert feed(
            clf, [frame(i * 10, nacks={"L": i % 3}) for i in range(30)]
        ) == []

    def test_backpressure_channel_watches_inflight(self):
        clf = ZScoreClassifier(QUICK)
        quiet = [frame(i * 10, inflight=3 + i % 2) for i in range(6)]
        feed(clf, quiet)
        verdicts = feed(
            clf, [frame((6 + i) * 10, inflight=500) for i in range(2)]
        )
        (verdict,) = verdicts
        assert verdict.kind == "backpressure"
        assert verdict.subject == "inflight"

    def test_topology_preseeds_every_link_channel(self):
        cfg = NoCConfig(mesh_width=3, mesh_height=3, concentration=1)
        clf = ZScoreClassifier(QUICK, cfg=cfg)
        clf.observe(frame(0, run="seeded"))
        channels = clf._runs["seeded"].links
        assert set(channels) == {
            link_label(key) for key in all_links(cfg)
        }

    def test_runs_are_isolated(self):
        clf = ZScoreClassifier(QUICK)
        feed(clf, [frame(i * 10, run="a", nacks={"L": i % 2})
                   for i in range(6)])
        # run "b" has no baseline yet: its first spike windows are
        # warmup, so nothing flags
        assert feed(
            clf, [frame(i * 10, run="b", nacks={"L": 40}) for i in range(2)]
        ) == []

    def test_verdict_to_dict_is_json_ready(self):
        verdict = Verdict(
            cycle=80, kind="suspect_link", run="r", subject="L",
            score=12.3456789, source="zscore", detail="z=12.3",
        )
        assert verdict.to_dict() == {
            "cycle": 80, "kind": "suspect_link", "run": "r",
            "subject": "L", "score": 12.345679, "source": "zscore",
            "detail": "z=12.3",
        }


class TestLocalizerClassifier:
    CFG = PAPER_CONFIG

    def test_detect_flags_in_frames_become_estimates(self):
        clf = LocalizerClassifier(
            self.CFG, LocalizeConfig(min_score=1.0)
        )
        flag = {
            "cycle": 64, "link": "0->EAST", "router": None,
            "z": 9.0, "detail": "retrans-rate z=9.0",
        }
        verdicts = clf.observe(frame(60, detects=[flag]))
        assert verdicts and all(v.kind == "estimate" for v in verdicts)
        assert verdicts[0].source == "localizer"
        assert clf.summary("r")

    def test_chains_onto_upstream_zscore_suspicions(self):
        zscore = ZScoreClassifier(QUICK)
        localizer = LocalizerClassifier(
            self.CFG, LocalizeConfig(min_score=1.0), upstream=zscore
        )
        frames = [frame(i * 10, nacks={"0->EAST": i % 2})
                  for i in range(6)]
        frames += [frame((6 + i) * 10, nacks={"0->EAST": 40})
                   for i in range(2)]
        estimates = []
        for f in frames:
            zscore.observe(f)
            estimates.extend(localizer.observe(f))
        assert estimates, "upstream suspicion never localized"
        assert all(v.kind == "estimate" for v in estimates)

    def test_default_chain_wires_scenario_configs(self):
        from repro.sim import Scenario, SyntheticTraffic

        scenario = Scenario(
            name="chain",
            cfg=self.CFG,
            traffic=(SyntheticTraffic(injection_rate=0.01, duration=10),),
            max_cycles=100,
        )
        zscore, localizer = default_classifiers(scenario)
        assert isinstance(zscore, ZScoreClassifier)
        assert isinstance(localizer, LocalizerClassifier)
        assert localizer.upstream is zscore
        assert zscore.cfg is scenario.cfg
