"""Streaming pipeline contracts: pure observation, determinism, replay.

The load-bearing guarantees, each tested here:

* a streamed run's :class:`RunResult` and ``NetworkStats`` are
  byte-identical to a bare run (the pipeline is a pure observer);
* the verdict stream does not depend on the pump chunk size;
* sweep and event engines produce byte-identical streams;
* replaying a recorded ``events.jsonl`` reproduces the live stream
  byte-for-byte.
"""

import dataclasses
import json

import pytest

from repro.core import TargetSpec
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.experiments.export import to_jsonable
from repro.obs.exporters import read_events_jsonl
from repro.serve.classify import default_classifiers
from repro.serve.pipeline import (
    DetectionPipeline,
    replay_events,
    run_streaming,
)
from repro.serve.classify import ZScoreClassifier
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
)


def dos_scenario(**overrides) -> Scenario:
    """Unmitigated targeted flow through a trojan that arms mid-run:
    a quiet warmup, then a sustained retransmission storm to a stall
    abort — the paper's DoS picture, and three verdict kinds."""
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0,
                   dst_core=PAPER_CONFIG.core_of(11, 1),
                   mem_addr=0x100, inject_at=100 + i * 40)
        for i in range(40)
    )
    base = dict(
        name="serve-dos",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(11),
                            enable_at=900),),
        defense=DefenseSpec(),
        max_cycles=6000,
        stall_limit=2500,
    )
    base.update(overrides)
    return Scenario(**base)


def timed_scenario(**overrides) -> Scenario:
    """Duration-mode coverage for the chunked driver."""
    base = dict(
        name="serve-timed",
        cfg=PAPER_CONFIG,
        traffic=(SyntheticTraffic(injection_rate=0.02, duration=700,
                                  seed=9),),
        duration=900,
    )
    base.update(overrides)
    return Scenario(**base)


def stream_of(run) -> str:
    return json.dumps(run.verdict_stream(), sort_keys=True)


class TestPureObserver:
    def test_streamed_result_is_byte_identical_to_bare(self):
        bare = Simulation(dos_scenario())
        bare_result = bare.run()
        bare_stats = json.dumps(
            to_jsonable(vars(bare.network.stats)), sort_keys=True
        )
        streamed = run_streaming(dos_scenario())
        assert dataclasses.asdict(streamed.result) == dataclasses.asdict(
            bare_result
        )
        assert streamed.dropped == 0
        # ...and it actually saw the attack
        kinds = {v.kind for v in streamed.verdicts}
        assert {"suspect_link", "backpressure", "estimate"} <= kinds

    def test_duration_mode_drives_to_the_exact_cycle(self):
        bare_result = Simulation(timed_scenario()).run()
        streamed = run_streaming(timed_scenario(), chunk=100)
        assert streamed.result.completed
        assert streamed.result.cycles == bare_result.cycles == 900
        assert dataclasses.asdict(streamed.result) == dataclasses.asdict(
            bare_result
        )

    def test_stall_abort_matches_the_one_shot_engine(self):
        # the DoS run livelocks: chunked driving must abort on the
        # same cycle with completed=False
        assert not run_streaming(dos_scenario()).result.completed


class TestDeterminism:
    def test_verdict_stream_is_chunk_independent(self):
        big = run_streaming(dos_scenario(), chunk=1024)
        small = run_streaming(dos_scenario(), chunk=17)
        assert stream_of(big) == stream_of(small)
        assert json.dumps([f.to_dict() for f in big.frames]) == json.dumps(
            [f.to_dict() for f in small.frames]
        )

    def test_sweep_and_event_engines_stream_identically(self):
        sweep = run_streaming(dos_scenario(), engine="sweep")
        event = run_streaming(dos_scenario(), engine="event")
        assert stream_of(sweep) == stream_of(event)
        assert dataclasses.asdict(sweep.result) == dataclasses.asdict(
            event.result
        )

    def test_recorded_stream_replays_byte_identically(self, tmp_path):
        record = tmp_path / "events.jsonl"
        live = run_streaming(dos_scenario(), events_jsonl=str(record))
        scenario = dos_scenario()
        replayed = replay_events(
            read_events_jsonl(record),
            default_classifiers(scenario),
            window=64,
            up_to=live.result.cycles,
        )
        assert json.dumps(
            replayed.verdict_stream(), sort_keys=True
        ) == stream_of(live)
        assert json.dumps(replayed.frames_jsonable()) == json.dumps(
            [f.to_dict() for f in live.frames]
        )


class TestCallbacksAndLimits:
    def test_on_verdict_fires_in_stream_order(self):
        seen = []
        run = run_streaming(
            dos_scenario(), on_verdict=lambda v: seen.append(v)
        )
        assert seen == run.verdicts

    def test_on_snapshot_reports_monotone_progress(self):
        snapshots = []
        run_streaming(
            timed_scenario(), chunk=200,
            on_snapshot=lambda s: snapshots.append(s),
        )
        cycles = [s["cycle"] for s in snapshots]
        assert cycles == sorted(cycles)
        assert cycles[-1] == 900
        assert all(
            {"cycle", "packets_injected", "packets_completed",
             "dropped_flits"} <= set(s)
            for s in snapshots
        )

    def test_chunk_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk"):
            run_streaming(timed_scenario(), chunk=0)

    def test_tiny_capacity_counts_drops_without_perturbing_the_run(self):
        bare_result = Simulation(dos_scenario()).run()
        starved = run_streaming(dos_scenario(), capacity=16)
        assert starved.dropped > 0
        # under-observation is visible, the simulation untouched
        assert dataclasses.asdict(starved.result) == dataclasses.asdict(
            bare_result
        )

    def test_payload_is_json_serializable_and_complete(self):
        payload = run_streaming(dos_scenario()).to_payload()
        assert set(payload) == {
            "result", "verdict_stream", "frames", "dropped",
        }
        json.dumps(payload, sort_keys=True)


class TestPipelineWiring:
    def test_detach_stops_observation(self):
        from repro.obs.instrument import ObsConfig, Observability

        obs = Observability(ObsConfig(metrics=False, window=0))
        pipeline = DetectionPipeline([ZScoreClassifier()]).attach(obs)
        sub = pipeline.sub
        assert sub in obs.bus.subscriptions
        pipeline.detach()
        assert sub not in obs.bus.subscriptions
        assert pipeline.pump() == []
