"""Property tests pinning the vectorized codec against the scalar one."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import SECDED_72_64, DecodeStatus
from repro.ecc.batch import BATCH_SECDED, BatchSecded
from repro.util.bits import mask

WORD_LISTS = st.lists(
    st.integers(min_value=0, max_value=mask(64)), min_size=1, max_size=32
)

_STATUS_CODE = {
    DecodeStatus.CLEAN: 0,
    DecodeStatus.CORRECTED: 1,
    DecodeStatus.DETECTED: 2,
}


class TestEncodeAgreement:
    @given(WORD_LISTS)
    def test_matches_scalar_encoder(self, words):
        data = np.array(words, dtype=np.uint64)
        batch = BATCH_SECDED.encode(data)
        scalar = [SECDED_72_64.encode(w) for w in words]
        assert batch == scalar

    def test_empty_edge(self):
        assert BATCH_SECDED.encode(np.array([], dtype=np.uint64)) == []

    def test_large_batch(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 2**63, size=5000, dtype=np.uint64)
        batch = BATCH_SECDED.encode(data)
        for i in (0, 123, 4999):
            assert batch[i] == SECDED_72_64.encode(int(data[i]))


class TestDecodeAgreement:
    def _bits(self, codewords):
        n = SECDED_72_64.codeword_bits
        out = np.zeros((len(codewords), n), dtype=bool)
        for i, cw in enumerate(codewords):
            for b in range(n):
                out[i, b] = bool(cw >> b & 1)
        return out

    @given(WORD_LISTS, st.integers(min_value=0, max_value=71),
           st.integers(min_value=0, max_value=71))
    @settings(max_examples=30)
    def test_status_matches_scalar(self, words, p1, p2):
        fault = (1 << p1) | (1 << p2)  # 1 or 2 flips
        codewords = [SECDED_72_64.encode(w) ^ fault for w in words]
        result = BATCH_SECDED.decode_bits(self._bits(codewords))
        for i, cw in enumerate(codewords):
            scalar = SECDED_72_64.decode(cw)
            assert result["status"][i] == _STATUS_CODE[scalar.status]
            assert result["syndrome"][i] == scalar.syndrome
            if scalar.status is not DecodeStatus.DETECTED:
                assert int(result["data"][i]) == scalar.data

    def test_clean_roundtrip(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2**63, size=200, dtype=np.uint64)
        cw_bits = BATCH_SECDED.codeword_bits_matrix(data)
        result = BATCH_SECDED.decode_bits(cw_bits)
        assert (result["status"] == 0).all()
        assert (result["data"] == data).all()

    def test_single_errors_all_corrected(self):
        data = np.full(72, 0xDEADBEEF, dtype=np.uint64)
        cw = BATCH_SECDED.codeword_bits_matrix(data)
        flips = np.zeros_like(cw)
        for i in range(72):
            flips[i, i] = True
        result = BATCH_SECDED.decode_bits(np.logical_xor(cw, flips))
        assert (result["status"] == 1).all()
        assert (result["data"] == data).all()

    def test_double_errors_all_detected(self):
        data = np.full(71, 0x1234, dtype=np.uint64)
        cw = BATCH_SECDED.codeword_bits_matrix(data)
        flips = np.zeros_like(cw)
        for i in range(71):
            flips[i, i] = True
            flips[i, i + 1] = True
        status = BATCH_SECDED.roundtrip_status(data, flips)
        assert (status == 2).all()


class TestBulkUseCases:
    def test_alias_rate_sweep(self):
        # the kind of analysis the ablations do, but vectorized: what
        # fraction of random words trigger a dest-15 comparator?
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**63, size=20000, dtype=np.uint64)
        dest = (words >> np.uint64(4)) & np.uint64(0xF)
        rate = float((dest == 15).mean())
        assert rate == pytest.approx(1 / 16, abs=0.01)

    def test_batch_of_small_codec(self):
        from repro.ecc import Secded

        small = BatchSecded(Secded(16))
        data = np.arange(100, dtype=np.uint64)
        batch = small.encode(data)
        for i in range(0, 100, 17):
            assert batch[i] == small.scalar.encode(i)
