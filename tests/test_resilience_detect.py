"""Traffic-statistics detector: early flags, bounded false positives.

The detector's contract has two halves: it must see the step change a
trojan or DoS leaves in the windowed retransmission/back-pressure
series (and shorten the watchdog ladder *before* the ladder's own
evidence accumulates), and it must not flag a stationary benign load —
the z-threshold-with-streak policy plus excluding anomalous windows
from the baseline is what bounds the false-positive rate.
"""

import math

import pytest

from repro.noc.config import PAPER_CONFIG
from repro.noc.network import Network
from repro.noc.topology import Direction
from repro.resilience.detect import (
    DetectConfig,
    TrafficStatsDetector,
    _Welford,
)
from repro.resilience.watchdog import RetransWatchdog, WatchdogConfig

CFG = PAPER_CONFIG
LINK = (0, Direction.EAST)


class TestWelford:
    def test_mean_and_z(self):
        w = _Welford()
        for x in (10.0, 12.0, 8.0, 10.0):
            w.admit(x)
        assert w.mean == pytest.approx(10.0)
        assert w.z_score(10.0) == pytest.approx(0.0)
        assert w.z_score(20.0) > 4.0

    def test_flat_baseline_step_is_infinitely_surprising(self):
        w = _Welford()
        for _ in range(10):
            w.admit(0.0)
        assert w.z_score(0.0) == 0.0
        assert math.isinf(w.z_score(1.0))

    def test_too_few_samples_never_scores(self):
        w = _Welford()
        w.admit(5.0)
        assert w.z_score(100.0) == 0.0


def _observe_series(detector, stats, values):
    return [detector._observe(stats, v) for v in values]


class TestObservationPolicy:
    CFG_SMALL = DetectConfig(window=16, z_threshold=4.0, consecutive=2,
                             warmup_windows=4)

    def detector(self):
        return TrafficStatsDetector(self.CFG_SMALL)

    def test_warmup_admits_unconditionally(self):
        d = self.detector()
        stats = _Welford()
        # a wild warmup value raises no flag, it just widens the baseline
        flags = _observe_series(d, stats, [1.0, 1.0, 99.0, 1.0])
        assert flags == [False] * 4
        assert stats.count == 4

    def test_step_change_flags_after_consecutive_windows(self):
        d = self.detector()
        stats = _Welford()
        flags = _observe_series(
            d, stats, [1.0, 2.0, 1.0, 2.0] + [50.0, 50.0]
        )
        assert flags == [False, False, False, False, False, True]
        assert d.anomalous_windows == 2

    def test_single_spike_is_not_enough(self):
        d = self.detector()
        stats = _Welford()
        flags = _observe_series(
            d, stats, [1.0, 2.0, 1.0, 2.0, 50.0, 1.0, 50.0, 1.0]
        )
        assert True not in flags  # streak broken each time

    def test_anomalies_stay_out_of_the_baseline(self):
        """An attack cannot drag the threshold up under itself: the
        baseline mean is unchanged by the anomalous windows."""
        d = self.detector()
        stats = _Welford()
        _observe_series(d, stats, [1.0, 2.0, 1.0, 2.0])
        before = stats.mean
        _observe_series(d, stats, [80.0])
        assert stats.mean == before

    def test_rejects_bad_knobs(self):
        for kwargs in (
            {"window": 0},
            {"z_threshold": 0.0},
            {"consecutive": 0},
            {"warmup_windows": 1},
        ):
            with pytest.raises(ValueError):
                DetectConfig(**kwargs)


class TestWiring:
    def attach(self, config=None):
        net = Network(CFG)
        watchdog = RetransWatchdog(WatchdogConfig()).attach(net)
        detector = TrafficStatsDetector(
            config or DetectConfig(window=16, warmup_windows=2,
                                   consecutive=2)
        ).attach(net, watchdog)
        return net, watchdog, detector

    def test_registers_as_monitor(self):
        net, _, detector = self.attach()
        assert detector in net.monitors
        detector.detach()
        assert detector not in net.monitors

    def test_flag_feeds_the_watchdog_ladder(self):
        net, wd, detector = self.attach()
        base = wd._ladder_thresholds(LINK)
        detector._flag_link(LINK, cycle=100, z=9.0)
        assert LINK in wd.suspect_links
        halved = wd._ladder_thresholds(LINK)
        assert halved != base
        assert halved[0] <= base[0]

    def test_each_channel_flags_once(self):
        net, wd, detector = self.attach()
        detector._flag_link(LINK, cycle=100, z=9.0)
        receiver = net.receiver_of(LINK)
        receiver.nacks_sent += 1000
        detector.on_cycle(net, 16 * 50)  # a later window boundary
        assert len([e for e in detector.events
                    if e.kind == "suspect_link"]) == 1

    def test_router_flags_are_report_only(self):
        net, wd, detector = self.attach()
        detector._flag_router(3, cycle=100, z=9.0)
        assert 3 in detector.suspect_routers
        assert not wd.suspect_links  # no ladder side effect

    def test_infinite_z_is_clamped_for_json(self):
        net, _, detector = self.attach()
        detector._flag_link(LINK, cycle=100, z=float("inf"))
        (event,) = detector.events
        assert event.z == 1e9

    def test_off_boundary_cycles_are_no_ops(self):
        net, _, detector = self.attach()
        receiver = net.receiver_of(LINK)
        receiver.nacks_sent = 7
        detector.on_cycle(net, 17)  # not a multiple of window=16
        assert detector.windows_observed == 0
        # the stashed counter is untouched, so no delta is lost
        assert detector._links[LINK].last == 0

    def test_next_event_cycle_is_the_window_boundary(self):
        net, _, detector = self.attach()
        assert detector.next_event_cycle(net, 16) == 16
        assert detector.next_event_cycle(net, 17) == 32
        assert detector.next_event_cycle(net, 31) == 32

    def test_nack_step_flags_the_link_end_to_end(self):
        """Drive window boundaries directly: quiet baseline windows,
        then a NACK burst — the link lands in the watchdog's suspect
        set after ``consecutive`` hot windows."""
        net, wd, detector = self.attach()
        receiver = net.receiver_of(LINK)
        boundary = 0
        for _ in range(6):  # warmup + a stable baseline
            boundary += 16
            receiver.nacks_sent += 1
            detector.on_cycle(net, boundary)
        for _ in range(2):  # the attack's step change
            boundary += 16
            receiver.nacks_sent += 400
            detector.on_cycle(net, boundary)
        assert LINK in detector.suspect_links
        assert LINK in wd.suspect_links
        assert detector.summary()["suspect_links"] == ["0->EAST"]

    def test_summary_is_jsonable(self):
        import json

        net, _, detector = self.attach()
        detector._flag_link(LINK, cycle=100, z=float("inf"))
        detector._flag_router(2, cycle=100, z=3.0)
        text = json.dumps(detector.summary(), allow_nan=False)
        assert "0->EAST" in text
