"""Composed defense configurations.

The paper argues the defenses are complementary ("QoS non-interference
techniques ... could be complemented with other trigger prevention
techniques"; e2e certification constrains what L-Ob cannot see).  These
tests run the combinations and pin that composing them never breaks
either property.
"""

import pytest

from repro.baselines import E2EConfig, E2EObfuscator, TdmConfig, TdmPolicy
from repro.core import (
    TargetSpec,
    TaspConfig,
    TaspTrojan,
    build_mitigated_network,
)
from repro.noc import NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction

CFG = PAPER_CONFIG
INFECTED = (0, Direction.EAST)


def targeted(net, count=16, vcs=(0, 1, 2, 3), domain_of=lambda pid: 0):
    for pid in range(count):
        net.add_packet(
            Packet(pkt_id=pid, src_core=domain_of(pid), dst_core=63,
                   vc_class=vcs[pid % len(vcs)], mem_addr=0x321,
                   payload=[0xCC], domain=domain_of(pid),
                   created_cycle=0)
        )


class TestTdmPlusMitigation:
    def test_tdm_with_lob_delivers_both_domains(self):
        # SurfNoC non-interference AND the paper's s2s mitigation, at
        # the same time: the victim domain is no longer just contained —
        # it is mitigated, without giving up the TDM isolation.
        policy = TdmPolicy(TdmConfig(num_domains=2), CFG.num_vcs)
        net = build_mitigated_network(CFG, policy=policy)
        trojan = TaspTrojan(TargetSpec(vc=2, head_only=True))
        trojan.enable()
        net.attach_tamperer(INFECTED, trojan)

        def domain_of(pid):
            return pid % 2

        for pid in range(16):
            domain = domain_of(pid)
            net.add_packet(
                Packet(pkt_id=pid, src_core=domain, dst_core=63,
                       vc_class=policy.vc_for(domain), domain=domain,
                       created_cycle=0)
            )
        assert net.run_until_drained(20000, stall_limit=5000)
        assert net.stats.packets_completed == 16
        assert trojan.triggers > 0  # the attack did fire

    def test_tdm_lob_preserves_cycle_ownership(self):
        policy = TdmPolicy(TdmConfig(num_domains=2), CFG.num_vcs)
        net = build_mitigated_network(CFG, policy=policy)
        launches = []
        for link in net.links.values():
            link.launch_hooks.append(
                lambda tx, cycle, orig: launches.append(
                    (cycle % 2, tx.flit.domain)
                )
            )
        for pid in range(12):
            domain = pid % 2
            net.add_packet(
                Packet(pkt_id=pid, src_core=domain, dst_core=63,
                       vc_class=policy.vc_for(domain), domain=domain,
                       created_cycle=0)
            )
        net.run_until_drained(10000)
        assert launches
        assert all(parity == domain for parity, domain in launches)


class TestE2ePlusMitigation:
    def test_stacked_e2e_and_s2s(self):
        # e2e scrambling+certification at the NIs AND the s2s detector +
        # L-Ob on the links: everything delivers, certificates verify.
        e2e = E2EObfuscator(E2EConfig(certify=True))
        net = build_mitigated_network(CFG, e2e=e2e)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer(INFECTED, trojan)
        targeted(net, count=14)
        assert net.run_until_drained(20000, stall_limit=5000)
        assert net.stats.packets_completed == 14
        assert e2e.certificate_failures == []
        assert e2e.certificates_verified == 14

    def test_e2e_hides_mem_while_lob_hides_header(self):
        # a full-window trojan needs BOTH the header and the address to
        # match; e2e alone already defeats it (scrambled mem), and the
        # stack keeps working when the trojan falls back to dest-only
        e2e = E2EObfuscator(E2EConfig(certify=False))
        net = build_mitigated_network(CFG, e2e=e2e)
        full = TaspTrojan(TargetSpec.full(0, 15, 0, 0x321))
        full.enable()
        dest_only = TaspTrojan(TargetSpec.for_dest(15))
        dest_only.enable()
        net.attach_tamperer(INFECTED, full)
        net.attach_tamperer((1, Direction.EAST), dest_only)
        targeted(net, count=10, vcs=(0,))
        assert net.run_until_drained(20000, stall_limit=5000)
        assert net.stats.packets_completed == 10
        assert full.triggers == 0        # e2e scrambled its mem field
        assert dest_only.triggers > 0    # ...but L-Ob had to step in here


class TestEverythingAtOnce:
    def test_full_stack_under_multi_vector_attack(self):
        from repro.faults import TransientFaultModel
        from repro.util.rng import SeededStream

        policy = TdmPolicy(TdmConfig(num_domains=2), CFG.num_vcs)
        e2e = E2EObfuscator(E2EConfig(certify=True))
        net = build_mitigated_network(CFG, policy=policy, e2e=e2e)
        trojan = TaspTrojan(TargetSpec(vc=2, head_only=True))
        trojan.enable()
        net.attach_tamperer(INFECTED, trojan)
        net.attach_tamperer(
            (2, Direction.EAST),
            TransientFaultModel(
                net.codec.codeword_bits, 0.05, SeededStream(9, "x"),
            ),
        )
        for pid in range(12):
            domain = pid % 2
            net.add_packet(
                Packet(pkt_id=pid, src_core=domain, dst_core=63,
                       vc_class=policy.vc_for(domain), domain=domain,
                       mem_addr=0x77, payload=[0xDD], created_cycle=0)
            )
        assert net.run_until_drained(25000, stall_limit=6000)
        assert net.stats.packets_completed == 12
        assert e2e.certificate_failures == []
