"""Feature extraction: event stream -> windowed frames, deterministically.

The frame sequence must be a pure function of the event stream —
window boundaries come from event cycles, never from how the stream
was chunked into :meth:`FeatureExtractor.feed` calls.
"""

import json

import pytest

from repro.obs.events import Event
from repro.serve.features import FeatureExtractor, FeatureFrame


def ev(kind: str, cycle: int, run: str = "r", **data) -> Event:
    return Event(kind=kind, cycle=cycle, run=run, data=data)


class TestWindowing:
    def test_frame_closes_when_an_event_passes_its_end(self):
        ex = FeatureExtractor(window=10)
        assert ex.feed([ev("inject", 0), ev("inject", 9)]) == []
        (frame,) = ex.feed([ev("inject", 10)])
        assert (frame.start, frame.end) == (0, 10)
        assert frame.injects == 2

    def test_empty_intermediate_windows_are_emitted(self):
        # a long quiet gap still produces zero-frames — the baseline
        # must see the same quiet windows the live detector does
        ex = FeatureExtractor(window=10)
        frames = ex.feed([ev("inject", 0), ev("inject", 35)])
        assert [f.start for f in frames] == [0, 10, 20]
        assert [f.injects for f in frames] == [1, 0, 0]

    def test_flush_closes_complete_windows_and_drops_the_partial(self):
        ex = FeatureExtractor(window=10)
        fed = ex.feed([ev("inject", 0), ev("inject", 12), ev("inject", 25)])
        assert [f.start for f in fed] == [0, 10]
        # [20,30) is incomplete at cycle 28: discarded, inject@25 too
        assert ex.flush(up_to=28) == []
        ex2 = FeatureExtractor(window=10)
        ex2.feed([ev("inject", 25)])
        (frame,) = ex2.flush(up_to=30)
        assert (frame.start, frame.injects) == (20, 1)

    def test_flush_without_up_to_closes_nothing_new(self):
        ex = FeatureExtractor(window=10)
        ex.feed([ev("inject", 3)])
        assert ex.flush() == []

    def test_runs_window_independently(self):
        ex = FeatureExtractor(window=10)
        frames = ex.feed(
            [ev("inject", 0, run="a"), ev("inject", 15, run="b"),
             ev("inject", 22, run="a")]
        )
        # every run's first frame opens at cycle 0, so b's event at 15
        # immediately closes b's [0,10); a closes two windows
        assert [(f.run, f.start) for f in frames] == [
            ("b", 0), ("a", 0), ("a", 10),
        ]
        flushed = ex.flush(up_to=20)
        assert [(f.run, f.start) for f in flushed] == [("b", 10)]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            FeatureExtractor(window=0)


class TestFolding:
    def test_link_and_core_channels_accumulate(self):
        ex = FeatureExtractor(window=100)
        ex.feed(
            [
                ev("inject", 1, core=3),
                ev("deliver", 5, core=7),
                ev("retransmit", 10, link="0->EAST", pkt_id=1, seq=0),
                ev("retransmit", 11, link="0->EAST", pkt_id=1, seq=0),
                ev("corrupt", 12, link="0->EAST", pkt_id=1, seq=0, bits=2),
                ev("escalate", 20, link="1->WEST", stage="obfuscate"),
                ev("detect", 30, link="0->EAST", router=None, z=9.5),
                ev("localize", 40, link="0->EAST", router=0, score=3.0),
            ]
        )
        (frame,) = ex.flush(up_to=100)
        assert frame.links["0->EAST"] == {
            "nacks": 2, "corrupts": 1, "escalates": 0,
        }
        assert frame.links["1->WEST"]["escalates"] == 1
        assert frame.cores == {3: {"injects": 1, "delivers": 0},
                               7: {"injects": 0, "delivers": 1}}
        assert (frame.injects, frame.delivers) == (1, 1)
        assert frame.detects[0]["cycle"] == 30
        assert frame.localizes[0]["score"] == 3.0
        assert ex.events_folded == 8

    def test_unfeaturized_kinds_are_ignored_but_still_close_windows(self):
        ex = FeatureExtractor(window=10)
        (frame,) = ex.feed([ev("inject", 0), ev("verdict", 15)])
        assert frame.injects == 1
        assert ex.events_folded == 1  # the verdict was not folded

    def test_inflight_is_cumulative_at_window_close(self):
        ex = FeatureExtractor(window=10)
        frames = ex.feed(
            [ev("inject", 0), ev("inject", 1), ev("inject", 2),
             ev("deliver", 11), ev("inject", 25)]
        )
        assert [f.inflight for f in frames] == [3, 2]


class TestChunkIndependence:
    EVENTS = [
        ev("inject", c, core=c % 3) for c in range(0, 200, 7)
    ] + [ev("retransmit", c, link="2->NORTH") for c in range(90, 130, 3)]

    def stream(self, chunk: int) -> list[dict]:
        events = sorted(self.EVENTS, key=lambda e: e.cycle)
        ex = FeatureExtractor(window=16)
        frames = []
        for i in range(0, len(events), chunk):
            frames.extend(ex.feed(events[i:i + chunk]))
        frames.extend(ex.flush(up_to=220))
        return [f.to_dict() for f in frames]

    def test_frames_do_not_depend_on_feed_chunking(self):
        whole = self.stream(chunk=len(self.EVENTS))
        assert self.stream(chunk=1) == whole
        assert self.stream(chunk=7) == whole

    def test_to_dict_is_canonical_json(self):
        frame = FeatureFrame(run="r", start=0, window=8)
        frame.link("b->SOUTH")
        frame.link("a->EAST")
        text = json.dumps(frame.to_dict(), sort_keys=True)
        assert text.index("a->EAST") < text.index("b->SOUTH")
