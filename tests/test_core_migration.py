"""Tests for OS-level process migration (paper §IV-B complement)."""

import pytest

from repro.core import (
    MigratedSource,
    MigrationError,
    MigrationPlan,
    TargetSpec,
    TaspTrojan,
    plan_migration,
)
from repro.noc import Network, Packet, PAPER_CONFIG
from repro.noc.topology import Direction, links_on_xy_path

CFG = PAPER_CONFIG
INFECTED = (0, Direction.EAST)


class TestPlanMigration:
    def test_clean_flows_stay_put(self):
        # flow 16->31 (router 4 -> router 7) never crosses (0, EAST)
        plan = plan_migration(
            CFG, flows=[(16, 31)], condemned=[INFECTED],
            movable_cores=[16], spare_cores=[60],
        )
        assert plan.mapping == {16: 16}
        assert plan.moved_cores == []
        assert plan.downtime_cycles == 0

    def test_dirty_flow_relocated(self):
        # flow 0->7 (router 0 -> router 1) crosses (0, EAST)
        plan = plan_migration(
            CFG, flows=[(0, 7)], condemned=[INFECTED],
            movable_cores=[0], spare_cores=[16, 60],
        )
        assert plan.mapping[0] != 0
        new_src = plan.mapping[0]
        path = links_on_xy_path(
            CFG, CFG.router_of_core(new_src), CFG.router_of_core(7)
        )
        assert INFECTED not in path

    def test_nearest_spare_preferred(self):
        plan = plan_migration(
            CFG, flows=[(0, 7)], condemned=[INFECTED],
            movable_cores=[0], spare_cores=[60, 16],
        )
        # core 16 (router 4, 1 hop from home) beats core 60 (router 15)
        assert plan.mapping[0] == 16

    def test_downtime_scales_with_moves(self):
        one = plan_migration(
            CFG, flows=[(0, 7)], condemned=[INFECTED],
            movable_cores=[0], spare_cores=[16, 17],
        )
        two = plan_migration(
            CFG, flows=[(0, 7), (1, 7)], condemned=[INFECTED],
            movable_cores=[0, 1], spare_cores=[16, 17],
        )
        assert two.downtime_cycles > one.downtime_cycles > 0

    def test_impossible_placement_raises(self):
        # condemn every link leaving the destination column toward core 3
        condemned = [
            (0, Direction.EAST), (1, Direction.EAST), (2, Direction.EAST),
            (7, Direction.SOUTH), (4, Direction.EAST), (5, Direction.EAST),
            (6, Direction.EAST),
        ]
        with pytest.raises(MigrationError):
            plan_migration(
                CFG, flows=[(0, 12)], condemned=condemned,
                movable_cores=[0], spare_cores=[1, 2],
            )

    def test_spares_overlapping_movable_rejected(self):
        with pytest.raises(ValueError):
            plan_migration(CFG, flows=[(0, 7)], condemned=[INFECTED],
                           movable_cores=[0], spare_cores=[0, 16])

    def test_two_movable_endpoints(self):
        # both ends movable: planner may move either side
        plan = plan_migration(
            CFG, flows=[(0, 7)], condemned=[INFECTED],
            movable_cores=[0, 7], spare_cores=[16, 17, 60],
        )
        s, d = plan.remap(0), plan.remap(7)
        path = links_on_xy_path(
            CFG, CFG.router_of_core(s), CFG.router_of_core(d)
        )
        assert INFECTED not in path


class _ListSource:
    def __init__(self, packets):
        self.packets = packets

    def generate(self, cycle):
        return [p for p in self.packets if p.created_cycle == cycle]

    def done(self, cycle):
        return cycle > max((p.created_cycle for p in self.packets), default=0)


class TestMigratedSource:
    def _plan(self):
        return plan_migration(
            CFG, flows=[(0, 7)], condemned=[INFECTED],
            movable_cores=[0], spare_cores=[16],
        )

    def test_remaps_endpoints_after_downtime(self):
        plan = self._plan()
        pkt = Packet(pkt_id=1, src_core=0, dst_core=7,
                     created_cycle=plan.downtime_cycles + 5)
        src = MigratedSource(_ListSource([pkt]), plan, effective_cycle=0)
        out = src.generate(plan.downtime_cycles + 5)
        assert out[0].src_core == 16
        assert out[0].dst_core == 7

    def test_downtime_freezes_moved_process(self):
        plan = self._plan()
        pkt = Packet(pkt_id=1, src_core=0, dst_core=7, created_cycle=1)
        src = MigratedSource(_ListSource([pkt]), plan, effective_cycle=0)
        assert src.generate(1) == []
        assert src.packets_dropped_in_downtime == 1

    def test_unrelated_traffic_unaffected(self):
        plan = self._plan()
        pkt = Packet(pkt_id=2, src_core=20, dst_core=40, created_cycle=1)
        src = MigratedSource(_ListSource([pkt]), plan, effective_cycle=0)
        out = src.generate(1)
        assert out[0].src_core == 20 and out[0].dst_core == 40

    def test_before_effective_cycle_passthrough(self):
        plan = self._plan()
        pkt = Packet(pkt_id=1, src_core=0, dst_core=7, created_cycle=3)
        src = MigratedSource(_ListSource([pkt]), plan, effective_cycle=100)
        out = src.generate(3)
        assert out[0].src_core == 0

    def test_original_packet_not_mutated(self):
        plan = self._plan()
        pkt = Packet(pkt_id=1, src_core=0, dst_core=7,
                     created_cycle=plan.downtime_cycles + 1)
        src = MigratedSource(_ListSource([pkt]), plan, effective_cycle=0)
        src.generate(plan.downtime_cycles + 1)
        assert pkt.src_core == 0


class TestEndToEndMigration:
    def test_migration_restores_throughput_without_lob(self):
        # attacked flow on a plain (unmitigated) network: starved.
        trojan = TaspTrojan(TargetSpec.for_dest(1))
        trojan.enable()
        net = Network(CFG)
        net.attach_tamperer(INFECTED, trojan)
        for pid in range(10):
            net.add_packet(Packet(pkt_id=pid, src_core=0, dst_core=7,
                                  vc_class=pid % 4, created_cycle=0))
        assert not net.run_until_drained(3000, stall_limit=800)

        # OS migrates the victim process off router 0; same trojan, same
        # plain network, flows now avoid the infected link entirely.
        plan = plan_migration(
            CFG, flows=[(0, 7)], condemned=[INFECTED],
            movable_cores=[0], spare_cores=[16],
        )
        trojan2 = TaspTrojan(TargetSpec.for_dest(1))
        trojan2.enable()
        net2 = Network(CFG)
        net2.attach_tamperer(INFECTED, trojan2)
        packets = [
            Packet(pkt_id=pid, src_core=0, dst_core=7, vc_class=pid % 4,
                   created_cycle=plan.downtime_cycles + pid)
            for pid in range(10)
        ]
        net2.set_traffic(
            MigratedSource(_ListSource(packets), plan, effective_cycle=0)
        )
        assert net2.run_until_drained(4000)
        assert net2.stats.packets_completed == 10
        assert trojan2.triggers == 0
