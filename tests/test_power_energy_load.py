"""Tests for energy accounting and the load-curve experiment."""

import pytest

from repro.core import TargetSpec, TaspTrojan
from repro.experiments import load_curve
from repro.noc import Network, NoCConfig, Packet, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.power.energy import (
    LINK_TRAVERSAL_PJ,
    amplification,
    energy_report,
)


class TestEnergyReport:
    def test_idle_network_zero_energy(self):
        net = Network(PAPER_CONFIG)
        net.run(50)
        report = energy_report(net)
        assert report.total_pj == 0.0
        assert report.flits_delivered == 0
        assert report.pj_per_delivered_flit == float("inf")

    def test_energy_scales_with_traffic(self):
        def run(n):
            net = Network(PAPER_CONFIG)
            for pid in range(n):
                net.add_packet(
                    Packet(pkt_id=pid, src_core=0, dst_core=63,
                           created_cycle=0)
                )
            net.run_until_drained(3000)
            return energy_report(net)

        small, large = run(5), run(20)
        assert large.total_pj > 3 * small.total_pj
        # per-flit energy is roughly constant for the same flow
        assert large.pj_per_delivered_flit == pytest.approx(
            small.pj_per_delivered_flit, rel=0.2
        )

    def test_link_energy_matches_traversals(self):
        net = Network(PAPER_CONFIG)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))  # 6 hops
        net.run_until_drained(500)
        report = energy_report(net)
        assert report.link_pj == pytest.approx(6 * LINK_TRAVERSAL_PJ)

    def test_corrections_cost_extra(self):
        from repro.faults import TransientFaultModel
        from repro.util.rng import SeededStream

        net = Network(PAPER_CONFIG)
        net.attach_tamperer(
            (0, Direction.EAST),
            TransientFaultModel(
                net.codec.codeword_bits, 1.0, SeededStream(1, "n"),
                double_fraction=0.0,
            ),
        )
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63))
        net.run_until_drained(500)
        report = energy_report(net)
        assert report.correction_pj > 0

    def test_amplification_requires_delivery(self):
        net = Network(PAPER_CONFIG)
        net.run(10)
        empty = energy_report(net)
        with pytest.raises(ValueError):
            amplification(empty, empty)

    def test_retransmissions_counted(self):
        net = Network(PAPER_CONFIG)
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)
        net.add_packet(Packet(pkt_id=1, src_core=0, dst_core=63,
                              created_cycle=0))
        net.run(300)
        report = energy_report(net)
        assert report.retransmission_traversals > 50
        assert report.flits_delivered == 0


class TestLoadCurve:
    def test_small_sweep_shapes(self):
        result = load_curve.run(
            loads=(0.01, 0.2), routings=("xy",), duration=300
        )
        points = result.series("xy")
        assert points[0].mean_latency < points[1].mean_latency
        assert points[1].throughput > points[0].throughput
        assert "Load-latency" in load_curve.format_result(result)

    def test_saturation_detection(self):
        result = load_curve.run(
            loads=(0.01, 0.3), routings=("xy",), duration=300
        )
        assert result.saturation_load("xy") == 0.3

    def test_no_saturation_at_light_load(self):
        result = load_curve.run(
            loads=(0.005, 0.01), routings=("xy",), duration=200
        )
        assert result.saturation_load("xy") is None

    def test_sustained_throughput(self):
        result = load_curve.run(
            loads=(0.01, 0.2), routings=("xy",), duration=300
        )
        assert result.sustained_throughput("xy") > 1.0
