"""Online sentinel: pure-observer identity, detectors, codec.

The two load-bearing guarantees: a sentinel-monitored run is
bit-identical to an unmonitored one (the sentinel never mutates
network state), and the active-scoped flit sweep reaches the same
verdict — same failure kind at the same cycle — as the exhaustive
full-sweep audit.
"""

import dataclasses
import json

import pytest

from repro.noc.topology import Direction
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Sentinel,
    SentinelSpec,
    SentinelTrip,
    Simulation,
    planted_deadlock_scenario,
)
from tests.test_sim_engine import chaos_style, fig2_style, stats_snapshot


def undefended_chaos_style() -> Scenario:
    """chaos_style without the watchdog: the TASP trojan farms
    retransmissions forever, the paper's baseline livelock."""
    return dataclasses.replace(chaos_style(), defense=DefenseSpec())


def with_sentinel(scenario: Scenario, **kwargs) -> Scenario:
    return dataclasses.replace(scenario, sentinel=SentinelSpec(**kwargs))


class TestPureObserver:
    """Sentinel on vs off: bit-identical results and stats."""

    def run_pair(self, scenario, **spec_kwargs):
        bare = Simulation(scenario)
        monitored = Simulation(with_sentinel(scenario, **spec_kwargs))
        assert monitored.sentinel is not None
        rb = bare.run()
        rm = monitored.run()
        return bare, monitored, rb, rm

    def test_fig2_style_bit_identical(self):
        bare, monitored, rb, rm = self.run_pair(fig2_style())
        assert rb == rm
        assert stats_snapshot(bare.network) == stats_snapshot(
            monitored.network
        )
        assert monitored.sentinel.checks > 0
        assert monitored.sentinel.report.ok

    def test_chaos_style_bit_identical(self):
        # without the watchdog, chaos_style genuinely livelocks (the
        # bare run gives up via its stall limit), so run the invariant
        # families only: the progress detectors would — correctly —
        # trip first
        bare, monitored, rb, rm = self.run_pair(
            undefended_chaos_style(), livelock_sends=0, deadlock_window=0
        )
        assert not rb.completed  # the workload really is pathological
        assert rb == rm
        assert stats_snapshot(bare.network) == stats_snapshot(
            monitored.network
        )

    def test_chaos_style_defended_completes(self):
        """With the watchdog ladder (and the network-wide purge behind
        its drop stage) the same trojaned workload drains cleanly —
        and the sentinel certifies it."""
        bare, monitored, rb, rm = self.run_pair(chaos_style())
        assert rb.completed
        assert rb == rm
        assert monitored.sentinel.checks > 0
        assert monitored.sentinel.report.ok

    def test_chaos_style_livelock_caught_early(self):
        """On the undefended, retry-forever chaos workload the default
        sentinel calls livelock long before the engine's stall limit
        gives up."""
        bare = Simulation(undefended_chaos_style())
        stalled_at = bare.run().cycles
        with pytest.raises(SentinelTrip) as excinfo:
            Simulation(with_sentinel(undefended_chaos_style())).run()
        assert excinfo.value.kind == "livelock"
        assert excinfo.value.cycle < stalled_at

    def test_every_zero_disables(self):
        sim = Simulation(with_sentinel(fig2_style(), every=0))
        assert sim.sentinel is None
        assert not sim.network.monitors


class TestDetectors:
    def test_planted_scenario_trips_livelock(self):
        sim = Simulation(planted_deadlock_scenario())
        with pytest.raises(SentinelTrip) as excinfo:
            sim.run()
        trip = excinfo.value
        assert trip.kind == "livelock"
        assert trip.cycle > 0
        assert "re-sent" in str(trip)

    def test_active_scope_agrees_with_full_sweep(self):
        """Same verdict — kind and cycle — under active-set stepping
        with the sampled sweep and under full sweep with the
        exhaustive one."""
        scenario = planted_deadlock_scenario()
        trips = {}
        for label, scope, full_sweep in (
            ("active", "active", False),
            ("full", "full", True),
        ):
            scn = dataclasses.replace(
                scenario,
                sentinel=dataclasses.replace(
                    scenario.sentinel, flit_scope=scope
                ),
            )
            with pytest.raises(SentinelTrip) as excinfo:
                Simulation(scn, full_sweep=full_sweep).run()
            trips[label] = (excinfo.value.kind, excinfo.value.cycle)
        assert trips["active"] == trips["full"]

    def test_deadlock_detector(self):
        """Pausing every link freezes all movement with flits still
        in-network: the sentinel must call global deadlock."""
        packets = tuple(
            PacketSpec(pkt_id=i, src_core=0, dst_core=63,
                       inject_at=0, payload=(0xAA, 0xBB))
            for i in range(4)
        )
        scenario = Scenario(
            name="manufactured-deadlock",
            traffic=(ExplicitTraffic(packets=packets),),
            max_cycles=4000,
            sentinel=SentinelSpec(
                every=8, deadlock_window=64, livelock_sends=0
            ),
        )
        sim = Simulation(scenario)
        for _ in range(6):
            sim.step()
        stats = sim.network.stats
        assert stats.flits_injected > stats.flits_ejected
        for link in sim.network.links.values():
            link.paused = True
        with pytest.raises(SentinelTrip) as excinfo:
            for _ in range(500):
                sim.step()
        assert excinfo.value.kind == "deadlock"
        assert "no movement" in str(excinfo.value)

    def test_invariant_trip_carries_report(self):
        """Corrupting a credit counter mid-run trips the credit family
        with the validator's report attached."""
        sim = Simulation(with_sentinel(fig2_style(), every=4))
        for _ in range(8):
            sim.step()
        out = sim.network.output_port_of((0, Direction.EAST))
        out.credits._credits[0] -= 1
        with pytest.raises(SentinelTrip) as excinfo:
            for _ in range(50):
                sim.step()
        trip = excinfo.value
        assert trip.kind == "invariant:credit"
        assert trip.report is not None
        assert not trip.report.ok
        assert "credit conservation" in trip.report.violations[0]

    def test_trip_is_an_invariant_violation(self):
        from repro.noc.invariants import InvariantViolation

        trip = SentinelTrip("deadlock", 7, "frozen")
        assert isinstance(trip, InvariantViolation)
        assert isinstance(trip, RuntimeError)
        assert (trip.kind, trip.cycle) == ("deadlock", 7)


class TestSpecValidation:
    def test_unknown_family_rejected_at_build(self):
        with pytest.raises(ValueError, match="families"):
            Sentinel(SentinelSpec(families=("credit", "karma")))

    def test_unknown_scope_rejected_at_build(self):
        with pytest.raises(ValueError, match="flit_scope"):
            Sentinel(SentinelSpec(flit_scope="sometimes"))


class TestScenarioCodec:
    def test_round_trip(self):
        scenario = with_sentinel(
            fig2_style(), every=32, families=("credit", "flit"),
            flit_scope="full", deadlock_window=250, livelock_sends=9,
        )
        back = Scenario.from_json(scenario.to_json())
        assert back == scenario
        assert back.sentinel == scenario.sentinel
        assert back.content_hash() == scenario.content_hash()

    def test_none_round_trips(self):
        scenario = fig2_style()
        assert scenario.sentinel is None
        assert Scenario.from_json(scenario.to_json()).sentinel is None

    def test_pre_sentinel_json_still_decodes(self):
        """Scenario files written before the sentinel existed have no
        "sentinel" key; they must keep decoding."""
        data = json.loads(fig2_style().to_json())
        del data["sentinel"]
        back = Scenario.from_dict(data)
        assert back.sentinel is None
        assert back.name == "fig2-style"
