"""Fig. 11 bench — back-pressure build-up from a single TASP."""

from repro.experiments import fig11_backpressure


def test_bench_fig11_backpressure(once):
    result = once(fig11_backpressure.run, rate_scale=3.5)
    print()
    print(fig11_backpressure.format_result(result))

    h = result.headline

    # the trojan fired throughout the window
    assert result.trojan_triggers > 100

    # paper: within 50-100 cycles back pressure reaches ~68% (11/16) of
    # routers; we require a majority of routers blocked quickly
    assert h["cycles_to_half_routers_blocked"] is not None
    assert h["cycles_to_half_routers_blocked"] <= 400

    # by the end of the 1500-cycle window the attack has saturated most
    # injection ports (paper: 81% = 13/16 routers)
    assert h["peak_all_cores_full"] >= 10
    assert h["peak_blocked_routers"] >= 11

    # the clean run never develops chip-scale blockage
    assert h["peak_blocked_routers_clean"] <= 6
    assert h["peak_blocked_routers"] > 2 * h["peak_blocked_routers_clean"]

    # utilization separates: attacked injection queues fill far beyond
    # the clean run's steady state
    attacked_final = result.attacked.samples[-1]
    clean_final = result.clean.samples[-1]
    assert (
        attacked_final.injection_utilization
        > 1.3 * clean_final.injection_utilization
    )
