"""Fig. 1 bench — Blackscholes traffic distributions."""

from repro.experiments import fig1_traffic
from repro.noc import PAPER_CONFIG


def test_bench_fig1_traffic_distributions(once):
    result = once(fig1_traffic.run, duration=1500)
    print()
    print(fig1_traffic.format_result(result))

    # Paper shape: localization around the primary router (router 0 for
    # Blackscholes), with load diminishing away from it.
    assert result.primary_router == 0
    cfg = PAPER_CONFIG
    counts = result.source_counts
    assert counts[0] > counts[5] > counts[15]

    # matrix row/column 0 dominate (requests from/to the primary)
    row0 = sum(result.matrix[0])
    far_row = sum(result.matrix[15])
    assert row0 > 2 * far_row

    # link shares: a few hot links near router 0 carry a large share
    top = result.hottest_links(5)
    assert all(share > 0.02 for _, share in top)
    hot_routers = {key[0] for key, _ in top}
    assert hot_routers & {0, 1, 4, 5}
