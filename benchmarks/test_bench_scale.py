"""Scaling bench: simulator throughput from 4x4 to 16x16.

One uniform-random benign workload, identical injection rate and
horizon, swept across mesh sizes (and the 8x8 torus for the wrap
machinery's overhead).  Each test records its simulated cycle count so
``BENCH_scale.json`` carries cycles/sec per topology — the trajectory
CI watches as the topology layer grows.

The assertions pin sanity, not speed: every run must deliver traffic
and finish its horizon.  Set ``REPRO_BENCH_QUICK=1`` to shrink the
horizon for smoke runs.
"""

import os

import pytest

from repro.noc.config import NoCConfig
from repro.sim import Scenario, Simulation, SyntheticTraffic

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CYCLES = 600 if QUICK else 3000

MESHES = [
    pytest.param(NoCConfig(mesh_width=4, mesh_height=4), id="mesh4"),
    pytest.param(NoCConfig(mesh_width=8, mesh_height=8), id="mesh8"),
    pytest.param(
        NoCConfig(mesh_width=8, mesh_height=8, topology="torus"),
        id="torus8",
    ),
    pytest.param(NoCConfig(mesh_width=16, mesh_height=16), id="mesh16"),
]


def scale_scenario(cfg: NoCConfig) -> Scenario:
    return Scenario(
        name=f"bench-scale-{cfg.topology}{cfg.mesh_width}",
        cfg=cfg,
        traffic=(
            SyntheticTraffic(
                pattern="uniform",
                injection_rate=0.02,
                payload_words=2,
                duration=CYCLES - 200,
                seed=7,
            ),
        ),
        duration=CYCLES,
        seed=3,
    )


@pytest.mark.parametrize("cfg", MESHES)
def test_scale(cfg, once, bench_meta):
    sim = Simulation(scale_scenario(cfg))
    result = once(sim.run)
    bench_meta["cycles"] = sim.network.cycle
    bench_meta["routers"] = cfg.num_routers
    bench_meta["topology"] = cfg.topology
    assert sim.network.cycle == CYCLES
    assert sim.network.stats.packets_completed > 0
    assert result is not None
