"""Fig. 2 bench — latency-vs-distance per fault type."""

from repro.experiments import fig2_faults


def test_bench_fig2_fault_signatures(once):
    result = once(fig2_faults.run, packets=12)
    print()
    print(fig2_faults.format_result(result))

    clean = result.curves["clean"]
    transient = result.curves["transient"]
    permanent = result.curves["permanent (rerouted)"]
    trojan = result.curves["trojan (L-Ob)"]
    stalled = result.curves["trojan (no mitigation)"]

    for dist in clean:
        # clean latency grows with distance
        assert clean[dist] is not None
        # transient: small retransmission penalty on top of clean
        assert clean[dist] <= transient[dist] <= clean[dist] + 4
        # permanent: rerouting costs extra hops (never cheaper)
        assert permanent[dist] >= clean[dist]
        # trojan + L-Ob: the paper's 1-3 cycle obfuscation penalty
        assert clean[dist] < trojan[dist] <= clean[dist] + 3
        # unmitigated trojan: the flow never completes
        assert stalled[dist] is None

    # rerouting hurts short paths relatively more (the +hops dominate)
    assert permanent[1] - clean[1] >= permanent[6] - clean[6]
