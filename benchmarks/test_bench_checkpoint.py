"""Checkpoint bench: what freezing and reviving a live run costs.

Measures one snapshot → atomic save → load → restore → run-to-complete
round trip against an uninterrupted run of the same drain-heavy
scenario, and asserts the revived run is bit-identical — the overhead
number is only honest if the restored simulation is provably the same
simulation.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for smoke runs.
"""

import dataclasses
import os

from repro.core import TargetSpec
from repro.experiments.export import to_jsonable
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.sim import (
    Checkpoint,
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    TrojanSpec,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PACKETS = 6 if QUICK else 24
SPACING = 100


def checkpointed_scenario() -> Scenario:
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0,
                   dst_core=PAPER_CONFIG.core_of(15, 1),
                   mem_addr=0x100, inject_at=i * SPACING)
        for i in range(PACKETS)
    )
    return Scenario(
        name="bench-checkpoint",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(15)),
        ),
        defense=DefenseSpec(mitigated=True),
        max_cycles=PACKETS * SPACING + 2000,
        stall_limit=1500,
    )


def snapshot_restore_round_trip(tmp_path):
    scenario = checkpointed_scenario()
    midpoint = PACKETS * SPACING // 2

    sim = Simulation(scenario)
    sim.advance_to(midpoint)
    path = sim.snapshot().save(tmp_path / "bench.ckpt")

    revived = Simulation.restore(Checkpoint.load(path))
    result = revived.run()
    return result, to_jsonable(vars(revived.network.stats)), path


def test_bench_snapshot_restore(once, tmp_path):
    straight = Simulation(checkpointed_scenario())
    expected = straight.run()
    expected_stats = to_jsonable(vars(straight.network.stats))

    result, stats, path = once(snapshot_restore_round_trip, tmp_path)

    assert result == expected
    assert stats == expected_stats
    size_kib = path.stat().st_size / 1024
    print(
        f"\ncheckpoint round trip: {PACKETS} packets, "
        f"snapshot at cycle {PACKETS * SPACING // 2}, "
        f"file {size_kib:.0f} KiB, resumed run bit-identical "
        f"({result.cycles} cycles)"
    )


def test_bench_capture_only(benchmark):
    sim = Simulation(checkpointed_scenario())
    sim.advance_to(PACKETS * SPACING // 2)
    checkpoint = benchmark(sim.snapshot)
    assert dataclasses.asdict(checkpoint)["cycle"] == sim.network.cycle
    print(
        f"\nsnapshot payload: {len(checkpoint.payload) / 1024:.0f} KiB "
        f"at cycle {checkpoint.cycle}"
    )
