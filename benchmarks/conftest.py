"""Shared fixtures for the benchmark harness.

Every ``test_bench_*`` module regenerates one table or figure of the
paper: the benchmark measures its runtime, the assertions pin the
qualitative shape the paper reports, and the formatted report is
printed so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction log (EXPERIMENTS.md records the captured output).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark
    timer and hand back its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
