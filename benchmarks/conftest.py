"""Shared fixtures for the benchmark harness.

Every ``test_bench_*`` module regenerates one table or figure of the
paper: the benchmark measures its runtime, the assertions pin the
qualitative shape the paper reports, and the formatted report is
printed so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction log (EXPERIMENTS.md records the captured output).

Each module additionally leaves a machine-readable performance record
in the repository root — ``BENCH_<name>.json`` for
``test_bench_<name>.py`` — via :mod:`repro.obs.perf`: median/p95
wall-clock per test, derived cycles/sec where the test reports its
simulated cycle count, and the git revision measured.  The files are
git-ignored; CI archives them so the performance trajectory is
comparable across PRs instead of living in log prose.
"""

import time
from pathlib import Path

import pytest

#: (module name, test name) -> (wall-clock samples, metadata)
_RESULTS: dict = {}


def _module_name(nodeid: str) -> str:
    stem = Path(nodeid.partition("::")[0]).stem
    prefix = "test_bench_"
    return stem[len(prefix):] if stem.startswith(prefix) else stem


def _test_name(nodeid: str) -> str:
    return nodeid.partition("::")[2] or nodeid


def _add_result(nodeid: str, samples: list, meta: dict) -> None:
    if not samples:
        return
    key = (_module_name(nodeid), _test_name(nodeid))
    kept_samples, kept_meta = _RESULTS.setdefault(key, ([], {}))
    kept_samples.extend(samples)
    kept_meta.update(meta)


@pytest.fixture
def bench_meta():
    """Mutable metadata dict folded into this test's bench record.

    Recognized keys: ``cycles`` (simulated cycles per timed sample —
    becomes ``cycles_per_sec``), ``scenario_hash``; anything else is
    carried through verbatim.
    """
    return {}


@pytest.fixture
def once(benchmark, request, bench_meta):
    """Run an expensive experiment exactly once under the benchmark
    timer and hand back its result."""
    samples: list = []

    def _run(fn, *args, **kwargs):
        def timed(*a, **kw):
            started = time.perf_counter()
            out = fn(*a, **kw)
            samples.append(time.perf_counter() - started)
            return out

        return benchmark.pedantic(
            timed, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    yield _run
    _add_result(request.node.nodeid, samples, bench_meta)


@pytest.fixture
def record_samples(request, bench_meta):
    """Record hand-timed wall-clock samples into this test's bench
    record — for benches that run their own round loop instead of
    going through the ``once`` fixture."""

    def _record(samples, **meta):
        _add_result(
            request.node.nodeid, list(samples), {**bench_meta, **meta}
        )

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    from repro.obs.perf import bench_record, write_bench_file

    root = Path(__file__).resolve().parent.parent
    by_module: dict = {}
    for (module, test), (samples, meta) in sorted(_RESULTS.items()):
        by_module.setdefault(module, []).append(
            bench_record(test, samples, meta)
        )
    for module, records in by_module.items():
        write_bench_file(root, module, records)
    _RESULTS.clear()
