"""Fig. 10 bench — s2s L-Ob vs rerouting across four applications."""

from repro.experiments import fig10_speedup


def test_bench_fig10_lob_vs_rerouting(once):
    result = once(
        fig10_speedup.run,
        apps=("blackscholes", "facesim", "ferret", "fft"),
        fractions=(0.0, 0.05, 0.10, 0.15),
        duration=400,
    )
    print()
    print(fig10_speedup.format_result(result))

    for app in ("blackscholes", "facesim", "ferret", "fft"):
        series = result.series(app)
        by_frac = {p.infected_fraction: p for p in series}

        # both schemes complete the workload at every point
        assert all(p.lob_completed and p.reroute_completed for p in series)

        # 0% infected: identical networks, speedup exactly 1
        assert by_frac[0.0].speedup == 1.0

        # the paper's headline: continuing to use infected links with
        # L-Ob beats rerouting at every non-zero infection level...
        for frac in (0.05, 0.10, 0.15):
            assert by_frac[frac].speedup > 1.2, (
                f"{app} @ {frac:.0%}: speedup {by_frac[frac].speedup:.2f}"
            )

        # ...and the advantage does not shrink substantially as more
        # links are infected (rerouting loses path diversity)
        assert by_frac[0.15].speedup >= 0.9 * by_frac[0.05].speedup
