"""Micro-benchmarks of the hot substrate paths.

These track the simulator's own performance (flits/second through the
cycle loop, codec throughput) so regressions in the reproduction
infrastructure are visible.
"""

from repro.ecc import SECDED_72_64
from repro.noc import Network, PAPER_CONFIG
from repro.traffic import SyntheticConfig, SyntheticSource, uniform_random


def test_bench_secded_encode(benchmark):
    words = [(0x9E3779B97F4A7C15 * i) & ((1 << 64) - 1) for i in range(256)]

    def encode_all():
        for w in words:
            SECDED_72_64.encode(w)

    benchmark(encode_all)


def test_bench_secded_decode_clean(benchmark):
    cws = [
        SECDED_72_64.encode((0x9E3779B97F4A7C15 * i) & ((1 << 64) - 1))
        for i in range(256)
    ]

    def decode_all():
        for cw in cws:
            SECDED_72_64.decode(cw)

    benchmark(decode_all)


def test_bench_secded_decode_corrupted(benchmark):
    cws = [
        SECDED_72_64.encode((0xDEADBEEF * i) & ((1 << 64) - 1)) ^ 0b11
        for i in range(256)
    ]

    def decode_all():
        for cw in cws:
            SECDED_72_64.decode(cw)

    benchmark(decode_all)


def test_bench_network_cycles_under_load(benchmark):
    def run_loaded_network():
        net = Network(PAPER_CONFIG)
        net.set_traffic(
            SyntheticSource(
                PAPER_CONFIG,
                uniform_random,
                SyntheticConfig(injection_rate=0.05, duration=200),
                seed=1,
            )
        )
        net.run(300)
        return net

    net = benchmark(run_loaded_network)
    assert net.stats.flits_ejected > 0


def test_bench_network_idle_cycles(benchmark):
    def run_idle_network():
        net = Network(PAPER_CONFIG)
        net.run(500)

    benchmark(run_idle_network)
