"""Flood-DoS bench — §III-A routing comparison + flood-vs-trojan contrast."""

from repro.experiments import flood_routing


def test_bench_flood_vs_routing_and_trojan(once):
    result = once(flood_routing.run)
    print()
    print(flood_routing.format_result(result))

    for routing in flood_routing.ROUTINGS:
        series = {p.flood_rate: p for p in result.series(routing)}
        # flooding degrades latency monotonically with attacker rate
        lat = [series[r].background_mean_latency for r in sorted(series)]
        assert lat[0] < lat[-1]
        # but a pure bandwidth-depletion attack cannot stall delivery
        assert all(p.background_completion > 0.95 for p in series.values())

    # contrast: trojans on the victim's ingress links, with zero
    # attacker bandwidth, starve the victim region outright
    c = result.tasp_contrast
    assert c.victim_flows_completed < 0.3 * c.victim_flows_offered
    # and the back-pressure tree damages bystanders too
    assert c.background_completed < c.background_offered
