"""Sentinel bench: the cost of continuous online auditing.

The sentinel is only deployable if leaving it on is cheap: at its
default cadence (every 64 cycles, active-scoped flit sweep) the
monitored run must stay within a small fraction of the unmonitored
wall-clock on the same drain-heavy workload the engine bench uses —
and produce bit-identical stats, since the sentinel is a pure
observer.  The bench also records how much the active-scoped flit
sweep saves over the exhaustive one at the same cadence.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for smoke runs.
"""

import dataclasses
import time

from repro.experiments.export import to_jsonable
from repro.sim import Scenario, SentinelSpec, Simulation

from benchmarks.test_bench_engine import PACKETS, drain_heavy_scenario

#: generous ceiling for noisy CI boxes; typical overhead is a few %
MAX_OVERHEAD = 0.15


def _monitored(scenario: Scenario, flit_scope: str) -> Scenario:
    return dataclasses.replace(
        scenario, sentinel=SentinelSpec(flit_scope=flit_scope)
    )


def _timed_run(scenario: Scenario) -> tuple[float, object, dict]:
    sim = Simulation(scenario)
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    checks = sim.sentinel.checks if sim.sentinel is not None else 0
    return elapsed, result, to_jsonable(vars(sim.network.stats)), checks


def _compare() -> dict:
    scenario = drain_heavy_scenario()
    # min-of-3 so a CI scheduling hiccup can't fail the overhead bound
    trials = [
        {
            label: _timed_run(scn)
            for label, scn in (
                ("bare", scenario),
                ("active", _monitored(scenario, "active")),
                ("full", _monitored(scenario, "full")),
            )
        }
        for _ in range(3)
    ]
    best = {
        label: min(trial[label][0] for trial in trials)
        for label in ("bare", "active", "full")
    }
    last = trials[-1]
    return {
        "best": best,
        "results": {label: run[1] for label, run in last.items()},
        "stats": {label: run[2] for label, run in last.items()},
        "checks": last["active"][3],
    }


def test_bench_sentinel_overhead(once):
    out = once(_compare)

    # correctness first: the sentinel observed, audited, changed nothing
    assert out["checks"] > 0
    assert out["results"]["active"] == out["results"]["bare"]
    assert out["results"]["full"] == out["results"]["bare"]
    assert out["stats"]["active"] == out["stats"]["bare"]
    assert out["stats"]["full"] == out["stats"]["bare"]
    assert out["results"]["bare"].completed
    assert out["results"]["bare"].packets_completed == PACKETS

    bare = out["best"]["bare"]
    active = out["best"]["active"]
    full = out["best"]["full"]
    overhead = active / bare - 1.0
    print(
        f"\nsentinel on {PACKETS} packets ({out['checks']} audits): "
        f"bare {bare * 1e3:.0f}ms, active-scope {active * 1e3:.0f}ms "
        f"({overhead * 100:+.1f}%), full-scope {full * 1e3:.0f}ms "
        f"({(full / bare - 1.0) * 100:+.1f}%)"
    )
    # the deployability bound: default-cadence auditing is nearly free
    assert overhead < MAX_OVERHEAD
    # and the active-scoped sweep never loses to the exhaustive one
    # by more than noise (it skips settled routers entirely)
    assert active <= full * 1.05
