"""Observability overhead guard.

Three variants of the identical traffic-heavy scenario, interleaved
round-robin so ambient machine noise hits all of them equally:

* **baseline** — no observability object at all;
* **disabled** — ``ObsConfig(enabled=False)`` (attach is a no-op, so
  the per-cycle cost must be indistinguishable from baseline);
* **enabled** — metrics + events + the 64-cycle windowed series.

The bench asserts the pure-observer contract first (all three produce
byte-identical ``NetworkStats``) and then pins the overhead: the
disabled path within 3% of baseline, the fully enabled path within
15% (both on min-of-rounds; relaxed under ``REPRO_BENCH_QUICK=1``
where the workload is too small for stable timing).
"""

import os
import time

from repro.experiments.export import to_jsonable
from repro.noc.config import PAPER_CONFIG
from repro.obs.instrument import ObsConfig, Observability
from repro.sim import DefenseSpec, Scenario, Simulation, SyntheticTraffic

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
DURATION = 400 if QUICK else 2000
ROUNDS = 3 if QUICK else 5
# timing floors: tight by default, loose on the quick smoke workload
DISABLED_OVERHEAD = 0.30 if QUICK else 0.03
ENABLED_OVERHEAD = 0.60 if QUICK else 0.15


def obs_scenario() -> Scenario:
    return Scenario(
        name="bench-obs",
        cfg=PAPER_CONFIG,
        traffic=(
            SyntheticTraffic(
                pattern="uniform",
                injection_rate=0.10,
                duration=DURATION,
                seed=11,
            ),
        ),
        defense=DefenseSpec(mitigated=True),
        max_cycles=DURATION + 6000,
    )


VARIANTS = {
    "baseline": lambda: None,
    "disabled": lambda: Observability(ObsConfig(enabled=False)),
    "enabled": lambda: Observability(ObsConfig()),
}


def _timed(make_obs) -> tuple[float, int, dict]:
    obs = make_obs()
    sim = Simulation(obs_scenario(), obs=obs)
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    assert result.completed
    return elapsed, sim.network.cycle, to_jsonable(vars(sim.network.stats))


def test_bench_obs_overhead(record_samples, bench_meta):
    times: dict = {name: [] for name in VARIANTS}
    stats: dict = {}
    cycles = 0
    for _ in range(ROUNDS):
        for name, make_obs in VARIANTS.items():
            elapsed, cycles, run_stats = _timed(make_obs)
            times[name].append(elapsed)
            stats.setdefault(name, run_stats)

    # pure observer: attaching must not change a single stats byte
    assert stats["disabled"] == stats["baseline"]
    assert stats["enabled"] == stats["baseline"]

    best = {name: min(samples) for name, samples in times.items()}
    disabled_over = best["disabled"] / best["baseline"] - 1.0
    enabled_over = best["enabled"] / best["baseline"] - 1.0
    print(
        f"\nobs overhead on {cycles} cycles (min of {ROUNDS}): "
        f"baseline {best['baseline'] * 1e3:.0f}ms, "
        f"disabled {disabled_over * 100:+.1f}%, "
        f"enabled {enabled_over * 100:+.1f}%"
    )
    bench_meta["cycles"] = cycles
    bench_meta["duration"] = DURATION
    bench_meta["baseline_min_s"] = best["baseline"]
    bench_meta["disabled_min_s"] = best["disabled"]
    record_samples(times["enabled"], variant="enabled")

    assert disabled_over < DISABLED_OVERHEAD
    assert enabled_over < ENABLED_OVERHEAD
