"""Ablation benches — the design-choice sweeps DESIGN.md calls out."""

from repro.experiments import ablations


def test_bench_ablation_target_width(once):
    points = once(ablations.target_width_ablation)
    by_kind = {p.kind: p for p in points}
    # wider comparators cost area but eliminate accidental triggers
    assert by_kind["VC"].accidental_trigger_rate > 0.2
    assert by_kind["Full"].accidental_trigger_rate == 0.0
    assert by_kind["Full"].area_um2 > by_kind["VC"].area_um2
    # measured alias rates track the analytic prediction
    for p in points:
        assert abs(p.accidental_trigger_rate - p.predicted_rate) < 0.02


def test_bench_ablation_payload_states(once):
    points = once(ablations.payload_state_ablation)
    # more FSM states -> more distinct fault syndromes (better disguise)
    diversities = [p.distinct_syndromes for p in points]
    assert diversities == sorted(diversities)
    assert points[-1].distinct_syndromes > points[0].distinct_syndromes
    # ...at a monotone area cost
    areas = [p.area_um2 for p in points]
    assert areas == sorted(areas)


def test_bench_ablation_retrans_depth(once):
    points = once(ablations.retrans_depth_ablation)
    onsets = {p.depth: p.cycles_to_port_stall for p in points}
    # deeper buffers only delay the stall; every depth eventually pins
    assert all(v < 4000 for v in onsets.values())
    assert onsets[2] <= onsets[4] <= onsets[8] <= onsets[16]


def test_bench_ablation_payload_weight(once):
    points = once(ablations.payload_weight_ablation)
    by = {p.weight: p for p in points}
    # 1 flip: SECDED absorbs everything (silently corrected)
    assert by[1].packets_delivered == by[1].packets_offered
    assert by[1].corrected_faults > 0 and not by[1].deadlocked
    # 2 flips: the paper's DoS — detected, retransmitted forever, stalled
    assert by[2].packets_delivered == 0
    assert by[2].deadlocked
    assert by[2].detected_faults > 100
    # 3 flips: traffic moves but silently corrupts (misdeliveries)
    assert not by[3].deadlocked
    assert by[3].misdeliveries > 0


def test_bench_ablation_method_effectiveness(once):
    points = once(ablations.method_effectiveness_ablation)
    print()
    import repro.experiments.ablations as ab
    by = {(p.method, p.granularity): p for p in points}
    # content transforms covering the targeted field defeat TASP
    assert by[("invert", "full")].effective
    assert by[("shuffle", "full")].effective
    assert by[("scramble", "full")].effective
    assert by[("invert", "header")].effective  # dest field is in the header
    # payload-only obfuscation leaves the dest field exposed
    assert not by[("invert", "payload")].effective
    # reordering shifts timing, not content: TASP still triggers
    assert not by[("reorder", "full")].effective
