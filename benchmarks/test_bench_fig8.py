"""Fig. 8 bench — TASP power/area pies."""

from repro.experiments import fig8_overhead


def test_bench_fig8_overhead_pies(benchmark):
    report = benchmark(fig8_overhead.run)
    print()
    print(fig8_overhead.format_result(report))

    dyn = report.router_dynamic_shares
    # paper: buffers 71%, crossbar 18%, allocator 4%, clock 6%, TASP ~1%
    assert 0.64 <= dyn["buffer"] <= 0.78
    assert 0.13 <= dyn["crossbar"] <= 0.23
    assert dyn["tasp"] < 0.01

    leak = report.router_leakage_shares
    # paper: buffers 88%, crossbar 9%, allocator 3%
    assert 0.82 <= leak["buffer"] <= 0.92
    assert leak["tasp"] < 0.01

    area = report.noc_area_shares
    # paper: global wire 86%, active 13%, TASP 1%
    assert 0.80 <= area["global_wire"] <= 0.92
    assert area["tasp"] < 0.01

    worst = report.noc_dynamic_shares_all_links
    # paper: TASP on all 48 links = 0.56% of NoC dynamic power
    assert worst["tasp"] < 0.012
    assert worst["routers"] > 0.988
