"""Table I / Fig. 9 bench — TASP target-variant area/power/timing."""

import pytest

from repro.experiments import table1_tasp
from repro.power import PAPER_TABLE1


def test_bench_table1_tasp_variants(benchmark):
    result = benchmark(table1_tasp.run)
    print()
    print(table1_tasp.format_result(result))

    # calibration anchor is exact
    dest = result.row("Dest").budget
    assert dest.area_um2 == pytest.approx(PAPER_TABLE1["Dest"][0], rel=1e-3)

    # predicted variants land near the paper (area within 10%)
    for kind in ("Full", "Mem", "VC", "Dest_Src"):
        got = result.row(kind).budget.area_um2
        assert got == pytest.approx(PAPER_TABLE1[kind][0], rel=0.10)

    # Fig. 9 ordering: Full > Mem > Dest_Src > Dest = Src > VC
    areas = {r.kind: r.budget.area_um2 for r in result.rows}
    assert (
        areas["Full"] > areas["Mem"] > areas["Dest_Src"]
        > areas["Dest"] == areas["Src"] > areas["VC"]
    )

    # every variant fits the LT window at 2 GHz
    assert all(r.meets_timing for r in result.rows)
