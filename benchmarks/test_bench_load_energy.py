"""Load-latency validation bench + attack energy amplification."""

from repro.core import TargetSpec, TaspTrojan, build_mitigated_network
from repro.experiments import load_curve
from repro.noc import Network, NoCConfig, Packet
from repro.noc.topology import Direction
from repro.power.energy import amplification, energy_report


def test_bench_load_latency_curves(once):
    result = once(load_curve.run)
    print()
    print(load_curve.format_result(result))

    for routing in ("xy", "west-first"):
        series = result.series(routing)
        lats = [p.mean_latency for p in series]
        # canonical shape: monotone latency growth with offered load
        assert all(a <= b * 1.05 for a, b in zip(lats, lats[1:]))
        # zero-load latency is the pipeline-limited floor
        assert lats[0] < 25

    # the §III-A comparison: past saturation, deterministic xy sustains
    # more throughput than adaptive west-first under uniform traffic
    assert result.sustained_throughput("xy") > result.sustained_throughput(
        "west-first"
    )
    # both saturate somewhere in the sweep
    assert result.saturation_load("xy") is not None
    assert result.saturation_load("west-first") is not None
    assert (
        result.saturation_load("west-first")
        <= result.saturation_load("xy")
    )


def test_bench_attack_energy_amplification(once):
    def load(net):
        for pid in range(25):
            net.add_packet(
                Packet(pkt_id=pid, src_core=0, dst_core=63,
                       vc_class=pid % 4, payload=[0xAB], created_cycle=0)
            )

    def trojaned(net):
        trojan = TaspTrojan(TargetSpec.for_dest(15))
        trojan.enable()
        net.attach_tamperer((0, Direction.EAST), trojan)

    def run_all():
        clean_net = build_mitigated_network(NoCConfig())
        load(clean_net)
        clean_net.run_until_drained(10000, stall_limit=2500)

        mit_net = build_mitigated_network(NoCConfig())
        trojaned(mit_net)
        load(mit_net)
        mit_net.run_until_drained(10000, stall_limit=2500)

        raw_net = Network(NoCConfig())
        trojaned(raw_net)
        load(raw_net)
        raw_net.run(2500)  # deadlocked: fixed window
        return (
            energy_report(clean_net),
            energy_report(mit_net),
            energy_report(raw_net),
        )

    clean, mitigated, unmitigated = once(run_all)
    amp = amplification(mitigated, clean)
    print(f"\nenergy/pJ-per-flit: clean {clean.pj_per_delivered_flit:.1f}, "
          f"mitigated+attack {mitigated.pj_per_delivered_flit:.1f} "
          f"({amp:.3f}x), unmitigated+attack "
          f"{unmitigated.pj_per_delivered_flit} "
          f"({unmitigated.retransmission_traversals} retransmissions, "
          f"{unmitigated.total_pj:.0f} pJ burned)")

    # mitigated: same delivery, small energy premium (the few faulted
    # tries before the flow log takes over)
    assert mitigated.flits_delivered == clean.flits_delivered
    assert mitigated.retransmission_traversals > clean.retransmission_traversals
    assert 1.0 < amp < 2.0

    # unmitigated: the trojan converts the link into a pure energy sink —
    # hundreds of retransmission traversals, nothing delivered
    assert unmitigated.flits_delivered == 0
    assert unmitigated.pj_per_delivered_flit == float("inf")
    assert unmitigated.retransmission_traversals > 300
    assert unmitigated.total_pj > 0.25 * clean.total_pj
