"""Streaming detection service: verdict latency + observer overhead.

Two records pin the serving layer's cost model:

* **verdict latency** — cycles from trojan activation to each streamed
  verdict (p50/p95, nearest-rank).  Latency is quantized by the
  detection window: the z-score rules cannot speak before the windows
  holding the anomaly close, so the p50 should sit within a few
  windows of the activation edge.
* **streaming overhead** — wall-clock of :func:`run_streaming`
  (feature folding + classifiers) against the identical run carrying
  only the event instrumentation it consumes, interleaved round-robin.
  The bus's own cost against a bare run is ``BENCH_obs.json``'s
  number (that is the baseline the serving layer builds on); this
  bench pins what the *analytics* add on top of the bus at under 5%.
  The streamed result is asserted byte-identical to a bare run (pure
  observer) before any timing is trusted.
"""

import dataclasses
import os
import time

from repro.core import TargetSpec
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.obs.instrument import ObsConfig, Observability
from repro.obs.perf import percentile
from repro.resilience.detect import DetectConfig
from repro.serve.pipeline import DEFAULT_CAPACITY, run_streaming
from repro.sim import (
    DefenseSpec,
    Scenario,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
DURATION = 400 if QUICK else 2000
ROUNDS = 3 if QUICK else 5
STREAM_OVERHEAD = 0.50 if QUICK else 0.05

#: detection window the latency is quantized by
WINDOW = DetectConfig().window
#: trojan activation edge: past the classifier warmup, so the quiet
#: baseline is already built when the attack starts
ENABLE_AT = WINDOW * DetectConfig().warmup_windows + 50


def _attack_scenario() -> Scenario:
    horizon = ENABLE_AT + 40 * WINDOW
    return Scenario(
        name="bench-serve-latency",
        cfg=PAPER_CONFIG,
        traffic=(
            SyntheticTraffic(
                pattern="uniform",
                injection_rate=0.10,
                duration=horizon,
                seed=11,
            ),
        ),
        trojans=(
            TrojanSpec(
                (0, Direction.EAST),
                TargetSpec.for_dest(11),
                enable_at=ENABLE_AT,
            ),
        ),
        defense=DefenseSpec(),
        max_cycles=horizon + 6000,
        stall_limit=3000,
    )


def _benign_scenario() -> Scenario:
    return Scenario(
        name="bench-serve-overhead",
        cfg=PAPER_CONFIG,
        traffic=(
            SyntheticTraffic(
                pattern="uniform",
                injection_rate=0.10,
                duration=DURATION,
                seed=11,
            ),
        ),
        max_cycles=DURATION + 6000,
    )


def test_bench_serve_verdict_latency(record_samples, bench_meta):
    started = time.perf_counter()
    run = run_streaming(_attack_scenario())
    elapsed = time.perf_counter() - started

    assert run.verdicts, "the attack never produced a verdict"
    assert run.dropped == 0
    latencies = [float(v.cycle - ENABLE_AT) for v in run.verdicts]
    assert all(lat > 0 for lat in latencies)
    p50 = percentile(latencies, 0.5)
    p95 = percentile(latencies, 0.95)
    first = min(latencies)
    # the earliest verdict is bounded by window quantization: the
    # anomalous window must close, plus the streak policy's windows
    worst_first = (DetectConfig().consecutive + 2) * WINDOW
    assert first <= worst_first

    print(
        f"\nverdict latency over {len(latencies)} verdicts "
        f"(window={WINDOW}): first {first:.0f}, p50 {p50:.0f}, "
        f"p95 {p95:.0f} cycles after activation"
    )
    bench_meta["cycles"] = run.result.cycles
    bench_meta["scenario_hash"] = _attack_scenario().content_hash()
    record_samples(
        [elapsed],
        verdicts=len(latencies),
        window=WINDOW,
        latency_first_cycles=first,
        latency_p50_cycles=p50,
        latency_p95_cycles=p95,
    )


def _instrumented_run():
    """The serving layer's baseline: the identical run carrying the
    events-only bundle :func:`run_streaming` itself builds, with no
    pipeline consuming it."""
    obs = Observability(
        ObsConfig(
            metrics=False, window=0, queue_capacity=DEFAULT_CAPACITY
        )
    )
    return Simulation(_benign_scenario(), obs=obs).run()


def test_bench_serve_streaming_overhead(record_samples, bench_meta):
    times: dict = {"bare": [], "instrumented": [], "streamed": []}
    bare_result = None
    streamed = None
    for _ in range(ROUNDS):
        sim = Simulation(_benign_scenario())
        started = time.perf_counter()
        bare_result = sim.run()
        times["bare"].append(time.perf_counter() - started)

        started = time.perf_counter()
        _instrumented_run()
        times["instrumented"].append(time.perf_counter() - started)

        started = time.perf_counter()
        streamed = run_streaming(_benign_scenario())
        times["streamed"].append(time.perf_counter() - started)

    # pure-observer contract before any timing claim
    assert dataclasses.asdict(streamed.result) == dataclasses.asdict(
        bare_result
    )
    assert streamed.dropped == 0
    assert [v for v in streamed.verdicts if v.kind == "suspect_link"] == []

    best = {name: min(samples) for name, samples in times.items()}
    analytics = best["streamed"] / best["instrumented"] - 1.0
    total = best["streamed"] / best["bare"] - 1.0
    print(
        f"\nstreaming overhead on {streamed.result.cycles} cycles "
        f"(min of {ROUNDS}): bare {best['bare'] * 1e3:.0f}ms, "
        f"events {best['instrumented'] * 1e3:.0f}ms, "
        f"analytics {analytics * 100:+.1f}% over the bus "
        f"({total * 100:+.1f}% total vs bare)"
    )
    bench_meta["cycles"] = streamed.result.cycles
    bench_meta["bare_min_s"] = best["bare"]
    bench_meta["instrumented_min_s"] = best["instrumented"]
    bench_meta["total_overhead"] = round(total, 4)
    record_samples(times["streamed"], variant="streamed")

    assert analytics < STREAM_OVERHEAD
