"""Recovery-loop overhead guard: detector + prober stay under 5%.

Two variants of the same benign traffic-heavy run, interleaved
round-robin so machine noise hits both equally:

* **baseline** — the PR-7 defense stack (watchdog + containment);
* **recovery** — the same stack plus the traffic-statistics detector
  and probation (the full self-healing loop armed but, on a benign
  run, never firing).

The bench asserts the false-positive contract first — on stationary
benign traffic the detector flags nothing, so both variants produce
byte-identical ``NetworkStats`` — and then pins the wall-clock cost of
carrying the recovery loop at under 5% (min-of-rounds; relaxed under
``REPRO_BENCH_QUICK=1`` where the workload is too small for stable
timing).
"""

import os
import time

from repro.experiments.export import to_jsonable
from repro.noc.config import PAPER_CONFIG
from repro.resilience.containment import ContainmentConfig, ProbationConfig
from repro.resilience.detect import DetectConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim import DefenseSpec, Scenario, Simulation, SyntheticTraffic

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
DURATION = 400 if QUICK else 2000
ROUNDS = 3 if QUICK else 5
RECOVERY_OVERHEAD = 0.50 if QUICK else 0.05


def _defense(recovery: bool) -> DefenseSpec:
    return DefenseSpec(
        watchdog=WatchdogConfig(),
        containment=ContainmentConfig(),
        probation=ProbationConfig() if recovery else None,
        detector=DetectConfig() if recovery else None,
    )


def _scenario(recovery: bool) -> Scenario:
    return Scenario(
        name="bench-detect-recovery" if recovery else "bench-detect-base",
        cfg=PAPER_CONFIG,
        traffic=(
            SyntheticTraffic(
                pattern="uniform",
                injection_rate=0.10,
                duration=DURATION,
                seed=11,
            ),
        ),
        defense=_defense(recovery),
        max_cycles=DURATION + 6000,
    )


def _timed(recovery: bool) -> tuple[float, int, dict, "Simulation"]:
    sim = Simulation(_scenario(recovery))
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    assert result.completed
    return (
        elapsed,
        sim.network.cycle,
        to_jsonable(vars(sim.network.stats)),
        sim,
    )


def test_bench_detect_overhead(record_samples, bench_meta):
    times: dict = {"baseline": [], "recovery": []}
    stats: dict = {}
    cycles = 0
    last_sim = None
    for _ in range(ROUNDS):
        for name, recovery in (("baseline", False), ("recovery", True)):
            elapsed, cycles, run_stats, sim = _timed(recovery)
            times[name].append(elapsed)
            stats.setdefault(name, run_stats)
            if recovery:
                last_sim = sim

    # false-positive contract: benign traffic flags nothing, probes
    # nothing, and therefore changes nothing
    assert last_sim.detector.summary()["suspect_links"] == []
    assert last_sim.containment.summary()["probation"]["trials_run"] == 0
    assert stats["recovery"] == stats["baseline"]

    best = {name: min(samples) for name, samples in times.items()}
    overhead = best["recovery"] / best["baseline"] - 1.0
    print(
        f"\nrecovery-loop overhead on {cycles} cycles "
        f"(min of {ROUNDS}): baseline {best['baseline'] * 1e3:.0f}ms, "
        f"detector+probation {overhead * 100:+.1f}%"
    )
    bench_meta["cycles"] = cycles
    bench_meta["duration"] = DURATION
    bench_meta["baseline_min_s"] = best["baseline"]
    record_samples(times["recovery"], variant="recovery")

    assert overhead < RECOVERY_OVERHEAD


def test_bench_detect_profile_shares(record_samples, bench_meta):
    """Wall-clock share of the detector and localizer hooks.

    Profiles one attacked run with the full detect+localize stack
    armed: the detector monitor gets its own ``detect`` lap in the
    cycle loop and the localizer nets its nested share out into
    ``localize`` (see ``PhaseProfiler.reattribute``), so the record
    pins how much of the step loop the streaming-analytics inputs
    cost.
    """
    from repro.core import TargetSpec
    from repro.noc.topology import Direction
    from repro.obs import profiler as obs_profiler
    from repro.resilience.localize import LocalizeConfig
    from repro.sim import TrojanSpec

    warmup = DetectConfig().window * DetectConfig().warmup_windows
    scenario = Scenario(
        name="bench-detect-profile",
        cfg=PAPER_CONFIG,
        traffic=(
            SyntheticTraffic(
                pattern="uniform",
                injection_rate=0.10,
                duration=DURATION,
                seed=11,
            ),
        ),
        trojans=(
            TrojanSpec(
                (0, Direction.EAST),
                TargetSpec.for_dest(11),
                enable_at=warmup + 50,
            ),
        ),
        defense=DefenseSpec(
            watchdog=WatchdogConfig(),
            containment=ContainmentConfig(),
            detector=DetectConfig(),
            localizer=LocalizeConfig(),
        ),
        max_cycles=DURATION + 6000,
    )
    prof = obs_profiler.enable()
    try:
        sim = Simulation(scenario)
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
    finally:
        obs_profiler.disable()

    total = prof.total()
    assert total > 0
    shares = {
        phase: prof.seconds.get(phase, 0.0) / total
        for phase in ("detect", "localize")
    }
    # the detector monitor laps every step; the localizer only runs
    # on flags, so the attack must actually have been flagged
    assert prof.seconds.get("detect", 0.0) > 0
    assert sim.detector.summary()["suspect_links"]
    assert prof.calls.get("localize", 0) > 0

    print(
        f"\ndetect/localize profile on {sim.network.cycle} cycles: "
        f"detect {shares['detect'] * 100:.1f}%, "
        f"localize {shares['localize'] * 100:.2f}% of {total:.3f}s"
    )
    bench_meta["cycles"] = sim.network.cycle
    record_samples(
        [elapsed],
        detect_share=round(shares["detect"], 4),
        localize_share=round(shares["localize"], 4),
    )
