"""Fig. 12 bench — TDM containment vs the proposed s2s mitigation."""

from repro.experiments import fig12_qos


def test_bench_fig12_qos_containment(once):
    result = once(fig12_qos.run)
    print()
    print(fig12_qos.format_result(result))

    h = result.headline

    # (a) TDM non-interference: the clean domain is unaffected by the
    # attack (its completions match the no-attack baseline closely)...
    assert h["tdm_clean_domain_completions"] >= 0.95 * h[
        "tdm_clean_domain_baseline"
    ]
    # ...but the victim domain degrades badly (contained, not mitigated)
    assert h["tdm_victim_domain_completions"] <= 0.7 * h[
        "tdm_victim_domain_baseline"
    ]
    # victim-side back pressure: blocked cores pile up in D2 only
    assert h["tdm_victim_blocked_cores"] > 3 * max(
        1, h["tdm_clean_blocked_cores"]
    ) or h["tdm_clean_blocked_cores"] <= 2

    # victim buffers saturate over the window
    d2 = [s.buffer_util[1] for s in result.tdm.samples]
    assert d2[-1] > 3 * max(1, d2[0])

    # (b) detector + L-Ob: both applications run at baseline throughput
    assert h["mitigated_victim_completions"] >= 0.9 * h[
        "tdm_victim_domain_baseline"
    ]
    assert h["mitigated_blocked_cores"] <= 2
