"""Table II bench — mitigation (threat detector + L-Ob) overhead."""

from repro.experiments import table2_mitigation


def test_bench_table2_mitigation_overhead(benchmark):
    result = benchmark(table2_mitigation.run)
    print()
    print(table2_mitigation.format_result(result))

    total = result.total
    # paper: "only 2% and 6% increase in area and power consumption"
    assert 1.0 < total.pct_router_area < 4.0
    assert 3.5 < total.pct_router_dynamic < 8.0

    # both modules fit the 2 GHz clock
    assert all(r.meets_timing for r in result.rows)

    # the detector is shared per router; the four L-Ob datapaths
    # dominate the added area
    rows = {r.name: r for r in result.rows}
    assert (
        rows["L-Ob (4 ports)"].budget.area_um2
        > rows["Threat detector"].budget.area_um2
    )
