"""Engine bench: active-set stepping vs the full per-cycle sweep.

A drain-heavy fig2-style workload (a single targeted flow trickling
across the mesh with long idle gaps) is exactly where skipping settled
routers pays: most of the 16 routers are idle on most cycles.  The
bench runs the identical scenario both ways, asserts the stats are
bit-identical, and records the speedup.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for smoke runs.
"""

import os
import time

from repro.core import TargetSpec
from repro.experiments.export import to_jsonable
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    TrojanSpec,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PACKETS = 8 if QUICK else 30
SPACING = 120


def drain_heavy_scenario() -> Scenario:
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0,
                   dst_core=PAPER_CONFIG.core_of(15, 1),
                   mem_addr=0x100, inject_at=i * SPACING)
        for i in range(PACKETS)
    )
    return Scenario(
        name="bench-drain-heavy",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(15)),
        ),
        defense=DefenseSpec(mitigated=True),
        max_cycles=PACKETS * SPACING + 6000,
        stall_limit=1500,
    )


def _timed_run(full_sweep: bool) -> tuple[float, object, dict]:
    sim = Simulation(drain_heavy_scenario(), full_sweep=full_sweep)
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    return elapsed, result, to_jsonable(vars(sim.network.stats))


def _compare() -> dict:
    full_s, full_result, full_stats = _timed_run(full_sweep=True)
    active_s, active_result, active_stats = _timed_run(full_sweep=False)
    return {
        "full_s": full_s,
        "active_s": active_s,
        "full_result": full_result,
        "active_result": active_result,
        "identical": active_stats == full_stats,
    }


def test_bench_engine_active_vs_full_sweep(once):
    out = once(_compare)
    # correctness first: skipping settled routers must not change a bit
    assert out["identical"]
    assert out["active_result"] == out["full_result"]
    assert out["active_result"].completed
    assert out["active_result"].packets_completed == PACKETS

    speedup = out["full_s"] / out["active_s"]
    print(
        f"\nactive-set vs full sweep on {PACKETS} packets: "
        f"{out['full_s'] * 1e3:.0f}ms -> {out['active_s'] * 1e3:.0f}ms "
        f"({speedup:.2f}x)"
    )
    # drain-heavy traffic leaves most routers settled most cycles, so
    # the active-set step must win outright
    assert speedup > 1.0
