"""Engine bench: cheap stepping strategies vs the full per-cycle sweep.

Two stepping optimizations are measured against their oracles:

* active-set stepping vs ``full_sweep=True`` — skipping *settled
  routers* within a cycle;
* the event engine vs the sweep engine — skipping *provably idle
  cycles* outright via the wakeup scheduler (``repro.sim.sched``).

Each bench runs the identical scenario both ways, asserts the stats
are bit-identical, and records the speedup.  The event-engine benches
use the two workload shapes the scheduler targets: a *drain-heavy*
trickle (long gaps between packets of one targeted flow) and an
*attack-quiescent* run (a short trojan-link flood burst, then a long
mitigated tail probed sparsely).  Both use ``sample_interval=0`` so
the sampling cadence does not cap the leap length.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workloads for smoke runs;
quick workloads are too small to amortize the active bursts, so only
the full-size runs assert the headline >=5x speedup.
"""

import os
import time

from repro.core import TargetSpec
from repro.experiments.export import to_jsonable
from repro.noc.config import PAPER_CONFIG
from repro.noc.topology import Direction
from repro.resilience.watchdog import WatchdogConfig
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    FloodTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    TrojanSpec,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PACKETS = 8 if QUICK else 30
SPACING = 120


def drain_heavy_scenario() -> Scenario:
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0,
                   dst_core=PAPER_CONFIG.core_of(15, 1),
                   mem_addr=0x100, inject_at=i * SPACING)
        for i in range(PACKETS)
    )
    return Scenario(
        name="bench-drain-heavy",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(15)),
        ),
        defense=DefenseSpec(mitigated=True),
        max_cycles=PACKETS * SPACING + 6000,
        stall_limit=1500,
    )


def _timed_run(full_sweep: bool) -> tuple[float, object, dict]:
    sim = Simulation(drain_heavy_scenario(), full_sweep=full_sweep)
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    return elapsed, result, to_jsonable(vars(sim.network.stats))


def _compare() -> dict:
    full_s, full_result, full_stats = _timed_run(full_sweep=True)
    active_s, active_result, active_stats = _timed_run(full_sweep=False)
    return {
        "full_s": full_s,
        "active_s": active_s,
        "full_result": full_result,
        "active_result": active_result,
        "identical": active_stats == full_stats,
    }


def test_bench_engine_active_vs_full_sweep(once):
    out = once(_compare)
    # correctness first: skipping settled routers must not change a bit
    assert out["identical"]
    assert out["active_result"] == out["full_result"]
    assert out["active_result"].completed
    assert out["active_result"].packets_completed == PACKETS

    speedup = out["full_s"] / out["active_s"]
    print(
        f"\nactive-set vs full sweep on {PACKETS} packets: "
        f"{out['full_s'] * 1e3:.0f}ms -> {out['active_s'] * 1e3:.0f}ms "
        f"({speedup:.2f}x)"
    )
    # drain-heavy traffic leaves most routers settled most cycles, so
    # the active-set step must win outright
    assert speedup > 1.0


# ---------------------------------------------------------------------------
# event engine vs sweep engine
# ---------------------------------------------------------------------------
#: headline floor for the full-size workloads; quick runs only smoke
#: the identity and direction of the win
EVENT_SPEEDUP_FLOOR = 1.2 if QUICK else 5.0

ED_PACKETS = 6 if QUICK else 20
ED_SPACING = 8000


def event_drain_heavy_scenario() -> Scenario:
    """One targeted flow with ~8000 idle cycles between packets: the
    event engine teleports over every gap, the sweep walks them."""
    packets = tuple(
        PacketSpec(pkt_id=i, src_core=0,
                   dst_core=PAPER_CONFIG.core_of(15, 1),
                   mem_addr=0x100, inject_at=i * ED_SPACING)
        for i in range(ED_PACKETS)
    )
    return Scenario(
        name="bench-event-drain-heavy",
        cfg=PAPER_CONFIG,
        traffic=(ExplicitTraffic(packets=packets),),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(15)),
        ),
        defense=DefenseSpec(mitigated=True),
        max_cycles=ED_PACKETS * ED_SPACING + 6000,
        stall_limit=ED_SPACING + 2000,
        sample_interval=0,
    )


EA_PROBES = 3 if QUICK else 8
EA_GAP = 8000
EA_FLOOD_STOP = 120


def event_attack_quiescent_scenario() -> Scenario:
    """A short flood burst through the infected link, then a long
    mitigated tail probed every ~8000 cycles.  The watchdog ladder is
    armed the whole run but quiescent between probes, so its
    ``next_event_cycle`` hook must release the clock for the engine to
    win."""
    probes = tuple(
        PacketSpec(pkt_id=100 + i, src_core=2,
                   dst_core=PAPER_CONFIG.core_of(13, 0),
                   mem_addr=0x200, inject_at=400 + i * EA_GAP)
        for i in range(EA_PROBES)
    )
    return Scenario(
        name="bench-event-attack-quiescent",
        cfg=PAPER_CONFIG,
        traffic=(
            FloodTraffic(
                rogue_cores=(0,),
                victim_cores=(PAPER_CONFIG.core_of(15, 1),),
                rate=0.5,
                stop_cycle=EA_FLOOD_STOP,
                seed=3,
            ),
            ExplicitTraffic(packets=probes),
        ),
        trojans=(
            TrojanSpec((0, Direction.EAST), TargetSpec.for_dest(15)),
        ),
        defense=DefenseSpec(mitigated=True, watchdog=WatchdogConfig()),
        max_cycles=400 + EA_PROBES * EA_GAP + 6000,
        stall_limit=EA_GAP + 2000,
        sample_interval=0,
    )


def _timed_engine_run(scenario: Scenario, engine: str):
    sim = Simulation(scenario, engine=engine)
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    return elapsed, result, to_jsonable(vars(sim.network.stats)), sim


def _event_vs_sweep(scenario, record_samples, label):
    sweep_s, sweep_result, sweep_stats, _ = _timed_engine_run(
        scenario, "sweep"
    )
    event_s, event_result, event_stats, event_sim = _timed_engine_run(
        scenario, "event"
    )

    # correctness first: teleporting over idle cycles must not change
    # a bit of the report
    assert event_stats == sweep_stats
    assert event_result == sweep_result
    assert event_result.completed

    core = event_sim.event_core
    assert core is not None and core.cycles_skipped > 0
    speedup = sweep_s / event_s
    print(
        f"\n{label}: sweep {sweep_s * 1e3:.0f}ms -> event "
        f"{event_s * 1e3:.0f}ms ({speedup:.2f}x, "
        f"{core.cycles_skipped}/{event_result.cycles} cycles skipped)"
    )
    # the timed sample is the event engine; the sweep baseline and the
    # speedup ride along as metadata for the trajectory
    record_samples(
        [event_s],
        cycles=event_result.cycles,
        scenario_hash=scenario.content_hash(),
        sweep_s=sweep_s,
        speedup=speedup,
        cycles_skipped=core.cycles_skipped,
        quick=QUICK,
    )
    assert speedup > EVENT_SPEEDUP_FLOOR


def test_bench_engine_event_vs_sweep_drain_heavy(record_samples):
    _event_vs_sweep(
        event_drain_heavy_scenario(),
        record_samples,
        f"event vs sweep, drain-heavy ({ED_PACKETS} pkts / "
        f"{ED_SPACING}-cycle gaps)",
    )


def test_bench_engine_event_vs_sweep_attack_quiescent(record_samples):
    _event_vs_sweep(
        event_attack_quiescent_scenario(),
        record_samples,
        f"event vs sweep, attack-quiescent ({EA_FLOOD_STOP}-cycle "
        f"flood + {EA_PROBES} probes / {EA_GAP}-cycle gaps)",
    )
