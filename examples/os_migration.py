#!/usr/bin/env python3
"""Detect, then migrate: the OS-level response (paper §IV-B).

The paper notes that once the threat detector narrows a trojan to a
link, more aggressive responses become possible, "such as rerouting
packets or invoking the OS to migrate processes from one network region
to another which can be used to complement our proposed design."

This walkthrough runs that full pipeline:

  1. a victim process on core 0 talks to a service on router 1; a TASP
     on link 0->EAST starves the flow;
  2. the mitigated network's threat detector localizes and classifies
     the link (verdict: trojan) while L-Ob keeps traffic moving;
  3. the OS consumes the verdict, plans a migration of the victim
     process to a clean router (paying a downtime window for the state
     copy), after which the flow avoids the infected link entirely —
     even on a network with no L-Ob at all.

Run:  python examples/os_migration.py
"""

from repro import (
    Direction,
    LinkVerdict,
    Network,
    NoCConfig,
    Packet,
    TargetSpec,
    TaspTrojan,
    build_mitigated_network,
)
from repro.core import MigratedSource, plan_migration

INFECTED = (0, Direction.EAST)
VICTIM_CORE, SERVICE_CORE = 0, 7  # router 0 -> router 1


class SteadyFlow:
    """One packet every few cycles from the victim to the service."""

    def __init__(self, count, spacing=8, start=0):
        self.count = count
        self.spacing = spacing
        self.start = start
        self._emitted = 0

    def generate(self, cycle):
        if (
            self._emitted < self.count
            and cycle >= self.start
            and (cycle - self.start) % self.spacing == 0
        ):
            self._emitted += 1
            return [
                Packet(
                    pkt_id=self._emitted,
                    src_core=VICTIM_CORE,
                    dst_core=SERVICE_CORE,
                    vc_class=self._emitted % 4,
                    created_cycle=cycle,
                )
            ]
        return []

    def done(self, cycle):
        return self._emitted >= self.count


def fresh_trojan():
    trojan = TaspTrojan(TargetSpec.for_dest(1))
    trojan.enable()
    return trojan


def main() -> None:
    cfg = NoCConfig()

    # -- 1. the attack on an undefended network -----------------------------
    net = Network(cfg)
    net.attach_tamperer(INFECTED, fresh_trojan())
    net.set_traffic(SteadyFlow(20))
    drained = net.run_until_drained(4000, stall_limit=800)
    print(f"[1] undefended: {net.stats.packets_completed}/20 delivered, "
          f"drained={drained}  -> the flow is held hostage")

    # -- 2. detection on the mitigated network ------------------------------
    net = build_mitigated_network(cfg)
    net.attach_tamperer(INFECTED, fresh_trojan())
    net.set_traffic(SteadyFlow(20))
    net.run_until_drained(6000, stall_limit=1500)
    detector = net.receiver_of(INFECTED).detector
    print(f"[2] with detector+L-Ob: {net.stats.packets_completed}/20 "
          f"delivered while classifying the link; verdict = "
          f"{detector.verdict.value}")
    assert detector.verdict in (LinkVerdict.TROJAN, LinkVerdict.PERMANENT)

    # -- 3. the OS migrates the victim process ------------------------------
    condemned = [INFECTED]
    plan = plan_migration(
        cfg,
        flows=[(VICTIM_CORE, SERVICE_CORE)],
        condemned=condemned,
        movable_cores=[VICTIM_CORE],
        spare_cores=[16, 17, 60],  # free cores the OS can use
    )
    new_home = plan.remap(VICTIM_CORE)
    print(f"[3] OS migration plan: core {VICTIM_CORE} -> core {new_home} "
          f"(router {cfg.router_of_core(new_home)}), "
          f"downtime {plan.downtime_cycles} cycles for the state copy")

    net = Network(cfg)  # NO L-Ob needed any more
    trojan = fresh_trojan()
    net.attach_tamperer(INFECTED, trojan)
    net.set_traffic(
        MigratedSource(SteadyFlow(20, start=0), plan, effective_cycle=0)
    )
    drained = net.run_until_drained(6000, stall_limit=1500)
    print(f"    after migration: {net.stats.packets_completed}/"
          f"{net.stats.packets_injected} delivered, drained={drained}, "
          f"trojan triggers={trojan.triggers} (its target never passes by)")


if __name__ == "__main__":
    main()
