#!/usr/bin/env python3
"""Quickstart: the paper in 60 seconds.

Builds the paper's 64-core NoC, plants a TASP hardware trojan on a
link, and shows the three-act story:

  1. a clean network delivers the traffic;
  2. the same traffic with an enabled trojan (and no mitigation)
     deadlocks — the trojan farms SECDED retransmissions until
     back pressure pins the network;
  3. with the threat detector + L-Ob switch-to-switch obfuscation the
     traffic flows again at a few cycles' cost, and the detector
     correctly classifies the link as trojan-infected.

Run:  python examples/quickstart.py
"""

from repro import (
    Direction,
    Network,
    NoCConfig,
    Packet,
    TargetSpec,
    TaspTrojan,
    build_mitigated_network,
)

INFECTED_LINK = (0, Direction.EAST)  # router 0's eastward link


def victim_traffic(net: Network, count: int = 30) -> None:
    """A flow from core 0 to core 63 — it must cross the infected link
    (xy routing goes east along the bottom row first)."""
    for pid in range(count):
        net.add_packet(
            Packet(
                pkt_id=pid,
                src_core=0,
                dst_core=63,
                vc_class=pid % 4,
                mem_addr=0x1000 + pid,
                payload=[0xC0FFEE, 0xBEEF],
            )
        )


def fresh_trojan() -> TaspTrojan:
    # Target: any packet heading for router 15 (where core 63 lives).
    trojan = TaspTrojan(TargetSpec.for_dest(15))
    trojan.enable()  # throw the external kill switch
    return trojan


def act1_clean() -> None:
    net = Network(NoCConfig())
    victim_traffic(net)
    net.run_until_drained(5000)
    s = net.stats
    print(f"[1] clean network  : {s.packets_completed}/{s.packets_injected} "
          f"packets delivered, mean latency "
          f"{s.mean_total_latency():.1f} cycles")


def act2_attacked() -> None:
    net = Network(NoCConfig())
    trojan = fresh_trojan()
    net.attach_tamperer(INFECTED_LINK, trojan)
    victim_traffic(net)
    drained = net.run_until_drained(5000, stall_limit=1000)
    s = net.stats
    print(f"[2] TASP, no defense: {s.packets_completed}/{s.packets_injected} "
          f"packets delivered, drained={drained} "
          f"(trojan triggered {trojan.triggers}x -> DoS)")


def act3_mitigated() -> None:
    net = build_mitigated_network(NoCConfig())
    trojan = fresh_trojan()
    net.attach_tamperer(INFECTED_LINK, trojan)
    victim_traffic(net)
    net.run_until_drained(8000, stall_limit=2000)
    s = net.stats
    detector = net.receiver_of(INFECTED_LINK).detector
    lob = net.output_port_of(INFECTED_LINK).lob
    obfuscated = sum(lob.obfuscated_sends.values())
    print(f"[3] detector + L-Ob : {s.packets_completed}/{s.packets_injected} "
          f"packets delivered, mean latency "
          f"{s.mean_total_latency():.1f} cycles")
    print(f"    link verdict: {detector.verdict.value} "
          f"(BIST scans: {detector.bist_scans}, "
          f"obfuscated traversals: {obfuscated}, "
          f"preemptive: {lob.preemptive_sends})")


if __name__ == "__main__":
    act1_clean()
    act2_attacked()
    act3_mitigated()
