#!/usr/bin/env python3
"""The attacker's notebook (paper §III-A).

An attacker with foundry access studies the victim application's
traffic distribution (Fig. 1), then solves their design problem:

  * which links to infect — as few as possible ("fewer HTs reduces the
    probability of detection") while covering the victim's flows;
  * which target comparator to build — narrow is cheap but aliases on
    payload bits; wide is quiet but a larger side-channel footprint.

The script plans campaigns for several target choices, prints the
cost/stealth table, then actually implants the chosen plan in the
simulator and verifies the predicted disruption.

Run:  python examples/attacker_design_space.py
"""

from repro import Network, NoCConfig, PROFILES, TargetSpec, TaspTrojan
from repro.core.attacker import compare_targets, plan_attack
from repro.traffic import AppTraceSource, TraceReplaySource, record_trace
from repro.traffic.apps import traffic_weights


def main() -> None:
    cfg = NoCConfig()

    # -- reconnaissance: the victim's traffic structure ----------------------
    weights = traffic_weights(cfg, PROFILES["blackscholes"])
    victim_router = PROFILES["blackscholes"].primary_routers[0][0]
    victim_flows = [
        (s, d, w) for (s, d), w in weights.items() if d == victim_router
    ]
    print(f"victim: blackscholes, primary router {victim_router}; "
          f"{len(victim_flows)} flows toward it\n")

    # -- the design table -----------------------------------------------------
    plans = compare_targets(
        cfg,
        victim_flows,
        {
            "Dest(4b)": TargetSpec.for_dest(victim_router),
            "Dest+head(6b)": TargetSpec(dst=victim_router, head_only=True),
            "Full(42b)": TargetSpec.full(0, victim_router, 0, 0x1000_0000),
        },
        coverage_goal=1.0,
    )
    print(f"{'target':>14} {'implants':>9} {'coverage':>9} "
          f"{'area um2':>9} {'dyn uW':>7} {'vs router':>10} {'alias rate':>11}")
    for name, plan in plans.items():
        print(f"{name:>14} {plan.num_implants:9d} {plan.coverage:8.0%} "
              f"{plan.footprint.area_um2:9.1f} "
              f"{plan.footprint.dynamic_uw:7.2f} "
              f"{plan.footprint_vs_router:9.2%} "
              f"{plan.accidental_trigger_rate:11.5f}")

    chosen = plans["Dest+head(6b)"]
    print(f"\nchosen: Dest+head — {chosen.num_implants} implants on "
          + ", ".join(f"{r}->{d.name}" for r, d in chosen.links)
          + " (no payload aliasing on head gate + tiny footprint)")

    # -- execute the plan ------------------------------------------------------
    trace = record_trace(
        AppTraceSource(cfg, PROFILES["blackscholes"], seed=5, duration=600),
        cfg, 600, "bs",
    )
    net = Network(cfg)
    trojans = []
    for link in chosen.links:
        trojan = TaspTrojan(chosen.target)
        trojan.enable()
        net.attach_tamperer(link, trojan)
        trojans.append(trojan)
    net.set_traffic(TraceReplaySource(trace))
    net.run_until_drained(8000, stall_limit=2000)

    victim_ids = {
        p.pkt_id for p in trace.packets
        if cfg.router_of_core(p.dst_core) == victim_router
    }
    victim_done = sum(
        1 for pid in victim_ids if net.stats.packets[pid].complete
    )
    other_done = sum(
        1 for pid, rec in net.stats.packets.items()
        if pid not in victim_ids and rec.complete
    )
    other_total = len(net.stats.packets) - len(victim_ids)
    print(f"\nexecution: victim flows delivered "
          f"{victim_done}/{len(victim_ids)} "
          f"(predicted coverage {chosen.coverage:.0%}); "
          f"bystander flows {other_done}/{other_total} "
          f"(collateral from back pressure); "
          f"{sum(t.triggers for t in trojans)} triggers")


if __name__ == "__main__":
    main()
