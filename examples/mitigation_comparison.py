#!/usr/bin/env python3
"""Compare every defense the paper discusses on one workload.

The same Ferret-like trace is run against a NoC with 3 infected links
under five configurations:

  * no defense                    -> the flow starves (deadlock)
  * e2e obfuscation (Fort-NoCs)   -> still starves (header in clear)
  * TDM QoS (SurfNoC)             -> contained to the victim domain
  * rerouting (Ariadne, up*/down*)-> completes, but pays extra hops
  * threat detector + s2s L-Ob    -> completes with 1-3 cycle penalties

Run:  python examples/mitigation_comparison.py
"""

import dataclasses

from repro import (
    E2EObfuscator,
    Network,
    NoCConfig,
    PROFILES,
    TargetSpec,
    TaspTrojan,
    TdmConfig,
    TdmPolicy,
    TraceReplaySource,
    apply_rerouting,
    build_mitigated_network,
    updown_table,
)
from repro.experiments.common import (
    attach_trojans,
    make_app_trace,
    pick_infected_links,
)

MAX_CYCLES = 25000


def make_workload(cfg: NoCConfig):
    profile = dataclasses.replace(
        PROFILES["ferret"],
        injection_rate=PROFILES["ferret"].injection_rate * 4,
    )
    trace_profile = dataclasses.replace(profile, name="ferret")
    from repro.traffic.apps import AppTraceSource
    from repro.traffic.trace import record_trace

    source = AppTraceSource(cfg, trace_profile, seed=11, duration=400)
    return record_trace(source, cfg, 400, "ferret")


def report(name: str, net: Network, drained: bool, extra: str = "") -> None:
    s = net.stats
    lat = s.mean_total_latency()
    lat_text = f"{lat:7.1f}" if lat is not None else "      -"
    print(f"{name:28s} delivered {s.packets_completed:4d}/"
          f"{s.packets_injected:4d}  cycles {net.cycle:6d}  "
          f"mean latency {lat_text}  "
          f"{'OK' if drained else 'DEADLOCK'}  {extra}")


def main() -> None:
    cfg = NoCConfig()
    trace = make_workload(cfg)
    target = TargetSpec.for_dest(PROFILES["ferret"].primary_routers[0][0])
    infected = pick_infected_links(cfg, trace, 3, seed=2)
    print(f"workload: {len(trace)} ferret-like packets; "
          f"{len(infected)} infected links: "
          + ", ".join(f"{r}->{d.name}" for r, d in infected) + "\n")

    # 1. no defense
    net = Network(cfg)
    attach_trojans(net, infected, target)
    net.set_traffic(TraceReplaySource(trace))
    drained = net.run_until_drained(MAX_CYCLES, stall_limit=2000)
    report("no defense", net, drained)

    # 2. e2e obfuscation
    net = Network(cfg, e2e=E2EObfuscator())
    attach_trojans(net, infected, target)
    net.set_traffic(TraceReplaySource(trace))
    drained = net.run_until_drained(MAX_CYCLES, stall_limit=2000)
    report("e2e obfuscation (Fort-NoCs)", net, drained,
           "header fields stay cleartext")

    # 3. TDM QoS: put the victim flows in domain 1
    policy = TdmPolicy(TdmConfig(num_domains=2), cfg.num_vcs)
    net = Network(cfg, policy=policy)
    attach_trojans(net, infected, target)
    tdm_trace = dataclasses.replace(
        trace,
        packets=[
            dataclasses.replace(
                p,
                domain=p.src_core % 2,
                vc_class=policy.vc_for(p.src_core % 2, p.vc_class),
            )
            for p in trace.packets
        ],
    )
    net.set_traffic(TraceReplaySource(tdm_trace))
    drained = net.run_until_drained(MAX_CYCLES, stall_limit=2000)
    d0 = sum(1 for pid, r in net.stats.packets.items()
             if r.src_core % 2 == 0 and r.complete)
    d1 = sum(1 for pid, r in net.stats.packets.items()
             if r.src_core % 2 == 1 and r.complete)
    report("TDM QoS (SurfNoC)", net, drained,
           f"per-domain completions D1={d0} D2={d1}")

    # 4. rerouting
    net = Network(dataclasses.replace(cfg, routing="table"),
                  routing_table=updown_table(cfg, infected))
    apply_rerouting(net, infected)
    attach_trojans(net, infected, target)
    net.set_traffic(TraceReplaySource(trace))
    drained = net.run_until_drained(MAX_CYCLES, stall_limit=2000)
    report("rerouting (Ariadne)", net, drained,
           "infected links unused")

    # 5. the paper's mitigation
    net = build_mitigated_network(cfg)
    attach_trojans(net, infected, target)
    net.set_traffic(TraceReplaySource(trace))
    drained = net.run_until_drained(MAX_CYCLES, stall_limit=2000)
    verdicts = [
        net.receiver_of(key).detector.verdict.value for key in infected
    ]
    report("threat detector + s2s L-Ob", net, drained,
           f"link verdicts: {verdicts}")


if __name__ == "__main__":
    main()
