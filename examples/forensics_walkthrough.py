#!/usr/bin/env python3
"""Forensics walkthrough: how the threat detector tells fault sources
apart (paper Fig. 6 + §IV-B).

Three links are sabotaged three different ways — transient noise, a
stuck-at wire pair, and a TASP trojan.  The same traffic crosses all
three.  We then read each link's threat-detector verdict and its BIST
report, showing the paper's classification logic in action:

  * transient  -> faults resolve on plain retransmission;
  * permanent  -> BIST finds the stuck wires deterministically;
  * trojan     -> faults repeat per-flit and move position, yet BIST
                  says the wires are healthy: target-activated.

Run:  python examples/forensics_walkthrough.py
"""

from repro import (
    Direction,
    NoCConfig,
    Packet,
    PermanentFault,
    StuckAtKind,
    TargetSpec,
    TaspTrojan,
    TransientFaultModel,
    build_mitigated_network,
)
from repro.ecc import SECDED_72_64
from repro.util.rng import SeededStream

TRANSIENT_LINK = (0, Direction.EAST)   # row 0
PERMANENT_LINK = (4, Direction.EAST)   # row 1
TROJAN_LINK = (8, Direction.EAST)      # row 2


def main() -> None:
    cfg = NoCConfig()
    net = build_mitigated_network(cfg)

    # -- sabotage ----------------------------------------------------------
    # a realistic soft-error process: occasional flips, rarely double.
    # (At pathological rates — say 25% per traversal — repeated faults on
    # the same flit become common and the heuristic would, correctly,
    # escalate: the paper's classifier relies on repetitive per-flit
    # faults being "unlikely" for genuine transients.)
    net.attach_tamperer(
        TRANSIENT_LINK,
        TransientFaultModel(
            SECDED_72_64.codeword_bits, 0.04,
            SeededStream(3, "noise"), double_fraction=0.5,
        ),
    )
    # choose stuck polarities that disagree with typical traffic
    probe = Packet(pkt_id=0, src_core=16, dst_core=31).build_flits(cfg)[0]
    cw = SECDED_72_64.encode(probe.data)
    zeros = [i for i in range(72) if not cw >> i & 1]
    ones = [i for i in range(72) if cw >> i & 1]
    net.attach_tamperer(
        PERMANENT_LINK,
        PermanentFault(72, {zeros[0]: StuckAtKind.ONE,
                            ones[0]: StuckAtKind.ZERO}),
    )
    trojan = TaspTrojan(TargetSpec.for_dest(11))  # row-2 flows to router 11
    trojan.enable()
    net.attach_tamperer(TROJAN_LINK, trojan)

    # -- traffic across all three rows --------------------------------------
    pid = 0
    for row_src, row_dst in ((0, 15), (16, 31), (32, 47)):
        for i in range(12):
            net.add_packet(
                Packet(pkt_id=pid, src_core=row_src, dst_core=row_dst,
                       vc_class=i % 4, mem_addr=0x40 + i,
                       payload=[0xF00D]))
            pid += 1
    net.run_until_drained(10000, stall_limit=2500)

    # -- read the verdicts --------------------------------------------------
    print(f"{'link':>12} {'verdict':>10} {'faults':>7} {'BIST':>12} "
          f"{'ob success':>11}")
    for name, key in (("transient", TRANSIENT_LINK),
                      ("stuck-at", PERMANENT_LINK),
                      ("trojan", TROJAN_LINK)):
        det = net.receiver_of(key).detector
        bist = (det.bist_report.verdict.value
                if det.bist_report else "not run")
        print(f"{name:>12} {det.verdict.value:>10} "
              f"{det.faults_observed:7d} {bist:>12} "
              f"{det.obfuscation_successes:11d}")

    stuck = net.receiver_of(PERMANENT_LINK).detector.bist_report
    if stuck and stuck.permanent_positions:
        print(f"\nBIST located the stuck wires at positions "
              f"{list(stuck.permanent_positions)} "
              "(the physical fault map a repair/reroute policy needs).")
    print(f"delivered {net.stats.packets_completed}/"
          f"{net.stats.packets_injected} packets in {net.cycle} cycles "
          "despite all three fault sources.")


if __name__ == "__main__":
    main()
