#!/usr/bin/env python3
"""Chip-wide denial of service from a single trojan (paper Fig. 11).

A Blackscholes-like application runs across all 64 cores.  One TASP
trojan sits on the busiest link feeding the application's primary
router.  After a warm-up with the kill switch off, the attacker throws
the switch and we watch back pressure sweep the chip: retransmission
slots pin, credits exhaust, injection queues fill, and within ~1500
cycles most of the chip can no longer inject.

The example also shows why end-to-end (e2e) data scrambling does not
help: the trojan targets the destination field, which every router
needs in cleartext to route.

Run:  python examples/chip_wide_dos.py
"""

import dataclasses

from repro import (
    AppTraceSource,
    E2EObfuscator,
    Network,
    NoCConfig,
    PROFILES,
    TargetSpec,
    TaspTrojan,
)
from repro.experiments.common import xy_link_loads
from repro.traffic.trace import record_trace

WARMUP = 1000
WINDOW = 1500


def busiest_link(cfg: NoCConfig, seed: int = 0):
    profile = PROFILES["blackscholes"]
    trace = record_trace(
        AppTraceSource(cfg, profile, seed=seed, duration=300),
        cfg, 300, "probe",
    )
    loads = xy_link_loads(cfg, trace)
    primary = profile.primary_routers[0][0]
    return max((k for k in loads if k[0] != primary),
               key=lambda k: loads[k])


def main() -> None:
    cfg = NoCConfig()
    # run the app hot so congestion dynamics are visible
    profile = dataclasses.replace(
        PROFILES["blackscholes"],
        injection_rate=PROFILES["blackscholes"].injection_rate * 3.5,
    )

    net = Network(cfg, e2e=E2EObfuscator())  # e2e will NOT save us
    net.set_traffic(
        AppTraceSource(cfg, profile, seed=7, duration=WARMUP + WINDOW)
    )
    link = busiest_link(cfg)
    trojan = TaspTrojan(
        TargetSpec.for_dest(PROFILES["blackscholes"].primary_routers[0][0])
    )
    net.attach_tamperer(link, trojan)  # implanted, kill switch off

    print(f"trojan implanted on link {link[0]} -> {link[1].name}; "
          f"warming up {WARMUP} cycles ...")
    net.run(WARMUP)
    before = net.collect_sample()

    trojan.enable()
    print("kill switch thrown. watching back pressure:\n")
    print(f"{'cycles':>7} {'blocked routers':>16} {'cores all-full':>15} "
          f"{'inj-queue flits':>16} {'triggers':>9}")
    for step in range(6):
        net.run(WINDOW // 6)
        s = net.collect_sample()
        rel = net.cycle - WARMUP
        print(f"{rel:7d} {s.routers_with_blocked_port:13d}/16 "
              f"{s.routers_all_cores_full:12d}/16 "
              f"{s.injection_utilization:16d} {trojan.triggers:9d}")

    after = net.collect_sample()
    print(f"\nbefore attack: {before.routers_with_blocked_port}/16 routers "
          f"blocked, {before.routers_all_cores_full}/16 routers with all "
          "cores unable to inject")
    print(f"after  attack: {after.routers_with_blocked_port}/16 routers "
          f"blocked, {after.routers_all_cores_full}/16 routers with all "
          "cores unable to inject")
    from repro.experiments.viz import render_backpressure_map

    print()
    print(render_backpressure_map(net))
    print("\ne2e obfuscation was active the whole time — it cannot hide "
          "the routing fields a link trojan taps.")


if __name__ == "__main__":
    main()
