"""Typed, versioned simulation events with a non-blocking bus.

The event catalog (:data:`EVENT_KINDS`) names every lifecycle moment
the stack emits: flit injection/delivery, on-wire corruption and the
retransmissions it causes, detector verdicts, L-Ob engagements,
watchdog escalations, checkpoints and sentinel trips.  Each kind pins
the data keys it may carry, and every serialized event carries the
schema version (:data:`EVENT_SCHEMA_VERSION`), so a JSONL stream from
one build is validated — not guessed at — by another.

The :class:`EventBus` is deliberately boring: ``publish`` appends to
each subscriber's bounded queue and **never blocks or raises**.  A
full queue counts a drop on that subscription instead of stalling the
simulation — observability must not be able to change simulated
behaviour (the determinism proof in ``tests/test_obs_integration.py``
depends on it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

#: bump on incompatible changes to Event layout or kind semantics
#: (v2 adds the recovery loop: probe / reinstate / flap_damp / detect;
#: v3 adds attacker localization: localize)
EVENT_SCHEMA_VERSION = 3

#: older schema versions this build still reads (strict subsets of v3:
#: every v2 kind keeps its exact key set, so v2 streams validate as-is)
COMPATIBLE_SCHEMA_VERSIONS = (2, EVENT_SCHEMA_VERSION)

#: event kind -> data keys it may carry (all optional per event)
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # flit lifecycle
    "inject": ("pkt_id", "seq", "core"),
    "deliver": ("pkt_id", "seq", "core"),
    # the attack surface
    "corrupt": ("pkt_id", "seq", "link", "bits"),
    "retransmit": ("pkt_id", "seq", "link", "tag"),
    # defense decisions
    "verdict": ("link", "verdict"),
    "obfuscate": ("pkt_id", "seq", "link", "method"),
    "escalate": ("link", "stage", "pkt_id", "tag", "detail"),
    # network-level containment (coordinator decisions)
    "contain": ("link", "action", "detail"),
    "partition_risk": ("link", "detail"),
    # the recovery loop (probation / early detection)
    "probe": ("link", "detail"),
    "reinstate": ("link", "detail"),
    "flap_damp": ("link", "detail"),
    "detect": ("link", "router", "z", "detail"),
    # attacker localization (fused footprint estimates)
    "localize": ("link", "router", "score", "detail"),
    # engine lifecycle
    "checkpoint": ("checkpoint_cycle", "path"),
    "sentinel_trip": ("trip_kind", "message"),
}


class EventSchemaError(ValueError):
    """A serialized event does not match this build's schema."""


@dataclass(frozen=True, slots=True)
class Event:
    """One structured observation.

    ``run`` names the scenario that emitted it (one observability
    instance may span several simulations in one experiment); ``data``
    holds the kind-specific payload.
    """

    kind: str
    cycle: int
    run: str = ""
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat JSON form, schema version included."""
        out = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": self.kind,
            "cycle": self.cycle,
            "run": self.run,
        }
        out.update(self.data)
        return out


def validate_event_dict(payload: dict) -> None:
    """Raise :class:`EventSchemaError` unless ``payload`` is a valid
    serialized event for this build's schema."""
    if not isinstance(payload, dict):
        raise EventSchemaError(f"event must be an object, got {payload!r}")
    version = payload.get("v")
    if version not in COMPATIBLE_SCHEMA_VERSIONS:
        raise EventSchemaError(
            f"event schema version {version!r} not supported (this "
            f"build reads versions {COMPATIBLE_SCHEMA_VERSIONS})"
        )
    kind = payload.get("kind")
    allowed = EVENT_KINDS.get(kind)
    if allowed is None:
        raise EventSchemaError(f"unknown event kind {kind!r}")
    if not isinstance(payload.get("cycle"), int):
        raise EventSchemaError(f"{kind}: cycle must be an integer")
    if not isinstance(payload.get("run", ""), str):
        raise EventSchemaError(f"{kind}: run must be a string")
    extra = set(payload) - {"v", "kind", "cycle", "run"} - set(allowed)
    if extra:
        raise EventSchemaError(
            f"{kind}: unexpected data keys {sorted(extra)} "
            f"(allowed: {sorted(allowed)})"
        )


def event_from_dict(payload: dict) -> Event:
    """Parse and validate one serialized event."""
    validate_event_dict(payload)
    data = {
        key: value
        for key, value in payload.items()
        if key not in ("v", "kind", "cycle", "run")
    }
    return Event(
        kind=payload["kind"],
        cycle=payload["cycle"],
        run=payload.get("run", ""),
        data=data,
    )


class Subscription:
    """A bounded event queue owned by one consumer.

    The bus appends to it; the consumer :meth:`drain`\\ s it.  When the
    queue is full new events are *dropped and counted* — never blocked
    on — so a slow or absent consumer cannot stall the simulation.
    """

    __slots__ = ("capacity", "queue", "dropped", "received")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("subscription capacity must be positive")
        self.capacity = capacity
        self.queue: deque[Event] = deque()
        self.dropped = 0
        self.received = 0

    def __len__(self) -> int:
        return len(self.queue)

    def drain(self) -> list[Event]:
        """All queued events, removing them (oldest first).

        Implemented as a popleft loop rather than ``list()`` + ``clear``
        so a consumer on another thread (the serving layer pumps its
        subscription from a worker) never loses events appended between
        the copy and the clear — ``deque.popleft`` and ``append`` are
        individually atomic.
        """
        out: list[Event] = []
        queue = self.queue
        while True:
            try:
                out.append(queue.popleft())
            except IndexError:
                return out

    def peek(self) -> Iterator[Event]:
        return iter(self.queue)


class EventBus:
    """Fan-out of :class:`Event` values to bounded subscriptions."""

    def __init__(self) -> None:
        self.subscriptions: list[Subscription] = []
        self.published = 0

    @property
    def active(self) -> bool:
        """True when anyone is listening (hooks use this to skip the
        Event construction entirely on the disabled path)."""
        return bool(self.subscriptions)

    def subscribe(self, capacity: int = 200_000) -> Subscription:
        sub = Subscription(capacity)
        self.subscriptions.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        try:
            self.subscriptions.remove(sub)
        except ValueError:
            pass

    def publish(self, event: Event) -> None:
        self.published += 1
        for sub in self.subscriptions:
            if len(sub.queue) >= sub.capacity:
                sub.dropped += 1
            else:
                sub.queue.append(event)
                sub.received += 1

    def emit(
        self, kind: str, cycle: int, run: str = "", **data
    ) -> Optional[Event]:
        """Build and publish in one call; returns the event, or None
        when nobody is subscribed (nothing is built in that case)."""
        if not self.subscriptions:
            return None
        event = Event(kind=kind, cycle=cycle, run=run, data=data)
        self.publish(event)
        return event


def events_to_jsonable(events: Iterable[Event]) -> list[dict]:
    return [event.to_dict() for event in events]
