"""Wall-clock attribution to simulator phases.

``Network.step`` is one tight loop over a dozen phases (route compute,
VC allocation, switch/link traversal, ECC receive, defense monitors,
sampling...).  Knowing *which* phase the wall-clock goes to is the
prerequisite for every perf PR, so the profiler is wired directly into
the cycle loop: when :attr:`Network.profiler
<repro.noc.network.Network.profiler>` is set, each phase costs one
``perf_counter`` read; when it is ``None`` (the default) each phase
costs a single ``is not None`` test.

Activation is ambient so forked runner workers inherit it: the runner's
``--profile`` flag sets :data:`ENV_FLAG` and every simulation built in
that process attaches :func:`current`'s profiler.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Optional

ENV_FLAG = "REPRO_PROFILE"

#: canonical phase order for reports (phases outside this list sort last)
PHASE_ORDER = (
    "traffic",
    "credit",
    "ack",
    "ecc",
    "eject",
    "traverse",
    "arbitrate",
    "route",
    "inject",
    "defense",
    # monitor hooks that declare ``profile_phase`` get their own lap
    # (Network.step); the detector's localizer moves its share out of
    # "detect" via reattribute()
    "detect",
    "localize",
    "sample",
    "active",
    # event engine only: skip decisions + clock teleports (sim/sched.py)
    "wheel",
)


class PhaseProfiler:
    """Accumulates seconds and visit counts per named phase."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def lap(self, phase: str, t0: float) -> float:
        """Charge ``now - t0`` to ``phase``; returns ``now`` so the
        cycle loop can chain laps without extra clock reads."""
        now = perf_counter()
        self.seconds[phase] = self.seconds.get(phase, 0.0) + (now - t0)
        self.calls[phase] = self.calls.get(phase, 0) + 1
        return now

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    def reattribute(
        self, seconds: float, target: str, source: Optional[str] = None
    ) -> None:
        """Charge ``seconds`` to ``target``, debiting ``source``.

        For work nested inside another phase's lap (the localizer runs
        inside the detector's monitor slot): the enclosing lap will
        charge the whole interval to ``source`` later, so the debit
        here nets the nested share out without double-counting the
        total.  With ``source=None`` the seconds are simply added
        (nothing encloses the work — e.g. the serving pipeline driving
        the localizer outside the cycle loop).
        """
        self.seconds[target] = self.seconds.get(target, 0.0) + seconds
        self.calls[target] = self.calls.get(target, 0) + 1
        if source is not None:
            self.seconds[source] = self.seconds.get(source, 0.0) - seconds

    def total(self) -> float:
        return sum(self.seconds.values())

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()

    def _sorted_phases(self) -> list[str]:
        order = {name: i for i, name in enumerate(PHASE_ORDER)}
        return sorted(
            self.seconds,
            key=lambda name: (order.get(name, len(order)), name),
        )

    def to_jsonable(self) -> dict:
        return {
            "total_s": self.total(),
            "phases": {
                name: {
                    "seconds": self.seconds[name],
                    "calls": self.calls.get(name, 0),
                }
                for name in self._sorted_phases()
            },
        }

    def report(self) -> str:
        """Human-readable phase table, hottest phases called out by
        share of total."""
        total = self.total()
        if not total:
            return "profile: no phases recorded"
        lines = [f"profile: {total:.3f}s across simulator phases"]
        ranked = sorted(
            self.seconds.items(), key=lambda kv: kv[1], reverse=True
        )
        for name, seconds in ranked:
            share = 100.0 * seconds / total
            lines.append(
                f"  {name:10s} {seconds:8.3f}s  {share:5.1f}%  "
                f"({self.calls.get(name, 0)} laps)"
            )
        return "\n".join(lines)


_ACTIVE: Optional[PhaseProfiler] = None


def enable() -> PhaseProfiler:
    """Arm phase profiling process-wide; simulations built afterwards
    attach the returned profiler to their network."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = PhaseProfiler()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def current() -> Optional[PhaseProfiler]:
    """The process-wide profiler, creating it when :data:`ENV_FLAG` is
    set (forked runner workers inherit the flag, not the object)."""
    if _ACTIVE is None and os.environ.get(ENV_FLAG):
        return enable()
    return _ACTIVE
