"""Metrics registry: counters, gauges and histograms with label sets.

The registry is the numeric half of the observability layer (the event
bus in :mod:`repro.obs.events` is the other).  It is deliberately tiny
and Prometheus-shaped:

* a **family** is a metric name + kind + help string;
* a **child** is one labelled series inside a family (label values are
  always strings);
* handles (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) are
  cached per label set, so hot paths resolve their child once at
  attach time and then pay a single attribute increment per event.

When the registry is built with ``enabled=False`` every lookup returns
the shared :data:`NOOP_METRIC` — one allocation for the whole process,
so the disabled path costs a method call on a singleton and nothing
else (the perf guard in ``benchmarks/test_bench_obs.py`` pins it).

Everything here is plain picklable data: a registry attached to a
:class:`~repro.sim.engine.Simulation` survives
:mod:`repro.sim.checkpoint` snapshots unchanged.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Iterable, Optional

_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: default latency buckets (cycles) — powers of two cover the paper's
#: range from single-hop deliveries to deep back-pressure stalls
DEFAULT_BUCKETS = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class _NoopMetric:
    """Shared do-nothing handle returned by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    @property
    def value(self):
        return 0


NOOP_METRIC = _NoopMetric()


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value that may move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Iterable = DEFAULT_BUCKETS) -> None:
        bounds = sorted(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = tuple(bounds)
        # one slot per bound plus the implicit +Inf bucket
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect_right(self.buckets, value - 1)] += 1
        self.sum += value
        self.count += 1

    @property
    def value(self) -> dict:
        """Snapshot form: cumulative counts keyed by upper bound."""
        cumulative = {}
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            cumulative[str(bound)] = running
        cumulative["+Inf"] = self.count
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


class _Family:
    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        #: sorted label-item tuple -> metric handle
        self.series: dict[tuple, object] = {}


class MetricsRegistry:
    """A namespace of metric families.

    ``counter(name, **labels)`` / ``gauge`` / ``histogram`` return the
    (cached) child for that exact label set, creating family and child
    on first use.  Asking for an existing name with a different kind
    raises — a family's kind is part of its schema.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _child(
        self,
        name: str,
        kind: str,
        help: str,
        labels: dict,
        factory,
    ):
        if not self.enabled:
            return NOOP_METRIC
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            family = _Family(name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = family.series.get(key)
        if child is None:
            child = factory()
            family.series[key] = child
        return child

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._child(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------------
    def families(self) -> list[str]:
        return sorted(self._families)

    def get(self, name: str, **labels) -> Optional[object]:
        """The existing child for ``name``/``labels``, or None."""
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return family.series.get(key)

    def snapshot(self) -> dict:
        """Deterministic plain-data dump of every family.

        Families and label sets are emitted in sorted order, so two
        runs that counted the same things produce byte-identical JSON —
        the property the runner's embedded ``metrics`` section and the
        CI byte-compare jobs rely on.
        """
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.series):
                metric = family.series[key]
                series.append(
                    {"labels": dict(key), "value": metric.value}
                )
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def total(self, name: str) -> int:
        """Sum of a counter/gauge family across all label sets."""
        family = self._families.get(name)
        if family is None:
            return 0
        if family.kind == "histogram":
            return sum(m.count for m in family.series.values())
        return sum(m.value for m in family.series.values())
