"""Exporters and validators for the observability layer.

Three on-disk formats, all versioned:

* **events.jsonl** — one serialized :class:`~repro.obs.events.Event`
  per line, each carrying the schema version (``"v"``);
* **metrics.json** — the per-run manifest: the registry snapshot, the
  windowed back-pressure series, event-stream accounting, and (when
  profiling is armed) the phase wall-clock breakdown.  Everything but
  the optional profile section is deterministic — counts only — so
  identical runs produce identical manifests;
* **metrics.prom** — the registry in Prometheus text exposition
  format, for eyeballing or scraping into external tooling.

``python -m repro.obs.exporters validate PATH...`` re-reads any of
these (or a directory holding them) and fails loudly on schema
mismatch; the CI observability smoke job runs it against a full
``fig11`` export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TYPE_CHECKING

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    Event,
    event_from_dict,
    EventSchemaError,
)
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.instrument import Observability

#: bump on incompatible metrics.json layout changes
METRICS_FORMAT = 1


class ObsExportError(ValueError):
    """An export file failed validation."""


# ---------------------------------------------------------------------------
# JSONL event stream
# ---------------------------------------------------------------------------
def write_events_jsonl(path: "str | Path", events: Iterable[Event]) -> int:
    """Write one event per line; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_events_jsonl(path: "str | Path") -> list[Event]:
    """Parse and schema-validate a JSONL event stream."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObsExportError(
                    f"{path}:{lineno}: not JSON: {exc}"
                ) from exc
            try:
                events.append(event_from_dict(payload))
            except EventSchemaError as exc:
                raise ObsExportError(
                    f"{path}:{lineno}: {exc}"
                ) from exc
    return events


def validate_events_jsonl(path: "str | Path") -> int:
    """Number of valid events in the stream (raises on any bad one)."""
    return len(read_events_jsonl(path))


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _label_str(labels: dict, extra: dict = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines = []
    snapshot = registry.snapshot()
    for name, family in snapshot.items():
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for child in family["series"]:
            labels = child["labels"]
            value = child["value"]
            if family["kind"] == "histogram":
                for bound, count in value["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(labels, {'le': bound})} {count}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} {value['sum']}")
                lines.append(
                    f"{name}_count{_label_str(labels)} {value['count']}"
                )
            else:
                lines.append(f"{name}{_label_str(labels)} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# metrics.json manifest
# ---------------------------------------------------------------------------
def disabled_manifest() -> dict:
    """The metrics section of a run with observability off."""
    return {"format": METRICS_FORMAT, "enabled": False}


def build_manifest(obs: "Observability") -> dict:
    """The per-run metrics.json payload for one observability bundle."""
    from repro.obs import profiler

    if not obs.config.enabled:
        return disabled_manifest()
    sub = obs.export_sub
    manifest = {
        "format": METRICS_FORMAT,
        "enabled": True,
        "event_schema_version": EVENT_SCHEMA_VERSION,
        "runs": list(obs.runs),
        "metrics": obs.registry.snapshot(),
        "events": {
            "published": obs.bus.published,
            "queued": len(sub) if sub is not None else 0,
            "dropped": sub.dropped if sub is not None else 0,
        },
        "series": (
            obs.series.to_jsonable() if obs.series is not None else None
        ),
    }
    prof = profiler.current()
    if prof is not None and prof.seconds:
        manifest["profile"] = prof.to_jsonable()
    return manifest


def write_metrics_json(path: "str | Path", manifest: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def validate_metrics_json(path: "str | Path") -> dict:
    """Parse and structurally validate a metrics.json manifest."""
    path = Path(path)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObsExportError(f"{path}: unreadable: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ObsExportError(f"{path}: manifest must be an object")
    if manifest.get("format") != METRICS_FORMAT:
        raise ObsExportError(
            f"{path}: metrics format {manifest.get('format')!r} not "
            f"supported (this build reads format {METRICS_FORMAT})"
        )
    if not isinstance(manifest.get("enabled"), bool):
        raise ObsExportError(f"{path}: 'enabled' must be a boolean")
    if not manifest["enabled"]:
        return manifest
    metrics = manifest.get("metrics")
    if not isinstance(metrics, dict):
        raise ObsExportError(f"{path}: 'metrics' must be an object")
    for name, family in metrics.items():
        if not isinstance(family, dict) or family.get("kind") not in (
            "counter", "gauge", "histogram",
        ):
            raise ObsExportError(
                f"{path}: family {name!r} has no valid kind"
            )
        series = family.get("series")
        if not isinstance(series, list):
            raise ObsExportError(
                f"{path}: family {name!r} series must be a list"
            )
        for child in series:
            if (
                not isinstance(child, dict)
                or not isinstance(child.get("labels"), dict)
                or "value" not in child
            ):
                raise ObsExportError(
                    f"{path}: family {name!r} has a malformed child"
                )
    events = manifest.get("events")
    if not isinstance(events, dict) or not all(
        isinstance(events.get(key), int)
        for key in ("published", "queued", "dropped")
    ):
        raise ObsExportError(
            f"{path}: 'events' must carry integer "
            "published/queued/dropped counts"
        )
    series = manifest.get("series")
    if series is not None:
        if not isinstance(series, dict) or not isinstance(
            series.get("points"), list
        ):
            raise ObsExportError(
                f"{path}: 'series' must be a windowed-series object"
            )
    return manifest


# ---------------------------------------------------------------------------
# one-call export
# ---------------------------------------------------------------------------
def export_all(obs: "Observability") -> dict:
    """Write every export path configured on the bundle's ObsConfig;
    returns the manifest (built even when no path is configured)."""
    config = obs.config
    if config.events_jsonl and obs.export_sub is not None:
        write_events_jsonl(config.events_jsonl, obs.export_sub.drain())
    manifest = build_manifest(obs)
    if config.metrics_json:
        write_metrics_json(config.metrics_json, manifest)
    if config.prometheus:
        path = Path(config.prometheus)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(prometheus_text(obs.registry))
    return manifest


# ---------------------------------------------------------------------------
# command line
# ---------------------------------------------------------------------------
def _export_files(path: Path) -> list[Path]:
    """Every export file named by ``path``: itself when it is a file,
    else every ``*.jsonl`` / ``*.json`` anywhere under the directory
    (an ``--obs-dir`` tree holds one subdirectory per experiment)."""
    if not path.is_dir():
        return [path]
    return sorted(
        candidate
        for candidate in path.rglob("*")
        if candidate.is_file()
        and candidate.suffix in (".jsonl", ".json")
    )


def _validate_file(path: Path) -> str:
    """Validate one export file; returns its human-readable status."""
    if path.suffix == ".jsonl":
        count = validate_events_jsonl(path)
        return f"{path}: {count} events, schema v{EVENT_SCHEMA_VERSION}"
    manifest = validate_metrics_json(path)
    families = len(manifest.get("metrics", {}))
    return (
        f"{path}: metrics format {manifest['format']}, "
        f"{families} metric families, "
        f"enabled={manifest['enabled']}"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.exporters",
        description="validate observability export files",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser(
        "validate",
        help="schema-check events.jsonl / metrics.json files "
        "(or directories of them, recursively)",
    )
    validate.add_argument("paths", nargs="+", help="files or directories")
    args = parser.parse_args(argv)

    checked = 0
    errors: list[tuple[Path, Exception]] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files = _export_files(path)
            if not files:
                errors.append(
                    (
                        path,
                        ObsExportError(
                            f"{path}: no .jsonl/.json export files found"
                        ),
                    )
                )
                continue
        else:
            files = [path]
        # every file is validated — one bad export does not hide the
        # state of the rest of the tree
        for file in files:
            checked += 1
            try:
                print(_validate_file(file))
            except (ObsExportError, OSError) as exc:
                errors.append((file, exc))
    if errors:
        print(f"\n{checked} files checked, {len(errors)} invalid:")
        for file, exc in errors:
            print(f"INVALID: {exc}")
        return 1
    print(f"\n{checked} files checked, all valid")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
