"""Cycle-windowed time series.

Two types live here because they are the temporal half of the metrics
story:

* :class:`WindowedSeries` — named channels rolled up per cycle window
  (``sum``/``max``/``mean``/``last``).  This is the generalization the
  back-pressure figures need: the per-router / per-link occupancy
  channels the collector feeds it form exactly the spatial heatmap
  series that detector research (DL2Fence-style) consumes.
* :class:`SampleSeries` — the list type behind
  :attr:`repro.noc.stats.NetworkStats.samples`.  It **is a list** (so
  every existing consumer, ``to_jsonable`` path and report byte stays
  identical) but additionally records the sampling cadence and offers
  channel extraction and windowed rollups over the stored
  :class:`~repro.noc.stats.Sample` points.

This module is stdlib-only on purpose: ``repro.noc.stats`` imports it,
so it must sit below the whole simulator in the layering.
"""

from __future__ import annotations

from typing import Optional

_AGGS = ("last", "sum", "max", "min", "mean")


class WindowedSeries:
    """Per-window rollups of named numeric channels.

    ``observe(cycle, channel, value)`` folds the value into the window
    containing ``cycle`` (windows are aligned: ``[0, w), [w, 2w), ...``).
    Observations must arrive in non-decreasing cycle order (the cycle
    loop guarantees that); a finished window is flushed to
    :attr:`points` as ``(window_start, {channel: rolled_up_value})``.
    """

    __slots__ = ("window", "agg", "points", "_start", "_acc", "_counts")

    def __init__(self, window: int, agg: str = "last") -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if agg not in _AGGS:
            raise ValueError(f"unknown agg {agg!r} (choose from {_AGGS})")
        self.window = window
        self.agg = agg
        self.points: list[tuple[int, dict]] = []
        self._start: Optional[int] = None
        self._acc: dict = {}
        self._counts: dict = {}

    def observe(self, cycle: int, channel: str, value) -> None:
        start = cycle - cycle % self.window
        if self._start is None:
            self._start = start
        elif start != self._start:
            if start < self._start:
                raise ValueError(
                    f"cycle {cycle} is before the open window "
                    f"[{self._start}, {self._start + self.window})"
                )
            self.flush()
            self._start = start
        agg = self.agg
        acc = self._acc
        if channel not in acc:
            acc[channel] = value
            if agg == "mean":
                self._counts[channel] = 1
            return
        if agg == "last":
            acc[channel] = value
        elif agg == "sum":
            acc[channel] += value
        elif agg == "max":
            if value > acc[channel]:
                acc[channel] = value
        elif agg == "min":
            if value < acc[channel]:
                acc[channel] = value
        else:  # mean
            acc[channel] += value
            self._counts[channel] += 1

    def flush(self) -> None:
        """Close the open window (if any) into :attr:`points`."""
        if self._start is None or not self._acc:
            self._start = None
            self._acc = {}
            self._counts = {}
            return
        if self.agg == "mean":
            values = {
                channel: total / self._counts[channel]
                for channel, total in self._acc.items()
            }
        else:
            values = dict(self._acc)
        self.points.append((self._start, values))
        self._start = None
        self._acc = {}
        self._counts = {}

    # ------------------------------------------------------------------
    def channels(self, prefix: str = "") -> list[str]:
        seen: dict[str, None] = {}
        for _, values in self.points:
            for channel in values:
                if channel.startswith(prefix):
                    seen[channel] = None
        return sorted(seen)

    def channel(self, name: str) -> list[tuple[int, object]]:
        """(window_start, value) pairs for one channel (windows where
        the channel was silent are simply absent)."""
        return [
            (start, values[name])
            for start, values in self.points
            if name in values
        ]

    def to_jsonable(self) -> dict:
        """Deterministic plain-data form for the metrics manifest."""
        return {
            "window": self.window,
            "agg": self.agg,
            "points": [
                {
                    "start": start,
                    "values": {k: values[k] for k in sorted(values)},
                }
                for start, values in self.points
            ],
        }


class SampleSeries(list):
    """``NetworkStats.samples``: a plain list of Sample points plus
    cadence metadata and rollup helpers.

    Being a ``list`` subclass keeps every historical consumer — index
    access, ``len``, iteration, ``to_jsonable``'s list path — and the
    serialized report bytes exactly as they were.  ``interval`` records
    the cadence the network sampled at (``None`` until the network sets
    it), so downstream analysis does not have to reverse-engineer it
    from cycle gaps.
    """

    #: instance attribute on a list subclass (no __slots__: list
    #: subclasses with instance dicts pickle fine via __reduce__)
    def __init__(self, iterable=(), interval: Optional[int] = None):
        super().__init__(iterable)
        self.interval = interval

    def __reduce__(self):
        return (type(self), (list(self), self.interval))

    def channel(self, attr: str) -> list[tuple[int, int]]:
        """(cycle, value) pairs of one Sample field."""
        return [(s.cycle, getattr(s, attr)) for s in self]

    def rollup(
        self, window: int, attrs: tuple[str, ...], agg: str = "max"
    ) -> WindowedSeries:
        """Roll the stored samples up into a :class:`WindowedSeries`
        with one channel per requested Sample field."""
        series = WindowedSeries(window, agg=agg)
        for sample in self:
            for attr in attrs:
                series.observe(sample.cycle, attr, getattr(sample, attr))
        series.flush()
        return series
