"""Scrape live simulator components into a metrics registry.

The simulator's components already count everything the paper's
evaluation needs — ECC receivers, threat detectors, L-Ob encoders,
links, the watchdog ladder, :class:`~repro.noc.stats.NetworkStats`.
The collectors here turn that component state into labelled registry
series with one naming scheme, so exporters, the runner's ``metrics``
section and :func:`repro.core.telemetry.security_report` all read the
same numbers from the same place.

Link labels use the same ``"<router>-><DIRECTION>"`` spelling as
:mod:`repro.experiments.export` flattens link-key dict keys to, and
:func:`parse_link_label` inverts it — so a report reconstructed from a
metrics snapshot round-trips the original keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.noc.topology import Direction, LinkKey
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.network import Network


def link_label(key: LinkKey) -> str:
    return f"{key[0]}->{key[1].name}"


def parse_link_label(label: str) -> LinkKey:
    router, _, direction = label.partition("->")
    return (int(router), Direction[direction])


def _run_labels(run: Optional[str]) -> dict:
    return {"run": run} if run is not None else {}


# ---------------------------------------------------------------------------
# security posture: the single source of truth behind security_report()
# ---------------------------------------------------------------------------
def collect_security(
    network: "Network",
    registry: Optional[MetricsRegistry] = None,
    run: Optional[str] = None,
) -> MetricsRegistry:
    """Scrape detector / L-Ob / link state of a mitigated network.

    Raises ``ValueError`` when the network has no threat detectors
    (built without :func:`repro.core.build_mitigated_network`) — the
    same contract :func:`repro.core.telemetry.security_report` has
    always had, because that adapter now reads these series.
    """
    from repro.core.mitigation import DetectingReceiver

    registry = registry if registry is not None else MetricsRegistry()
    extra = _run_labels(run)
    saw_detector = False
    for key, link in network.links.items():
        receiver = network.receiver_of(key)
        if not isinstance(receiver, DetectingReceiver):
            continue
        saw_detector = True
        label = link_label(key)
        detector = receiver.detector
        registry.gauge(
            "detector_faults_observed",
            "faults the link's threat detector observed",
            link=label, **extra,
        ).set(detector.faults_observed)
        registry.gauge(
            "detector_obfuscation_successes",
            "retransmissions that succeeded because L-Ob was engaged",
            link=label, **extra,
        ).set(detector.obfuscation_successes)
        registry.gauge(
            "detector_bist_scans",
            "BIST scans the detector requested on the link",
            link=label, **extra,
        ).set(detector.bist_scans)
        registry.gauge(
            "detector_transient_resolutions",
            "faults resolved by plain retransmission (transient noise)",
            link=label, **extra,
        ).set(detector.transient_resolutions)
        registry.gauge(
            "detector_verdict",
            "1 for the link's current verdict label",
            link=label, verdict=detector.verdict.value, **extra,
        ).set(1)
        registry.gauge(
            "link_corrupted_traversals",
            "ground-truth corrupted traversals on the wire",
            link=label, **extra,
        ).set(link.corrupted_traversals)
        registry.gauge(
            "link_traversals",
            "codewords launched onto the link",
            link=label, **extra,
        ).set(link.traversals)
        lob = network.output_port_of(key).lob
        if lob is not None:
            for method, count in lob.obfuscated_sends.items():
                registry.gauge(
                    "lob_obfuscated_sends",
                    "obfuscated launches per L-Ob method",
                    link=label, method=method.value, **extra,
                ).set(count)
            registry.gauge(
                "lob_preemptive_sends",
                "launches obfuscated preemptively (suspicious link)",
                link=label, **extra,
            ).set(lob.preemptive_sends)
    if not saw_detector:
        raise ValueError(
            "network has no threat detectors; build it with "
            "build_mitigated_network()"
        )
    return registry


# ---------------------------------------------------------------------------
# receive pipeline / ECC / retransmission state (any network)
# ---------------------------------------------------------------------------
def collect_links(
    network: "Network",
    registry: MetricsRegistry,
    run: Optional[str] = None,
) -> None:
    """Per-link receive-pipeline and retransmission-buffer series."""
    extra = _run_labels(run)
    for key, link in network.links.items():
        label = link_label(key)
        receiver = network.receiver_of(key)
        values = {
            "ecc_flits_accepted": receiver.flits_accepted,
            "ecc_flits_corrected": receiver.flits_corrected,
            "ecc_faults_detected": receiver.faults_detected,
            "ecc_nacks_sent": receiver.nacks_sent,
            "ecc_deob_stall_cycles": receiver.deob_stall_cycles,
            "ecc_flits_discarded": receiver.flits_discarded,
        }
        for name, value in values.items():
            if value:
                registry.gauge(name, link=label, **extra).set(value)
        occupancy = network.output_port_of(key).retrans.occupancy
        if occupancy:
            registry.gauge(
                "retrans_occupancy",
                "retransmission-buffer slots held (back-pressure)",
                link=label, **extra,
            ).set(occupancy)
        if link.disabled:
            registry.gauge(
                "link_disabled", link=label, **extra
            ).set(1)


def collect_stats(
    stats,
    registry: MetricsRegistry,
    run: Optional[str] = None,
) -> None:
    """Chip-wide NetworkStats aggregates as ``stats_*`` gauges, plus
    the packet latency histogram over completed packets."""
    extra = _run_labels(run)
    for name, value in stats.summary().items():
        if value is None:
            continue
        registry.gauge(f"stats_{name}", **extra).set(value)
    latency = registry.histogram(
        "packet_total_latency_cycles",
        "creation-to-ejection latency of completed packets",
        **extra,
    )
    for record in stats.completed_records():
        latency.observe(record.total_latency)


def collect_watchdog(
    watchdog,
    registry: MetricsRegistry,
    run: Optional[str] = None,
) -> None:
    if watchdog is None:
        return
    extra = _run_labels(run)
    registry.gauge(
        "watchdog_backoffs", "escalation ladder: backoffs applied",
        **extra,
    ).set(watchdog.backoffs_applied)
    registry.gauge(
        "watchdog_obfuscations", "escalation ladder: forced L-Ob",
        **extra,
    ).set(watchdog.obfuscations_forced)
    registry.gauge(
        "watchdog_drops", "escalation ladder: packets dropped",
        **extra,
    ).set(watchdog.packets_dropped)
    registry.gauge(
        "watchdog_condemned", "escalation ladder: links condemned",
        **extra,
    ).set(watchdog.links_condemned)


def collect_containment(
    containment,
    registry: MetricsRegistry,
    run: Optional[str] = None,
) -> None:
    """Containment coordinator posture: reroutes, refusals, seals,
    quarantines, gate pressure and per-link time-to-contain."""
    if containment is None:
        return
    extra = _run_labels(run)
    gauges = {
        "containment_links_rerouted": containment.links_rerouted,
        "containment_links_refused": containment.links_refused,
        "containment_links_sealed": containment.links_sealed,
        "containment_quarantines": containment.quarantines,
        "containment_actions_allowed": containment.actions_allowed,
        "containment_actions_denied": containment.actions_denied,
        "containment_partition_risks": len(containment.partition_risks),
    }
    for name, value in gauges.items():
        registry.gauge(name, **extra).set(value)
    for key, cycles in containment.time_to_contain.items():
        registry.gauge(
            "containment_time_to_contain",
            "cycles from a link's first ladder action to containment",
            link=link_label(key), **extra,
        ).set(cycles)


def collect_trojans(
    trojans,
    registry: MetricsRegistry,
    run: Optional[str] = None,
) -> None:
    """Ground-truth attack-side counters (evaluation only: a real chip
    cannot read its trojan's internals)."""
    extra = _run_labels(run)
    for index, trojan in enumerate(trojans):
        labels = {"trojan": str(index), **extra}
        registry.gauge(
            "trojan_flits_inspected",
            "flits the trojan's comparator examined",
            **labels,
        ).set(trojan.flits_inspected)
        registry.gauge(
            "trojan_triggers", "payload activations", **labels
        ).set(trojan.triggers)
        registry.gauge(
            "trojan_faults_injected", "codewords tampered", **labels
        ).set(trojan.faults_injected)


def collect_simulation(sim, registry: MetricsRegistry) -> None:
    """Final scrape of one finished (or failed) simulation."""
    run = sim.scenario.name
    net = sim.network
    registry.gauge("sim_cycles", "network clock at scrape", run=run).set(
        net.cycle
    )
    collect_stats(net.stats, registry, run=run)
    collect_links(net, registry, run=run)
    collect_watchdog(sim.watchdog, registry, run=run)
    collect_containment(
        getattr(sim, "containment", None), registry, run=run
    )
    collect_trojans(sim.trojans, registry, run=run)
    if sim.sentinel is not None:
        registry.gauge(
            "sentinel_checks", "sentinel audit rounds", run=run
        ).set(sim.sentinel.checks)
    try:
        collect_security(net, registry, run=run)
    except ValueError:
        pass  # baseline network: no detectors to scrape


# ---------------------------------------------------------------------------
# chaos campaigns
# ---------------------------------------------------------------------------
def campaign_metrics(report) -> dict:
    """A deterministic metrics snapshot derived from a
    :class:`~repro.resilience.campaign.CampaignReport`.

    Counter-valued only (no wall-clock), so two identical campaign runs
    embed byte-identical metrics — the CI resume job byte-compares the
    chaos experiment's JSON output.
    """
    registry = MetricsRegistry()
    run = report.name
    gauges = {
        "campaign_cycles": report.cycles,
        "campaign_epochs": report.epochs,
        "campaign_deadlocked": int(report.deadlocked),
        "campaign_packets_offered": report.packets_offered,
        "campaign_packets_delivered": report.packets_delivered,
        "campaign_packets_failed": report.packets_failed,
        "campaign_resubmissions": report.resubmissions,
        "campaign_packets_dropped": report.packets_dropped,
        "campaign_flits_degraded": report.flits_degraded,
        "campaign_backoffs": report.backoffs,
        "campaign_obfuscations_forced": report.obfuscations_forced,
        "campaign_faults_injected": report.faults_injected,
        "campaign_corrupted_traversals": report.corrupted_traversals,
        "campaign_invariant_checks": report.invariant_checks,
        "campaign_violations": len(report.violations),
    }
    for name, value in gauges.items():
        registry.gauge(name, run=run).set(value)
    for key in report.condemned_links:
        registry.gauge(
            "campaign_condemned_link", run=run, link=link_label(key)
        ).set(1)
    return registry.snapshot()
