"""Wiring: attach the observability layer to live simulations.

An :class:`Observability` bundles one metrics registry, one event bus
and one windowed back-pressure series, and :meth:`~Observability.attach`
threads them through a :class:`~repro.sim.engine.Simulation` using only
the network's existing public hook points — injection/ejection hooks,
link launch/ack hooks, the monitor list and the watchdog's event hooks.
It observes; it never mutates simulated state, so an observed run is
byte-identical to an unobserved one.

Hooks are module-level classes (not closures) so an instrumented
simulation still pickles cleanly through :mod:`repro.sim.checkpoint`
— the same rule :class:`repro.noc.tracing.FlitTracer` follows.

One :class:`Observability` may span several simulations (experiments
like fig11 run an attacked and a clean network); every emitted series
and event carries the scenario name as its ``run`` label.  For that
whole-experiment case the **ambient** instance exists: the runner's
``--obs-dir`` flag arms it per experiment via :func:`enable_ambient`,
and every :class:`~repro.sim.engine.Simulation` built while it is armed
attaches automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.obs.events import EventBus, Subscription
from repro.obs.registry import MetricsRegistry
from repro.obs.series import WindowedSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.network import Network
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class ObsConfig:
    """What to observe and where to export it.

    ``enabled=False`` turns the whole layer off: :meth:`Observability.attach`
    then attaches nothing, so the per-cycle cost is literally zero.
    """

    enabled: bool = True
    #: collect metrics (counters/gauges/histograms)
    metrics: bool = True
    #: publish structured events to the export subscription
    events: bool = True
    #: back-pressure series window in cycles (0 disables the series)
    window: int = 64
    #: export subscription bound (overflow drops events, never blocks)
    queue_capacity: int = 200_000
    #: JSONL event stream path (None: no file export)
    events_jsonl: Optional[str] = None
    #: metrics.json manifest path (None: no file export)
    metrics_json: Optional[str] = None
    #: Prometheus-style text dump path (None: no file export)
    prometheus: Optional[str] = None


# ---------------------------------------------------------------------------
# picklable hook classes (one per hook point)
# ---------------------------------------------------------------------------
class _InjectHook:
    """``network.injection_hooks`` member: flit entered the NoC."""

    def __init__(self, obs: "Observability", run: str):
        self.obs = obs
        self.counter = obs.registry.counter(
            "noc_flits_injected", "flits accepted into the network",
            run=run,
        )
        self.run = run

    def __call__(self, flit, cycle: int) -> None:
        self.counter.inc()
        bus = self.obs.bus
        if bus.subscriptions and self.obs.config.events:
            bus.emit(
                "inject", cycle, self.run,
                pkt_id=flit.pkt_id, seq=flit.seq, core=flit.src_core,
            )


class _EjectHook:
    """``network.ejection_hooks`` member: flit delivered to a core."""

    def __init__(self, obs: "Observability", run: str):
        self.obs = obs
        self.counter = obs.registry.counter(
            "noc_flits_ejected", "flits delivered to cores", run=run
        )
        self.run = run

    def __call__(self, flit, cycle: int, core: int) -> None:
        self.counter.inc()
        bus = self.obs.bus
        if bus.subscriptions and self.obs.config.events:
            bus.emit(
                "deliver", cycle, self.run,
                pkt_id=flit.pkt_id, seq=flit.seq, core=core,
            )


class _LaunchHook:
    """``link.launch_hooks`` member: corruption + L-Ob on the wire."""

    def __init__(self, obs: "Observability", run: str, label: str):
        self.obs = obs
        self.run = run
        self.label = label
        self.corrupted = obs.registry.counter(
            "link_corrupted", "launches a tamperer corrupted",
            run=run, link=label,
        )
        self.obfuscated: dict = {}

    def __call__(self, tx, cycle: int, original: int) -> None:
        obs = self.obs
        events = obs.config.events and obs.bus.subscriptions
        if tx.codeword != original:
            self.corrupted.inc()
            if events:
                obs.bus.emit(
                    "corrupt", cycle, self.run,
                    pkt_id=tx.flit.pkt_id, seq=tx.flit.seq,
                    link=self.label,
                    bits=(tx.codeword ^ original).bit_count(),
                )
        ob = tx.ob
        if ob is not None:
            counter = self.obfuscated.get(ob.method)
            if counter is None:
                counter = obs.registry.counter(
                    "lob_obfuscated_launches",
                    "launches sent through an L-Ob method",
                    run=self.run, link=self.label,
                    method=ob.method.value,
                )
                self.obfuscated[ob.method] = counter
            counter.inc()
            if events:
                obs.bus.emit(
                    "obfuscate", cycle, self.run,
                    pkt_id=tx.flit.pkt_id, seq=tx.flit.seq,
                    link=self.label, method=ob.method.value,
                )


class _AckHook:
    """``link.ack_hooks`` member: NACKs mean a retransmission."""

    def __init__(self, obs: "Observability", run: str, label: str):
        self.obs = obs
        self.run = run
        self.label = label
        self.nacks = obs.registry.counter(
            "link_retransmissions", "NACKed transmissions (will retry)",
            run=run, link=label,
        )

    def __call__(self, ack, cycle: int, flit) -> None:
        if ack.ok:
            return
        self.nacks.inc()
        obs = self.obs
        if obs.config.events and obs.bus.subscriptions:
            obs.bus.emit(
                "retransmit", cycle, self.run,
                pkt_id=flit.pkt_id if flit is not None else None,
                seq=flit.seq if flit is not None else None,
                link=self.label, tag=ack.tag,
            )


class _EscalateHook:
    """``watchdog.event_hooks`` member: one ladder rung taken."""

    def __init__(self, obs: "Observability", run: str):
        self.obs = obs
        self.run = run

    def __call__(self, event) -> None:
        from repro.obs.collectors import link_label

        obs = self.obs
        obs.registry.counter(
            "watchdog_escalations", "ladder rungs taken",
            run=self.run, stage=event.stage.value,
        ).inc()
        if obs.config.events and obs.bus.subscriptions:
            obs.bus.emit(
                "escalate", event.cycle, self.run,
                link=link_label(event.link), stage=event.stage.value,
                pkt_id=event.pkt_id, tag=event.tag, detail=event.detail,
            )


class _ContainHook:
    """``containment.event_hooks`` member: one coordinator decision."""

    def __init__(self, obs: "Observability", run: str):
        self.obs = obs
        self.run = run

    def __call__(self, event) -> None:
        from repro.obs.collectors import link_label

        obs = self.obs
        obs.registry.counter(
            "containment_events", "coordinator decisions taken",
            run=self.run, action=event.kind,
        ).inc()
        if obs.config.events and obs.bus.subscriptions:
            label = (
                link_label(event.link) if event.link is not None else None
            )
            if event.kind in ("partition_risk", "probe", "reinstate",
                              "flap_damp"):
                # first-class bus kinds: the recovery loop's stream is
                # what the reinstate experiment and dashboards consume
                obs.bus.emit(
                    event.kind, event.cycle, self.run,
                    link=label, detail=event.detail,
                )
            else:
                obs.bus.emit(
                    "contain", event.cycle, self.run,
                    link=label, action=event.kind, detail=event.detail,
                )


class _DetectHook:
    """``detector.event_hooks`` member: one statistical flag raised."""

    def __init__(self, obs: "Observability", run: str):
        self.obs = obs
        self.run = run

    def __call__(self, event) -> None:
        from repro.obs.collectors import link_label

        obs = self.obs
        obs.registry.counter(
            "detector_flags", "traffic-statistics channels flagged",
            run=self.run, kind=event.kind,
        ).inc()
        if obs.config.events and obs.bus.subscriptions:
            obs.bus.emit(
                "detect", event.cycle, self.run,
                link=(
                    link_label(event.link)
                    if event.link is not None
                    else None
                ),
                router=event.router, z=event.z, detail=event.detail,
            )


class _LocalizeHook:
    """``localizer.event_hooks`` member: one attacker placed."""

    def __init__(self, obs: "Observability", run: str):
        self.obs = obs
        self.run = run

    def __call__(self, event) -> None:
        from repro.obs.collectors import link_label

        obs = self.obs
        obs.registry.counter(
            "localize_estimates", "attacker placements named",
            run=self.run,
        ).inc()
        if obs.config.events and obs.bus.subscriptions:
            obs.bus.emit(
                "localize", event.cycle, self.run,
                link=link_label(event.link), router=event.router,
                score=event.score, detail=event.detail,
            )


class _WindowCollector:
    """``network.monitors`` member: the cycle-windowed scrape.

    At every window boundary it folds chip-wide and per-component
    back-pressure into the windowed series (the Fig. 11/12 heatmap
    substrate) and turns detector verdict *changes* into ``verdict``
    events.  Pure observer: reads only.
    """

    def __init__(self, obs: "Observability", run: str, window: int):
        self.obs = obs
        self.run = run
        self.window = window
        self._verdicts: dict = {}

    def next_event_cycle(self, network: "Network", cycle: int):
        """Event-engine contract: scrapes happen only at window
        boundaries, so only those cycles are demanded."""
        if cycle % self.window == 0:
            return cycle
        return (cycle // self.window + 1) * self.window

    def on_cycle(self, network: "Network", cycle: int) -> None:
        if cycle % self.window:
            return
        from repro.obs.collectors import link_label

        obs = self.obs
        run = self.run
        series = obs.series
        if series is not None:
            input_util = 0
            for router in network.routers:
                occupancy = router.link_input_occupancy()
                input_util += occupancy
                if occupancy:
                    series.observe(
                        cycle, f"{run}/router:{router.id}", occupancy
                    )
            series.observe(cycle, f"{run}/input_utilization", input_util)
            series.observe(
                cycle,
                f"{run}/output_utilization",
                sum(r.output_occupancy() for r in network.routers),
            )
            series.observe(
                cycle,
                f"{run}/injection_utilization",
                sum(r.injection_occupancy() for r in network.routers),
            )
            series.observe(
                cycle,
                f"{run}/routers_blocked",
                sum(
                    1
                    for r in network.routers
                    if r.any_output_blocked(cycle)
                ),
            )
            for key in network.links:
                occupancy = network.output_port_of(key).retrans.occupancy
                if occupancy:
                    series.observe(
                        cycle,
                        f"{run}/retrans:{link_label(key)}",
                        occupancy,
                    )
        # verdict transitions (mitigated networks only)
        for key, link in network.links.items():
            receiver = network.receiver_of(key)
            detector = getattr(receiver, "detector", None)
            if detector is None:
                continue
            verdict = detector.verdict
            if self._verdicts.get(key) is verdict:
                continue
            self._verdicts[key] = verdict
            from repro.core.detector import LinkVerdict

            if verdict is LinkVerdict.UNKNOWN:
                continue
            obs.registry.counter(
                "detector_verdict_changes",
                "detector verdict transitions",
                run=run, verdict=verdict.value,
            ).inc()
            if obs.config.events and obs.bus.subscriptions:
                obs.bus.emit(
                    "verdict", cycle, run,
                    link=link_label(key), verdict=verdict.value,
                )


# ---------------------------------------------------------------------------
# the bundle
# ---------------------------------------------------------------------------
class Observability:
    """One registry + event bus + windowed series, attachable to any
    number of simulations."""

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        enabled = self.config.enabled
        self.registry = MetricsRegistry(
            enabled=enabled and self.config.metrics
        )
        self.bus = EventBus()
        self.export_sub: Optional[Subscription] = None
        if enabled and self.config.events:
            self.export_sub = self.bus.subscribe(
                self.config.queue_capacity
            )
        self.series: Optional[WindowedSeries] = None
        if enabled and self.config.window > 0:
            self.series = WindowedSeries(self.config.window, agg="max")
        #: scenario names attached so far, in order
        self.runs: list[str] = []

    # -- attachment ------------------------------------------------------
    def attach(self, sim: "Simulation") -> "Observability":
        """Thread this instance through one simulation's hook points."""
        if not self.config.enabled:
            return self
        run = sim.scenario.name
        self.attach_network(sim.network, run)
        if sim.watchdog is not None:
            sim.watchdog.event_hooks.append(_EscalateHook(self, run))
        if getattr(sim, "containment", None) is not None:
            sim.containment.event_hooks.append(_ContainHook(self, run))
        if getattr(sim, "detector", None) is not None:
            sim.detector.event_hooks.append(_DetectHook(self, run))
        if getattr(sim, "localizer", None) is not None:
            sim.localizer.event_hooks.append(_LocalizeHook(self, run))
        return self

    def attach_network(self, network: "Network", run: str = "") -> None:
        from repro.obs.collectors import link_label

        if not self.config.enabled:
            return
        self.runs.append(run)
        network.injection_hooks.append(_InjectHook(self, run))
        network.ejection_hooks.append(_EjectHook(self, run))
        for key, link in network.links.items():
            label = link_label(key)
            link.launch_hooks.append(_LaunchHook(self, run, label))
            link.ack_hooks.append(_AckHook(self, run, label))
        if self.config.window > 0:
            network.monitors.append(
                _WindowCollector(self, run, self.config.window)
            )

    # -- engine notifications -------------------------------------------
    def notify_checkpoint(self, sim: "Simulation", path=None) -> None:
        if self.config.events and self.bus.subscriptions:
            cycle = sim.network.cycle
            self.bus.emit(
                "checkpoint", cycle, sim.scenario.name,
                checkpoint_cycle=cycle,
                path=str(path) if path is not None else None,
            )

    def on_failure(self, sim: "Simulation", exc: BaseException) -> None:
        """Record a run-killing exception, then take the final scrape
        (the registry keeps whatever the dying network counted)."""
        if self.config.events and self.bus.subscriptions:
            from repro.sim.forensics import failure_signature

            self.bus.emit(
                "sentinel_trip",
                getattr(exc, "cycle", sim.network.cycle),
                sim.scenario.name,
                trip_kind=failure_signature(exc),
                message=str(exc),
            )
        self.finalize(sim)

    def finalize(self, sim: "Simulation") -> None:
        """Final scrape of one finished simulation into the registry."""
        if not self.config.enabled:
            return
        from repro.obs.collectors import collect_simulation

        if self.registry.enabled:
            collect_simulation(sim, self.registry)
        if self.series is not None:
            self.series.flush()

    # -- output ----------------------------------------------------------
    def manifest(self) -> dict:
        """The per-run ``metrics.json`` payload (deterministic: counts
        and series only, no wall-clock unless profiling is armed)."""
        from repro.obs.exporters import build_manifest

        return build_manifest(self)

    def export(self) -> dict:
        """Write every export path configured on :class:`ObsConfig`;
        returns the manifest written (also built when no path is)."""
        from repro.obs.exporters import export_all

        return export_all(self)


# ---------------------------------------------------------------------------
# the ambient (per-process) instance
# ---------------------------------------------------------------------------
_AMBIENT: Optional[Observability] = None


def enable_ambient(config: Optional[ObsConfig] = None) -> Observability:
    """Arm process-wide observability: every Simulation built until
    :func:`disable_ambient` attaches to the returned instance."""
    global _AMBIENT
    _AMBIENT = Observability(config)
    return _AMBIENT


def disable_ambient() -> None:
    global _AMBIENT
    _AMBIENT = None


def ambient() -> Optional[Observability]:
    return _AMBIENT
