"""Unified observability layer.

The paper's central evaluation point is that a TASP stall is invisible
in latency alone — it only shows up in the back-pressure building
inside the network (Figs. 11/12).  This package is the one place the
whole stack emits that visibility into:

* :mod:`repro.obs.registry` — a metrics registry (counters, gauges,
  histograms with label sets; near-zero-cost no-op handles when
  disabled);
* :mod:`repro.obs.events` — a typed, versioned-schema event bus with
  bounded-queue subscribers that never block the simulation;
* :mod:`repro.obs.series` — cycle-windowed time-series rollups (the
  generalization of :class:`repro.noc.stats.Sample`) suitable for
  Fig. 11/12-style back-pressure heatmaps and detector research;
* :mod:`repro.obs.collectors` — scrapers that turn live network
  component state into registry series (the single source of truth
  behind :func:`repro.core.telemetry.security_report`);
* :mod:`repro.obs.instrument` — the wiring: attach an
  :class:`~repro.obs.instrument.Observability` to a simulation and
  every hook point (inject/eject/launch/ack/monitor) feeds the
  registry, bus and series;
* :mod:`repro.obs.exporters` — JSONL event streams, Prometheus-style
  text dumps, and the per-run ``metrics.json`` manifest (plus the
  schema validators CI runs);
* :mod:`repro.obs.profiler` — wall-clock attribution to simulator
  phases (route/arbitrate/traverse/ecc/defense/...), driven by the
  runner's ``--profile`` flag;
* :mod:`repro.obs.perf` — machine-readable ``BENCH_*.json`` benchmark
  records (the cross-PR performance trajectory).

Observability is a **pure observer**: enabling it never changes
``NetworkStats`` or any experiment report byte (proof in
``tests/test_obs_integration.py``).

This ``__init__`` only imports dependency-free leaf modules so that
base layers (``repro.noc.stats``) can import :mod:`repro.obs.series`
without a cycle; the network-aware modules load lazily.
"""

from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventBus,
    EventSchemaError,
    Subscription,
)
from repro.obs.registry import MetricsRegistry, NOOP_METRIC
from repro.obs.series import SampleSeries, WindowedSeries

_LAZY = {
    "Observability": "repro.obs.instrument",
    "ObsConfig": "repro.obs.instrument",
    "ambient": "repro.obs.instrument",
    "enable_ambient": "repro.obs.instrument",
    "disable_ambient": "repro.obs.instrument",
    "PhaseProfiler": "repro.obs.profiler",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "Event",
    "EventBus",
    "EventSchemaError",
    "MetricsRegistry",
    "NOOP_METRIC",
    "Observability",
    "ObsConfig",
    "PhaseProfiler",
    "SampleSeries",
    "Subscription",
    "WindowedSeries",
    "ambient",
    "disable_ambient",
    "enable_ambient",
]
