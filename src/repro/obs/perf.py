"""Machine-readable benchmark records (``BENCH_<name>.json``).

Every ``benchmarks/test_bench_*`` module gets one JSON file in the
repository root summarising its timed runs — median/p95 wall-clock,
derived cycles/sec, the scenario hash the timing belongs to and the
git revision it was measured at — so the performance trajectory is
comparable across PRs instead of living in CI log prose.

The writer lives here (not in ``benchmarks/conftest.py``) so it is
importable and unit-testable; the conftest only gathers samples and
calls :func:`write_bench_file` at session end.
"""

from __future__ import annotations

import json
import math
import subprocess
from pathlib import Path
from typing import Optional

#: bump on incompatible BENCH_*.json layout changes
BENCH_FORMAT = 1


def git_sha(root: "str | Path | None" = None) -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def percentile(samples: list[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of a (non-empty) sample list."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, min(len(ordered), rank) - 1)]


def bench_record(
    test: str, samples: list[float], meta: Optional[dict] = None
) -> dict:
    """One test's record: timing stats + caller-provided metadata.

    ``meta`` may carry ``cycles`` (simulated cycles per timed sample;
    turned into ``cycles_per_sec``), ``scenario_hash``, and anything
    else the bench wants on the trajectory.
    """
    meta = dict(meta or {})
    median = percentile(samples, 0.5)
    record = {
        "test": test,
        "rounds": len(samples),
        "median_s": median,
        "p95_s": percentile(samples, 0.95),
        "min_s": min(samples) if samples else None,
        "max_s": max(samples) if samples else None,
    }
    cycles = meta.pop("cycles", None)
    if cycles and median:
        record["cycles"] = cycles
        record["cycles_per_sec"] = cycles / median
    record.update(meta)
    return record


def write_bench_file(
    root: "str | Path", name: str, records: list[dict]
) -> Path:
    """Write ``BENCH_<name>.json`` under ``root``; returns the path."""
    root = Path(root)
    payload = {
        "format": BENCH_FORMAT,
        "name": name,
        "git_sha": git_sha(root),
        "results": sorted(records, key=lambda r: r.get("test", "")),
    }
    path = root / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def read_bench_file(path: "str | Path") -> dict:
    """Load and sanity-check one BENCH_*.json file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: bench format {payload.get('format')!r} not "
            f"supported (this build reads format {BENCH_FORMAT})"
        )
    return payload
