"""``python -m repro`` — shortcut to the experiment runner."""

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
