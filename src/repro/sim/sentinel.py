"""Online invariant sentinel: continuous in-run failure detection.

The paper's whole attack surface lives in the gap between "the network
looks alive" and "a conservation law has quietly broken" — TASP pins
retransmission slots and deadlocks the chip while every router keeps
clocking.  The :class:`Sentinel` closes that gap: it rides on
:attr:`repro.noc.network.Network.monitors` inside a
:class:`~repro.sim.engine.Simulation` and audits the run *while it
executes* instead of post-mortem:

* the :class:`~repro.noc.invariants.NetworkValidator` conservation
  families, at a configurable cadence, with the flit sweep scoped to
  the active set so active-set stepping stays fast;
* a **global-deadlock** detector — no flit movement of any kind
  (injection, ejection, drop, link traversal) for ``deadlock_window``
  cycles while flits are still in the network;
* a **livelock** detector — one retransmission entry re-launched
  ``livelock_sends`` times without ever being accepted (the signature
  of a TASP-pinned slot: the link stays busy, nothing advances).

A detection raises :class:`SentinelTrip` (an
:class:`~repro.noc.invariants.InvariantViolation`) out of
``Simulation.step()``; with forensics enabled
(:meth:`~repro.sim.engine.Simulation.enable_forensics`) the trip is
captured as a self-contained repro bundle.

The sentinel is a pure observer: it never mutates network state, so a
run with the sentinel attached produces bit-identical
:class:`~repro.noc.stats.NetworkStats` to one without (proof in
``tests/test_sim_sentinel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.invariants import (
    FAMILIES,
    InvariantViolation,
    NetworkValidator,
    ValidationReport,
)
from repro.noc.network import Network


@dataclass(frozen=True)
class SentinelSpec:
    """Scenario-level sentinel configuration (JSON-round-trippable).

    ``every <= 0`` disables the sentinel entirely.  ``flit_scope``
    chooses between the exhaustive flit-conservation sweep (``"full"``)
    and the active-set-restricted one (``"active"``, the default: same
    verdicts, a fraction of the cost on drain-heavy traffic).
    """

    #: audit cadence in cycles (<= 0 disables)
    every: int = 64
    #: invariant families to run (see repro.noc.invariants.FAMILIES)
    families: tuple = FAMILIES
    #: "active" (sampled to the active set) or "full" (exhaustive)
    flit_scope: str = "active"
    #: no movement for this many cycles with occupancy > 0 => deadlock
    deadlock_window: int = 1000
    #: one retrans entry sent this many times unaccepted => livelock
    livelock_sends: int = 64
    #: distinct violations kept on the report before overflow counting
    max_violations: int = 50


class SentinelTrip(InvariantViolation):
    """The sentinel detected a failure mid-run.

    ``kind`` is the machine-readable failure signature
    (``"deadlock"``, ``"livelock"``, or ``"invariant:<families>"``);
    ``cycle`` is the network clock at detection.
    """

    def __init__(
        self,
        kind: str,
        cycle: int,
        message: str,
        report: "ValidationReport | None" = None,
    ):
        super().__init__(message, report)
        self.kind = kind
        self.cycle = cycle


class Sentinel:
    """Per-cycle monitor implementing the ``on_cycle`` protocol.

    Attach via ``network.monitors.append(sentinel)`` (the engine does
    this when ``Scenario.sentinel`` is set).  All state is plain data,
    so a checkpointed simulation carries its sentinel — detector
    windows included — across snapshot/restore.
    """

    def __init__(self, spec: SentinelSpec):
        # fail at build time, not at the first audit: a scenario decoded
        # from JSON may carry families/scopes this build doesn't know
        unknown = set(spec.families) - set(FAMILIES)
        if unknown:
            raise ValueError(
                f"unknown invariant families: {sorted(unknown)}"
            )
        if spec.flit_scope not in ("full", "active"):
            raise ValueError(f"unknown flit_scope {spec.flit_scope!r}")
        self.spec = spec
        self.validator: NetworkValidator | None = None
        self.checks = 0
        self._recorded_failures = 0
        self._move_sig: tuple = ()
        self._last_move_cycle = 0

    @property
    def report(self) -> "ValidationReport | None":
        return self.validator.report if self.validator is not None else None

    # ------------------------------------------------------------------
    def _bind(self, network: Network) -> NetworkValidator:
        validator = self.validator
        if validator is None or validator.net is not network:
            validator = NetworkValidator(
                network,
                families=self.spec.families,
                flit_scope=self.spec.flit_scope,
                max_violations=self.spec.max_violations,
            )
            self.validator = validator
            self._recorded_failures = 0
        return validator

    def _movement_signature(self, network: Network) -> tuple:
        stats = network.stats
        traversals = 0
        for link in network.links.values():
            traversals += link.traversals
        return (
            stats.flits_injected,
            stats.flits_ejected,
            stats.dropped_flits,
            traversals,
        )

    def _in_network(self, network: Network) -> int:
        stats = network.stats
        return (
            stats.flits_injected
            - stats.flits_ejected
            - stats.dropped_flits
        )

    def next_event_cycle(self, network: Network, cycle: int):
        """Event-engine contract: the sentinel is a pure cadence — all
        of its state updates and detections happen on audit cycles
        (multiples of ``spec.every``), so it only demands those."""
        every = self.spec.every
        if every <= 0:
            return None
        if cycle % every == 0:
            return cycle
        return (cycle // every + 1) * every

    # ------------------------------------------------------------------
    def on_cycle(self, network: Network, cycle: int) -> None:
        spec = self.spec
        if spec.every <= 0 or cycle % spec.every:
            return
        self.checks += 1
        validator = self._bind(network)

        # 1. conservation families
        validator.check(raise_on_violation=False)
        report = validator.report
        if report.total_failures > self._recorded_failures:
            self._recorded_failures = report.total_failures
            families = "+".join(sorted(report.by_family))
            raise SentinelTrip(
                f"invariant:{families}",
                cycle,
                "sentinel: invariant violation at cycle "
                f"{cycle}: " + "; ".join(report.violations[-5:]),
                report,
            )

        # 2. livelock: a pinned retransmission slot relaunched forever
        if spec.livelock_sends > 0:
            active = network._active_routers
            for router in network.routers:
                if router.id not in active:
                    continue
                for direction, out in router.outputs.items():
                    for entry in out.retrans:
                        if entry.send_count >= spec.livelock_sends:
                            raise SentinelTrip(
                                "livelock",
                                cycle,
                                f"sentinel: livelock at cycle {cycle}: "
                                f"router {router.id} output "
                                f"{direction.name} tag {entry.tag} "
                                f"(pkt {entry.flit.pkt_id} flit "
                                f"{entry.flit.seq}) re-sent "
                                f"{entry.send_count} times without "
                                "acceptance",
                                report,
                            )

        # 3. global deadlock: occupancy without movement
        if spec.deadlock_window > 0:
            sig = self._movement_signature(network)
            if sig != self._move_sig:
                self._move_sig = sig
                self._last_move_cycle = cycle
            elif (
                self._in_network(network) > 0
                and cycle - self._last_move_cycle >= spec.deadlock_window
            ):
                raise SentinelTrip(
                    "deadlock",
                    cycle,
                    f"sentinel: global deadlock at cycle {cycle}: "
                    f"{self._in_network(network)} flit(s) in-network, "
                    "no movement since cycle "
                    f"{self._last_move_cycle}",
                    report,
                )
