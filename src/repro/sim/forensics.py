"""Failure forensics: self-contained, replayable repro bundles.

When a simulation dies — a :class:`~repro.sim.sentinel.SentinelTrip`,
an :class:`~repro.noc.invariants.InvariantViolation` from anywhere, or
any other exception escaping :meth:`Simulation.run()
<repro.sim.engine.Simulation.run>` — the only thing worse than the
failure is not being able to reproduce it.  A :class:`Forensics`
recorder attached via :meth:`Simulation.enable_forensics` keeps, at all
times:

* an in-memory **last-good checkpoint** (refreshed every
  ``snapshot_every`` cycles, reusing :mod:`repro.sim.checkpoint`), and
* a **ring buffer** of the most recent flit-level trace events
  (:class:`~repro.noc.tracing.FlitTracer` in ``ring`` mode), so the
  window always ends at the failure.

On failure it writes a ``<scenario>-c<cycle>.repro/`` directory::

    manifest.json     format, scenario hash, code version, failure
                      signature + cycle, checkpoint cycle
    scenario.json     the full Scenario (repro.sim.scenario codec)
    checkpoint.ckpt   last-good state (repro.sim.checkpoint format)
    violation.json    exception type/message/signature + the attached
                      ValidationReport, when there is one
    trace.log         the trace window, newest events last
    metrics.json      observability snapshot at the failure (present
                      when the sim had repro.obs attached)

``Simulation.replay(bundle)`` restores the checkpoint and re-runs;
because every stochastic component is seeded, the run re-raises the
*same* failure at the *same* cycle (:func:`replay_bundle` asserts so).
:mod:`repro.sim.shrink` then minimizes the bundled scenario.

Command line::

    python -m repro.sim.forensics demo --dir OUT   # plant + capture
    python -m repro.sim.forensics replay BUNDLE    # verify a bundle
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, TYPE_CHECKING

from repro.noc.tracing import FlitTracer
from repro.sim.cache import code_version
from repro.sim.checkpoint import Checkpoint
from repro.sim.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation

#: bump on incompatible bundle layout changes
BUNDLE_FORMAT = 1

BUNDLE_SUFFIX = ".repro"

MANIFEST_NAME = "manifest.json"
SCENARIO_NAME = "scenario.json"
CHECKPOINT_NAME = "checkpoint.ckpt"
VIOLATION_NAME = "violation.json"
TRACE_NAME = "trace.log"
#: observability snapshot (present when the failing sim had obs armed)
METRICS_NAME = "metrics.json"


class ForensicsError(RuntimeError):
    """A bundle could not be written, read, or replayed."""


def failure_signature(exc: BaseException) -> str:
    """Machine-readable identity of a failure, for replay comparison.

    Sentinel trips carry their own ``kind`` (``"deadlock"``,
    ``"livelock"``, ``"invariant:<families>"``); other invariant
    violations map to ``"invariant"``; everything else to
    ``"crash:<ExceptionType>"``.
    """
    from repro.noc.invariants import InvariantViolation

    kind = getattr(exc, "kind", None)
    if isinstance(kind, str) and kind:
        return kind
    if isinstance(exc, InvariantViolation):
        return "invariant"
    return f"crash:{type(exc).__name__}"


class Forensics:
    """Continuous failure recorder for one :class:`Simulation`.

    Construction takes the *initial* last-good checkpoint, so a bundle
    can be written no matter how early the run dies.  The recorder is
    itself checkpoint-safe: pickling it drops the held snapshot (a
    snapshot nested inside a snapshot would grow without bound).
    """

    def __init__(
        self,
        sim: "Simulation",
        directory: "str | Path",
        *,
        snapshot_every: int = 500,
        trace_capacity: int = 2000,
    ):
        if snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        self.sim = sim
        self.directory = Path(directory)
        self.snapshot_every = snapshot_every
        self.tracer = FlitTracer.attach(
            sim.network, capacity=trace_capacity, ring=True
        )
        # attached before the first capture, so the checkpoint carries
        # the tracer's hooks and replays keep tracing
        self.last_good: Optional[Checkpoint] = Checkpoint.capture(sim)
        cycle = sim.network.cycle
        self._next_snapshot = (
            (cycle // snapshot_every) + 1
        ) * snapshot_every

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # never nest the held snapshot inside a new snapshot
        state["last_good"] = None
        return state

    # ------------------------------------------------------------------
    def maybe_snapshot(self) -> None:
        """Refresh the in-memory last-good checkpoint at the cadence.

        The engine calls this after each successfully completed cycle,
        so the held checkpoint is always of a state *before* any
        failure.
        """
        cycle = self.sim.network.cycle
        if cycle < self._next_snapshot:
            return
        self.last_good = Checkpoint.capture(self.sim)
        every = self.snapshot_every
        self._next_snapshot = ((cycle // every) + 1) * every

    def write_bundle(self, exc: BaseException) -> Path:
        """Capture ``exc`` as a self-contained ``*.repro`` bundle."""
        sim = self.sim
        scenario = sim.scenario
        cycle = getattr(exc, "cycle", sim.network.cycle)
        checkpoint = self.last_good
        if checkpoint is None:  # restored recorder that never re-snapped
            raise ForensicsError(
                "no last-good checkpoint held; cannot write a bundle"
            )

        stem = f"{scenario.name}-c{cycle:012d}"
        bundle = self.directory / f"{stem}{BUNDLE_SUFFIX}"
        n = 1
        while bundle.exists():
            bundle = self.directory / f"{stem}-{n}{BUNDLE_SUFFIX}"
            n += 1
        bundle.mkdir(parents=True)

        signature = failure_signature(exc)
        (bundle / SCENARIO_NAME).write_text(scenario.to_json())
        checkpoint.save(bundle / CHECKPOINT_NAME)
        (bundle / VIOLATION_NAME).write_text(
            json.dumps(_violation_payload(exc, signature, cycle),
                       indent=2, sort_keys=True)
        )
        trace = self.tracer.render()
        (bundle / TRACE_NAME).write_text(
            (trace + "\n") if trace else "(no trace events)\n"
        )
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.config.enabled:
            # written before the manifest so iterdir() lists it below
            (bundle / METRICS_NAME).write_text(
                json.dumps(obs.manifest(), indent=2, sort_keys=True)
            )
        manifest = {
            "format": BUNDLE_FORMAT,
            "name": scenario.name,
            "scenario_hash": scenario.content_hash(),
            "code_version": code_version(),
            "signature": signature,
            "cycle": cycle,
            "checkpoint_cycle": checkpoint.cycle,
            "files": sorted(p.name for p in bundle.iterdir()) + [
                MANIFEST_NAME
            ],
        }
        (bundle / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        return bundle


def _violation_payload(
    exc: BaseException, signature: str, cycle: int
) -> dict:
    report = getattr(exc, "report", None)
    encoded = None
    if report is not None:
        encoded = {
            "checks": report.checks,
            "violations": list(report.violations),
            "duplicates": report.duplicates,
            "overflow": report.overflow,
            "by_family": dict(report.by_family),
        }
    return {
        "signature": signature,
        "type": type(exc).__name__,
        "message": str(exc),
        "cycle": cycle,
        "report": encoded,
    }


# ---------------------------------------------------------------------------
# reading bundles back
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReproBundle:
    """A loaded ``*.repro`` directory."""

    path: Path
    manifest: dict
    scenario: Scenario
    violation: dict

    @property
    def signature(self) -> str:
        return self.manifest["signature"]

    @property
    def cycle(self) -> int:
        return self.manifest["cycle"]

    @property
    def checkpoint_path(self) -> Path:
        return self.path / CHECKPOINT_NAME


def load_bundle(path: "str | Path") -> ReproBundle:
    """Read and validate a bundle directory's metadata (the checkpoint
    payload stays on disk until replay)."""
    path = Path(path)
    manifest_file = path / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_file.read_text())
    except FileNotFoundError:
        raise ForensicsError(
            f"{path}: not a repro bundle (no {MANIFEST_NAME})"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ForensicsError(f"{manifest_file}: unreadable: {exc}") from exc
    if manifest.get("format") != BUNDLE_FORMAT:
        raise ForensicsError(
            f"{path}: bundle format {manifest.get('format')!r} not "
            f"supported (this build reads format {BUNDLE_FORMAT})"
        )
    scenario = Scenario.from_json((path / SCENARIO_NAME).read_text())
    try:
        violation = json.loads((path / VIOLATION_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        violation = {}
    return ReproBundle(
        path=path, manifest=manifest, scenario=scenario,
        violation=violation,
    )


def replay_bundle(path: "str | Path") -> BaseException:
    """Re-run a bundle from its checkpoint; return the re-raised
    failure after asserting it matches the bundled one.

    Raises :class:`ForensicsError` when the replay completes cleanly or
    reproduces a *different* failure — either means the bundle no
    longer describes this source tree's behavior.
    """
    from repro.sim.engine import Simulation

    bundle = load_bundle(path)
    sim = Simulation.replay(path)
    try:
        sim.run()
    except Exception as exc:
        signature = failure_signature(exc)
        cycle = getattr(exc, "cycle", sim.network.cycle)
        if signature != bundle.signature or cycle != bundle.cycle:
            raise ForensicsError(
                f"{bundle.path}: replay diverged: bundled "
                f"{bundle.signature}@{bundle.cycle}, replay raised "
                f"{signature}@{cycle}"
            ) from exc
        return exc
    raise ForensicsError(
        f"{bundle.path}: replay completed without failing (bundled "
        f"failure was {bundle.signature}@{bundle.cycle})"
    )


# ---------------------------------------------------------------------------
# planted failure (docs/CI demo and test fixture)
# ---------------------------------------------------------------------------
def planted_deadlock_scenario(name: str = "planted-deadlock") -> Scenario:
    """A scenario engineered to die: a double-bit fault process with
    rate 1.0 sits on link (0, EAST), so every victim flit arrives
    uncorrectable, NACKs, and retransmits forever — the same pinned
    retransmission-slot condition a TASP deadlock creates (Fig. 4/5),
    caught by the sentinel's livelock detector.

    A background flow and a low-rate decoy fault ride along so the
    shrinker (:mod:`repro.sim.shrink`) has something to remove: the
    1-minimal core is one victim packet plus the rate-1.0 fault.
    """
    from repro.noc.topology import Direction
    from repro.sim.scenario import (
        ExplicitTraffic,
        PacketSpec,
        TransientFaultSpec,
    )
    from repro.sim.sentinel import SentinelSpec

    victim = ExplicitTraffic(
        packets=tuple(
            # core 0 (router 0) -> core 4 (router 1): crosses (0, EAST)
            PacketSpec(
                pkt_id=pkt_id, src_core=0, dst_core=4,
                inject_at=at, payload=(0xD0 + pkt_id, 0xE0 + pkt_id),
            )
            for pkt_id, at in ((1, 0), (2, 40), (3, 80))
        )
    )
    background = ExplicitTraffic(
        packets=tuple(
            # core 20 (router 5) -> core 24 (router 6): crosses (5, EAST)
            PacketSpec(
                pkt_id=pkt_id, src_core=20, dst_core=24,
                inject_at=at, payload=(0xB0 + pkt_id,),
            )
            for pkt_id, at in ((100, 5), (101, 25))
        )
    )
    return Scenario(
        name=name,
        traffic=(victim, background),
        faults=(
            # the killer: every traversal double-corrupted, never
            # correctable, NACK loop forever
            TransientFaultSpec(
                link=(0, Direction.EAST), rate=1.0,
                double_fraction=1.0, seed=1,
                labels=("planted", "killer"),
            ),
            # the decoy: occasional correctable single-bit flips on the
            # background flow's path — annoying, harmless, removable
            TransientFaultSpec(
                link=(5, Direction.EAST), rate=0.05,
                double_fraction=0.0, seed=2,
                labels=("planted", "decoy"),
            ),
        ),
        max_cycles=5000,
        sentinel=SentinelSpec(
            every=16, flit_scope="active",
            deadlock_window=600, livelock_sends=40,
        ),
    )


# ---------------------------------------------------------------------------
# command line
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.forensics",
        description="capture and verify failure repro bundles",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo",
        help="run the planted-failure scenario with forensics armed "
        "and print the emitted bundle path",
    )
    demo.add_argument(
        "--dir", default="forensics-out", help="bundle output directory"
    )
    replay = sub.add_parser(
        "replay",
        help="replay a bundle and verify it reproduces the bundled "
        "failure signature at the bundled cycle",
    )
    replay.add_argument("bundle", help="path to a *.repro directory")
    args = parser.parse_args(argv)

    from repro.sim.engine import Simulation

    if args.command == "demo":
        sim = Simulation(planted_deadlock_scenario())
        sim.enable_forensics(args.dir)
        try:
            sim.run()
        except Exception as exc:
            bundle = getattr(exc, "repro_bundle", None)
            print(f"failure: {failure_signature(exc)}: {exc}")
            print(f"bundle: {bundle}")
            return 0 if bundle is not None else 1
        print("planted scenario completed without failing")
        return 1

    try:
        exc = replay_bundle(args.bundle)
    except ForensicsError as err:
        print(f"replay FAILED: {err}")
        return 1
    print(
        f"replay ok: {failure_signature(exc)} at cycle "
        f"{getattr(exc, 'cycle', '?')} — {exc}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
