"""Build and run :class:`~repro.sim.scenario.Scenario` values.

``build`` wires the network exactly the way the hand-written
experiments used to: defense stack first (mitigated routers, e2e
obfuscation, TDM policy, up*/down* rerouting), then trojans and fault
models onto their links, then traffic sources.  ``Simulation`` keeps
the live handles (network, trojans, sources, watchdog) for experiments
that need mid-run control; ``run`` is the one-shot path returning a
JSON-friendly :class:`RunResult`.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.checkpoint import Checkpoint
    from repro.sim.forensics import Forensics

from repro.baselines.e2e import E2EObfuscator
from repro.baselines.reroute import apply_rerouting, updown_table
from repro.baselines.tdm import TdmConfig, TdmPolicy
from repro.core.mitigation import build_mitigated_network
from repro.core.tasp import TaspTrojan
from repro.faults.models import GrayholeAttack, TransientFaultModel
from repro.noc.flit import Packet, layout_for
from repro.noc.network import Network, TrafficSource
from repro.obs import profiler as obs_profiler
from repro.obs.instrument import ObsConfig, Observability, ambient
from repro.resilience.containment import ContainmentCoordinator
from repro.resilience.detect import TrafficStatsDetector
from repro.resilience.localize import TopologyLocalizer
from repro.resilience.watchdog import RetransWatchdog
from repro.sim.scenario import (
    AppTraffic,
    ExplicitTraffic,
    FloodTraffic,
    Scenario,
    SyntheticTraffic,
    TrojanSpec,
)
from repro.sim.sched import EventCore
from repro.sim.sentinel import Sentinel
from repro.traffic.apps import PROFILES, AppTraceSource
from repro.traffic.flood import FloodConfig, FloodSource, MergedSource
from repro.traffic.synthetic import PATTERNS, SyntheticConfig, SyntheticSource
from repro.util.rng import SeededStream

#: environment override for the engine mode; forked runner workers
#: inherit it (the runner's --engine flag sets it before dispatch)
ENGINE_ENV = "REPRO_ENGINE"

#: valid Scenario.engine / Simulation(engine=...) values
ENGINES = ("sweep", "event")


def _resolve_engine(
    explicit: Optional[str], scenario_engine: str, full_sweep: bool
) -> str:
    """Engine mode precedence: explicit argument > ``REPRO_ENGINE`` env
    var > ``Scenario.engine``.  ``full_sweep=True`` always forces the
    sweep engine — the exhaustive oracle path has no skip semantics, so
    a global env override must not hijack oracle runs."""
    mode = explicit or os.environ.get(ENGINE_ENV) or scenario_engine
    if mode not in ENGINES:
        raise ValueError(
            f"unknown engine {mode!r} (expected one of {ENGINES})"
        )
    if full_sweep:
        return "sweep"
    return mode


class ScheduledSource(TrafficSource):
    """Replays an :class:`ExplicitTraffic` packet schedule."""

    def __init__(self, spec: ExplicitTraffic):
        self._by_cycle: dict[int, list] = {}
        self._remaining = len(spec.packets)
        self._last_cycle = 0
        for p in spec.packets:
            self._by_cycle.setdefault(p.inject_at, []).append(p)
            self._last_cycle = max(self._last_cycle, p.inject_at)

    def generate(self, cycle: int) -> list[Packet]:
        specs = self._by_cycle.pop(cycle, None)
        if not specs:
            return []
        self._remaining -= len(specs)
        return [
            Packet(
                pkt_id=p.pkt_id,
                src_core=p.src_core,
                dst_core=p.dst_core,
                vc_class=p.vc_class,
                mem_addr=p.mem_addr,
                payload=list(p.payload),
                created_cycle=cycle,
                domain=p.domain,
            )
            for p in specs
        ]

    def done(self, cycle: int) -> bool:
        return self._remaining == 0

    def next_active_cycle(self, cycle: int) -> Optional[int]:
        """Next scheduled injection at or after ``cycle`` (stale
        past-due entries are ignored — the sweep engine never emits
        them either, it just times out at the drain budget)."""
        upcoming = [at for at in self._by_cycle if at >= cycle]
        if upcoming:
            return min(upcoming)
        return None


def attach_trojan_specs(
    network: Network, specs: Iterable[TrojanSpec]
) -> list[TaspTrojan]:
    """Solder each spec's trojan into its link; returns the live
    instances in spec order (the specs carry their exact per-instance
    seeds — see :func:`repro.sim.scenario.trojan_specs`)."""
    trojans = []
    layout = layout_for(network.cfg)
    for spec in specs:
        trojan = TaspTrojan(spec.target, spec.config, layout=layout)
        if spec.enable_at is None and spec.enabled:
            trojan.enable()
        network.attach_tamperer(spec.link, trojan)
        trojans.append(trojan)
    return trojans


def _make_source(cfg, spec) -> TrafficSource:
    if isinstance(spec, SyntheticTraffic):
        return SyntheticSource(
            cfg,
            PATTERNS[spec.pattern],
            SyntheticConfig(
                injection_rate=spec.injection_rate,
                payload_words=spec.payload_words,
                duration=spec.duration,
                max_packets=spec.max_packets,
            ),
            seed=spec.seed,
        )
    if isinstance(spec, AppTraffic):
        profile = PROFILES[spec.profile]
        if spec.rate_scale != 1.0:
            profile = dataclasses.replace(
                profile,
                injection_rate=profile.injection_rate * spec.rate_scale,
            )
        return AppTraceSource(
            cfg,
            profile,
            seed=spec.seed,
            duration=spec.duration,
            max_packets=spec.max_packets,
            cores=set(spec.cores) if spec.cores is not None else None,
            domain=spec.domain,
            vc_classes=spec.vc_classes,
            pkt_id_base=spec.pkt_id_base,
        )
    if isinstance(spec, FloodTraffic):
        return FloodSource(
            cfg,
            FloodConfig(
                rogue_cores=spec.rogue_cores,
                victim_cores=spec.victim_cores,
                rate=spec.rate,
                payload_words=spec.payload_words,
                start_cycle=spec.start_cycle,
                stop_cycle=spec.stop_cycle,
            ),
            seed=spec.seed,
            pkt_id_base=spec.pkt_id_base,
        )
    if isinstance(spec, ExplicitTraffic):
        return ScheduledSource(spec)
    raise TypeError(f"unknown traffic spec {type(spec).__name__}")


@dataclass(frozen=True)
class RunResult:
    """JSON-friendly summary of one scenario run."""

    name: str
    completed: bool
    cycles: int
    packets_injected: int
    packets_completed: int
    flits_injected: int
    flits_ejected: int
    mean_network_latency: Optional[float]
    mean_total_latency: Optional[float]
    dropped_flits: int
    misdeliveries: int
    num_samples: int


class Simulation:
    """A built scenario with its live handles.

    Attributes
    ----------
    network:
        The wired :class:`Network` (``full_sweep`` already applied).
    trojans:
        Live :class:`TaspTrojan` instances, in ``scenario.trojans``
        order.
    sources:
        One traffic source per ``scenario.traffic`` entry (they are
        merged onto the network when there is more than one).
    watchdog:
        The attached :class:`RetransWatchdog`, or ``None``.
    obs:
        The attached :class:`~repro.obs.instrument.Observability`
        bundle, or ``None``.  Pass an ``ObsConfig`` to create a
        private bundle, an existing ``Observability`` to share one
        across simulations, or leave it ``None`` to pick up the
        ambient (process-wide) instance when one is armed.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        full_sweep: bool = False,
        engine: Optional[str] = None,
        obs: "ObsConfig | Observability | None" = None,
    ):
        self.scenario = scenario
        cfg = scenario.cfg
        defense = scenario.defense

        kwargs: dict = {}
        if defense.e2e:
            kwargs["e2e"] = E2EObfuscator(layout=layout_for(cfg))
        if defense.tdm_domains:
            if cfg.topology == "torus":
                raise ValueError(
                    "tdm_domains is not supported on a torus: the TDM "
                    "VC partition intersected with the dateline halves "
                    "can leave a packet no legal VC"
                )
            kwargs["policy"] = TdmPolicy(
                TdmConfig(num_domains=defense.tdm_domains), cfg.num_vcs
            )
        build_cfg = cfg
        if defense.rerouted_links:
            build_cfg = dataclasses.replace(cfg, routing="table")
            kwargs["routing_table"] = updown_table(
                cfg, list(defense.rerouted_links)
            )
        if defense.mitigated or defense.mitigation is not None:
            net = build_mitigated_network(
                build_cfg, defense.mitigation, **kwargs
            )
        else:
            net = Network(build_cfg, **kwargs)
        net.full_sweep = full_sweep
        if defense.rerouted_links:
            apply_rerouting(net, list(defense.rerouted_links))

        self.network = net
        self.trojans = attach_trojan_specs(net, scenario.trojans)
        # (cycle, index, arm) triples: arm=True fires enable(), False
        # fires disable() (the kill-switch withdrawal probation recovers
        # from)
        trojan_events: list[tuple[int, int, bool]] = []
        for index, spec in enumerate(scenario.trojans):
            if spec.enable_at is not None:
                trojan_events.append((spec.enable_at, index, True))
            if spec.disable_at is not None:
                trojan_events.append((spec.disable_at, index, False))
        self._pending_enables = sorted(trojan_events, reverse=True)

        #: live gray-hole attack instances, in ``scenario.attacks`` order
        self.attacks: list[GrayholeAttack] = []
        attack_events: list[tuple[int, int, bool]] = []
        for index, spec in enumerate(scenario.attacks):
            attack = GrayholeAttack(
                net.codec.codeword_bits,
                spec.drop_probability,
                SeededStream(
                    spec.seed, "grayhole", spec.link[0], spec.link[1].name
                ),
                armed=spec.enable_at is None,
            )
            net.attach_tamperer(spec.link, attack)
            self.attacks.append(attack)
            if spec.enable_at is not None:
                attack_events.append((spec.enable_at, index, True))
            if spec.disable_at is not None:
                attack_events.append((spec.disable_at, index, False))
        self._pending_attack_events = sorted(attack_events, reverse=True)

        for fault in scenario.faults:
            net.attach_tamperer(
                fault.link,
                TransientFaultModel(
                    net.codec.codeword_bits,
                    fault.rate,
                    SeededStream(fault.seed, *fault.labels),
                    double_fraction=fault.double_fraction,
                ),
            )

        self.sources = [
            _make_source(cfg, spec) for spec in scenario.traffic
        ]
        if len(self.sources) == 1:
            net.set_traffic(self.sources[0])
        elif self.sources:
            net.set_traffic(MergedSource(self.sources))

        #: early traffic-statistics detector (None = not configured).
        #: Attached *before* the watchdog so a link flagged at a window
        #: boundary shortens that same cycle's ladder evaluation.
        self.detector: Optional[TrafficStatsDetector] = None
        if defense.detector is not None:
            self.detector = TrafficStatsDetector(defense.detector).attach(net)

        #: attacker localization engine (None = not configured).  A
        #: pure subscriber of the detector's flag stream — it is not a
        #: network monitor, so it has no engine-timing footprint.
        self.localizer: Optional[TopologyLocalizer] = None
        if defense.localizer is not None:
            if self.detector is None:
                raise ValueError(
                    "defense.localizer requires defense.detector: "
                    "localization fuses the detector's footprints"
                )
            self.localizer = TopologyLocalizer(
                cfg, defense.localizer
            ).attach(self.detector)

        self.watchdog: Optional[RetransWatchdog] = None
        if defense.watchdog is not None:
            self.watchdog = RetransWatchdog(defense.watchdog).attach(net)
        if self.detector is not None:
            self.detector.watchdog = self.watchdog

        #: network-level containment coordinator (None = not configured).
        #: Attached after the watchdog so each cycle the coordinator
        #: consumes that cycle's fresh escalations.
        self.containment: Optional[ContainmentCoordinator] = None
        if defense.probation is not None and defense.containment is None:
            raise ValueError(
                "defense.probation requires defense.containment: "
                "probation is the coordinator's recovery loop"
            )
        if defense.containment is not None:
            if self.watchdog is None:
                raise ValueError(
                    "defense.containment requires defense.watchdog: the "
                    "coordinator owns the watchdog's escalation ladder"
                )
            self.containment = ContainmentCoordinator(
                defense.containment, probation=defense.probation
            ).attach(net, watchdog=self.watchdog)
            if self.localizer is not None:
                self.containment.set_localizer(self.localizer)

        #: online invariant/progress monitor (None = not configured)
        self.sentinel: Optional[Sentinel] = None
        if scenario.sentinel is not None and scenario.sentinel.every > 0:
            self.sentinel = Sentinel(scenario.sentinel)
            net.monitors.append(self.sentinel)

        #: failure-forensics recorder (None until enable_forensics)
        self.forensics: "Optional[Forensics]" = None

        net.sample_interval = scenario.sample_interval

        # -- periodic checkpointing (off until configured) ---------------
        self._ckpt_dir: Optional[Path] = None
        self._ckpt_interval: int = 0
        self._ckpt_next: Optional[int] = None
        self._ckpt_keep: int = 2
        self._ckpt_hash: Optional[str] = None
        #: cycle a restore resumed from (None for a fresh build)
        self.resumed_from_cycle: Optional[int] = None

        # -- engine mode --------------------------------------------------
        #: "sweep" (per-cycle oracle) or "event" (wakeup scheduler);
        #: both produce byte-identical reports — see docs/performance.md
        self.engine: str = _resolve_engine(
            engine, scenario.engine, full_sweep
        )
        #: event-driven advance core (None in sweep mode); checkpoints
        #: carry it, wheel state included
        self.event_core: Optional[EventCore] = (
            EventCore(self) if self.engine == "event" else None
        )

        # -- observability (last: the network is fully wired now) --------
        if obs is None:
            obs = ambient()
        elif isinstance(obs, ObsConfig):
            obs = Observability(obs)
        self.obs: Optional[Observability] = obs
        if obs is not None:
            obs.attach(self)
        # phase profiling is orthogonal to obs: armed per-process via
        # repro.obs.profiler.enable() or the REPRO_PROFILE env var
        prof = obs_profiler.current()
        if prof is not None:
            net.profiler = prof

    # -- checkpoint/restore ----------------------------------------------
    def snapshot(self) -> "Checkpoint":
        """Freeze the complete mutable simulation state.

        The capture is a deep copy keyed by the scenario's content hash;
        ``restore`` of it — in this process or a fresh one — then runs
        bit-identically to never having stopped.
        """
        from repro.sim.checkpoint import Checkpoint

        return Checkpoint.capture(self)

    @classmethod
    def restore(cls, source: "Checkpoint | str | Path") -> "Simulation":
        """Rebuild a live simulation from a :class:`Checkpoint` (or a
        checkpoint file path)."""
        from repro.sim.checkpoint import Checkpoint

        checkpoint = (
            source
            if isinstance(source, Checkpoint)
            else Checkpoint.load(source)
        )
        sim = checkpoint.restore()
        sim.resumed_from_cycle = checkpoint.cycle
        return sim

    def configure_checkpoints(
        self,
        directory: "str | Path",
        interval: int,
        *,
        keep: int = 2,
    ) -> None:
        """Emit an atomic on-disk checkpoint every ``interval`` cycles
        while this simulation steps; the newest ``keep`` are retained.
        An interrupted run then resumes from the last checkpoint via
        :func:`resume_or_build` instead of cycle 0.
        """
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self._ckpt_dir = Path(directory)
        self._ckpt_interval = interval
        self._ckpt_keep = keep
        self._ckpt_hash = self.scenario.content_hash()
        cycle = self.network.cycle
        self._ckpt_next = ((cycle // interval) + 1) * interval

    def _maybe_checkpoint(self) -> None:
        if self._ckpt_next is None or self.network.cycle < self._ckpt_next:
            return
        from repro.sim.checkpoint import checkpoint_path, prune_checkpoints

        assert self._ckpt_dir is not None and self._ckpt_hash is not None
        path = checkpoint_path(
            self._ckpt_dir, self._ckpt_hash, self.network.cycle
        )
        self.snapshot().save(path)
        if self.obs is not None:
            self.obs.notify_checkpoint(self, path)
        prune_checkpoints(self._ckpt_dir, self._ckpt_hash, self._ckpt_keep)
        interval = self._ckpt_interval
        self._ckpt_next = (
            (self.network.cycle // interval) + 1
        ) * interval

    # -- stepping --------------------------------------------------------
    def _fire_enables(self) -> None:
        cycle = self.network.cycle
        while self._pending_enables and self._pending_enables[-1][0] <= cycle:
            _, index, arm = self._pending_enables.pop()
            if arm:
                self.trojans[index].enable()
            else:
                self.trojans[index].disable()
        pending = self._pending_attack_events
        while pending and pending[-1][0] <= cycle:
            _, index, arm = pending.pop()
            if arm:
                self.attacks[index].arm()
            else:
                self.attacks[index].disarm()

    def step(self) -> None:
        self._fire_enables()
        self.network.step()
        if self._ckpt_next is not None:
            self._maybe_checkpoint()
        if self.forensics is not None:
            # after network.step(): a failing cycle raises before this
            # line, so the forensics snapshot is always last-*good*
            self.forensics.maybe_snapshot()

    def advance_to(self, cycle: int) -> None:
        """Step until the network clock reaches ``cycle``, firing any
        scheduled trojan enables on the way.  In event mode, cycles no
        component claims are skipped without stepping (byte-identical
        results — see :mod:`repro.sim.sched`)."""
        if self.event_core is not None:
            self.event_core.advance_to(cycle)
            return
        while self.network.cycle < cycle:
            self.step()
        self._fire_enables()

    def run_until_drained(
        self, max_cycles: int, stall_limit: Optional[int] = None
    ) -> bool:
        if self.event_core is not None:
            return self.event_core.run_until_drained(max_cycles, stall_limit)
        net = self.network
        for _ in range(max_cycles):
            if net.drained:
                return True
            self.step()
            if (
                stall_limit is not None
                and net.stats.stalled_for(net.cycle) > stall_limit
            ):
                return False
        return net.drained

    # -- forensics -------------------------------------------------------
    def enable_forensics(
        self,
        directory: "str | Path",
        *,
        snapshot_every: int = 500,
        trace_capacity: int = 2000,
    ) -> "Forensics":
        """Record enough state, continuously, to reproduce any failure.

        Keeps an in-memory last-good checkpoint (refreshed every
        ``snapshot_every`` cycles) and a ring buffer of the last
        ``trace_capacity`` flit events; any exception escaping
        :meth:`run` is then captured as a ``*.repro`` bundle under
        ``directory`` (see :mod:`repro.sim.forensics`) and carries the
        bundle path as ``exc.repro_bundle``.
        """
        from repro.sim.forensics import Forensics

        self.forensics = Forensics(
            self,
            directory,
            snapshot_every=snapshot_every,
            trace_capacity=trace_capacity,
        )
        return self.forensics

    @classmethod
    def replay(cls, bundle: "str | Path") -> "Simulation":
        """A live simulation restored from a repro bundle's last-good
        checkpoint; calling :meth:`run` on it deterministically
        re-raises the bundled failure."""
        from repro.sim.forensics import load_bundle

        sim = cls.restore(load_bundle(bundle).checkpoint_path)
        # a replay diagnoses an existing bundle — don't write new ones
        sim.forensics = None
        return sim

    # -- one-shot --------------------------------------------------------
    def run(self) -> RunResult:
        try:
            return self._run()
        except Exception as exc:
            if self.obs is not None:
                # record the trip and take the final scrape first, so a
                # forensics bundle can embed the finalized metrics
                self.obs.on_failure(self, exc)
            if self.forensics is not None:
                exc.repro_bundle = self.forensics.write_bundle(exc)
            raise

    def _run(self) -> RunResult:
        scenario = self.scenario
        if scenario.duration is not None:
            self.advance_to(scenario.duration)
            completed = True
        else:
            # Budget in *absolute* cycles so a run restored at cycle k
            # stops exactly where the uninterrupted run would have.
            remaining = max(0, scenario.max_cycles - self.network.cycle)
            completed = self.run_until_drained(
                remaining, scenario.stall_limit
            )
        if self.obs is not None:
            self.obs.finalize(self)
        return self.result(completed)

    def result(self, completed: bool) -> RunResult:
        """The :class:`RunResult` for the network's current state.

        Factored out of :meth:`_run` so chunked drivers (the serving
        layer steps the engine in slices and pumps verdicts between
        them) build the byte-identical report the one-shot path does.
        """
        net = self.network
        stats = net.stats
        return RunResult(
            name=self.scenario.name,
            completed=completed,
            cycles=net.cycle,
            packets_injected=stats.packets_injected,
            packets_completed=stats.packets_completed,
            flits_injected=stats.flits_injected,
            flits_ejected=stats.flits_ejected,
            mean_network_latency=stats.mean_network_latency(),
            mean_total_latency=stats.mean_total_latency(),
            dropped_flits=stats.dropped_flits,
            misdeliveries=stats.misdeliveries,
            num_samples=len(stats.samples),
        )


def build(scenario: Scenario, *, full_sweep: bool = False) -> Network:
    """Wire a network for ``scenario`` (defense stack, trojans, faults,
    traffic) without running it."""
    return Simulation(scenario, full_sweep=full_sweep).network


def resume_or_build(
    scenario: Scenario,
    checkpoint_dir: "str | Path | None",
    *,
    full_sweep: bool = False,
    engine: Optional[str] = None,
    obs: "ObsConfig | Observability | None" = None,
) -> Simulation:
    """The scenario's newest restorable checkpoint as a live
    simulation, or a fresh build when there is none (no directory, no
    matching file, or only corrupt/stale ones).

    ``sim.resumed_from_cycle`` tells the caller which happened.  A
    restored simulation keeps the observability bundle *and engine
    mode* it was checkpointed with; ``obs`` and ``engine`` only apply
    to a fresh build.
    """
    if checkpoint_dir is not None:
        from repro.sim.checkpoint import latest_checkpoint

        checkpoint = latest_checkpoint(checkpoint_dir, scenario)
        if checkpoint is not None:
            return Simulation.restore(checkpoint)
    return Simulation(
        scenario, full_sweep=full_sweep, engine=engine, obs=obs
    )


def run(
    scenario: Scenario,
    *,
    full_sweep: bool = False,
    engine: Optional[str] = None,
    checkpoint_interval: Optional[int] = None,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
    forensics_dir: "str | Path | None" = None,
    obs: "ObsConfig | Observability | None" = None,
) -> RunResult:
    """Build ``scenario`` and run it to its duration or drain limit.

    ``engine`` picks the advance loop ("sweep" or "event"); left
    ``None`` it falls back to the ``REPRO_ENGINE`` env var, then to
    ``scenario.engine``.  Both engines produce byte-identical results;
    the event engine skips provably idle cycles (docs/performance.md).

    With ``checkpoint_interval`` and ``checkpoint_dir`` set, the run
    emits an atomic state checkpoint every ``interval`` cycles;
    ``resume=True`` additionally starts from the newest restorable
    checkpoint (if any) instead of cycle 0.  Either way the
    :class:`RunResult` is bit-identical to an uninterrupted run.

    ``forensics_dir`` (or the ``REPRO_FORENSICS_DIR`` environment
    variable, which forked runner workers inherit) arms failure
    forensics: any exception escaping the run leaves a ``*.repro``
    bundle there and carries its path as ``exc.repro_bundle``.

    ``obs`` attaches observability (see :class:`Simulation`); passing
    an :class:`~repro.obs.instrument.ObsConfig` additionally writes
    every export path configured on it when the run completes.
    """
    if resume:
        sim = resume_or_build(
            scenario,
            checkpoint_dir,
            full_sweep=full_sweep,
            engine=engine,
            obs=obs,
        )
    else:
        sim = Simulation(
            scenario, full_sweep=full_sweep, engine=engine, obs=obs
        )
    if checkpoint_interval is not None and checkpoint_dir is not None:
        sim.configure_checkpoints(checkpoint_dir, checkpoint_interval)
    if forensics_dir is None:
        forensics_dir = os.environ.get("REPRO_FORENSICS_DIR") or None
    if forensics_dir is not None:
        sim.enable_forensics(forensics_dir)
    result = sim.run()
    if isinstance(obs, ObsConfig) and sim.obs is not None:
        # the bundle was private to this run: write its exports now
        sim.obs.export()
    return result
