"""Delta-debugging scenario minimizer.

A repro bundle answers "*what* happened"; the shrinker answers "*what
caused it*".  Given a failing :class:`~repro.sim.scenario.Scenario`
(usually from a bundle), it greedily removes whole traffic flows,
trojans and transient-fault processes, simplifies trojan
enable schedules, delta-debugs individual packets out of explicit
schedules, and bisects the cycle horizon — re-running the engine after
each candidate edit and keeping only edits under which the run still
fails **with the same failure signature**.  The result is 1-minimal:
removing any single remaining flow, trojan or fault makes the scenario
pass.

Every engine run is memoized on the candidate's content hash and
counted against a hard ``max_runs`` budget, so shrinking terminates in
a bounded number of runs even on adversarial scenarios.  Shrinking is
fully deterministic: same input, same budget → same 1-minimal output.

Command line (used by CI to prove planted failures localize)::

    python -m repro.sim.shrink BUNDLE --assert-max-traffic 2 \\
        --assert-max-attacks 1
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.sim.forensics import (
    ForensicsError,
    ReproBundle,
    failure_signature,
    load_bundle,
)
from repro.sim.scenario import ExplicitTraffic, Scenario


class ShrinkError(RuntimeError):
    """The scenario could not be shrunk (it does not fail to begin
    with, or fails differently than the bundle claims)."""


class _OutOfBudget(Exception):
    """Internal: the oracle's run budget ran dry mid-pass."""


class _Oracle:
    """Memoized, budgeted answer to "does this candidate still fail
    the same way?"."""

    def __init__(self, signature: str, max_runs: int, full_sweep: bool):
        self.signature = signature
        self.max_runs = max_runs
        self.full_sweep = full_sweep
        self.runs = 0
        self.exhausted = False
        self._memo: dict[str, bool] = {}

    def fails(self, scenario: Scenario) -> bool:
        from repro.sim.engine import Simulation

        key = scenario.content_hash()
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if self.runs >= self.max_runs:
            self.exhausted = True
            raise _OutOfBudget
        self.runs += 1
        try:
            Simulation(scenario, full_sweep=self.full_sweep).run()
            verdict = False
        except Exception as exc:
            verdict = failure_signature(exc) == self.signature
        self._memo[key] = verdict
        return verdict


# ---------------------------------------------------------------------------
# list minimization primitives
# ---------------------------------------------------------------------------
def greedy_min_subset(
    items: list, still_fails: Callable[[list], bool]
) -> list:
    """Remove elements one at a time, to fixpoint.

    The result is 1-minimal with respect to single-element removal:
    dropping any one remaining item makes ``still_fails`` False.
    """
    current = list(items)
    changed = True
    while changed and current:
        changed = False
        for index in range(len(current) - 1, -1, -1):
            candidate = current[:index] + current[index + 1:]
            if still_fails(candidate):
                current = candidate
                changed = True
    return current


def ddmin(items: list, still_fails: Callable[[list], bool]) -> list:
    """Zeller-style delta debugging over one list.

    Faster than pure greedy when large chunks are removable at once
    (e.g. hundreds of packets in an explicit schedule); finishes with
    the same single-element sweep, so the result is 1-minimal too.
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        size = len(current)
        chunk = max(1, size // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # re-test from the same offset against the new list
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


# ---------------------------------------------------------------------------
# the shrink passes
# ---------------------------------------------------------------------------
def _shrink_field(
    scenario: Scenario, field_name: str, oracle: _Oracle
) -> Scenario:
    items = list(getattr(scenario, field_name))
    if not items:
        return scenario
    kept = greedy_min_subset(
        items,
        lambda candidate: oracle.fails(
            dataclasses.replace(scenario, **{field_name: tuple(candidate)})
        ),
    )
    return dataclasses.replace(scenario, **{field_name: tuple(kept)})

def _shrink_enable_schedule(
    scenario: Scenario, oracle: _Oracle
) -> Scenario:
    """Try flattening each trojan's enable schedule: an entry with
    ``enable_at=k`` that also fails when armed from cycle 0 doesn't
    need its schedule entry."""
    for index, spec in enumerate(scenario.trojans):
        if spec.enable_at is None:
            continue
        flattened = dataclasses.replace(
            spec, enable_at=None, enabled=True
        )
        trojans = list(scenario.trojans)
        trojans[index] = flattened
        candidate = dataclasses.replace(scenario, trojans=tuple(trojans))
        if oracle.fails(candidate):
            scenario = candidate
    return scenario


def _shrink_packets(scenario: Scenario, oracle: _Oracle) -> Scenario:
    """ddmin individual packets out of explicit schedules."""
    for index, spec in enumerate(scenario.traffic):
        if not isinstance(spec, ExplicitTraffic) or len(spec.packets) < 2:
            continue

        def with_packets(packets: list) -> Scenario:
            traffic = list(scenario.traffic)
            traffic[index] = ExplicitTraffic(packets=tuple(packets))
            return dataclasses.replace(scenario, traffic=tuple(traffic))

        kept = ddmin(
            list(spec.packets),
            lambda candidate: oracle.fails(with_packets(candidate)),
        )
        scenario = with_packets(kept)
    return scenario


def _shrink_horizon(scenario: Scenario, oracle: _Oracle) -> Scenario:
    """Binary-search the smallest cycle budget that still fails."""
    field_name = "duration" if scenario.duration is not None else "max_cycles"
    original = getattr(scenario, field_name)
    if original is None or original <= 1:
        return scenario
    lo, hi = 1, original  # hi always fails, lo-1 == 0 trivially passes
    while lo < hi:
        mid = (lo + hi) // 2
        if oracle.fails(
            dataclasses.replace(scenario, **{field_name: mid})
        ):
            hi = mid
        else:
            lo = mid + 1
    return dataclasses.replace(scenario, **{field_name: hi})


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
def _describe(spec) -> str:
    if isinstance(spec, ExplicitTraffic):
        return f"explicit traffic ({len(spec.packets)} packet(s))"
    name = type(spec).__name__
    link = getattr(spec, "link", None)
    if link is not None:
        return f"{name} on link ({link[0]}, {link[1].name})"
    return name


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink: the minimized scenario plus provenance."""

    original: Scenario
    shrunk: Scenario
    signature: str
    #: engine runs spent (memoized repeats are free)
    runs: int
    #: True when max_runs stopped the shrink before the fixpoint
    budget_exhausted: bool

    def diff(self) -> str:
        """Human-readable summary of what the shrink removed."""
        lines = [
            f"failure signature: {self.signature}",
            f"engine runs: {self.runs}"
            + (" (budget exhausted)" if self.budget_exhausted else ""),
        ]
        for field_name in ("traffic", "trojans", "faults"):
            before = list(getattr(self.original, field_name))
            after = list(getattr(self.shrunk, field_name))
            lines.append(
                f"{field_name}: {len(before)} -> {len(after)}"
            )
            kept = list(after)
            for spec in before:
                if spec in kept:
                    kept.remove(spec)
                    continue
                lines.append(f"  - removed {_describe(spec)}")
            for spec in after:
                lines.append(f"  + kept    {_describe(spec)}")
        for field_name in ("duration", "max_cycles"):
            before = getattr(self.original, field_name)
            after = getattr(self.shrunk, field_name)
            if before != after:
                lines.append(f"{field_name}: {before} -> {after}")
        return "\n".join(lines)


def shrink_scenario(
    scenario: Scenario,
    *,
    signature: Optional[str] = None,
    max_runs: int = 400,
    full_sweep: bool = False,
) -> ShrinkResult:
    """Minimize ``scenario`` while it keeps failing with ``signature``.

    ``signature`` defaults to whatever the scenario fails with right
    now (:class:`ShrinkError` if it doesn't fail at all).  The engine
    is re-run at most ``max_runs`` times; if the budget runs dry the
    best scenario found so far is returned with ``budget_exhausted``
    set instead of raising.
    """
    from repro.sim.engine import Simulation

    try:
        Simulation(scenario, full_sweep=full_sweep).run()
        baseline: Optional[BaseException] = None
    except Exception as exc:
        baseline = exc
    if baseline is None:
        raise ShrinkError(
            f"scenario {scenario.name!r} does not fail; nothing to shrink"
        )
    observed = failure_signature(baseline)
    if signature is None:
        signature = observed
    elif observed != signature:
        raise ShrinkError(
            f"scenario {scenario.name!r} fails with {observed!r}, "
            f"not the requested {signature!r}"
        )

    oracle = _Oracle(signature, max_runs, full_sweep)
    oracle._memo[scenario.content_hash()] = True  # the baseline run
    current = scenario
    try:
        previous = None
        # value equality, not identity: passes rebuild the dataclass
        # even when they remove nothing
        while previous != current:
            previous = current
            for field_name in ("traffic", "trojans", "faults"):
                current = _shrink_field(current, field_name, oracle)
            current = _shrink_enable_schedule(current, oracle)
            current = _shrink_packets(current, oracle)
            current = _shrink_horizon(current, oracle)
    except _OutOfBudget:
        pass
    return ShrinkResult(
        original=scenario,
        shrunk=current,
        signature=signature,
        runs=oracle.runs,
        budget_exhausted=oracle.exhausted,
    )


def shrink_bundle(
    bundle: "ReproBundle | str | Path",
    *,
    max_runs: int = 400,
    full_sweep: bool = False,
) -> "tuple[ShrinkResult, Path]":
    """Shrink a repro bundle's scenario and emit a shrunk bundle.

    The shrunk scenario re-runs from cycle 0 with forensics armed, so
    the emitted ``*-shrunk-c<cycle>.repro`` bundle (written next to the
    original) is itself replayable; its ``shrink-diff.txt`` records
    what was removed.  Returns ``(result, shrunk_bundle_path)``.
    """
    from repro.sim.engine import Simulation

    if not isinstance(bundle, ReproBundle):
        bundle = load_bundle(bundle)
    result = shrink_scenario(
        bundle.scenario,
        signature=bundle.signature,
        max_runs=max_runs,
        full_sweep=full_sweep,
    )
    shrunk = dataclasses.replace(
        result.shrunk, name=f"{bundle.scenario.name}-shrunk"
    )
    sim = Simulation(shrunk, full_sweep=full_sweep)
    sim.enable_forensics(bundle.path.parent)
    try:
        sim.run()
    except Exception as exc:
        out = getattr(exc, "repro_bundle", None)
        if out is None:  # pragma: no cover - write_bundle always tags
            raise
    else:
        raise ShrinkError(
            f"shrunk scenario stopped failing when re-run "
            f"(signature {result.signature!r})"
        )
    (Path(out) / "shrink-diff.txt").write_text(result.diff() + "\n")
    return result, Path(out)


# ---------------------------------------------------------------------------
# command line
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.shrink",
        description="minimize a failing repro bundle's scenario",
    )
    parser.add_argument("bundle", help="path to a *.repro directory")
    parser.add_argument(
        "--max-runs", type=int, default=400,
        help="engine-run budget (default 400)",
    )
    parser.add_argument(
        "--assert-max-traffic", type=int, default=None, metavar="N",
        help="exit 1 unless the shrunk scenario has <= N traffic flows",
    )
    parser.add_argument(
        "--assert-max-attacks", type=int, default=None, metavar="N",
        help="exit 1 unless trojans + faults <= N after shrinking",
    )
    args = parser.parse_args(argv)

    try:
        result, out = shrink_bundle(args.bundle, max_runs=args.max_runs)
    except (ForensicsError, ShrinkError) as err:
        print(f"shrink FAILED: {err}")
        return 1
    print(result.diff())
    print(f"shrunk bundle: {out}")

    ok = True
    flows = len(result.shrunk.traffic)
    attacks = len(result.shrunk.trojans) + len(result.shrunk.faults)
    if (
        args.assert_max_traffic is not None
        and flows > args.assert_max_traffic
    ):
        print(
            f"ASSERTION FAILED: {flows} traffic flows remain "
            f"(allowed {args.assert_max_traffic})"
        )
        ok = False
    if (
        args.assert_max_attacks is not None
        and attacks > args.assert_max_attacks
    ):
        print(
            f"ASSERTION FAILED: {attacks} trojans+faults remain "
            f"(allowed {args.assert_max_attacks})"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
