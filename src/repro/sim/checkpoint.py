"""Checkpoint/restore of live simulations.

A :class:`Checkpoint` freezes the *complete* mutable state of a
:class:`~repro.sim.engine.Simulation` — router pipelines, VC buffers,
credit counters, retransmission buffers, receiver resequencing state,
trojan FSMs, detector/L-Ob/watchdog state, traffic-source cursors and
every ``SeededStream`` RNG position — so that::

    restore(snapshot(at cycle k)); run_to(n)

yields **bit-identical** :class:`~repro.noc.stats.NetworkStats` to a
straight ``run_to(n)``, even when the restore happens in a fresh
process (proof in ``tests/test_sim_checkpoint.py``).

The state image is a single :mod:`pickle` of the simulation object
graph.  One pickle pass (rather than per-component state dicts) is
load-bearing: flits, credit trackers and stats sinks are *shared*
between components, and pickle's memo preserves that aliasing exactly.
Everything the engine wires is picklable by construction (closures are
banned from the wired graph — see
:class:`repro.noc.routing.DimensionOrderRouting`); experiments that
bolt closure hooks onto a network simply cannot snapshot it, and get a
:class:`CheckpointError` saying so.

On-disk format (versioned, written atomically)::

    line 1   JSON header: format, scenario_hash, cycle, code_version,
             payload_bytes
    rest     the pickle payload

The header is validated *before* unpickling, so a checkpoint from a
different scenario, an incompatible format, or a different source tree
is rejected (or skipped by :func:`latest_checkpoint`) instead of being
revived into a silently diverging run.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.sim.cache import code_version

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation
    from repro.sim.scenario import Scenario

#: bump on incompatible checkpoint layout changes; old files are then
#: treated as absent rather than misparsed.  Format 2: simulations
#: carry the engine mode and (in event mode) the wakeup-scheduler
#: wheel (repro.sim.sched), and networks track the backlogged-core set.
CHECKPOINT_FORMAT = 2

CHECKPOINT_SUFFIX = ".ckpt"

_NAME_RE = re.compile(r"^(?P<hash>[0-9a-f]{16})-c(?P<cycle>\d{12})\.ckpt$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be captured, written, read or restored."""


@dataclass(frozen=True)
class Checkpoint:
    """One frozen simulation state, ready to persist or restore."""

    scenario_hash: str
    cycle: int
    code_version: str
    payload: bytes

    # -- capture / restore ----------------------------------------------
    @classmethod
    def capture(cls, sim: "Simulation") -> "Checkpoint":
        """Freeze ``sim``'s complete mutable state.

        The capture is a deep copy: stepping ``sim`` afterwards does not
        disturb the checkpoint.
        """
        try:
            payload = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise CheckpointError(
                "simulation state is not snapshot-safe (an attached hook, "
                f"monitor or tamperer is unpicklable): {exc}"
            ) from exc
        return cls(
            scenario_hash=sim.scenario.content_hash(),
            cycle=sim.network.cycle,
            code_version=code_version(),
            payload=payload,
        )

    def restore(self, *, check_code_version: bool = True) -> "Simulation":
        """Rebuild the live :class:`Simulation` this checkpoint froze.

        By default a checkpoint taken under a different source tree is
        refused: restoring state into changed code voids the
        bit-identity guarantee (and may not even unpickle).
        """
        if check_code_version and self.code_version != code_version():
            raise CheckpointError(
                f"checkpoint was taken under code version "
                f"{self.code_version}, current is {code_version()}; "
                "re-run from scratch instead of restoring"
            )
        try:
            sim = pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint payload does not unpickle: {exc}"
            ) from exc
        return sim

    # -- disk format ----------------------------------------------------
    def save(self, path: "str | Path") -> Path:
        """Write atomically (tmp file + rename): a crash mid-write never
        leaves a truncated checkpoint behind."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "format": CHECKPOINT_FORMAT,
            "scenario_hash": self.scenario_hash,
            "cycle": self.cycle,
            "code_version": self.code_version,
            "payload_bytes": len(self.payload),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(json.dumps(header, sort_keys=True).encode())
                fh.write(b"\n")
                fh.write(self.payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "Checkpoint":
        """Read and validate a checkpoint file (header first, payload
        only if the header is sound)."""
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                try:
                    header = json.loads(header_line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    raise CheckpointError(
                        f"{path}: not a checkpoint file (bad header)"
                    ) from None
                if not isinstance(header, dict):
                    raise CheckpointError(
                        f"{path}: not a checkpoint file (bad header)"
                    )
                if header.get("format") != CHECKPOINT_FORMAT:
                    raise CheckpointError(
                        f"{path}: checkpoint format "
                        f"{header.get('format')!r} not supported "
                        f"(this build reads format {CHECKPOINT_FORMAT})"
                    )
                payload = fh.read()
        except FileNotFoundError:
            raise CheckpointError(f"{path}: no such checkpoint") from None
        except OSError as exc:
            raise CheckpointError(f"{path}: unreadable: {exc}") from exc
        expected = header.get("payload_bytes")
        if expected != len(payload):
            raise CheckpointError(
                f"{path}: truncated checkpoint "
                f"({len(payload)} of {expected} payload bytes)"
            )
        return cls(
            scenario_hash=header["scenario_hash"],
            cycle=header["cycle"],
            code_version=header["code_version"],
            payload=payload,
        )


# ---------------------------------------------------------------------------
# checkpoint directories
# ---------------------------------------------------------------------------
def checkpoint_path(
    directory: "str | Path", scenario_hash: str, cycle: int
) -> Path:
    """Canonical file name for one (scenario, cycle) checkpoint."""
    return Path(directory) / (
        f"{scenario_hash[:16]}-c{cycle:012d}{CHECKPOINT_SUFFIX}"
    )


def list_checkpoints(
    directory: "str | Path", scenario_hash: Optional[str] = None
) -> list[Path]:
    """Checkpoint files in ``directory`` (optionally one scenario's),
    oldest first by cycle."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    prefix = scenario_hash[:16] if scenario_hash is not None else None
    found = []
    for path in directory.iterdir():
        match = _NAME_RE.match(path.name)
        if match is None:
            continue
        if prefix is not None and match.group("hash") != prefix:
            continue
        found.append((int(match.group("cycle")), path))
    return [path for _, path in sorted(found)]


def latest_checkpoint(
    directory: "str | Path", scenario: "Scenario"
) -> Optional[Checkpoint]:
    """The newest *restorable* checkpoint of ``scenario``.

    Corrupt, truncated, wrong-scenario or stale-code files are skipped
    (newest first), so a damaged tail never blocks resuming from an
    older good checkpoint.
    """
    want_hash = scenario.content_hash()
    version = code_version()
    for path in reversed(list_checkpoints(directory, want_hash)):
        try:
            checkpoint = Checkpoint.load(path)
        except CheckpointError:
            continue
        if checkpoint.scenario_hash != want_hash:
            continue
        if checkpoint.code_version != version:
            continue
        return checkpoint
    return None


def prune_checkpoints(
    directory: "str | Path", scenario_hash: str, keep: int = 2
) -> None:
    """Delete all but the newest ``keep`` checkpoints of one scenario."""
    paths = list_checkpoints(directory, scenario_hash)
    for path in paths[: max(0, len(paths) - keep)]:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
