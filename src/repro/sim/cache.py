"""Disk memoization of simulation results.

Cache entries are keyed by a *content hash* (normally
:meth:`Scenario.content_hash`, or any canonical-JSON digest from
:func:`spec_hash`) combined with a *code version* — a digest over every
``src/repro`` source file — so editing the simulator silently
invalidates every stale result instead of reviving it.

The default cache root is ``.repro-cache`` in the working directory,
overridable with the ``REPRO_CACHE_DIR`` environment variable or the
``cache_dir`` argument.  Writes are atomic (tmp file + rename) so a
killed run never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.sim.engine import RunResult, run
from repro.sim.scenario import Scenario

#: cache entry layout version; bump on incompatible changes so old
#: entries become clean misses instead of being misparsed
CACHE_FORMAT = 1

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``.py`` file under ``src/repro`` (cached per
    process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def spec_hash(spec: dict) -> str:
    """Stable digest of any JSON-serializable work-unit description
    (the runner hashes ``{"experiment": ..., "seed": ...}`` specs the
    same way scenarios hash their canonical form)."""
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """A directory of memoized result payloads."""

    def __init__(self, cache_dir: "str | Path | None" = None):
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        self.root = Path(cache_dir)
        self.version = code_version()

    def _path(self, content_hash: str) -> Path:
        name = f"{content_hash}-{self.version}.json"
        return self.root / content_hash[:2] / name

    def get(self, content_hash: str) -> Optional[dict]:
        """The stored payload, or None on any kind of miss.

        A truncated or garbage entry file (killed writer predating the
        atomic-write discipline, disk corruption, hand-editing), a
        stale code version or an unknown entry format are all treated
        as misses — the cache never raises on damaged state, it
        re-simulates.
        """
        path = self._path(content_hash)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (
            FileNotFoundError,
            json.JSONDecodeError,
            UnicodeDecodeError,
            OSError,
        ):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("format") != CACHE_FORMAT:
            return None
        if entry.get("code_version") != self.version:  # pragma: no cover
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, content_hash: str, payload: dict) -> Path:
        path = self._path(content_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "content_hash": content_hash,
            "code_version": self.version,
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def cached_run(
    scenario: Scenario,
    cache: Optional[ResultCache] = None,
    *,
    full_sweep: bool = False,
) -> RunResult:
    """:func:`repro.sim.engine.run` with disk memoization.

    A hit returns the stored :class:`RunResult` without simulating; a
    miss runs the scenario and stores the result under its content
    hash + the current code version.
    """
    cache = cache or ResultCache()
    key = scenario.content_hash()
    payload = cache.get(key)
    if payload is not None:
        return RunResult(**payload)
    result = run(scenario, full_sweep=full_sweep)
    cache.put(key, dataclasses.asdict(result))
    return result
