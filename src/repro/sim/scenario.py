"""Frozen, JSON-round-trippable descriptions of complete simulation runs.

A :class:`Scenario` is a pure value: the NoC configuration, the traffic
offered to it, the hardware trojans soldered into it, the transient
fault environment, the defense stack, and the run limits.  Two
scenarios with equal field values serialize to the same canonical JSON
and therefore share one :meth:`~Scenario.content_hash` — the key the
result cache and the experiment runner use to identify work units.

The traffic vocabulary mirrors the sources in :mod:`repro.traffic`:

=====================  ====================================================
:class:`SyntheticTraffic`  Bernoulli synthetic patterns (uniform/transpose/…)
:class:`AppTraffic`        PARSEC application profiles, optionally core-pinned
:class:`FloodTraffic`      bandwidth-depletion flood attackers
:class:`ExplicitTraffic`   a literal packet schedule (micro-workloads)
=====================  ====================================================

Seeds live **inside** each spec (matching the per-source ``SeededStream``
namespaces of the existing experiments) so that moving an experiment
onto the scenario layer does not move its published numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.detector import DetectorConfig
from repro.core.lob import Granularity, ObMethod
from repro.core.mitigation import MitigationConfig
from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.topology import Direction, LinkKey
from repro.resilience.containment import ContainmentConfig, ProbationConfig
from repro.resilience.detect import DetectConfig
from repro.resilience.localize import LocalizeConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.sentinel import SentinelSpec

#: serialization format; bump on incompatible layout changes so stale
#: cached results are never revived under a colliding hash
SCENARIO_FORMAT = 1


class ScenarioDecodeError(ValueError):
    """A scenario payload cannot be decoded.

    Raised with the offending key named — an unknown traffic ``kind``,
    a missing required field, or an unexpected extra field — instead of
    surfacing a bare ``KeyError``/``TypeError`` from deep inside the
    codec.
    """


def _require(data: dict, key: str, where: str):
    try:
        return data[key]
    except (KeyError, TypeError):
        raise ScenarioDecodeError(
            f"{where}: missing required key {key!r}"
        ) from None


def _build_spec(cls, data: dict, where: str):
    """Construct a frozen spec dataclass from decoded fields, rejecting
    unknown keys and naming missing ones."""
    names = {f.name for f in dataclasses.fields(cls)}
    extra = sorted(set(data) - names)
    if extra:
        raise ScenarioDecodeError(
            f"{where}: unexpected key(s) {', '.join(map(repr, extra))}"
        )
    try:
        return cls(**data)
    except TypeError as exc:
        raise ScenarioDecodeError(f"{where}: {exc}") from None


# ---------------------------------------------------------------------------
# traffic specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticTraffic:
    """Bernoulli injection of a named synthetic pattern."""

    #: key into :data:`repro.traffic.synthetic.PATTERNS`
    pattern: str = "uniform"
    injection_rate: float = 0.02
    payload_words: int = 2
    duration: Optional[int] = None
    max_packets: Optional[int] = None
    seed: int = 0


@dataclass(frozen=True)
class AppTraffic:
    """Live traffic from a PARSEC application profile."""

    profile: str = "blackscholes"
    seed: int = 0
    duration: Optional[int] = None
    max_packets: Optional[int] = None
    #: multiplies the profile's injection rate (throughput-bound runs)
    rate_scale: float = 1.0
    #: pin the application to a core subset (TDM experiments)
    cores: Optional[tuple[int, ...]] = None
    domain: int = 0
    vc_classes: Optional[tuple[int, ...]] = None
    pkt_id_base: int = 0


@dataclass(frozen=True)
class FloodTraffic:
    """Rogue cores flooding victim cores at a fixed rate."""

    rogue_cores: tuple[int, ...] = ()
    victim_cores: tuple[int, ...] = ()
    rate: float = 1.0
    payload_words: int = 3
    start_cycle: int = 0
    stop_cycle: Optional[int] = None
    seed: int = 0
    pkt_id_base: int = 10_000_000


@dataclass(frozen=True)
class PacketSpec:
    """One literal packet, offered at ``inject_at``."""

    pkt_id: int
    src_core: int
    dst_core: int
    inject_at: int = 0
    vc_class: int = 0
    mem_addr: int = 0
    payload: tuple[int, ...] = ()
    domain: int = 0


@dataclass(frozen=True)
class ExplicitTraffic:
    """A fully enumerated packet schedule."""

    packets: tuple[PacketSpec, ...] = ()


TrafficSpec = Union[SyntheticTraffic, AppTraffic, FloodTraffic, ExplicitTraffic]

_TRAFFIC_KINDS = {
    "synthetic": SyntheticTraffic,
    "app": AppTraffic,
    "flood": FloodTraffic,
    "explicit": ExplicitTraffic,
}
_KIND_OF_TRAFFIC = {cls: kind for kind, cls in _TRAFFIC_KINDS.items()}


# ---------------------------------------------------------------------------
# attack and fault specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TrojanSpec:
    """One TASP instance soldered into a link.

    ``enable_at`` arms the trojan once the simulation clock reaches
    that cycle (the Fig. 11/12 mid-run activations); ``enabled`` arms
    it from cycle 0.  A spec with both off models dormant silicon.
    ``disable_at`` disarms it again mid-run — the transient-attacker
    model the probation/reinstatement loop recovers from (a kill-switch
    withdrawal, a trigger stream ending, or an attacker going quiet).
    """

    link: LinkKey
    target: TargetSpec
    config: TaspConfig = TaspConfig()
    enabled: bool = True
    enable_at: Optional[int] = None
    disable_at: Optional[int] = None

    def __post_init__(self) -> None:
        if (
            self.disable_at is not None
            and self.enable_at is not None
            and self.disable_at <= self.enable_at
        ):
            raise ValueError("disable_at must come after enable_at")


@dataclass(frozen=True)
class TransientFaultSpec:
    """A per-traversal random fault process on one link.

    ``labels`` are the ``SeededStream`` namespace labels the fault
    model's RNG is derived from — carried verbatim so a scenario
    reproduces the exact fault sequence of the hand-wired experiments.
    """

    link: LinkKey
    rate: float
    double_fraction: float = 0.0
    seed: int = 0
    labels: tuple = ()


@dataclass(frozen=True)
class DropAttackSpec:
    """A gray-hole/packet-drop attack on one link's recovery path.

    Backed by :class:`repro.faults.models.GrayholeAttack`: each selected
    traversal takes a fresh double-bit flip, which SECDED always detects
    and never corrects — so the "drop" manifests as retries consumed on
    the retransmission path rather than silent loss.  ``enable_at`` /
    ``disable_at`` schedule the compromise window (None = from cycle 0 /
    never released).
    """

    link: LinkKey
    drop_probability: float = 1.0
    enable_at: Optional[int] = None
    disable_at: Optional[int] = None
    seed: int = 0


def trojan_specs(
    links,
    target: TargetSpec,
    config: TaspConfig = TaspConfig(),
    enabled: bool = True,
    enable_at: Optional[int] = None,
) -> tuple[TrojanSpec, ...]:
    """Replicate ``attach_trojans``'s seeding convention: the i-th
    infected link gets ``config.seed + i`` so co-resident trojans do
    not trigger in lockstep."""
    return tuple(
        TrojanSpec(
            link=key,
            target=target,
            config=dataclasses.replace(config, seed=config.seed + i),
            enabled=enabled,
            enable_at=enable_at,
        )
        for i, key in enumerate(links)
    )


def coordinated_trojans(
    links,
    target: TargetSpec,
    config: TaspConfig = TaspConfig(),
    start: int = 0,
    stagger: int = 0,
    stop: Optional[int] = None,
) -> tuple[TrojanSpec, ...]:
    """N TASP instances with a coordinated activation schedule.

    The i-th link's trojan arms at ``start + i * stagger`` (stagger=0
    is a simultaneous strike) and draws from seed ``config.seed + i``,
    so the instances are correlated in *time* but not in payload
    sequence — the coordinated-attacker model of ROADMAP item 2.
    With ``stop``, every instance disarms at that cycle — the
    transient coordinated strike the reinstatement experiment recovers
    from.
    """
    return tuple(
        TrojanSpec(
            link=key,
            target=target,
            config=dataclasses.replace(config, seed=config.seed + i),
            enabled=False,
            enable_at=start + i * stagger,
            disable_at=stop,
        )
        for i, key in enumerate(links)
    )


def distributed_flood(
    rogue_cores,
    victim_cores,
    rate: float = 0.25,
    payload_words: int = 3,
    start_cycle: int = 0,
    stop_cycle: Optional[int] = None,
    seed: int = 0,
) -> tuple[FloodTraffic, ...]:
    """A distributed flooding DDoS: one independent flood source per
    victim, each fed by every rogue core.

    Splitting per victim gives each stream its own seed and packet-id
    band, so delivered-throughput accounting can separate benign
    traffic (ids below 10M) from each attacker's flood.
    """
    rogues = tuple(rogue_cores)
    return tuple(
        FloodTraffic(
            rogue_cores=rogues,
            victim_cores=(victim,),
            rate=rate,
            payload_words=payload_words,
            start_cycle=start_cycle,
            stop_cycle=stop_cycle,
            seed=seed + i,
            pkt_id_base=10_000_000 + i * 1_000_000,
        )
        for i, victim in enumerate(victim_cores)
    )


# ---------------------------------------------------------------------------
# defense stack
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DefenseSpec:
    """What the network fights back with."""

    #: build the proposed mitigated router (detector + L-Ob)
    mitigated: bool = False
    #: non-default mitigation tuning (implies ``mitigated``)
    mitigation: Optional[MitigationConfig] = None
    #: end-to-end obfuscation layer
    e2e: bool = False
    #: attach the retransmission watchdog escalation ladder
    watchdog: Optional[WatchdogConfig] = None
    #: >0 selects the TDM QoS baseline with this many domains
    tdm_domains: int = 0
    #: links taken out of service via up*/down* rerouting (Ariadne
    #: baseline); non-empty forces table routing
    rerouted_links: tuple[LinkKey, ...] = ()
    #: attach the network-level containment coordinator on top of the
    #: watchdog (pure observer until the watchdog escalates)
    containment: Optional[ContainmentConfig] = None
    #: probe-based probation/reinstatement of contained links (requires
    #: ``containment``); None keeps every condemnation permanent
    probation: Optional[ProbationConfig] = None
    #: early traffic-statistics detector feeding the watchdog ladder
    #: (requires ``watchdog`` to act on link flags)
    detector: Optional[DetectConfig] = None
    #: topology-aware attacker localization over the detector's
    #: footprints (requires ``detector``); with ``containment`` it
    #: switches quarantine to localized neighborhoods
    localizer: Optional[LocalizeConfig] = None


# ---------------------------------------------------------------------------
# the scenario
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A complete, reproducible run description."""

    name: str = "scenario"
    cfg: NoCConfig = PAPER_CONFIG
    traffic: tuple[TrafficSpec, ...] = ()
    trojans: tuple[TrojanSpec, ...] = ()
    #: scheduled packet-drop attacks on the recovery path
    attacks: tuple[DropAttackSpec, ...] = ()
    faults: tuple[TransientFaultSpec, ...] = ()
    defense: DefenseSpec = DefenseSpec()
    #: run exactly this many cycles (None = run until drained)
    duration: Optional[int] = None
    #: drain-mode cycle budget
    max_cycles: int = 10_000
    #: abort drain mode after this many delivery-free cycles
    stall_limit: Optional[int] = None
    #: Network.sample_interval (0 disables periodic samples)
    sample_interval: int = 10
    #: online invariant sentinel configuration (None = no sentinel)
    sentinel: Optional[SentinelSpec] = None
    #: experiment-level seed, recorded for provenance/hashing; the
    #: traffic and fault specs carry the derived per-stream seeds
    seed: int = 0
    #: advance loop: "sweep" (per-cycle oracle) or "event" (wakeup
    #: scheduler).  The two are byte-identical by contract, so the
    #: engine is *excluded* from the content hash — results cache and
    #: checkpoints are shared across engines.
    engine: str = "sweep"

    def __post_init__(self) -> None:
        if self.engine not in ("sweep", "event"):
            raise ValueError(
                f"unknown engine {self.engine!r} "
                "(expected 'sweep' or 'event')"
            )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        cfg_fields = _plain_fields(self.cfg)
        # topology keys are encoded only when set so every pre-topology
        # scenario document (and its content hash) stays byte-identical
        if cfg_fields["topology"] == "mesh":
            del cfg_fields["topology"]
        if not cfg_fields["express_interval"]:
            del cfg_fields["express_interval"]
        out = {
            "format": SCENARIO_FORMAT,
            "name": self.name,
            "cfg": cfg_fields,
            "traffic": [_encode_traffic(t) for t in self.traffic],
            "trojans": [_encode_trojan(t) for t in self.trojans],
            "faults": [_encode_fault(f) for f in self.faults],
            "defense": _encode_defense(self.defense),
            "duration": self.duration,
            "max_cycles": self.max_cycles,
            "stall_limit": self.stall_limit,
            "sample_interval": self.sample_interval,
            "sentinel": _encode_sentinel(self.sentinel),
            "seed": self.seed,
        }
        # encoded only when present so pre-existing scenario hashes
        # (result cache keys, checkpoint provenance) stay unchanged
        if self.attacks:
            out["attacks"] = [_encode_attack(a) for a in self.attacks]
        if self.engine != "sweep":
            out["engine"] = self.engine
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        fmt = data.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ScenarioDecodeError(
                f"scenario format {fmt} not supported "
                f"(this build reads format {SCENARIO_FORMAT})"
            )
        cfg = _require(data, "cfg", "scenario")
        if not isinstance(cfg, dict):
            raise ScenarioDecodeError("scenario: 'cfg' must be an object")
        return cls(
            name=_require(data, "name", "scenario"),
            cfg=_build_spec(NoCConfig, cfg, "scenario cfg"),
            traffic=tuple(
                _decode_traffic(t)
                for t in _require(data, "traffic", "scenario")
            ),
            trojans=tuple(
                _decode_trojan(t)
                for t in _require(data, "trojans", "scenario")
            ),
            # tolerant .get: pre-attack scenario files stay decodable
            attacks=tuple(
                _decode_attack(a) for a in data.get("attacks", ())
            ),
            faults=tuple(
                _decode_fault(f)
                for f in _require(data, "faults", "scenario")
            ),
            defense=_decode_defense(_require(data, "defense", "scenario")),
            duration=_require(data, "duration", "scenario"),
            max_cycles=_require(data, "max_cycles", "scenario"),
            stall_limit=_require(data, "stall_limit", "scenario"),
            sample_interval=_require(data, "sample_interval", "scenario"),
            # tolerant .get: pre-sentinel scenario files stay decodable
            sentinel=_decode_sentinel(data.get("sentinel")),
            seed=_require(data, "seed", "scenario"),
            # tolerant .get: pre-engine scenario files stay decodable
            engine=_decode_engine(data.get("engine", "sweep")),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Stable hex digest of the canonical serialized form.

        The engine mode is stripped before hashing: the two engines
        are byte-identical by contract (enforced by the CI
        engine-oracle job), so sweep and event variants of a scenario
        share cache entries and checkpoint provenance.
        """
        payload = self.to_dict()
        payload.pop("engine", None)
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# codec internals
# ---------------------------------------------------------------------------
def _plain_fields(obj) -> dict:
    """Field dict of a dataclass whose values are all JSON-native."""
    return {
        f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
    }


def _encode_link(key: LinkKey) -> list:
    return [key[0], key[1].name]


def _decode_link(data) -> LinkKey:
    return (data[0], Direction[data[1]])


def _encode_traffic(spec: TrafficSpec) -> dict:
    kind = _KIND_OF_TRAFFIC[type(spec)]
    if isinstance(spec, ExplicitTraffic):
        body = {
            "packets": [
                {**_plain_fields(p), "payload": list(p.payload)}
                for p in spec.packets
            ]
        }
    else:
        body = _plain_fields(spec)
        for name in ("cores", "vc_classes", "rogue_cores", "victim_cores"):
            if name in body and body[name] is not None:
                body[name] = list(body[name])
    return {"kind": kind, **body}


def _decode_traffic(data: dict) -> TrafficSpec:
    data = dict(data)
    kind = _require(data, "kind", "traffic spec")
    data.pop("kind")
    cls = _TRAFFIC_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(_TRAFFIC_KINDS))
        raise ScenarioDecodeError(
            f"traffic spec: unknown kind {kind!r} (known kinds: {known})"
        )
    where = f"traffic spec kind={kind!r}"
    if cls is ExplicitTraffic:
        packets = []
        for p in _require(data, "packets", where):
            payload = tuple(_require(p, "payload", f"{where} packet"))
            packets.append(
                _build_spec(
                    PacketSpec,
                    {**p, "payload": payload},
                    f"{where} packet",
                )
            )
        data.pop("packets")
        if data:
            raise ScenarioDecodeError(
                f"{where}: unexpected key(s) "
                f"{', '.join(map(repr, sorted(data)))}"
            )
        return ExplicitTraffic(packets=tuple(packets))
    for name in ("cores", "vc_classes", "rogue_cores", "victim_cores"):
        if name in data and data[name] is not None:
            data[name] = tuple(data[name])
    return _build_spec(cls, data, where)


def _encode_trojan(spec: TrojanSpec) -> dict:
    config = _plain_fields(spec.config)
    if config["wires"] is not None:
        config["wires"] = list(config["wires"])
    out = {
        "link": _encode_link(spec.link),
        "target": _plain_fields(spec.target),
        "config": config,
        "enabled": spec.enabled,
        "enable_at": spec.enable_at,
    }
    # key emitted only when set so pre-deactivation hashes are preserved
    if spec.disable_at is not None:
        out["disable_at"] = spec.disable_at
    return out


def _decode_trojan(data: dict) -> TrojanSpec:
    config = dict(data["config"])
    if config["wires"] is not None:
        config["wires"] = tuple(config["wires"])
    return TrojanSpec(
        link=_decode_link(data["link"]),
        target=TargetSpec(**data["target"]),
        config=TaspConfig(**config),
        enabled=data["enabled"],
        enable_at=data["enable_at"],
        # tolerant .get: pre-deactivation scenario files stay decodable
        disable_at=data.get("disable_at"),
    )


def _encode_fault(spec: TransientFaultSpec) -> dict:
    return {
        "link": _encode_link(spec.link),
        "rate": spec.rate,
        "double_fraction": spec.double_fraction,
        "seed": spec.seed,
        "labels": list(spec.labels),
    }


def _decode_fault(data: dict) -> TransientFaultSpec:
    return TransientFaultSpec(
        link=_decode_link(data["link"]),
        rate=data["rate"],
        double_fraction=data["double_fraction"],
        seed=data["seed"],
        labels=tuple(data["labels"]),
    )


def _encode_attack(spec: DropAttackSpec) -> dict:
    return {
        "link": _encode_link(spec.link),
        "drop_probability": spec.drop_probability,
        "enable_at": spec.enable_at,
        "disable_at": spec.disable_at,
        "seed": spec.seed,
    }


def _decode_attack(data: dict) -> DropAttackSpec:
    data = dict(data)
    link = _decode_link(_require(data, "link", "attack spec"))
    return _build_spec(
        DropAttackSpec, {**data, "link": link}, "attack spec"
    )


def _encode_sentinel(spec: Optional[SentinelSpec]) -> Optional[dict]:
    if spec is None:
        return None
    body = _plain_fields(spec)
    body["families"] = list(body["families"])
    return body


def _decode_sentinel(data: Optional[dict]) -> Optional[SentinelSpec]:
    if data is None:
        return None
    data = dict(data)
    if "families" in data:
        data["families"] = tuple(data["families"])
    return _build_spec(SentinelSpec, data, "sentinel spec")


def _decode_engine(value) -> str:
    if value not in ("sweep", "event"):
        raise ScenarioDecodeError(
            f"scenario: unknown engine {value!r} "
            "(expected 'sweep' or 'event')"
        )
    return value


def _encode_defense(spec: DefenseSpec) -> dict:
    mitigation = None
    if spec.mitigation is not None:
        mitigation = {
            **_plain_fields(spec.mitigation),
            "detector": _plain_fields(spec.mitigation.detector),
            "method_sequence": [
                [method.name, granularity.name]
                for method, granularity in spec.mitigation.method_sequence
            ],
        }
    watchdog = (
        _plain_fields(spec.watchdog) if spec.watchdog is not None else None
    )
    out = {
        "mitigated": spec.mitigated,
        "mitigation": mitigation,
        "e2e": spec.e2e,
        "watchdog": watchdog,
        "tdm_domains": spec.tdm_domains,
        "rerouted_links": [_encode_link(k) for k in spec.rerouted_links],
    }
    # keys emitted only when set so pre-containment / pre-probation
    # hashes are preserved
    if spec.containment is not None:
        out["containment"] = _plain_fields(spec.containment)
    if spec.probation is not None:
        out["probation"] = _plain_fields(spec.probation)
    if spec.detector is not None:
        out["detector"] = _plain_fields(spec.detector)
    if spec.localizer is not None:
        out["localizer"] = _plain_fields(spec.localizer)
    return out


def _decode_defense(data: dict) -> DefenseSpec:
    mitigation = None
    if data["mitigation"] is not None:
        raw = dict(data["mitigation"])
        raw["detector"] = DetectorConfig(**raw["detector"])
        raw["method_sequence"] = tuple(
            (ObMethod[method], Granularity[granularity])
            for method, granularity in raw["method_sequence"]
        )
        mitigation = MitigationConfig(**raw)
    watchdog = (
        WatchdogConfig(**data["watchdog"])
        if data["watchdog"] is not None
        else None
    )
    raw_containment = data.get("containment")
    containment = (
        _build_spec(ContainmentConfig, dict(raw_containment),
                    "containment spec")
        if raw_containment is not None
        else None
    )
    # tolerant .get: pre-probation scenario files stay decodable
    raw_probation = data.get("probation")
    probation = (
        _build_spec(ProbationConfig, dict(raw_probation), "probation spec")
        if raw_probation is not None
        else None
    )
    raw_detector = data.get("detector")
    detector = (
        _build_spec(DetectConfig, dict(raw_detector), "detector spec")
        if raw_detector is not None
        else None
    )
    # tolerant .get: pre-localization scenario files stay decodable
    raw_localizer = data.get("localizer")
    localizer = (
        _build_spec(LocalizeConfig, dict(raw_localizer), "localizer spec")
        if raw_localizer is not None
        else None
    )
    return DefenseSpec(
        mitigated=data["mitigated"],
        mitigation=mitigation,
        e2e=data["e2e"],
        watchdog=watchdog,
        tdm_domains=data["tdm_domains"],
        rerouted_links=tuple(
            _decode_link(k) for k in data["rerouted_links"]
        ),
        containment=containment,
        probation=probation,
        detector=detector,
        localizer=localizer,
    )
