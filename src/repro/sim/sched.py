"""Deterministic wakeup scheduling: the event-driven engine core.

The sweep engine advances the clock one cycle at a time and asks every
active component for work; on drain-heavy or attack-quiescent traffic
most of those cycles are provable no-ops, and the interpreter pays for
them anyway.  The event engine closes that gap without forking the
simulation semantics: a landed cycle executes the ordinary
``Network.step()`` (so behaviour on processed cycles is the sweep
engine's, by construction), and between landings the
:class:`EventCore` *teleports* the clock across cycles no component
could possibly act on.

Correctness therefore reduces to one question — "is cycle ``c`` a
guaranteed no-op?" — answered conservatively by the next-event hooks
this PR adds across the stack:

* ``Link.next_event_cycle()`` — earliest in-flight codeword or ACK
  arrival;
* ``CreditTracker.next_visible_cycle()`` — earliest pending credit
  return;
* ``RetransBuffer.next_event_cycle(cycle)`` — deferred-READY entries
  wake at ``defer_until``; anything launchable or in flight pins the
  clock to "now";
* ``Router.next_event_cycle(cycle)`` — folds inputs, ejection queues,
  retransmission buffers and credit trackers;
* ``Network.next_event_cycle()`` — folds the active sets (a settled
  component demands nothing, so idle components cost zero);
* ``TrafficSource.next_active_cycle(cycle)`` — earliest cycle the
  source may emit packets *or advance its RNG* (the RNG clause is what
  keeps skipping bit-exact: synthetic sources draw every non-done
  cycle, so they simply refuse to be skipped);
* monitor ``next_event_cycle(network, cycle)`` — the watchdog and the
  containment coordinator demand every non-quiescent cycle (their
  ladder rungs and gate jitter are cycle-sensitive), the sentinel and
  the obs window collector expose their pure cadences.  A monitor
  without the hook disables skipping entirely while it is attached —
  unknown observers are never second-guessed.

Any component that cannot cheaply prove idleness just answers "now"
and the engine lands the cycle; wrong-but-conservative degrades to
sweep speed, never to wrong results.

The :class:`WakeupWheel` underneath is a cycle-keyed bucket wheel with
stable FIFO ordering inside each cycle and set-based dedup, so wake
accounting (``EventCore.wake_counts``) is deterministic and immune to
``PYTHONHASHSEED``.  The wheel is bookkeeping, not ground truth: every
leap decision re-derives the candidate set from live component state,
so a stale early wake merely lands a cycle (harmless — landed cycles
run real steps) and a stale late wake is superseded by a fresher
minimum.  Both classes are plain picklable data, so checkpoints of an
event-mode run carry the scheduler state (see
``repro.sim.checkpoint``, format 2).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class WakeupWheel:
    """Cycle-keyed wakeup buckets with stable FIFO order per cycle.

    ``schedule(cycle, token)`` is idempotent per (cycle, token) pair;
    tokens inside one cycle pop in first-scheduled order.  Ordering is
    list-based throughout, so iteration never depends on hash order.
    """

    __slots__ = ("_buckets", "_bucket_sets", "_heap")

    def __init__(self) -> None:
        #: cycle -> tokens in first-scheduled order
        self._buckets: dict[int, list[str]] = {}
        #: cycle -> same tokens as a set (dedup membership only)
        self._bucket_sets: dict[int, set[str]] = {}
        #: min-heap of bucket cycles (lazily deduplicated)
        self._heap: list[int] = []

    def schedule(self, cycle: int, token: str) -> None:
        """Arrange for ``token`` to wake at ``cycle``."""
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [token]
            self._bucket_sets[cycle] = {token}
            heapq.heappush(self._heap, cycle)
            return
        members = self._bucket_sets[cycle]
        if token not in members:
            members.add(token)
            bucket.append(token)

    def next_cycle(self, now: int) -> Optional[int]:
        """Earliest scheduled cycle >= ``now`` (stale buckets below
        ``now`` are discarded on the way)."""
        heap = self._heap
        while heap:
            cycle = heap[0]
            if cycle not in self._buckets:
                heapq.heappop(heap)  # lazily deleted duplicate
                continue
            if cycle < now:
                heapq.heappop(heap)
                del self._buckets[cycle]
                del self._bucket_sets[cycle]
                continue
            return cycle
        return None

    def pop_due(self, now: int) -> list[str]:
        """Retire every token scheduled at or before ``now``, in
        (cycle, FIFO) order."""
        out: list[str] = []
        heap = self._heap
        while heap and heap[0] <= now:
            cycle = heapq.heappop(heap)
            bucket = self._buckets.pop(cycle, None)
            if bucket is None:
                continue  # lazily deleted duplicate
            del self._bucket_sets[cycle]
            out.extend(bucket)
        return out

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def __bool__(self) -> bool:
        return bool(self._buckets)

    # pickle support for __slots__ (no __dict__)
    def __getstate__(self):
        return (self._buckets, self._bucket_sets, self._heap)

    def __setstate__(self, state):
        self._buckets, self._bucket_sets, self._heap = state


class EventCore:
    """Event-driven advance loops for one :class:`Simulation`.

    Owns the wakeup wheel and the skip decision.  The core never steps
    the network itself — it decides *which* cycles must be stepped and
    delegates each landing to ``sim.step()``, so a landed cycle is
    bit-identical to the sweep engine's by construction.
    """

    __slots__ = (
        "sim",
        "wheel",
        "wake_counts",
        "cycles_skipped",
        "leaps",
        "decisions",
    )

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.wheel = WakeupWheel()
        #: token -> wakes retired through the wheel (deterministic)
        self.wake_counts: dict[str, int] = {}
        #: no-op cycles the clock teleported across
        self.cycles_skipped = 0
        #: number of teleports
        self.leaps = 0
        #: skip decisions taken (landings + leaps)
        self.decisions = 0
        # Statically known wakes: scheduled trojan enables and attack
        # arm/disarm edges self-schedule at build time.
        for at, _index, arm in sim._pending_enables:
            self.wheel.schedule(
                at, "trojan-enable" if arm else "trojan-disable"
            )
        for at, _index, arm in sim._pending_attack_events:
            self.wheel.schedule(at, "attack-arm" if arm else "attack-disarm")

    # -- the skip decision ------------------------------------------------
    def _next_due(self, bound: int, stall: Optional[int] = None) -> int:
        """First cycle >= the current clock that must be processed, or
        ``bound`` when every component is provably idle until then.

        Every candidate is consulted against live state; future
        candidates are recorded on the wheel (for accounting and
        checkpoint persistence) and the earliest one wins.  The method
        early-exits the moment any candidate demands "now", keeping
        busy-path overhead to a few attribute reads per cycle.
        """
        sim = self.sim
        net = sim.network
        cycle = net.cycle
        self.decisions += 1
        wheel = self.wheel

        # components (routers, links, credits, retransmission timers)
        component = net.next_event_cycle()
        if component is not None:
            if component <= cycle:
                return cycle
            wheel.schedule(component, "component")

        # traffic injectors
        traffic = net.traffic
        if traffic is not None:
            when = traffic.next_active_cycle(cycle)
            if when is not None:
                if when <= cycle:
                    return cycle
                wheel.schedule(when, "traffic")

        # monitors (watchdog ladder, containment, sentinel, obs window);
        # a monitor without the hook forbids skipping outright
        for monitor in net.monitors:
            hook = getattr(monitor, "next_event_cycle", None)
            if hook is None:
                return cycle
            when = hook(net, cycle)
            if when is not None:
                if when <= cycle:
                    return cycle
                wheel.schedule(when, "monitor:" + type(monitor).__name__)

        # back-pressure sampling cadence
        interval = net.sample_interval
        if interval:
            if cycle % interval == 0:
                return cycle
            wheel.schedule((cycle // interval + 1) * interval, "sample")

        # periodic checkpoints and forensics snapshots fire *after* the
        # step that reaches their threshold, so the cycle that must be
        # processed is threshold - 1
        if sim._ckpt_next is not None:
            due = sim._ckpt_next - 1
            if due <= cycle:
                return cycle
            wheel.schedule(due, "checkpoint")
        if sim.forensics is not None:
            due = sim.forensics._next_snapshot - 1
            if due <= cycle:
                return cycle
            wheel.schedule(due, "forensics")

        # drain-mode stall abort: the sweep engine detects the stall on
        # the step after last_delivery + stall_limit cycles of silence
        if stall is not None:
            if stall <= cycle:
                return cycle
            wheel.schedule(stall, "stall-abort")

        due = wheel.next_cycle(cycle)
        if due is None or due > bound:
            return bound
        return due

    def _leap(self, target: int) -> None:
        """Teleport the clock to ``target`` (all skipped cycles are
        proven no-ops by :meth:`_next_due`)."""
        net = self.sim.network
        self.cycles_skipped += target - net.cycle
        self.leaps += 1
        net.cycle = target

    def _retire_wakes(self) -> None:
        wheel = self.wheel
        heap = wheel._heap
        if not heap or heap[0] > self.sim.network.cycle:
            return
        for token in wheel.pop_due(self.sim.network.cycle):
            self.wake_counts[token] = self.wake_counts.get(token, 0) + 1

    # -- advance loops ----------------------------------------------------
    def advance_to(self, target: int) -> None:
        """Event-mode :meth:`Simulation.advance_to`: identical landed
        cycles, teleportation across the proven-idle ones."""
        sim = self.sim
        net = sim.network
        prof = net.profiler
        while net.cycle < target:
            _t = perf_counter() if prof is not None else 0.0
            due = self._next_due(target)
            if due > net.cycle:
                self._leap(min(due, target))
            if prof is not None:
                prof.add("wheel", perf_counter() - _t)
            if net.cycle >= target:
                break
            self._retire_wakes()
            sim.step()
        sim._fire_enables()

    def run_until_drained(
        self, max_cycles: int, stall_limit: Optional[int] = None
    ) -> bool:
        """Event-mode :meth:`Simulation.run_until_drained`: same drain
        detection, stall abort and cycle budget as the sweep loop."""
        sim = self.sim
        net = sim.network
        stats = net.stats
        prof = net.profiler
        end = net.cycle + max_cycles
        while net.cycle < end:
            if net.traffic is None or net.traffic.done(net.cycle):
                # quiescent (empty active sets) + finished traffic is
                # the O(1) drained fast path; the full scan still runs
                # when only credit returns are in flight — they keep
                # the active sets warm but don't block draining
                if net.quiescent or net.drained:
                    return True
            stall = None
            if stall_limit is not None and stats.last_delivery_cycle >= 0:
                stall = stats.last_delivery_cycle + stall_limit
            _t = perf_counter() if prof is not None else 0.0
            due = self._next_due(end, stall=stall)
            if due > net.cycle:
                self._leap(min(due, end))
            if prof is not None:
                prof.add("wheel", perf_counter() - _t)
            if net.cycle >= end:
                break
            self._retire_wakes()
            sim.step()
            if (
                stall_limit is not None
                and stats.stalled_for(net.cycle) > stall_limit
            ):
                return False
        return net.drained
