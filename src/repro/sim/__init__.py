"""Declarative simulation layer.

``sim`` sits between the cycle-accurate :mod:`repro.noc` core and the
paper's experiments: a :class:`~repro.sim.scenario.Scenario` describes a
complete run (topology config, traffic, trojans, defenses, limits) as a
frozen, JSON-round-trippable value with a stable content hash, and
:mod:`repro.sim.engine` turns it into a wired :class:`~repro.noc.network.Network`
or a finished :class:`~repro.sim.engine.RunResult`.  Results can be
memoized on disk through :mod:`repro.sim.cache`.
"""

from repro.sim.scenario import (
    AppTraffic,
    DefenseSpec,
    ExplicitTraffic,
    FloodTraffic,
    PacketSpec,
    Scenario,
    SyntheticTraffic,
    TransientFaultSpec,
    TrojanSpec,
    trojan_specs,
)
from repro.sim.engine import (
    RunResult,
    Simulation,
    attach_trojan_specs,
    build,
    run,
)
from repro.sim.cache import ResultCache, cached_run, code_version, spec_hash

__all__ = [
    "AppTraffic",
    "DefenseSpec",
    "ExplicitTraffic",
    "FloodTraffic",
    "PacketSpec",
    "ResultCache",
    "RunResult",
    "Scenario",
    "Simulation",
    "SyntheticTraffic",
    "TransientFaultSpec",
    "TrojanSpec",
    "attach_trojan_specs",
    "build",
    "cached_run",
    "code_version",
    "run",
    "spec_hash",
    "trojan_specs",
]
