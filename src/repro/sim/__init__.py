"""Declarative simulation layer.

``sim`` sits between the cycle-accurate :mod:`repro.noc` core and the
paper's experiments: a :class:`~repro.sim.scenario.Scenario` describes a
complete run (topology config, traffic, trojans, defenses, limits) as a
frozen, JSON-round-trippable value with a stable content hash, and
:mod:`repro.sim.engine` turns it into a wired :class:`~repro.noc.network.Network`
or a finished :class:`~repro.sim.engine.RunResult`.  Results can be
memoized on disk through :mod:`repro.sim.cache`, and live simulation
state can be frozen to disk and resumed through
:mod:`repro.sim.checkpoint`.

Failure forensics ride on top: :mod:`repro.sim.sentinel` audits
invariants and progress online, :mod:`repro.sim.forensics` captures
failures as replayable ``*.repro`` bundles, and
:mod:`repro.sim.shrink` delta-debugs a failing scenario down to its
minimal cause.
"""

from repro.sim.scenario import (
    AppTraffic,
    DefenseSpec,
    DropAttackSpec,
    ExplicitTraffic,
    FloodTraffic,
    PacketSpec,
    Scenario,
    ScenarioDecodeError,
    SyntheticTraffic,
    TransientFaultSpec,
    TrojanSpec,
    trojan_specs,
)
from repro.sim.engine import (
    ENGINE_ENV,
    RunResult,
    Simulation,
    attach_trojan_specs,
    build,
    resume_or_build,
    run,
)
from repro.sim.sched import EventCore, WakeupWheel
from repro.sim.cache import ResultCache, cached_run, code_version, spec_hash
from repro.sim.checkpoint import (
    Checkpoint,
    CheckpointError,
    latest_checkpoint,
    list_checkpoints,
    prune_checkpoints,
)
from repro.sim.sentinel import Sentinel, SentinelSpec, SentinelTrip
from repro.sim.forensics import (
    Forensics,
    ForensicsError,
    ReproBundle,
    failure_signature,
    load_bundle,
    planted_deadlock_scenario,
    replay_bundle,
)
from repro.sim.shrink import (
    ShrinkError,
    ShrinkResult,
    shrink_bundle,
    shrink_scenario,
)

__all__ = [
    "ENGINE_ENV",
    "EventCore",
    "WakeupWheel",
    "Checkpoint",
    "CheckpointError",
    "Forensics",
    "ForensicsError",
    "ReproBundle",
    "ScenarioDecodeError",
    "Sentinel",
    "SentinelSpec",
    "SentinelTrip",
    "ShrinkError",
    "ShrinkResult",
    "failure_signature",
    "load_bundle",
    "planted_deadlock_scenario",
    "replay_bundle",
    "shrink_bundle",
    "shrink_scenario",
    "latest_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
    "resume_or_build",
    "AppTraffic",
    "DefenseSpec",
    "DropAttackSpec",
    "ExplicitTraffic",
    "FloodTraffic",
    "PacketSpec",
    "ResultCache",
    "RunResult",
    "Scenario",
    "Simulation",
    "SyntheticTraffic",
    "TransientFaultSpec",
    "TrojanSpec",
    "attach_trojan_specs",
    "build",
    "cached_run",
    "code_version",
    "run",
    "spec_hash",
    "trojan_specs",
]
