"""Fig. 2 — latency-vs-distance signature of each fault type.

The paper's conceptual figure contrasts how a single faulty link shows
up in latency as a function of hop distance:

* **transient** faults cost an occasional retransmission (1–3 cycles
  amortized);
* **permanent** faults force rerouting (+hops for every packet);
* a **TASP trojan** adds its trojan-defined delay when mitigated with
  L-Ob — and stalls the flow entirely when not.

We measure all four curves on the simulator with the faulty/infected
link on the path's first hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.reroute import apply_rerouting, updown_table
from repro.core import TargetSpec, TaspTrojan, build_mitigated_network
from repro.experiments.common import format_table
from repro.faults import TransientFaultModel
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.topology import Direction
from repro.util.rng import SeededStream

#: the faulted link: first hop eastwards out of router 0
FAULT_LINK = (0, Direction.EAST)

#: destination routers at hop distance 1..6 whose xy path crosses it
DISTANCE_DESTS = {1: 1, 2: 2, 3: 3, 4: 7, 5: 11, 6: 15}


@dataclass(frozen=True)
class Fig2Result:
    #: scenario -> {distance: mean latency}; None = flow never completed
    curves: dict[str, dict[int, Optional[float]]]
    packets_per_point: int


def _measure(net: Network, dst_router: int, packets: int,
             spacing: int = 40, max_cycles: int = 6000) -> Optional[float]:
    cfg = net.cfg
    for i in range(packets):
        net.add_packet(
            Packet(
                pkt_id=i,
                src_core=0,
                dst_core=cfg.core_of(dst_router, 1),
                mem_addr=0x100,
                created_cycle=i * spacing,
            )
        )
        net.run(spacing)
    drained = net.run_until_drained(max_cycles, stall_limit=1500)
    if not drained or net.stats.packets_completed < packets:
        return None
    return net.stats.mean_network_latency()


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    packets: int = 12,
    seed: int = 0,
) -> Fig2Result:
    curves: dict[str, dict[int, Optional[float]]] = {
        "clean": {},
        "transient": {},
        "permanent (rerouted)": {},
        "trojan (L-Ob)": {},
        "trojan (no mitigation)": {},
    }

    for dist, dst in DISTANCE_DESTS.items():
        # clean baseline
        net = Network(cfg)
        curves["clean"][dist] = _measure(net, dst, packets)

        # transient: occasional double-bit fault -> retransmission
        net = Network(cfg)
        net.attach_tamperer(
            FAULT_LINK,
            TransientFaultModel(
                net.codec.codeword_bits, 0.15,
                SeededStream(seed, "fig2", dist), double_fraction=1.0,
            ),
        )
        curves["transient"][dist] = _measure(net, dst, packets)

        # permanent: the link is dead; reroute around it
        net = Network(
            NoCConfig(routing="table"), routing_table=updown_table(cfg, [])
        )
        apply_rerouting(net, [FAULT_LINK])
        curves["permanent (rerouted)"][dist] = _measure(net, dst, packets)

        # trojan with s2s L-Ob: keep using the link at 1-3 cycles cost
        net = build_mitigated_network(cfg)
        trojan = TaspTrojan(TargetSpec.for_dest(dst))
        trojan.enable()
        net.attach_tamperer(FAULT_LINK, trojan)
        curves["trojan (L-Ob)"][dist] = _measure(net, dst, packets)

        # trojan without mitigation: the flow stalls
        net = Network(cfg)
        trojan = TaspTrojan(TargetSpec.for_dest(dst))
        trojan.enable()
        net.attach_tamperer(FAULT_LINK, trojan)
        curves["trojan (no mitigation)"][dist] = _measure(
            net, dst, packets, max_cycles=2500
        )

    return Fig2Result(curves=curves, packets_per_point=packets)


def format_result(result: Fig2Result) -> str:
    dists = sorted(DISTANCE_DESTS)
    headers = ["scenario"] + [f"d={d}" for d in dists]
    rows = []
    for name, curve in result.curves.items():
        rows.append(
            [name]
            + [
                f"{curve[d]:.1f}" if curve[d] is not None else "stall"
                for d in dists
            ]
        )
    return (
        "Fig. 2 — mean network latency (cycles) vs hop distance, "
        "faulty link on first hop\n" + format_table(headers, rows)
    )
