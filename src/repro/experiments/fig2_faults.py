"""Fig. 2 — latency-vs-distance signature of each fault type.

The paper's conceptual figure contrasts how a single faulty link shows
up in latency as a function of hop distance:

* **transient** faults cost an occasional retransmission (1–3 cycles
  amortized);
* **permanent** faults force rerouting (+hops for every packet);
* a **TASP trojan** adds its trojan-defined delay when mitigated with
  L-Ob — and stalls the flow entirely when not.

We measure all four curves on the simulator with the faulty/infected
link on the path's first hop.  Each (arm, distance) point is a
:class:`~repro.sim.scenario.Scenario`; :func:`scenarios` exposes the
full grid for the engine benchmarks and bit-identity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import TargetSpec
from repro.experiments.common import format_table
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    TransientFaultSpec,
    TrojanSpec,
    engine,
)

#: the faulted link: first hop eastwards out of router 0
FAULT_LINK = (0, Direction.EAST)

#: destination routers at hop distance 1..6 whose xy path crosses it
DISTANCE_DESTS = {1: 1, 2: 2, 3: 3, 4: 7, 5: 11, 6: 15}

#: cycles between successive packets of the measured flow
SPACING = 40


@dataclass(frozen=True)
class Fig2Result:
    #: scenario -> {distance: mean latency}; None = flow never completed
    curves: dict[str, dict[int, Optional[float]]]
    packets_per_point: int


def _flow(cfg: NoCConfig, dst_router: int, packets: int) -> ExplicitTraffic:
    """``packets`` single-flit packets from core 0, one every SPACING
    cycles, all bound for the same destination router."""
    return ExplicitTraffic(
        packets=tuple(
            PacketSpec(
                pkt_id=i,
                src_core=0,
                dst_core=cfg.core_of(dst_router, 1),
                mem_addr=0x100,
                inject_at=i * SPACING,
            )
            for i in range(packets)
        )
    )


def scenarios(
    cfg: NoCConfig = PAPER_CONFIG,
    packets: int = 12,
    seed: int = 0,
) -> dict[str, dict[int, Scenario]]:
    """The full (arm, distance) scenario grid."""
    grid: dict[str, dict[int, Scenario]] = {
        "clean": {},
        "transient": {},
        "permanent (rerouted)": {},
        "trojan (L-Ob)": {},
        "trojan (no mitigation)": {},
    }

    def point(name, dist, max_cycles=6000, **overrides) -> Scenario:
        return Scenario(
            name=f"fig2-{name}-d{dist}",
            cfg=cfg,
            traffic=(_flow(cfg, DISTANCE_DESTS[dist], packets),),
            max_cycles=packets * SPACING + max_cycles,
            stall_limit=1500,
            seed=seed,
            **overrides,
        )

    for dist, dst in DISTANCE_DESTS.items():
        grid["clean"][dist] = point("clean", dist)
        grid["transient"][dist] = point(
            "transient",
            dist,
            faults=(
                TransientFaultSpec(
                    link=FAULT_LINK,
                    rate=0.15,
                    double_fraction=1.0,
                    seed=seed,
                    labels=("fig2", dist),
                ),
            ),
        )
        grid["permanent (rerouted)"][dist] = point(
            "permanent",
            dist,
            defense=DefenseSpec(rerouted_links=(FAULT_LINK,)),
        )
        trojan = TrojanSpec(link=FAULT_LINK, target=TargetSpec.for_dest(dst))
        grid["trojan (L-Ob)"][dist] = point(
            "lob", dist, trojans=(trojan,), defense=DefenseSpec(mitigated=True)
        )
        grid["trojan (no mitigation)"][dist] = point(
            "bare", dist, trojans=(trojan,), max_cycles=2500
        )
    return grid


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    packets: int = 12,
    seed: int = 0,
) -> Fig2Result:
    curves: dict[str, dict[int, Optional[float]]] = {}
    for name, points in scenarios(cfg, packets, seed).items():
        curve: dict[int, Optional[float]] = {}
        for dist, scenario in points.items():
            result = engine.run(scenario)
            ok = result.completed and result.packets_completed >= packets
            curve[dist] = result.mean_network_latency if ok else None
        curves[name] = curve
    return Fig2Result(curves=curves, packets_per_point=packets)


def format_result(result: Fig2Result) -> str:
    dists = sorted(DISTANCE_DESTS)
    headers = ["scenario"] + [f"d={d}" for d in dists]
    rows = []
    for name, curve in result.curves.items():
        rows.append(
            [name]
            + [
                f"{curve[d]:.1f}" if curve[d] is not None else "stall"
                for d in dists
            ]
        )
    return (
        "Fig. 2 — mean network latency (cycles) vs hop distance, "
        "faulty link on first hop\n" + format_table(headers, rows)
    )
