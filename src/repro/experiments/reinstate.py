"""Self-healing containment: recovery after a transient attack.

The distributed campaign proves the mesh *survives* a coordinated
strike; this experiment proves it *heals*.  Two cases on the same 8x8
mesh and full defense stack (early detector -> watchdog ladders ->
containment coordinator -> probation):

* **recovery** — three coordinated TASP trojans arm mid-run and then
  deactivate (a kill-switch withdrawal: the trigger campaign ends).
  The coordinator must reinstate every condemned link within its probe
  budget, and benign throughput over the post-recovery tail window
  must return to >= 0.98 of an attack-free baseline of the same
  traffic.
* **flap** — a single *reactive* attacker that goes quiet whenever its
  link is contained (so probes scan clean) and re-arms the moment the
  link is reinstated.  Each reinstate->re-condemn round is a flap; the
  exponential flap damping must converge the link to permanent
  condemnation within ``max_flaps`` (3) rounds instead of letting the
  attacker farm reinstatements forever.

Both cases run under the invariant sentinel throughout — a trip aborts
the run, so a finished case is proof of zero trips.  Every decision on
the way (probe verdicts, reinstatements, flap damping) is deterministic
and engine-independent: the CI ``reinstate-smoke`` job byte-compares
this experiment's JSON across the sweep and event engines.

Quick mode (``REPRO_REINSTATE_QUICK=1`` or ``run(quick=True)``)
shortens both horizons — the CI smoke job.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.experiments.distributed import ATTACK_LINKS, MESH, benign_traffic
from repro.noc.topology import Direction
from repro.resilience.containment import ContainmentConfig, ProbationConfig
from repro.resilience.detect import DetectConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.engine import Simulation
from repro.sim.scenario import DefenseSpec, Scenario, coordinated_trojans
from repro.sim.sentinel import SentinelSpec

#: the distributed campaign's N=3 strike surface: EAST links on
#: distinct rows, all reroutable (so all *reinstatable* in reverse)
RECOVERY_LINKS = ATTACK_LINKS[3]
FLAP_LINK = (27, Direction.EAST)

#: fraction of attack-free tail-window throughput that must return
RECOVERY_THRESHOLD = 0.98


@dataclass(frozen=True)
class RecoveryCase:
    """Transient coordinated strike -> full reinstatement."""

    cycles: int
    trojans_off_at: int
    links_condemned: int
    links_reinstated: int
    last_reinstate_cycle: int
    max_time_to_reinstate: int
    probe_trials: int
    #: benign packets completed inside the post-recovery tail window
    tail_delivered: int
    baseline_tail_delivered: int
    throughput_recovered: float
    recovered: bool
    sentinel_checks: int
    probation: dict


@dataclass(frozen=True)
class FlapCase:
    """Reactive (toggling) attacker -> permanent condemnation."""

    cycles: int
    flaps: int
    max_flaps: int
    links_permanent: int
    converged: bool
    probe_trials: int
    sentinel_checks: int
    events: tuple


@dataclass(frozen=True)
class ReinstateResult:
    quick: bool
    recovery: RecoveryCase
    flap: FlapCase


def _defense(probation: ProbationConfig) -> DefenseSpec:
    return DefenseSpec(
        watchdog=WatchdogConfig(),
        containment=ContainmentConfig(),
        probation=probation,
        detector=DetectConfig(),
    )


def _tail_delivered(sim: Simulation, tail_start: int) -> int:
    """Benign packets fully delivered inside the tail window."""
    return sum(
        1
        for record in sim.network.stats.completed_records()
        if record.tail_ejected_cycle >= tail_start
    )


# ---------------------------------------------------------------------------
# case 1: deactivating trojans -> throughput recovers
# ---------------------------------------------------------------------------
def _recovery_scenario(
    duration: int, stop: int, attacked: bool, probation: ProbationConfig
) -> Scenario:
    trojans = ()
    if attacked:
        # vc-0 trigger: benign wormholes keep tripping the comparator
        # while armed, so the ladder condemns; after ``stop`` the same
        # links probe clean
        trojans = coordinated_trojans(
            RECOVERY_LINKS,
            TargetSpec.for_vc(0),
            TaspConfig(),
            start=300,
            stagger=100,
            stop=stop,
        )
    return Scenario(
        name="reinstate-recovery" if attacked else "reinstate-base",
        cfg=MESH,
        traffic=(benign_traffic(duration - 200),),
        trojans=trojans,
        defense=_defense(probation),
        duration=duration,
        sentinel=SentinelSpec(every=200),
        seed=3,
    )


def run_recovery(duration: int, stop: int) -> RecoveryCase:
    probation = ProbationConfig(
        start_after=400, probe_period=200, required_clean=3
    )
    tail_start = (duration * 2) // 3

    baseline = Simulation(
        _recovery_scenario(duration, stop, False, probation)
    )
    baseline.run()
    base_tail = _tail_delivered(baseline, tail_start)

    sim = Simulation(_recovery_scenario(duration, stop, True, probation))
    sim.run()  # a sentinel trip raises: finishing proves zero trips
    tail = _tail_delivered(sim, tail_start)

    coordinator = sim.containment
    assert coordinator is not None
    reinstates = [
        e for e in coordinator.events if e.kind == "reinstate"
    ]
    summary = coordinator.summary()["probation"]
    recovered = (
        coordinator.links_reinstated >= len(RECOVERY_LINKS)
        and not coordinator.link_states
        and base_tail > 0
        and tail / base_tail >= RECOVERY_THRESHOLD
    )
    return RecoveryCase(
        cycles=sim.network.cycle,
        trojans_off_at=stop,
        links_condemned=len(coordinator.time_to_contain),
        links_reinstated=coordinator.links_reinstated,
        last_reinstate_cycle=(
            max(e.cycle for e in reinstates) if reinstates else -1
        ),
        max_time_to_reinstate=summary["max_time_to_reinstate"] or 0,
        probe_trials=summary["trials_run"],
        tail_delivered=tail,
        baseline_tail_delivered=base_tail,
        throughput_recovered=(tail / base_tail if base_tail else 0.0),
        recovered=recovered,
        sentinel_checks=(
            sim.sentinel.checks if sim.sentinel is not None else 0
        ),
        probation=summary,
    )


# ---------------------------------------------------------------------------
# case 2: reactive toggling attacker -> flap damping converges
# ---------------------------------------------------------------------------
def run_flap(horizon: int) -> FlapCase:
    probation = ProbationConfig(
        start_after=300, probe_period=150, required_clean=2, max_flaps=3
    )
    scenario = Scenario(
        name="reinstate-flap",
        cfg=MESH,
        traffic=(benign_traffic(horizon - 200),),
        trojans=coordinated_trojans(
            [FLAP_LINK], TargetSpec.for_vc(0), TaspConfig(), start=300
        ),
        defense=_defense(probation),
        duration=horizon,
        sentinel=SentinelSpec(every=200),
        seed=5,
    )
    sim = Simulation(scenario)
    coordinator = sim.containment
    assert coordinator is not None
    trojan = sim.trojans[0]

    # The reactive attacker: disarm while contained (evade the probes),
    # re-arm on reinstatement.  Polled every 50 cycles — deterministic
    # in both engines, since advance_to stops on exact cycles and the
    # coordinator state it reads is engine-independent.  The scenario's
    # own schedule performs the first arm at 300; the loop takes over
    # after that.
    step = 50
    cycle = 0
    while cycle < horizon:
        cycle = min(cycle + step, horizon)
        sim.advance_to(cycle)
        if coordinator.links_permanent:
            break
        if cycle < 300:
            continue
        contained = FLAP_LINK in coordinator.link_states
        if contained and trojan.kill_switch:
            trojan.disable()
        elif not contained and not trojan.kill_switch:
            trojan.enable()

    flaps = coordinator.flap_counts.get(FLAP_LINK, 0)
    return FlapCase(
        cycles=sim.network.cycle,
        flaps=flaps,
        max_flaps=probation.max_flaps,
        links_permanent=coordinator.links_permanent,
        converged=(
            coordinator.links_permanent == 1
            and flaps <= probation.max_flaps
        ),
        probe_trials=coordinator.summary()["probation"]["trials_run"],
        sentinel_checks=(
            sim.sentinel.checks if sim.sentinel is not None else 0
        ),
        events=tuple(
            (e.cycle, e.kind, e.detail)
            for e in coordinator.events
            if e.kind in ("contain", "refuse", "seal", "reinstate",
                          "flap_damp")
        ),
    )


def run(quick: "bool | None" = None) -> ReinstateResult:
    if quick is None:
        quick = bool(os.environ.get("REPRO_REINSTATE_QUICK"))
    if quick:
        recovery = run_recovery(duration=6000, stop=1500)
        flap = run_flap(horizon=20000)
    else:
        recovery = run_recovery(duration=9000, stop=2500)
        flap = run_flap(horizon=30000)
    return ReinstateResult(quick=quick, recovery=recovery, flap=flap)


def format_result(result: ReinstateResult) -> str:
    r = result.recovery
    f = result.flap
    lines = [
        "reinstate: self-healing containment"
        + (" (quick)" if result.quick else ""),
        "",
        "[recovery] 3 coordinated trojans deactivate "
        f"at {r.trojans_off_at}",
        f"  condemned={r.links_condemned} "
        f"reinstated={r.links_reinstated} "
        f"last-reinstate@{r.last_reinstate_cycle} "
        f"(max ttr {r.max_time_to_reinstate}, "
        f"{r.probe_trials} probe trials)",
        f"  tail throughput {r.tail_delivered}/{r.baseline_tail_delivered}"
        f" = {r.throughput_recovered:.3f} "
        f"(threshold {RECOVERY_THRESHOLD}) "
        f"recovered={'yes' if r.recovered else 'NO'}",
        f"  sentinel checks={r.sentinel_checks} (zero trips)",
        "",
        "[flap] reactive attacker toggling with reinstatement",
        f"  flaps={f.flaps}/{f.max_flaps} permanent={f.links_permanent} "
        f"converged={'yes' if f.converged else 'NO'} "
        f"({f.probe_trials} probe trials, {f.cycles} cycles)",
    ]
    for cycle, kind, detail in f.events:
        lines.append(f"    {cycle:>6} {kind:<10} {detail}")
    return "\n".join(lines)
