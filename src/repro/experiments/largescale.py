"""Topology-robust containment at scale: 16x16 mesh and 8x8 torus.

The ``distributed`` campaign certifies survival on the 8x8 mesh.  This
experiment is the topology scale-up of ROADMAP item 2: the same
coordinated strike — N=3 staggered TASP trojans, a distributed
flooding DDoS from compromised cores, and a gray-hole on the recovery
path — against a 16x16 mesh (1024 cores) and an 8x8 **torus**, where
west-first reachability and rectangle quarantine are both wrong and
the coordinator reroutes through dateline-disciplined clear-arc
routing instead.

The defense stack here is the full PR 9 pipeline: traffic-statistics
detector -> :class:`~repro.resilience.localize.TopologyLocalizer` ->
**targeted** quarantine.  Each case therefore certifies, beyond the
``distributed`` campaign's survival story:

* **localization accuracy** — every true attacker is placed within
  one hop of its attacked link (``max_localization_error``);
* **quarantine economy** — the localized neighborhoods the
  coordinator actually drained are strictly fewer links than
  flag-everything containment (every suspect link plus every out-link
  of every back-pressure-flagged router) would have taken out;
* **survival** — sentinel-clean throughout, with benign throughput
  retained against an attack-free baseline of the same traffic.

Quick mode (``REPRO_LARGESCALE_QUICK=1`` or ``run(quick=True)``)
shortens the horizon — the CI ``largescale-smoke`` job runs it under
both engines and byte-compares the reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.noc.config import NoCConfig
from repro.noc.topology import Direction, LinkKey, link_endpoints, neighbor
from repro.resilience.containment import ContainmentConfig
from repro.resilience.detect import DetectConfig
from repro.resilience.localize import LocalizeConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.engine import Simulation
from repro.sim.scenario import (
    DefenseSpec,
    DropAttackSpec,
    Scenario,
    SyntheticTraffic,
    coordinated_trojans,
    distributed_flood,
)
from repro.sim.sentinel import SentinelSpec

#: flood pkt-id band start; benign traffic lives strictly below it
FLOOD_ID_BASE = 10_000_000

#: detector warmup ends at cycle (warmup_windows + 1) * window = 576
#: with the defaults below; every attack arms strictly after it so the
#: baselines are built from clean traffic
ATTACK_START = 700


@dataclass(frozen=True)
class LargescaleCampaign:
    """One topology's strike surface (the per-case ``ATTACK_LINKS``)."""

    name: str
    cfg: NoCConfig
    #: the N=3 coordinated trojan placements (EAST links, rows apart
    #: by more than the localizer's cluster radius so non-maximum
    #: suppression never has to disambiguate them)
    attack_links: tuple[LinkKey, ...]
    #: packet-drop attack on a link hosting no trojan
    grayhole_link: LinkKey
    #: compromised cores (DDoS sources) and their victims
    rogue_cores: tuple[int, ...]
    victim_cores: tuple[int, ...]
    #: benign per-core injection rate — sized per topology to keep the
    #: attack-free network below its saturation knee (uniform traffic
    #: at rate r loads a link to ~cores*r*mean_hops*flits/links; the
    #: 16x16 mesh saturates at ~0.007/core where the 8x8 torus, with a
    #: quarter of the cores and half the mean hops, is comfortable at
    #: 0.02)
    inject_rate: float = 0.02


CAMPAIGNS: tuple[LargescaleCampaign, ...] = (
    LargescaleCampaign(
        name="mesh16",
        cfg=NoCConfig(mesh_width=16, mesh_height=16),
        attack_links=(
            (35, Direction.EAST),    # (3, 2)
            (136, Direction.EAST),   # (8, 8)
            (221, Direction.EAST),   # (13, 13)
        ),
        grayhole_link=(100, Direction.EAST),
        rogue_cores=(144, 520, 840),
        victim_cores=(31 * 4, 143 * 4, 255 * 4),
        inject_rate=0.005,
    ),
    LargescaleCampaign(
        name="torus8",
        cfg=NoCConfig(mesh_width=8, mesh_height=8, topology="torus"),
        attack_links=(
            (9, Direction.EAST),     # (1, 1)
            (27, Direction.EAST),    # (3, 3)
            (45, Direction.EAST),    # (5, 5)
        ),
        grayhole_link=(54, Direction.EAST),
        rogue_cores=(36, 100, 164),
        victim_cores=(31 * 4, 47 * 4, 63 * 4),
    ),
)


@dataclass(frozen=True)
class LargescaleCase:
    """One topology campaign against its attack-free baseline."""

    name: str
    topology: str
    cycles: int
    sentinel_checks: int
    # -- localization ------------------------------------------------------
    attackers: int
    attackers_localized: int
    #: worst graph distance from a true attacked link to its nearest
    #: estimate (the accuracy contract caps this at 1)
    max_localization_error: int
    #: channels flag-everything containment would have taken out
    flag_everything_links: int
    #: links the targeted quarantine actually drained
    quarantined_links: int
    localization: dict
    # -- survival ----------------------------------------------------------
    benign_delivered: int
    baseline_delivered: int
    throughput_retained: float
    links_contained: int
    links_attacked: int
    containment: dict
    detection: dict


@dataclass(frozen=True)
class LargescaleResult:
    quick: bool
    cases: tuple


def _benign_delivered(sim: Simulation) -> int:
    return sum(
        1
        for record in sim.network.stats.completed_records()
        if record.pkt_id < FLOOD_ID_BASE
    )


def benign_traffic(duration: int, rate: float) -> SyntheticTraffic:
    return SyntheticTraffic(
        pattern="uniform",
        injection_rate=rate,
        payload_words=2,
        duration=duration,
        seed=7,
    )


def _scenario(
    campaign: LargescaleCampaign, duration: int, attacked: bool
) -> Scenario:
    traffic: tuple = (
        benign_traffic(duration - 200, campaign.inject_rate),
    )
    trojans = ()
    attacks = ()
    if attacked:
        traffic = traffic + distributed_flood(
            campaign.rogue_cores,
            campaign.victim_cores,
            rate=0.06,
            start_cycle=650,
            stop_cycle=duration - 200,
            seed=11,
        )
        trojans = coordinated_trojans(
            campaign.attack_links,
            TargetSpec.for_vc(0),
            TaspConfig(),
            start=ATTACK_START,
            stagger=60,
        )
        attacks = (
            DropAttackSpec(
                link=campaign.grayhole_link,
                drop_probability=1.0,
                enable_at=ATTACK_START + 100,
            ),
        )
    suffix = "" if attacked else "-base"
    return Scenario(
        name=f"largescale-{campaign.name}{suffix}",
        cfg=campaign.cfg,
        traffic=traffic,
        trojans=trojans,
        attacks=attacks,
        defense=DefenseSpec(
            watchdog=WatchdogConfig(),
            containment=ContainmentConfig(),
            detector=DetectConfig(),
            localizer=LocalizeConfig(),
        ),
        duration=duration,
        sentinel=SentinelSpec(every=200),
        seed=3,
    )


def _link_distance(cfg: NoCConfig, a: LinkKey, b: LinkKey) -> int:
    """Graph distance between two links: closest endpoint pair."""
    a_src, a_dst = link_endpoints(cfg, a)
    b_src, b_dst = link_endpoints(cfg, b)
    return min(
        cfg.hop_distance(x, y)
        for x in (a_src, a_dst)
        for y in (b_src, b_dst)
    )


def _flag_everything_links(sim: Simulation) -> int:
    """Channels a flag-everything policy would contain: every suspect
    link plus every out-link of every back-pressure-flagged router."""
    detector = sim.detector
    assert detector is not None
    cfg = sim.network.cfg
    channels: set[LinkKey] = set(detector.suspect_links)
    for rid in detector.suspect_routers:
        for direction in Direction:
            if neighbor(cfg, rid, direction) is not None:
                channels.add((rid, direction))
    return len(channels)


def run_case(campaign: LargescaleCampaign, duration: int) -> LargescaleCase:
    baseline = Simulation(_scenario(campaign, duration, attacked=False))
    baseline.run()
    base_delivered = _benign_delivered(baseline)

    sim = Simulation(_scenario(campaign, duration, attacked=True))
    sim.run()  # a sentinel trip raises: finishing proves zero trips
    delivered = _benign_delivered(sim)

    coordinator = sim.containment
    localizer = sim.localizer
    assert coordinator is not None and localizer is not None
    cfg = sim.network.cfg

    estimates = localizer.estimates()
    errors = []
    for true_link in campaign.attack_links:
        errors.append(
            min(
                (
                    _link_distance(cfg, true_link, estimate.link)
                    for estimate in estimates
                ),
                default=cfg.num_routers,  # nothing localized at all
            )
        )
    localized = sum(1 for error in errors if error <= 1)

    attacked_links = set(campaign.attack_links) | {campaign.grayhole_link}
    contained = attacked_links & coordinator.contained_links
    return LargescaleCase(
        name=campaign.name,
        topology=cfg.topology,
        cycles=sim.network.cycle,
        sentinel_checks=(
            sim.sentinel.checks if sim.sentinel is not None else 0
        ),
        attackers=len(campaign.attack_links),
        attackers_localized=localized,
        max_localization_error=max(errors),
        flag_everything_links=_flag_everything_links(sim),
        quarantined_links=len(coordinator.targeted_admitted),
        localization=localizer.summary(),
        benign_delivered=delivered,
        baseline_delivered=base_delivered,
        throughput_retained=(
            delivered / base_delivered if base_delivered else 0.0
        ),
        links_contained=len(contained),
        links_attacked=len(attacked_links),
        containment=coordinator.summary(),
        detection=sim.detector.summary() if sim.detector else {},
    )


def run(quick: "bool | None" = None) -> LargescaleResult:
    if quick is None:
        quick = bool(os.environ.get("REPRO_LARGESCALE_QUICK"))
    duration = 2500 if quick else 6000
    return LargescaleResult(
        quick=quick,
        cases=tuple(
            run_case(campaign, duration) for campaign in CAMPAIGNS
        ),
    )


def format_result(result: LargescaleResult) -> str:
    from repro.experiments.common import format_table

    rows = []
    for case in result.cases:
        rows.append(
            [
                case.name,
                case.topology,
                f"{case.attackers_localized}/{case.attackers}",
                case.max_localization_error,
                f"{case.quarantined_links}<{case.flag_everything_links}",
                f"{case.links_contained}/{case.links_attacked}",
                f"{case.throughput_retained:.2f}",
                case.sentinel_checks,
            ]
        )
    table = format_table(
        [
            "case", "topology", "localized", "max-err",
            "quarantine<flag-all", "contained", "thpt-retained",
            "sentinel-checks",
        ],
        rows,
    )
    mode = "quick" if result.quick else "full"
    return (
        "topology-robust containment at scale "
        f"(16x16 mesh + 8x8 torus, {mode})\n\n{table}"
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
