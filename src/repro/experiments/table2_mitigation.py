"""Table II — overhead of the proposed mitigation.

The paper's headline: the threat detector plus the L-Ob s2s obfuscation
blocks add about 2 % area and 6 % power to the router microarchitecture
and fit the 2 GHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.power import MitigationRow, router_breakdown, table2_rows


@dataclass(frozen=True)
class Table2Result:
    rows: list[MitigationRow]
    router_area_um2: float
    router_dynamic_uw: float

    @property
    def total(self) -> MitigationRow:
        return next(r for r in self.rows if r.name == "Total mitigation")


def run(cfg: NoCConfig = PAPER_CONFIG) -> Table2Result:
    router = router_breakdown(cfg).total
    return Table2Result(
        rows=table2_rows(cfg),
        router_area_um2=router.area_um2,
        router_dynamic_uw=router.dynamic_uw,
    )


def format_result(result: Table2Result) -> str:
    headers = [
        "module", "area um2", "% router", "dyn uW", "% router",
        "leak nW", "t ns", "ok@2GHz",
    ]
    rows = []
    for r in result.rows:
        rows.append([
            r.name,
            f"{r.budget.area_um2:.1f}",
            f"{r.pct_router_area:.2f}%",
            f"{r.budget.dynamic_uw:.1f}",
            f"{r.pct_router_dynamic:.2f}%",
            f"{r.budget.leakage_nw:.1f}",
            f"{r.budget.delay_ns:.3f}",
            "yes" if r.meets_timing else "NO",
        ])
    return (
        "Table II — mitigation overhead "
        f"(router: {result.router_area_um2:.0f} um2, "
        f"{result.router_dynamic_uw / 1000:.2f} mW dynamic; "
        "paper: ~2% area, ~6% power)\n" + format_table(headers, rows)
    )
