"""Table I / Fig. 9 — area, power, timing for each TASP target variant.

Fig. 9 is the area column of Table I drawn as a bar chart; both come
from the same rows here.  The Dest/Src variants are the calibration
anchors (they match the paper exactly); the others are predictions of
the structural model, reported next to the published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tasp import TaspConfig
from repro.experiments.common import format_table
from repro.power import PAPER_TABLE1, VariantRow, table1_rows


@dataclass(frozen=True)
class Table1Result:
    rows: list[VariantRow]

    def row(self, kind: str) -> VariantRow:
        return next(r for r in self.rows if r.kind == kind)


def run(config: TaspConfig = TaspConfig()) -> Table1Result:
    return Table1Result(rows=table1_rows(config))


def format_result(result: Table1Result) -> str:
    headers = [
        "variant", "k(bits)", "area um2", "(paper)", "dyn uW", "(paper)",
        "leak nW", "(paper)", "t ns", "ok@2GHz",
    ]
    rows = []
    for r in result.rows:
        paper = PAPER_TABLE1[r.kind]
        rows.append([
            r.kind,
            r.compare_width,
            f"{r.budget.area_um2:.2f}",
            f"{paper[0]:.2f}",
            f"{r.budget.dynamic_uw:.2f}",
            f"{paper[1]:.2f}",
            f"{r.budget.leakage_nw:.2f}",
            f"{paper[2]:.2f}",
            f"{r.budget.delay_ns:.3f}",
            "yes" if r.meets_timing else "NO",
        ])
    return (
        "Table I / Fig. 9 — TASP variants (model vs paper)\n"
        + format_table(headers, rows)
    )
