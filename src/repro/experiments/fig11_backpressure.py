"""Fig. 11 — back-pressure build-up from a single TASP trojan.

The scenario of §V-B2: a Blackscholes-like application runs for a
warm-up period with the trojan dormant; the kill switch is then thrown,
the trojan starts corrupting the targeted flow, and the retransmission
storm converts into credit exhaustion and spreading deadlock.  The
plotted series are buffer utilizations and three router classifications:
at least one output port blocked, >50 % of a router's cores blocked at
injection, all cores blocked.

(a) runs with e2e obfuscation installed (which cannot hide the header
fields the trojan targets — "when e2e obfuscation fails") and no s2s
mitigation; (b) is the identical network without the trojan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import TargetSpec, TaspTrojan
from repro.experiments.common import format_table, xy_link_loads
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.stats import Sample
from repro.noc.topology import LinkKey
from repro.sim import AppTraffic, DefenseSpec, Scenario, Simulation, TrojanSpec
from repro.traffic.apps import PROFILES, AppTraceSource
from repro.traffic.trace import record_trace


@dataclass(frozen=True)
class Fig11Series:
    """One run's sampled time series (cycles relative to TASP enable)."""

    label: str
    samples: list[Sample]

    def relative(self, enable_cycle: int) -> list[tuple[int, Sample]]:
        return [(s.cycle - enable_cycle, s) for s in self.samples]

    def peak(self, attr: str) -> int:
        return max(getattr(s, attr) for s in self.samples) if self.samples else 0

    def first_cycle_reaching(
        self, attr: str, threshold: int, enable_cycle: int
    ) -> Optional[int]:
        for s in self.samples:
            if s.cycle >= enable_cycle and getattr(s, attr) >= threshold:
                return s.cycle - enable_cycle
        return None


@dataclass(frozen=True)
class Fig11Result:
    attacked: Fig11Series
    clean: Fig11Series
    enable_cycle: int
    trojan_triggers: int
    infected_link: LinkKey
    headline: dict


def _hot_incoming_link(cfg: NoCConfig, app: str, seed: int) -> LinkKey:
    """The busiest link feeding the app's primary router."""
    profile = PROFILES[app]
    src = AppTraceSource(cfg, profile, seed=seed, duration=400)
    trace = record_trace(src, cfg, 400, app)
    loads = xy_link_loads(cfg, trace)
    primary = profile.primary_routers[0][0]
    candidates = {
        key: load
        for key, load in loads.items()
        if key[0] != primary  # link INTO the neighborhood
    }
    return max(candidates, key=candidates.get)


def build_scenario(
    cfg: NoCConfig = PAPER_CONFIG,
    app: str = "blackscholes",
    warmup: int = 1500,
    window: int = 1500,
    rate_scale: float = 3.5,
    sample_every: int = 25,
    seed: int = 0,
    with_trojan: bool = True,
) -> Scenario:
    """The fig11 scenario as a first-class value.

    Public so the serving layer (:mod:`repro.serve.scenarios`) can
    submit the exact run this experiment performs; :func:`run` builds
    its attacked and clean cases through it.
    """
    link = _hot_incoming_link(cfg, app, seed)
    trojans: tuple[TrojanSpec, ...] = ()
    if with_trojan:
        target_router = PROFILES[app].primary_routers[0][0]
        # dormant during warm-up, armed when the clock hits ``warmup``
        trojans = (
            TrojanSpec(
                link=link,
                target=TargetSpec.for_dest(target_router),
                enabled=False,
                enable_at=warmup,
            ),
        )
    return Scenario(
        name=f"fig11-{app}-{'attacked' if with_trojan else 'clean'}",
        cfg=cfg,
        traffic=(
            AppTraffic(
                profile=app,
                seed=seed,
                duration=warmup + window,
                rate_scale=rate_scale,
            ),
        ),
        trojans=trojans,
        defense=DefenseSpec(e2e=True),
        duration=warmup + window,
        sample_interval=sample_every,
        seed=seed,
    )


def _run_one(
    cfg: NoCConfig,
    app: str,
    warmup: int,
    window: int,
    rate_scale: float,
    sample_every: int,
    seed: int,
    with_trojan: bool,
) -> tuple[Fig11Series, Optional[TaspTrojan], LinkKey]:
    scenario = build_scenario(
        cfg, app, warmup, window, rate_scale, sample_every, seed,
        with_trojan,
    )
    link = scenario.trojans[0].link if scenario.trojans else (
        _hot_incoming_link(cfg, app, seed)
    )
    sim = Simulation(scenario)
    sim.run()
    trojan = sim.trojans[0] if sim.trojans else None
    label = "single active TASP (e2e failed)" if with_trojan else "no HT"
    return Fig11Series(label, list(sim.network.stats.samples)), trojan, link


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    app: str = "blackscholes",
    warmup: int = 1500,
    window: int = 1500,
    rate_scale: float = 3.5,
    sample_every: int = 25,
    seed: int = 0,
) -> Fig11Result:
    attacked, trojan, link = _run_one(
        cfg, app, warmup, window, rate_scale, sample_every, seed, True
    )
    clean, _, _ = _run_one(
        cfg, app, warmup, window, rate_scale, sample_every, seed, False
    )
    half = cfg.num_routers // 2
    headline = {
        "peak_blocked_routers": attacked.peak("routers_with_blocked_port"),
        "peak_blocked_routers_clean": clean.peak("routers_with_blocked_port"),
        "cycles_to_half_routers_blocked": attacked.first_cycle_reaching(
            "routers_with_blocked_port", half, warmup
        ),
        "peak_all_cores_full": attacked.peak("routers_all_cores_full"),
        "peak_half_cores_full": attacked.peak("routers_half_cores_full"),
        "trojan_triggers": trojan.triggers if trojan else 0,
    }
    return Fig11Result(
        attacked=attacked,
        clean=clean,
        enable_cycle=warmup,
        trojan_triggers=trojan.triggers if trojan else 0,
        infected_link=link,
        headline=headline,
    )


def format_result(result: Fig11Result) -> str:
    headers = [
        "t(rel)", "in-util", "out-util", "inj-util", ">=1 port blk",
        ">50% cores", "all cores",
    ]

    def rows_for(series: Fig11Series):
        rows = []
        for rel, s in series.relative(result.enable_cycle):
            if rel < -200 or rel % 100:
                continue
            rows.append([
                rel, s.input_utilization, s.output_utilization,
                s.injection_utilization, s.routers_with_blocked_port,
                s.routers_half_cores_full, s.routers_all_cores_full,
            ])
        return rows

    lines = [
        "Fig. 11 — back-pressure from a single TASP "
        f"(infected link {result.infected_link[0]}->"
        f"{result.infected_link[1].name}, "
        f"{result.trojan_triggers} triggers)",
        "",
        f"(a) {result.attacked.label}:",
        format_table(headers, rows_for(result.attacked)),
        "",
        f"(b) {result.clean.label}:",
        format_table(headers, rows_for(result.clean)),
        "",
        "headline: " + ", ".join(
            f"{k}={v}" for k, v in result.headline.items()
        ),
    ]
    return "\n".join(lines)
