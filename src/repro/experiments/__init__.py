"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> <ResultDataclass>`` and
``format_result(result) -> str``; ``python -m repro.experiments.runner``
drives them from the command line, and ``benchmarks/`` wraps each in a
pytest-benchmark target.

| module              | reproduces                                     |
|---------------------|------------------------------------------------|
| fig1_traffic        | Fig. 1  traffic distributions                  |
| fig2_faults         | Fig. 2  fault-type latency signatures          |
| fig8_overhead       | Fig. 8  TASP power/area pies                   |
| table1_tasp         | Table I / Fig. 9 TASP variants                 |
| table2_mitigation   | Table II mitigation overhead                   |
| fig10_speedup       | Fig. 10 L-Ob vs rerouting                      |
| fig11_backpressure  | Fig. 11 DoS back-pressure build-up             |
| fig12_qos           | Fig. 12 TDM containment vs s2s mitigation      |
| ablations           | §III/§IV design-choice sweeps                  |
| flood_routing       | §III-A flood DoS vs routing; flood vs trojan   |
| load_curve          | load-latency validation; xy vs adaptive knees  |
"""

from repro.experiments import (
    ablations,
    common,
    export,
    flood_routing,
    fig1_traffic,
    fig2_faults,
    fig8_overhead,
    fig10_speedup,
    fig11_backpressure,
    fig12_qos,
    load_curve,
    reinstate,
    table1_tasp,
    table2_mitigation,
    viz,
)

__all__ = [
    "ablations",
    "common",
    "export",
    "flood_routing",
    "fig1_traffic",
    "fig2_faults",
    "fig8_overhead",
    "fig10_speedup",
    "fig11_backpressure",
    "fig12_qos",
    "load_curve",
    "reinstate",
    "table1_tasp",
    "table2_mitigation",
    "viz",
]
