"""Ablations over the design choices the paper discusses (§III/§IV).

1. **Target width vs stealth** — a narrower comparator is cheaper but
   aliases on body-flit payloads and BIST patterns ("masking an
   unintended target"): we measure accidental-trigger rates.
2. **Payload-counter states vs disguise** — more payload states spread
   the injected faults over more wire pairs, making the trojan look
   more like transients (distinct syndromes) at a flip-flop cost.
3. **Retransmission-buffer depth vs deadlock onset** — deeper buffers
   only delay the pinch: we measure cycles until the infected output
   port stalls.
4. **Obfuscation-method effectiveness** — which L-Ob methods actually
   stop TASP (reorder does not: it shifts timing, not content).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core import (
    Granularity,
    MitigationConfig,
    ObMethod,
    TargetSpec,
    TaspConfig,
    TaspTrojan,
)
from repro.ecc import SECDED_72_64
from repro.experiments.common import format_table
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.power import tasp_budget
from repro.sim import (
    DefenseSpec,
    ExplicitTraffic,
    PacketSpec,
    Scenario,
    Simulation,
    TrojanSpec,
    engine,
)
from repro.util.rng import SeededStream

INFECTED = (0, Direction.EAST)


# ----------------------------------------------------------------------
# 1. target width vs accidental triggers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TargetWidthPoint:
    kind: str
    compare_width: int
    area_um2: float
    #: measured accidental trigger rate on random body-flit payloads
    accidental_trigger_rate: float
    #: analytic rate (2^-width)
    predicted_rate: float


def target_width_ablation(
    samples: int = 20000, seed: int = 0
) -> list[TargetWidthPoint]:
    stream = SeededStream(seed, "ablation-width")
    specs = {
        "VC": TargetSpec.for_vc(2),
        "Dest": TargetSpec.for_dest(15),
        "Dest_Src": TargetSpec.for_dest_src(3, 15),
        "Dest+VC(head)": TargetSpec(dst=15, vc=2, head_only=True),
        "Mem": TargetSpec.for_mem(0x1234_5678),
        "Full": TargetSpec.full(3, 15, 2, 0x1234_5678),
    }
    points = []
    for kind, spec in specs.items():
        hits = sum(
            1 for _ in range(samples) if spec.matches(stream.bits(64))
        )
        points.append(
            TargetWidthPoint(
                kind=kind,
                compare_width=spec.compare_width,
                area_um2=tasp_budget(spec).area_um2,
                accidental_trigger_rate=hits / samples,
                predicted_rate=spec.random_match_probability(),
            )
        )
    return points


# ----------------------------------------------------------------------
# 2. payload states vs fault diversity
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PayloadStatePoint:
    num_states: int
    distinct_syndromes: int
    area_um2: float


def payload_state_ablation(
    state_counts=(1, 2, 4, 8, 16), seed: int = 0
) -> list[PayloadStatePoint]:
    from repro.noc.flit import FlitType, pack_header

    word = pack_header(0, 15, 0, 0x100, FlitType.SINGLE, 1)
    cw = SECDED_72_64.encode(word)
    points = []
    for n in state_counts:
        cfg = TaspConfig(y_bits=8, num_payload_states=n, seed=seed)
        trojan = TaspTrojan(TargetSpec.for_dest(15), cfg)
        trojan.enable()
        syndromes = set()
        for i in range(4 * n):
            corrupted = trojan.tamper(cw, i)
            syndromes.add(SECDED_72_64.decode(corrupted).syndrome)
        points.append(
            PayloadStatePoint(
                num_states=n,
                distinct_syndromes=len(syndromes),
                area_um2=tasp_budget(TargetSpec.for_dest(15), cfg).area_um2,
            )
        )
    return points


# ----------------------------------------------------------------------
# 3. retransmission depth vs deadlock onset
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetransDepthPoint:
    depth: int
    #: cycles after enable until the infected output port stalls
    cycles_to_port_stall: int


def retrans_depth_ablation(
    depths=(2, 4, 8, 16), max_cycles: int = 4000, seed: int = 0
) -> list[RetransDepthPoint]:
    points = []
    for depth in depths:
        cfg = dataclasses.replace(PAPER_CONFIG, retrans_depth=depth)
        sim = Simulation(
            Scenario(
                name=f"ablation-depth-{depth}",
                cfg=cfg,
                traffic=(
                    ExplicitTraffic(
                        packets=tuple(
                            PacketSpec(pkt_id=pid, src_core=0, dst_core=63,
                                       vc_class=pid % 4)
                            for pid in range(80)
                        )
                    ),
                ),
                trojans=(TrojanSpec(INFECTED, TargetSpec.for_dest(15)),),
                max_cycles=max_cycles,
                seed=seed,
            )
        )
        net = sim.network
        stall_at = max_cycles
        out = net.output_port_of(INFECTED)
        for _ in range(max_cycles):
            sim.step()
            if out.is_blocked(net.cycle):
                stall_at = net.cycle
                break
        points.append(
            RetransDepthPoint(depth=depth, cycles_to_port_stall=stall_at)
        )
    return points


# ----------------------------------------------------------------------
# 4. obfuscation-method effectiveness
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MethodPoint:
    method: str
    granularity: str
    packets_delivered: int
    packets_offered: int

    @property
    def effective(self) -> bool:
        return self.packets_delivered == self.packets_offered


def method_effectiveness_ablation(
    packets: int = 10, max_cycles: int = 6000, seed: int = 0
) -> list[MethodPoint]:
    ladder = [
        (ObMethod.INVERT, Granularity.FULL),
        (ObMethod.INVERT, Granularity.HEADER),
        (ObMethod.INVERT, Granularity.PAYLOAD),
        (ObMethod.SHUFFLE, Granularity.FULL),
        (ObMethod.SHUFFLE, Granularity.HEADER),
        (ObMethod.SCRAMBLE, Granularity.FULL),
        (ObMethod.REORDER, Granularity.FULL),
    ]
    points = []
    for method, gran in ladder:
        mcfg = MitigationConfig(method_sequence=((method, gran),))
        result = engine.run(
            Scenario(
                name=f"ablation-{method.value}-{gran.value}",
                cfg=PAPER_CONFIG,
                traffic=(
                    ExplicitTraffic(
                        packets=tuple(
                            PacketSpec(pkt_id=pid, src_core=0, dst_core=63,
                                       vc_class=pid % 4, mem_addr=0x77,
                                       payload=(0xAAAA,))
                            for pid in range(packets)
                        )
                    ),
                ),
                trojans=(TrojanSpec(INFECTED, TargetSpec.for_dest(15)),),
                defense=DefenseSpec(mitigation=mcfg),
                max_cycles=max_cycles,
                stall_limit=1200,
                seed=seed,
            )
        )
        points.append(
            MethodPoint(
                method=method.value,
                granularity=gran.value,
                packets_delivered=result.packets_completed,
                packets_offered=packets,
            )
        )
    return points


# ----------------------------------------------------------------------
# 5. payload weight: why the attacker flips exactly two bits
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PayloadWeightPoint:
    """Outcome of a targeted flow under a trojan flipping ``weight``
    bits per trigger (paper Fig. 2 discussion: 1 flip is corrected, 2
    flips farm retransmissions, 3+ flips risk silent miscorrection)."""

    weight: int
    packets_delivered: int
    packets_offered: int
    misdeliveries: int
    corrected_faults: int
    detected_faults: int
    deadlocked: bool


def payload_weight_ablation(
    weights=(1, 2, 3), packets: int = 12, max_cycles: int = 5000,
    seed: int = 0,
) -> list[PayloadWeightPoint]:
    points = []
    for weight in weights:
        sim = Simulation(
            Scenario(
                name=f"ablation-weight-{weight}",
                cfg=PAPER_CONFIG,
                traffic=(
                    ExplicitTraffic(
                        packets=tuple(
                            PacketSpec(pkt_id=pid, src_core=0, dst_core=63,
                                       vc_class=pid % 4, mem_addr=0x55)
                            for pid in range(packets)
                        )
                    ),
                ),
                trojans=(
                    TrojanSpec(
                        INFECTED,
                        TargetSpec.for_dest(15),
                        config=TaspConfig(payload_weight=weight,
                                          num_payload_states=4, seed=seed),
                    ),
                ),
                max_cycles=max_cycles,
                stall_limit=1200,
                seed=seed,
            )
        )
        net = sim.network
        drained = sim.run_until_drained(max_cycles, stall_limit=1200)
        receiver = net.receiver_of(INFECTED)
        points.append(
            PayloadWeightPoint(
                weight=weight,
                packets_delivered=net.stats.packets_completed,
                packets_offered=packets,
                misdeliveries=net.stats.misdeliveries,
                corrected_faults=receiver.flits_corrected,
                detected_faults=receiver.faults_detected,
                deadlocked=not drained,
            )
        )
    return points


# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AblationResult:
    target_width: list[TargetWidthPoint]
    payload_states: list[PayloadStatePoint]
    retrans_depth: list[RetransDepthPoint]
    methods: list[MethodPoint]
    payload_weight: list[PayloadWeightPoint]


def run(seed: int = 0) -> AblationResult:
    return AblationResult(
        target_width=target_width_ablation(seed=seed),
        payload_states=payload_state_ablation(seed=seed),
        retrans_depth=retrans_depth_ablation(seed=seed),
        methods=method_effectiveness_ablation(seed=seed),
        payload_weight=payload_weight_ablation(seed=seed),
    )


def format_result(result: AblationResult) -> str:
    lines = ["Ablations", "", "1. target width vs accidental triggers:"]
    lines.append(format_table(
        ["target", "bits", "area um2", "measured alias rate", "2^-k"],
        [
            [p.kind, p.compare_width, f"{p.area_um2:.1f}",
             f"{p.accidental_trigger_rate:.5f}", f"{p.predicted_rate:.5f}"]
            for p in result.target_width
        ],
    ))
    lines.append("")
    lines.append("2. payload states vs fault-position diversity:")
    lines.append(format_table(
        ["states", "distinct syndromes", "area um2"],
        [
            [p.num_states, p.distinct_syndromes, f"{p.area_um2:.1f}"]
            for p in result.payload_states
        ],
    ))
    lines.append("")
    lines.append("3. retransmission-buffer depth vs port-stall onset:")
    lines.append(format_table(
        ["depth", "cycles to stall"],
        [[p.depth, p.cycles_to_port_stall] for p in result.retrans_depth],
    ))
    lines.append("")
    lines.append("4. obfuscation-method effectiveness vs TASP:")
    lines.append(format_table(
        ["method", "granularity", "delivered", "effective"],
        [
            [p.method, p.granularity,
             f"{p.packets_delivered}/{p.packets_offered}",
             "yes" if p.effective else "NO"]
            for p in result.methods
        ],
    ))
    lines.append("")
    lines.append("5. payload weight (why the attacker flips exactly 2 bits):")
    lines.append(format_table(
        ["weight", "delivered", "misdelivered", "corrected", "detected",
         "outcome"],
        [
            [p.weight,
             f"{p.packets_delivered}/{p.packets_offered}",
             p.misdeliveries, p.corrected_faults, p.detected_faults,
             ("deadlock (DoS)" if p.deadlocked
              else "silent corruption" if p.misdeliveries
              else "absorbed by ECC")]
            for p in result.payload_weight
        ],
    ))
    return "\n".join(lines)
