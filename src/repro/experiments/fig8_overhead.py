"""Fig. 8 — TASP power/area relative to a router and the whole NoC.

Four pies: router dynamic power, router leakage power, NoC area, and
NoC dynamic power in the worst case of a TASP on all 48 links.
"""

from __future__ import annotations

from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.power import Fig8Report, fig8_report


def run(cfg: NoCConfig = PAPER_CONFIG) -> Fig8Report:
    return fig8_report(cfg)


def _pie(title: str, shares: dict[str, float]) -> list[str]:
    lines = [title]
    for name, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:12s} {100 * share:6.2f}%")
    return lines


def format_result(report: Fig8Report) -> str:
    lines = ["Fig. 8 — TASP overhead pies", ""]
    lines += _pie("Router dynamic power:", report.router_dynamic_shares)
    lines.append("")
    lines += _pie("Router leakage power:", report.router_leakage_shares)
    lines.append("")
    lines += _pie("NoC area:", report.noc_area_shares)
    lines.append("")
    lines += _pie(
        "NoC dynamic power (TASP on all 48 links):",
        report.noc_dynamic_shares_all_links,
    )
    return "\n".join(lines)
