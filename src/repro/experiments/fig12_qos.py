"""Fig. 12 — QoS containment (TDM) vs the proposed s2s mitigation.

(a) A two-domain TDM NoC (SurfNoC-style non-interference): domain D1
runs a clean application, domain D2 hosts the trojan's target.  The
attack saturates D2's resources only — contained, but D2 still
deadlocks, so QoS alone is not a mitigation.

(b) The same two-application workload on a NoC with the threat detector
and L-Ob: both applications keep running with only the few-cycle
obfuscation penalty.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.baselines.tdm import TdmConfig, TdmPolicy
from repro.core import TargetSpec
from repro.experiments.common import format_table, xy_link_loads
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.network import Network
from repro.noc.topology import LinkKey
from repro.sim import AppTraffic, DefenseSpec, Scenario, Simulation, TrojanSpec
from repro.traffic.apps import PROFILES, AppTraceSource
from repro.traffic.trace import record_trace


@dataclass(frozen=True)
class DomainSample:
    cycle: int
    buffer_util: tuple[int, int]
    injection_util: tuple[int, int]
    blocked_cores: tuple[int, int]
    packets_completed: tuple[int, int]


@dataclass(frozen=True)
class Fig12Series:
    label: str
    samples: list[DomainSample]

    def final(self) -> DomainSample:
        return self.samples[-1]

    def completions_in_window(self, domain: int) -> int:
        return (
            self.samples[-1].packets_completed[domain]
            - self.samples[0].packets_completed[domain]
        )


@dataclass(frozen=True)
class Fig12Result:
    tdm: Fig12Series
    tdm_baseline: Fig12Series
    mitigated: Fig12Series
    enable_cycle: int
    headline: dict


def _domain_sample(net: Network, cycle: int, done_by_domain) -> DomainSample:
    buf = [0, 0]
    inj = [0, 0]
    blocked = [0, 0]
    for router in net.routers:
        for key, port in router.inputs.items():
            is_inj = isinstance(key, tuple)
            for vc in port.vcs:
                for flit in vc.buffer:
                    (inj if is_inj else buf)[flit.domain % 2] += 1
    for core in range(net.cfg.num_cores):
        if net.core_blocked(core):
            blocked[core % 2] += 1
    return DomainSample(
        cycle=cycle,
        buffer_util=(buf[0], buf[1]),
        injection_util=(inj[0], inj[1]),
        blocked_cores=(blocked[0], blocked[1]),
        packets_completed=(done_by_domain[0], done_by_domain[1]),
    )


def _two_apps(
    cfg: NoCConfig,
    duration: int,
    seed: int,
    rate_scale: float,
    vcs_d0: tuple,
    vcs_d1: tuple,
) -> tuple[AppTraffic, AppTraffic]:
    """D1: clean app on even cores; D2: victim app on odd cores."""
    even = tuple(c for c in range(cfg.num_cores) if c % 2 == 0)
    odd = tuple(c for c in range(cfg.num_cores) if c % 2 == 1)
    return (
        AppTraffic(
            profile="facesim", seed=seed, duration=duration,
            rate_scale=rate_scale, cores=even, domain=0,
            vc_classes=vcs_d0, pkt_id_base=0,
        ),
        AppTraffic(
            profile="blackscholes", seed=seed + 1, duration=duration,
            rate_scale=rate_scale, cores=odd, domain=1,
            vc_classes=vcs_d1, pkt_id_base=1_000_000,
        ),
    )


def _run_one(
    sim: Simulation,
    warmup: int,
    window: int,
    sample_every: int,
    label: str,
) -> Fig12Series:
    net = sim.network
    done_by_domain = [0, 0]
    net.ejection_hooks.append(
        lambda flit, cycle, core: (
            done_by_domain.__setitem__(
                flit.domain % 2, done_by_domain[flit.domain % 2] + 1
            )
            if flit.is_tail
            else None
        )
    )
    samples: list[DomainSample] = []
    sim.advance_to(warmup)  # scheduled trojan enables fire at the boundary
    for _ in range(window // sample_every):
        sim.advance_to(net.cycle + sample_every)
        samples.append(_domain_sample(net, net.cycle, done_by_domain))
    return Fig12Series(label, samples)


def _victim_link(cfg: NoCConfig, seed: int) -> LinkKey:
    """The busiest link on xy paths carrying the victim application's
    traffic *to* its primary router (what the attacked flows share)."""
    profile = PROFILES["blackscholes"]
    trace = record_trace(
        AppTraceSource(cfg, profile, seed=seed + 1, duration=300),
        cfg, 300, "victim",
    )
    primary = profile.primary_routers[0][0]
    to_primary = dataclasses.replace(
        trace,
        packets=[
            p for p in trace.packets
            if cfg.router_of_core(p.dst_core) == primary
        ],
    )
    loads = xy_link_loads(cfg, to_primary)
    return max(loads, key=loads.get)


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    warmup: int = 1000,
    window: int = 1500,
    rate_scale: float = 1.5,
    sample_every: int = 50,
    seed: int = 0,
) -> Fig12Result:
    duration = warmup + window
    link = _victim_link(cfg, seed)
    # target: the victim application's flows — packets heading for its
    # primary router on the victim domain's VC, gated to head flits so
    # the comparator does not alias on payload bits
    primary = PROFILES["blackscholes"].primary_routers[0][0]
    target = TargetSpec(dst=primary, vc=2, head_only=True)
    trojan = TrojanSpec(
        link=link, target=target, enabled=False, enable_at=warmup
    )
    policy = TdmPolicy(TdmConfig(num_domains=2), cfg.num_vcs)
    # the victim application is pinned to VC 2 (inside D2's partition),
    # exactly what the trojan's VC comparator targets
    tdm_traffic = _two_apps(
        cfg, duration, seed, rate_scale,
        vcs_d0=tuple(policy.vc_partition(0)),
        vcs_d1=(policy.vc_partition(1)[0],),
    )

    def scenario(name, traffic, trojans, defense) -> Scenario:
        return Scenario(
            name=f"fig12-{name}",
            cfg=cfg,
            traffic=traffic,
            trojans=trojans,
            defense=defense,
            duration=duration,
            sample_interval=0,
            seed=seed,
        )

    # (a) TDM containment
    tdm = _run_one(
        Simulation(
            scenario("tdm", tdm_traffic, (trojan,),
                     DefenseSpec(tdm_domains=2))
        ),
        warmup, window, sample_every, "TDM (two domains) with TASP",
    )

    # (a') TDM without the attack: the non-interference reference
    tdm_baseline = _run_one(
        Simulation(
            scenario("tdm-baseline", tdm_traffic, (),
                     DefenseSpec(tdm_domains=2))
        ),
        warmup, window, sample_every, "TDM, no HT",
    )

    # (b) proposed mitigation, same VC discipline for comparability
    mitigated = _run_one(
        Simulation(
            scenario(
                "mitigated",
                _two_apps(cfg, duration, seed, rate_scale,
                          vcs_d0=(0, 1), vcs_d1=(2,)),
                (trojan,),
                DefenseSpec(mitigated=True),
            )
        ),
        warmup, window, sample_every, "threat detector + s2s L-Ob",
    )

    headline = {
        "tdm_clean_domain_completions": tdm.completions_in_window(0),
        "tdm_clean_domain_baseline": tdm_baseline.completions_in_window(0),
        "tdm_victim_domain_completions": tdm.completions_in_window(1),
        "tdm_victim_domain_baseline": tdm_baseline.completions_in_window(1),
        "tdm_victim_blocked_cores": tdm.final().blocked_cores[1],
        "tdm_clean_blocked_cores": tdm.final().blocked_cores[0],
        "mitigated_clean_completions": mitigated.completions_in_window(0),
        "mitigated_victim_completions": mitigated.completions_in_window(1),
        "mitigated_blocked_cores": sum(mitigated.final().blocked_cores),
    }
    return Fig12Result(
        tdm=tdm,
        tdm_baseline=tdm_baseline,
        mitigated=mitigated,
        enable_cycle=warmup,
        headline=headline,
    )


def format_result(result: Fig12Result) -> str:
    headers = [
        "t(rel)", "D1 buf", "D2 buf", "D1 inj", "D2 inj",
        "D1 blkd", "D2 blkd", "D1 done", "D2 done",
    ]

    def rows_for(series: Fig12Series):
        rows = []
        for s in series.samples:
            rel = s.cycle - result.enable_cycle
            if rel % 250:
                continue
            rows.append([
                rel, s.buffer_util[0], s.buffer_util[1],
                s.injection_util[0], s.injection_util[1],
                s.blocked_cores[0], s.blocked_cores[1],
                s.packets_completed[0], s.packets_completed[1],
            ])
        return rows

    lines = ["Fig. 12 — QoS containment vs proposed mitigation", ""]
    for series in (result.tdm, result.tdm_baseline, result.mitigated):
        lines.append(f"{series.label}:")
        lines.append(format_table(headers, rows_for(series)))
        lines.append("")
    lines.append(
        "headline: " + ", ".join(f"{k}={v}" for k, v in result.headline.items())
    )
    return "\n".join(lines)
