"""Fig. 1 — Blackscholes traffic distributions on the 64-core NoC.

Three views of the same workload:

(a) router-to-router request matrix (who talks to whom),
(b) geographic source hot spots (requests sourced per router position),
(c) percentage of traffic crossing each link (xy-routed, measured on
    the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table, make_app_trace
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.topology import LinkKey
from repro.sim import AppTraffic, Scenario, Simulation
from repro.traffic.apps import PROFILES


@dataclass(frozen=True)
class Fig1Result:
    app: str
    #: (a) matrix[src_router][dst_router] = request packets
    matrix: list[list[int]]
    #: (b) packets sourced per router
    source_counts: list[int]
    #: (c) share of flit traversals per link (sums to 1)
    link_share: dict[LinkKey, float]
    total_packets: int

    @property
    def primary_router(self) -> int:
        return max(range(len(self.source_counts)),
                   key=lambda r: self.source_counts[r])

    def hottest_links(self, count: int = 10) -> list[tuple[LinkKey, float]]:
        ranked = sorted(
            self.link_share.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:count]


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    app: str = "blackscholes",
    duration: int = 1500,
    seed: int = 0,
) -> Fig1Result:
    trace = make_app_trace(cfg, PROFILES[app], duration, seed=seed)
    matrix = trace.router_matrix(cfg)
    source_counts = trace.source_counts(cfg)

    # (c) measured on the simulator: the same workload (identical
    # profile + seed -> identical packet stream), counting traversals
    sim = Simulation(
        Scenario(
            name=f"fig1-{app}",
            cfg=cfg,
            traffic=(AppTraffic(profile=app, seed=seed, duration=duration),),
            max_cycles=duration * 20,
            seed=seed,
        )
    )
    sim.run_until_drained(duration * 20)
    loads = sim.network.link_load()
    total = sum(loads.values()) or 1
    link_share = {key: count / total for key, count in loads.items()}

    return Fig1Result(
        app=app,
        matrix=matrix,
        source_counts=source_counts,
        link_share=link_share,
        total_packets=len(trace),
    )


def format_result(result: Fig1Result, cfg: NoCConfig = PAPER_CONFIG) -> str:
    lines = [
        f"Fig. 1 — {result.app} traffic distribution "
        f"({result.total_packets} packets)",
        "",
        "(a) router-to-router request matrix (rows: src, cols: dst):",
    ]
    headers = ["src\\dst"] + [str(d) for d in range(cfg.num_routers)]
    rows = [
        [str(s)] + [str(v) for v in row] for s, row in enumerate(result.matrix)
    ]
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append("(b) geographic source hot spots (y rows, north at top):")
    for y in reversed(range(cfg.mesh_height)):
        row = [
            f"{result.source_counts[cfg.router_at(x, y)]:6d}"
            for x in range(cfg.mesh_width)
        ]
        lines.append("  " + " ".join(row))
    lines.append(f"  primary router: {result.primary_router}")
    lines.append("")
    lines.append("(c) hottest links by share of flit traversals:")
    for (router, direction), share in result.hottest_links():
        lines.append(
            f"  link {router:2d} -> {direction.name:5s}: {100 * share:5.2f}%"
        )
    return "\n".join(lines)
