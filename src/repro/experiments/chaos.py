"""Chaos campaign experiment: the resilience ladder end to end.

Three campaigns over the paper's 4x4 CMesh, all driving the same
victim flow (core 0 -> core 63 through the infected (0, EAST) link)
plus uniform background traffic:

* **ladder** — mitigated network, delayed TASP activation, then a
  catastrophic link kill that obfuscation cannot dodge.  The watchdog
  must walk the full escalation ladder (backoff -> forced L-Ob ->
  drop-with-notify -> condemn) and hand the link to epoch recovery;
  every packet must still be delivered exactly once.
* **no-watchdog** — the same TASP attack on a baseline network with
  the watchdog disabled: the paper's deadlock reproduction (graceful
  degradation is strictly opt-in).  A harmless soft-error burst rides
  along and the campaign's explanation pass
  (:func:`repro.resilience.campaign.minimal_explaining_events`)
  delta-debugs the event list, reporting that the TASP activation
  alone explains the deadlock.
* **bare-watchdog** — the TASP attack on a baseline network *with*
  the watchdog but no L-Ob rung available: survival must come from
  bounded retries, packet drops and rerouting recovery alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.targets import TargetSpec
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.topology import Direction
from repro.resilience import (
    CampaignReport,
    CampaignSpec,
    LinkKill,
    TransientBurst,
    TrojanActivation,
    run_campaign,
    targeted_stream,
    uniform_traffic,
)

#: the infected link and the flow TASP hunts (paper Fig. 1 setup)
ATTACK_LINK = (0, Direction.EAST)
TARGET_ROUTER = 15
VICTIM_SRC, VICTIM_DST = 0, 63


@dataclass(frozen=True)
class ChaosResult:
    ladder: CampaignReport
    no_watchdog: CampaignReport
    bare_watchdog: CampaignReport


def _traffic(cfg: NoCConfig, heavy: bool) -> list:
    if heavy:
        return targeted_stream(
            cfg, VICTIM_SRC, VICTIM_DST, 40, interval=4
        ) + uniform_traffic(cfg, 1, 60, interval=2)
    return targeted_stream(
        cfg, VICTIM_SRC, VICTIM_DST, 10, interval=10
    ) + uniform_traffic(cfg, 1, 24, interval=6)


def run(cfg: NoCConfig = PAPER_CONFIG) -> ChaosResult:
    tasp = dict(
        link=ATTACK_LINK, target=TargetSpec.for_dest(TARGET_ROUTER)
    )

    ladder = run_campaign(
        CampaignSpec(
            name="ladder",
            cfg=cfg,
            traffic=_traffic(cfg, heavy=False),
            events=[
                TrojanActivation(at=20, **tasp),
                LinkKill(link=ATTACK_LINK, at=60),
            ],
            max_cycles=6000,
        )
    )

    no_watchdog = run_campaign(
        CampaignSpec(
            name="no-watchdog",
            cfg=cfg,
            traffic=_traffic(cfg, heavy=True),
            events=[
                TrojanActivation(at=10, **tasp),
                # a correctable soft-error burst far from the attack:
                # the explanation pass must rule it out as a cause
                TransientBurst(
                    link=(10, Direction.EAST), at=30, duration=200,
                    flip_probability=0.02, double_fraction=0.0,
                ),
            ],
            mitigated=False,
            watchdog=None,
            max_cycles=2500,
            deadlock_window=400,
            explain_violations=True,
        )
    )

    bare_watchdog = run_campaign(
        CampaignSpec(
            name="bare-watchdog",
            cfg=cfg,
            traffic=_traffic(cfg, heavy=True),
            events=[TrojanActivation(at=10, **tasp)],
            mitigated=False,
            max_cycles=8000,
        )
    )

    return ChaosResult(
        ladder=ladder,
        no_watchdog=no_watchdog,
        bare_watchdog=bare_watchdog,
    )


def format_result(result: ChaosResult) -> str:
    from repro.experiments.common import format_table

    rows = []
    for report in (result.ladder, result.no_watchdog, result.bare_watchdog):
        rows.append(
            [
                report.name,
                "deadlock" if report.deadlocked else "live",
                f"{report.packets_delivered}/{report.packets_offered}",
                report.resubmissions,
                report.packets_dropped,
                len(report.condemned_links),
                report.epochs,
                len(report.violations),
            ]
        )
    table = format_table(
        [
            "campaign", "outcome", "delivered", "resubmits",
            "drops", "condemned", "epochs", "violations",
        ],
        rows,
    )
    details = "\n\n".join(
        r.summary()
        for r in (result.ladder, result.no_watchdog, result.bare_watchdog)
    )
    return (
        "chaos campaigns (TASP on link 0->EAST, victim flow 0 -> 63)\n\n"
        f"{table}\n\n{details}"
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
