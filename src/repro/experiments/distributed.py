"""Coordinated multi-trojan + distributed-DoS survival campaign.

The single-trojan experiments (fig11, chaos) show one escalation ladder
containing one attacker.  This campaign is the adversarial scale-up on
an 8x8 mesh: N coordinated TASP trojans with a staggered activation
schedule, a distributed flooding DDoS from compromised cores, and a
gray-hole packet-drop attack on the recovery path — all at once —
against the full defense stack (watchdog ladders supervised by the
network-level :class:`~repro.resilience.containment.ContainmentCoordinator`).

Survival is certified three ways per case:

* the **sentinel** audits conservation/deadlock/livelock invariants
  throughout; a trip aborts the run (so a finished case is proof of
  zero trips);
* every attacked link is **contained** (rerouted-around, quarantined,
  or refused into drop-only mode) within a bounded cycle budget,
  reported as per-link time-to-contain;
* **benign throughput retained**: delivered benign packets (ids below
  the flood band) are compared against an attack-free baseline run of
  the same benign traffic.

Quick mode (``REPRO_DISTRIBUTED_QUICK=1`` or ``run(quick=True)``)
runs the N=3 case only with a shorter horizon — the CI smoke job.

This module is also the canonical home of the campaign surface
(:data:`MESH`, :data:`ATTACK_LINKS`, the benign load): the
``reinstate`` experiment replays the N=3 strike with deactivating and
flapping attackers to certify the *recovery* half of the story —
survival here, self-healing there.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.targets import TargetSpec
from repro.core.tasp import TaspConfig
from repro.noc.config import NoCConfig
from repro.noc.topology import Direction
from repro.resilience.containment import ContainmentConfig
from repro.sim.engine import Simulation
from repro.sim.scenario import (
    DefenseSpec,
    DropAttackSpec,
    Scenario,
    SyntheticTraffic,
    coordinated_trojans,
    distributed_flood,
)
from repro.sim.sentinel import SentinelSpec
from repro.resilience.watchdog import WatchdogConfig

#: the campaign mesh: 8x8 concentrated (256 cores), xy-routed so the
#: coordinator can reroute onto west-first (xy's turn superset)
MESH = NoCConfig(mesh_width=8, mesh_height=8)

#: flood pkt-id band start; benign traffic lives strictly below it
FLOOD_ID_BASE = 10_000_000

#: EAST links on distinct rows/columns — eastbound wormholes have
#: deadlock-free non-minimal detours, so these exercise the reroute
#: path (a westbound condemnation would be refused into drop-only)
ATTACK_LINKS: dict[int, list] = {
    2: [(9, Direction.EAST), (45, Direction.EAST)],
    3: [(9, Direction.EAST), (27, Direction.EAST), (45, Direction.EAST)],
    5: [
        (9, Direction.EAST),
        (18, Direction.EAST),
        (27, Direction.EAST),
        (36, Direction.EAST),
        (45, Direction.EAST),
    ],
}

#: the gray-hole rides on a link not already hosting a trojan
GRAYHOLE_LINK = (54, Direction.EAST)

#: compromised cores (DDoS sources) and their victims: the rogues sit
#: on the attacked rows' routers, the victims on the far column
ROGUE_CORES = (36, 100, 164)
VICTIM_CORES = (31 * 4, 47 * 4, 63 * 4)


@dataclass(frozen=True)
class DistributedCase:
    """One N-trojan campaign against its attack-free baseline."""

    n_trojans: int
    cycles: int
    sentinel_checks: int
    #: benign packets delivered under attack / in the clean baseline
    benign_delivered: int
    baseline_delivered: int
    throughput_retained: float
    #: attacked links the coordinator acted on (any containment mode)
    links_contained: int
    links_attacked: int
    max_time_to_contain: int
    containment: dict


@dataclass(frozen=True)
class DistributedResult:
    quick: bool
    cases: tuple


def _benign_delivered(sim: Simulation) -> int:
    return sum(
        1
        for record in sim.network.stats.completed_records()
        if record.pkt_id < FLOOD_ID_BASE
    )


def benign_traffic(duration: int) -> SyntheticTraffic:
    return SyntheticTraffic(
        pattern="uniform",
        injection_rate=0.02,
        payload_words=2,
        duration=duration,
        seed=7,
    )


def build_scenario(
    n: int = 3, duration: int = 4000, attacked: bool = True
) -> Scenario:
    """One campaign case as a first-class value.

    The defaults pin the quick (CI smoke) case independently of the
    ``REPRO_DISTRIBUTED_QUICK`` env var; the serving layer
    (:mod:`repro.serve.scenarios`) registers exactly this run.
    """
    traffic: tuple = (benign_traffic(duration - 200),)
    trojans = ()
    attacks = ()
    if attacked:
        traffic = traffic + distributed_flood(
            ROGUE_CORES,
            VICTIM_CORES,
            rate=0.15,
            start_cycle=200,
            stop_cycle=duration - 200,
            seed=11,
        )
        # vc-0 trigger: broad enough that benign wormholes through the
        # infected links keep tripping the comparator (sustained DoS)
        trojans = coordinated_trojans(
            ATTACK_LINKS[n],
            TargetSpec.for_vc(0),
            TaspConfig(),
            start=300,
            stagger=100,
        )
        attacks = (
            DropAttackSpec(
                link=GRAYHOLE_LINK, drop_probability=1.0, enable_at=400
            ),
        )
    return Scenario(
        name=f"distributed-n{n}" if attacked else f"distributed-base-n{n}",
        cfg=MESH,
        traffic=traffic,
        trojans=trojans,
        attacks=attacks,
        defense=DefenseSpec(
            watchdog=WatchdogConfig(),
            containment=ContainmentConfig(),
        ),
        duration=duration,
        sentinel=SentinelSpec(every=200),
        seed=n,
    )


def run_case(n: int, duration: int) -> DistributedCase:
    baseline = Simulation(build_scenario(n, duration, attacked=False))
    baseline.run()
    base_delivered = _benign_delivered(baseline)

    sim = Simulation(build_scenario(n, duration, attacked=True))
    sim.run()  # a sentinel trip raises: finishing proves zero trips
    delivered = _benign_delivered(sim)

    coordinator = sim.containment
    assert coordinator is not None
    attacked_links = set(ATTACK_LINKS[n]) | {GRAYHOLE_LINK}
    contained = attacked_links & coordinator.contained_links
    summary = coordinator.summary()
    return DistributedCase(
        n_trojans=n,
        cycles=sim.network.cycle,
        sentinel_checks=(
            sim.sentinel.checks if sim.sentinel is not None else 0
        ),
        benign_delivered=delivered,
        baseline_delivered=base_delivered,
        throughput_retained=(
            delivered / base_delivered if base_delivered else 0.0
        ),
        links_contained=len(contained),
        links_attacked=len(attacked_links),
        max_time_to_contain=summary["max_time_to_contain"] or 0,
        containment=summary,
    )


def run(quick: "bool | None" = None) -> DistributedResult:
    if quick is None:
        quick = bool(os.environ.get("REPRO_DISTRIBUTED_QUICK"))
    ns = (3,) if quick else (2, 3, 5)
    duration = 4000 if quick else 8000
    return DistributedResult(
        quick=quick,
        cases=tuple(run_case(n, duration) for n in ns),
    )


def format_result(result: DistributedResult) -> str:
    from repro.experiments.common import format_table

    rows = []
    for case in result.cases:
        rows.append(
            [
                case.n_trojans,
                case.cycles,
                f"{case.links_contained}/{case.links_attacked}",
                case.max_time_to_contain,
                f"{case.throughput_retained:.2f}",
                f"{case.benign_delivered}/{case.baseline_delivered}",
                case.sentinel_checks,
            ]
        )
    table = format_table(
        [
            "trojans", "cycles", "contained", "max-ttc",
            "thpt-retained", "benign-delivered", "sentinel-checks",
        ],
        rows,
    )
    mode = "quick" if result.quick else "full"
    return (
        f"coordinated multi-trojan + DDoS survival (8x8 mesh, {mode})\n\n"
        f"{table}"
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
