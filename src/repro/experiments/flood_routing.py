"""Flood-DoS vs routing algorithm (supports the paper's §III-A remark).

"In a flood-based DoS attack, x-y routing performs better than multiple
adaptive algorithms when the injection rate is less than 0.65."

We run background traffic plus a rogue-core flood aimed at a victim
region under xy, west-first and odd-even routing, and measure the
*victim-visible* damage: latency of the legitimate background traffic.
Deterministic xy confines the flood to the victim's rows/columns, while
adaptive routing spreads the hotspot's congestion into neighboring
regions — hurting bystanders.

Also contrasts flood-DoS with trojan-DoS: the flood needs many rogue
packets per cycle to degrade the victim; one TASP stalls it outright.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import format_table
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.sim import (
    FloodTraffic,
    Scenario,
    Simulation,
    SyntheticTraffic,
    TrojanSpec,
)

ROUTINGS = ("xy", "west-first", "odd-even")


@dataclass(frozen=True)
class FloodPoint:
    routing: str
    flood_rate: float
    background_completed: int
    background_offered: int
    background_mean_latency: Optional[float]
    flood_packets: int

    @property
    def background_completion(self) -> float:
        if not self.background_offered:
            return 1.0
        return self.background_completed / self.background_offered


@dataclass(frozen=True)
class TaspContrastPoint:
    """Same victim region, attacked by one trojan instead of a flood."""

    background_completed: int
    background_offered: int
    victim_flows_completed: int
    victim_flows_offered: int
    trojan_triggers: int


@dataclass(frozen=True)
class FloodResult:
    points: list[FloodPoint]
    tasp_contrast: Optional["TaspContrastPoint"]
    duration: int

    def series(self, routing: str) -> list[FloodPoint]:
        return [p for p in self.points if p.routing == routing]


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    flood_rates: Sequence[float] = (0.0, 0.2, 0.5, 1.0),
    background_rate: float = 0.01,
    duration: int = 800,
    drain_cycles: int = 6000,
    seed: int = 0,
) -> FloodResult:
    # rogue threads on the corners flood the chip's center (routers 5/6)
    rogues = (
        cfg.core_of(3, 0),
        cfg.core_of(12, 0),
        cfg.core_of(15, 1),
        cfg.core_of(0, 1),
    )
    victims = tuple(
        cfg.core_of(r, i) for r in (5, 6) for i in range(cfg.concentration)
    )

    background = SyntheticTraffic(
        injection_rate=background_rate,
        payload_words=1,
        duration=duration,
        seed=seed,
    )

    points: list[FloodPoint] = []
    for routing in ROUTINGS:
        net_cfg = dataclasses.replace(cfg, routing=routing)
        for rate in flood_rates:
            traffic: tuple = (background,)
            if rate > 0:
                traffic += (
                    FloodTraffic(
                        rogue_cores=rogues,
                        victim_cores=victims,
                        rate=rate,
                        stop_cycle=duration,
                        seed=seed + 1,
                    ),
                )
            sim = Simulation(
                Scenario(
                    name=f"flood-{routing}-{rate:.1f}",
                    cfg=net_cfg,
                    traffic=traffic,
                    max_cycles=drain_cycles,
                    stall_limit=2500,
                    seed=seed,
                )
            )
            sim.run_until_drained(drain_cycles, stall_limit=2500)
            net = sim.network
            flood = sim.sources[1] if rate > 0 else None

            background_ids = {
                pid for pid in net.stats.packets if pid < 10_000_000
            }
            completed = sum(
                1
                for pid in background_ids
                if net.stats.packets[pid].complete
            )
            lats = [
                net.stats.packets[pid].total_latency
                for pid in background_ids
                if net.stats.packets[pid].complete
            ]
            points.append(
                FloodPoint(
                    routing=routing,
                    flood_rate=rate,
                    background_completed=completed,
                    background_offered=len(background_ids),
                    background_mean_latency=(
                        sum(lats) / len(lats) if lats else None
                    ),
                    flood_packets=flood.packets_generated if flood else 0,
                )
            )

    # -- contrast: trojans on the victim router's ingress links, zero
    # attacker bandwidth (the paper: the number of HTs is orthogonal,
    # and even 48 of them cost <1% of NoC power) ------------------------
    from repro.core import TargetSpec
    from repro.noc.topology import Direction

    sim = Simulation(
        Scenario(
            name="flood-tasp-contrast",
            cfg=cfg,
            traffic=(background,),
            trojans=tuple(
                TrojanSpec(
                    link=ingress,
                    target=TargetSpec(dst=5, head_only=True),  # victim region
                )
                for ingress in ((1, Direction.NORTH), (9, Direction.SOUTH),
                                (4, Direction.EAST), (6, Direction.WEST))
            ),
            max_cycles=drain_cycles,
            stall_limit=2500,
            seed=seed,
        )
    )
    sim.run_until_drained(drain_cycles, stall_limit=2500)
    net = sim.network
    victim_ids = {
        pid
        for pid, rec in net.stats.packets.items()
        if cfg.router_of_core(rec.dst_core) == 5
    }
    contrast = TaspContrastPoint(
        background_completed=sum(
            1 for pid, rec in net.stats.packets.items()
            if pid not in victim_ids and rec.complete
        ),
        background_offered=len(net.stats.packets) - len(victim_ids),
        victim_flows_completed=sum(
            1 for pid in victim_ids if net.stats.packets[pid].complete
        ),
        victim_flows_offered=len(victim_ids),
        trojan_triggers=sum(t.triggers for t in sim.trojans),
    )
    return FloodResult(points=points, tasp_contrast=contrast,
                       duration=duration)


def format_result(result: FloodResult) -> str:
    headers = ["routing", "flood rate", "bg delivered", "bg mean latency",
               "flood pkts"]
    rows = []
    for p in result.points:
        lat = (f"{p.background_mean_latency:.1f}"
               if p.background_mean_latency is not None else "-")
        rows.append([
            p.routing, f"{p.flood_rate:.1f}",
            f"{p.background_completed}/{p.background_offered}", lat,
            p.flood_packets,
        ])
    text = (
        "Flood-based DoS vs routing algorithm "
        "(background = legitimate uniform traffic)\n"
        + format_table(headers, rows)
    )
    c = result.tasp_contrast
    if c is not None:
        text += (
            "\n\ncontrast — one TASP trojan on a single victim-region "
            "link (zero attacker bandwidth):\n"
            f"  victim-region flows delivered: "
            f"{c.victim_flows_completed}/{c.victim_flows_offered}\n"
            f"  other flows delivered:         "
            f"{c.background_completed}/{c.background_offered}\n"
            f"  trojan triggers:               {c.trojan_triggers}"
        )
    return text
