"""Structured export of experiment results.

Every experiment returns a (nested) dataclass; :func:`to_jsonable`
walks it into plain JSON types so results can be archived, diffed
across runs, or plotted elsewhere.  Enum values become their names,
mesh directions become strings, and dict keys that are tuples (link
keys) are flattened to ``"router->DIRECTION"`` strings.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any

from repro.noc.topology import Direction


def _key_to_str(key: Any) -> str:
    if isinstance(key, tuple):
        return "->".join(_key_to_str(k) for k in key)
    if isinstance(key, enum.Enum):
        return key.name
    return str(key)


def to_jsonable(value: Any) -> Any:
    """Recursively convert an experiment result to JSON-safe types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {_key_to_str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # last resort: a readable representation (e.g. Flit in a trace)
    return repr(value)


def save_result(
    result: Any,
    path: str | Path,
    experiment: str = "",
    metrics: Any = None,
    verdict_stream: Any = None,
) -> Path:
    """Serialize a result to a JSON file; returns the path written.

    ``metrics`` (a ``repro.obs`` manifest dict) is embedded as the
    payload's ``"metrics"`` section when given; ``verdict_stream`` (a
    list of ``repro.serve`` verdict dicts, the streaming classifiers'
    output over the run's event bus) as ``"verdict_stream"``.
    """
    path = Path(path)
    payload = {
        "experiment": experiment,
        "result": to_jsonable(result),
    }
    if metrics is not None:
        payload["metrics"] = metrics
    if verdict_stream is not None:
        payload["verdict_stream"] = verdict_stream
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_result(path: str | Path) -> dict:
    """Load a previously saved result (as plain dicts/lists)."""
    return json.loads(Path(path).read_text())
