"""ASCII mesh visualization.

Terminal-renderable views of the NoC used by the experiment reports and
examples: a link-load heatmap (Fig. 1c as a picture) and a router
status grid (the Fig. 11 back-pressure map).

Layout: routers are drawn at their mesh coordinates, north at the top::

    [12]--[13]--[14]--[15]
      |     |     |     |
    [ 8]--[ 9]--[10]--[11]
      ...
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.noc.topology import Direction, LinkKey

#: glyph ramp from idle to saturated
HEAT_RAMP = " .:-=+*#%@"


def _heat_glyph(value: float, peak: float) -> str:
    if peak <= 0:
        return HEAT_RAMP[0]
    idx = min(len(HEAT_RAMP) - 1, int(value / peak * (len(HEAT_RAMP) - 1)))
    return HEAT_RAMP[idx]


def _planar(cfg: NoCConfig, key: LinkKey) -> bool:
    """True when the link is drawable as a planar mesh segment —
    a base-direction link that neither wraps nor skips routers."""
    router, direction = key
    x, y = cfg.router_xy(router)
    return (
        (direction is Direction.EAST and x < cfg.mesh_width - 1)
        or (direction is Direction.WEST and x > 0)
        or (direction is Direction.NORTH and y < cfg.mesh_height - 1)
        or (direction is Direction.SOUTH and y > 0)
    )


def render_link_heatmap(
    cfg: NoCConfig,
    loads: Mapping[LinkKey, float],
    title: str = "link load",
) -> str:
    """Draw the mesh with each link's glyph scaled to its load.

    Horizontal links show the eastbound load left of the westbound one
    (``>g1 <g2``); vertical links stack northbound over southbound.
    Router cells widen to fit the largest id, so non-square and large
    meshes stay column-aligned.  Links with no planar segment — torus
    wrap-around channels and express channels — cannot be drawn in the
    grid; they are listed in a legend-noted overflow section below it,
    scaled on the same ramp (the peak includes them).
    """
    peak = max(loads.values(), default=0.0)
    idw = max(2, len(str(cfg.num_routers - 1)))
    # one column: "[id]" + " >g<g " — vertical rows pad to the same
    # stride so segments line up under their cells
    stride = idw + 8

    def h_seg(router: int) -> str:
        east = loads.get((router, Direction.EAST), 0.0)
        west_src = router + 1
        west = loads.get((west_src, Direction.WEST), 0.0)
        return f">{_heat_glyph(east, peak)}<{_heat_glyph(west, peak)}"

    def v_seg(router: int) -> str:
        north = loads.get((router, Direction.NORTH), 0.0)
        south_src = router + cfg.mesh_width
        south = loads.get((south_src, Direction.SOUTH), 0.0)
        return f"^{_heat_glyph(north, peak)}v{_heat_glyph(south, peak)}"

    lines = [f"{title} (peak={peak:.4g}, ramp '{HEAT_RAMP}')"]
    for y in reversed(range(cfg.mesh_height)):
        row = []
        for x in range(cfg.mesh_width):
            router = cfg.router_at(x, y)
            cell = f"[{router:{idw}d}]"
            if x < cfg.mesh_width - 1:
                cell += f" {h_seg(router)} "
            row.append(cell)
        lines.append("".join(row).rstrip())
        if y > 0:
            vrow = []
            for x in range(cfg.mesh_width):
                below = cfg.router_at(x, y - 1)
                vrow.append(f" {v_seg(below)}".ljust(stride))
            lines.append("".join(vrow).rstrip())
    overflow = sorted(key for key in loads if not _planar(cfg, key))
    if overflow:
        lines.append(
            f"+{len(overflow)} non-planar link(s) (wrap/express), "
            "not drawn above:"
        )
        for router, direction in overflow:
            value = loads[(router, direction)]
            glyph = _heat_glyph(value, peak)
            lines.append(
                f"  {router:>{idw}d}->{direction.name:<13s} "
                f"'{glyph}' ({value:.4g})"
            )
    return "\n".join(lines)


def render_router_grid(
    cfg: NoCConfig,
    classify: Callable[[int], str],
    title: str = "router status",
    legend: Optional[str] = None,
) -> str:
    """Draw the mesh with one glyph per router from ``classify(rid)``."""
    lines = [title]
    for y in reversed(range(cfg.mesh_height)):
        row = []
        for x in range(cfg.mesh_width):
            rid = cfg.router_at(x, y)
            row.append(f"[{classify(rid):^3s}]")
        lines.append(" ".join(row))
    if legend:
        lines.append(legend)
    return "\n".join(lines)


#: back-pressure map cell glyphs (paper Fig. 11).  Cells are three
#: characters wide; the legend below is built from the same constants
#: so the rendering stays self-describing.
CELL_ALL_CORES_BLOCKED = "XXX"
CELL_OUTPUT_STALLED = " ! "
CELL_HALF_CORES_BLOCKED = " x "
CELL_HEALTHY = " . "

BACKPRESSURE_LEGEND = (
    f"legend: '{CELL_HEALTHY.strip()}' healthy  "
    f"'{CELL_HALF_CORES_BLOCKED.strip()}' >50% cores blocked  "
    f"'{CELL_OUTPUT_STALLED.strip()}' output port stalled  "
    f"'{CELL_ALL_CORES_BLOCKED}' all cores blocked"
)


def render_backpressure_map(net: Network, title: str = "") -> str:
    """The Fig. 11 view of a live network: per-router blockage state."""
    cfg = net.cfg

    def classify(rid: int) -> str:
        router = net.routers[rid]
        cores = [
            cfg.core_of(rid, local) for local in range(cfg.concentration)
        ]
        full = sum(1 for core in cores if net.core_blocked(core))
        if full == cfg.concentration:
            return CELL_ALL_CORES_BLOCKED
        if router.any_output_blocked(net.cycle):
            return CELL_OUTPUT_STALLED
        if full > cfg.concentration / 2:
            return CELL_HALF_CORES_BLOCKED
        return CELL_HEALTHY

    return render_router_grid(
        cfg,
        classify,
        title or f"back pressure @ cycle {net.cycle}",
        legend=BACKPRESSURE_LEGEND,
    )


def render_network_link_heatmap(net: Network, title: str = "") -> str:
    """Heatmap of measured link traversals on a live network."""
    return render_link_heatmap(
        net.cfg,
        {k: float(v) for k, v in net.link_load().items()},
        title or f"link traversals @ cycle {net.cycle}",
    )
