"""Shared helpers for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.baselines.reroute import UnroutableError, updown_table
from repro.core import TargetSpec, TaspConfig, TaspTrojan
from repro.noc.config import NoCConfig
from repro.noc.network import Network
from repro.noc.topology import LinkKey, all_links, links_on_xy_path
from repro.traffic.apps import AppProfile, AppTraceSource
from repro.traffic.trace import Trace, record_trace
from repro.util.rng import SeededStream


def make_app_trace(
    cfg: NoCConfig,
    profile: AppProfile,
    duration: int,
    seed: int = 0,
    max_packets: Optional[int] = None,
) -> Trace:
    source = AppTraceSource(
        cfg, profile, seed=seed, duration=duration, max_packets=max_packets
    )
    return record_trace(source, cfg, duration, profile.name)


def xy_link_loads(cfg: NoCConfig, trace: Trace) -> dict[LinkKey, int]:
    """Flit-traversal count per link if the trace is xy-routed
    (analytic — no simulation needed)."""
    loads: dict[LinkKey, int] = {key: 0 for key in all_links(cfg)}
    for pkt in trace.packets:
        src = cfg.router_of_core(pkt.src_core)
        dst = cfg.router_of_core(pkt.dst_core)
        for key in links_on_xy_path(cfg, src, dst):
            loads[key] += pkt.num_flits()
    return loads


def pick_infected_links(
    cfg: NoCConfig,
    trace: Trace,
    count: int,
    seed: int = 0,
) -> list[LinkKey]:
    """Choose ``count`` links for trojan insertion.

    Following the paper's attacker analysis (§III-A), links are drawn
    preferentially from the busiest part of the xy-routed traffic (an
    attacker a few hops from the primary cores sees most flows), while
    keeping the surviving topology up*/down*-routable so the rerouting
    baseline remains comparable.
    """
    if count == 0:
        return []
    loads = xy_link_loads(cfg, trace)
    ranked = sorted(loads, key=lambda k: loads[k], reverse=True)
    stream = SeededStream(seed, "infected-links")
    # jitter the ranking a little so different seeds infect different sets
    ranked = sorted(
        ranked,
        key=lambda k: loads[k] * (0.8 + 0.4 * stream.random()),
        reverse=True,
    )
    chosen: list[LinkKey] = []
    for key in ranked:
        candidate = chosen + [key]
        try:
            updown_table(cfg, candidate)
        except UnroutableError:
            continue
        chosen = candidate
        if len(chosen) == count:
            break
    if len(chosen) < count:
        raise UnroutableError(
            f"could not find {count} infectable links keeping the mesh routable"
        )
    return chosen


def attach_trojans(
    network: Network,
    links: Iterable[LinkKey],
    target: TargetSpec,
    config: TaspConfig = TaspConfig(),
    enabled: bool = True,
) -> list[TaspTrojan]:
    """Imperative wrapper over the sim layer's declarative specs, kept
    for callers that already hold a wired :class:`Network`."""
    from repro.sim import attach_trojan_specs, trojan_specs

    return attach_trojan_specs(
        network,
        trojan_specs(links, target, config=config, enabled=enabled),
    )


@dataclass(frozen=True)
class CompletionResult:
    """Outcome of draining a fixed workload."""

    completed: bool
    cycles: int
    packets_completed: int
    packets_injected: int
    mean_latency: Optional[float]


def run_to_completion(
    network: Network, max_cycles: int, stall_limit: int = 2000
) -> CompletionResult:
    done = network.run_until_drained(max_cycles, stall_limit=stall_limit)
    return CompletionResult(
        completed=done,
        cycles=network.cycle,
        packets_completed=network.stats.packets_completed,
        packets_injected=network.stats.packets_injected,
        mean_latency=network.stats.mean_total_latency(),
    )


def format_table(
    headers: list[str], rows: list[list], widths: Optional[list[int]] = None
) -> str:
    """Minimal fixed-width table formatter for experiment reports."""
    if widths is None:
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) + 2
            if rows
            else len(str(headers[i])) + 2
            for i in range(len(headers))
        ]
    def fmt(row):
        return "".join(str(v).ljust(w) for v, w in zip(row, widths))
    lines = [fmt(headers), "-" * sum(widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
