"""Fig. 10 — keep using infected links (s2s L-Ob) vs rerouting (Ariadne).

For each application trace and each infected-link percentage, the same
workload is run twice:

* **L-Ob arm** — trojans sit on the infected links; the mitigated
  network keeps using them, paying 1–3 cycles per obfuscated traversal;
* **Rerouting arm** — the infected links are condemned and traffic is
  rerouted with a reconfigured up*/down* table (Ariadne-style), paying
  extra hops and lost path diversity on every packet.

Speedup is the ratio of workload completion times (reroute / L-Ob):
above 1.0 means continuing to use the infected link wins.  The paper
shows the advantage growing with the infected percentage.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.core import TargetSpec
from repro.experiments.common import (
    format_table,
    make_app_trace,
    pick_infected_links,
)
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.sim import AppTraffic, DefenseSpec, Scenario, engine, trojan_specs
from repro.traffic.apps import PROFILES

DEFAULT_APPS = ("blackscholes", "facesim", "ferret", "fft")
DEFAULT_FRACTIONS = (0.0, 0.05, 0.10, 0.15)

#: drain stall limit (matches the historical run_to_completion default)
STALL_LIMIT = 2000


@dataclass(frozen=True)
class Fig10Point:
    app: str
    infected_fraction: float
    infected_links: int
    lob_cycles: int
    reroute_cycles: int
    lob_completed: bool
    reroute_completed: bool

    @property
    def speedup(self) -> float:
        """Completion-time ratio: >1 means L-Ob beats rerouting."""
        return self.reroute_cycles / self.lob_cycles


@dataclass(frozen=True)
class Fig10Result:
    points: list[Fig10Point]
    trace_packets: dict[str, int]

    def series(self, app: str) -> list[Fig10Point]:
        return [p for p in self.points if p.app == app]


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    apps: Sequence[str] = DEFAULT_APPS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    duration: int = 500,
    rate_scale: float = 8.0,
    seed: int = 0,
    max_cycles: int = 30000,
) -> Fig10Result:
    """``rate_scale`` multiplies the profile injection rates so the
    workload is throughput-bound (completion time then measures network
    capacity, which is what the two mitigations trade off)."""
    points: list[Fig10Point] = []
    trace_packets: dict[str, int] = {}

    for app in apps:
        profile = dataclasses.replace(
            PROFILES[app],
            injection_rate=PROFILES[app].injection_rate * rate_scale,
        )
        # analytic trace: link-load ranking + packet count (the live
        # AppTraffic source replays the identical stream)
        trace = make_app_trace(cfg, profile, duration, seed=seed)
        trace_packets[app] = len(trace)
        workload = AppTraffic(
            profile=app, seed=seed, duration=duration, rate_scale=rate_scale
        )
        # the attacker targets the application's primary router
        target = TargetSpec.for_dest(profile.primary_routers[0][0])

        for fraction in fractions:
            count = round(fraction * cfg.num_links)
            links = pick_infected_links(cfg, trace, count, seed=seed)
            trojans = trojan_specs(links, target)

            lob = engine.run(
                Scenario(
                    name=f"fig10-{app}-{fraction:.2f}-lob",
                    cfg=cfg,
                    traffic=(workload,),
                    trojans=trojans,
                    defense=DefenseSpec(mitigated=True),
                    max_cycles=max_cycles,
                    stall_limit=STALL_LIMIT,
                    seed=seed,
                )
            )
            # disabled links make the trojans inert in the reroute arm
            rr = engine.run(
                Scenario(
                    name=f"fig10-{app}-{fraction:.2f}-reroute",
                    cfg=cfg,
                    traffic=(workload,),
                    trojans=trojans,
                    defense=DefenseSpec(rerouted_links=tuple(links)),
                    max_cycles=max_cycles,
                    stall_limit=STALL_LIMIT,
                    seed=seed,
                )
            )

            points.append(
                Fig10Point(
                    app=app,
                    infected_fraction=fraction,
                    infected_links=count,
                    lob_cycles=lob.cycles,
                    reroute_cycles=rr.cycles,
                    lob_completed=lob.completed,
                    reroute_completed=rr.completed,
                )
            )
    return Fig10Result(points=points, trace_packets=trace_packets)


def format_result(result: Fig10Result) -> str:
    headers = [
        "app", "infected", "links", "L-Ob cycles", "reroute cycles",
        "speedup (L-Ob vs reroute)",
    ]
    rows = []
    for p in result.points:
        rows.append([
            p.app,
            f"{100 * p.infected_fraction:.0f}%",
            p.infected_links,
            f"{p.lob_cycles}{'' if p.lob_completed else ' (!)'} ",
            f"{p.reroute_cycles}{'' if p.reroute_completed else ' (!)'}",
            f"{p.speedup:.2f}x",
        ])
    return (
        "Fig. 10 — workload completion: s2s L-Ob vs rerouting (Ariadne)\n"
        + format_table(headers, rows)
    )
