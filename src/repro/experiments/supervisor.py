"""Process-level supervision of batch work.

The ``--jobs N`` fan-out used to be a bare ``multiprocessing.Pool``:
one hung experiment blocked the campaign forever, and a worker killed
by the OS (OOM, SIGKILL) lost the whole run.  :class:`Supervisor`
replaces it with explicit per-task worker processes plus a monitor
loop that enforces the failure policy fault-injection campaigns need:

* **wall-clock timeouts** — a task running past ``timeout`` seconds is
  killed and counted as a failed attempt;
* **death detection** — a worker that exits without posting a result
  (``os._exit``, OOM-kill, segfault) is a failed attempt, not a hang;
* **retry with exponential backoff** — failed attempts are re-queued
  after ``backoff_base * 2**(attempt-1)`` seconds, capped at
  ``backoff_cap``, up to ``max_retries`` retries; a seeded jitter
  (deterministic per task and attempt) spreads simultaneous retries so
  a batch of tasks felled by one shared cause does not re-stampede the
  machine in lockstep;
* **quarantine** — a task that fails every attempt is reported as
  quarantined (with every attempt's error) while the rest of the batch
  completes; the campaign is never aborted by one poison task;
* **incremental results** — ``on_complete`` fires as each task
  reaches a final outcome, so callers can persist partial progress and
  support resuming an interrupted batch.

Worker processes are forked, so task functions need not be picklable
(the runner's module-level worker is, but tests inject local hang/crash
functions).  Ctrl-C terminates every live worker and raises
:class:`SupervisorInterrupt` carrying the outcomes finished so far.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.util.rng import SeededStream

#: (task_id, attempt, ok, payload_or_traceback)
_ResultMsg = tuple


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure policy for one supervised batch."""

    #: concurrent worker processes
    jobs: int = 2
    #: per-attempt wall-clock limit in seconds (None = unlimited)
    timeout: Optional[float] = None
    #: failed attempts are retried this many times before quarantine
    max_retries: int = 2
    #: first retry delay in seconds; doubles per attempt
    backoff_base: float = 0.5
    #: retry delay ceiling in seconds (jitter applied on top)
    backoff_cap: float = 30.0
    #: retry delays are stretched by up to this fraction, drawn from a
    #: stream seeded per (task, attempt) — reproducible desynchrony
    jitter: float = 0.25
    #: root seed of the jitter streams
    seed: int = 0
    #: monitor loop poll period in seconds
    poll_interval: float = 0.05
    #: grace period for a dead worker's queued result to surface
    death_grace: float = 0.25


@dataclass
class TaskOutcome:
    """Final state of one supervised task."""

    task_id: str
    ok: bool
    quarantined: bool
    attempts: int
    #: wall time from first launch to final outcome (backoff included)
    seconds: float
    #: the task function's return value (None unless ``ok``)
    result: object = None
    #: last failure, one line (empty when ``ok``)
    error: str = ""
    #: every attempt's failure description, oldest first
    failures: tuple = ()
    #: salvage pointers (e.g. repro-bundle paths) collected via the
    #: supervisor's ``artifacts_for`` hook when the task quarantines
    artifacts: tuple = ()
    #: backoff applied before each retry, in seconds (jitter included),
    #: oldest first — persisted so resumed batches keep retry history
    retry_delays: tuple = ()


class SupervisorInterrupt(KeyboardInterrupt):
    """Ctrl-C during a supervised batch; carries finished outcomes."""

    def __init__(self, outcomes: list):
        super().__init__("supervised batch interrupted")
        self.outcomes = outcomes


def _entry(fn, args, results, task_id: str, attempt: int) -> None:
    """Worker-side wrapper: always posts exactly one message, then
    flushes the queue feeder so a normal exit never loses it."""
    try:
        payload = fn(*args)
    except BaseException:
        results.put((task_id, attempt, False, traceback.format_exc()))
    else:
        results.put((task_id, attempt, True, payload))
    finally:
        results.close()
        results.join_thread()


@dataclass
class _Pending:
    task_id: str
    fn: Callable
    args: tuple
    attempt: int
    not_before: float
    first_started: Optional[float]
    failures: list = field(default_factory=list)
    retry_delays: list = field(default_factory=list)


@dataclass
class _Running:
    pending: _Pending
    process: multiprocessing.Process
    started: float
    dead_since: Optional[float] = None


class Supervisor:
    """Run a batch of tasks under the failure policy of ``config``.

    Tasks are ``(task_id, fn, args)`` triples; ``fn(*args)`` runs in a
    forked worker process and its return value becomes
    ``TaskOutcome.result``.  An ``fn`` that *raises* is a failed
    attempt (retried like a crash); an ``fn`` that returns a value
    describing a failure is the caller's business — supervision only
    distinguishes "posted a result" from "hung or died".
    """

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        on_complete: Optional[Callable[[TaskOutcome], None]] = None,
        artifacts_for: Optional[Callable[[str], Sequence[str]]] = None,
    ):
        self.config = config or SupervisorConfig()
        self.on_complete = on_complete
        #: called with a task_id when it quarantines; returns on-disk
        #: artifacts (repro bundles, logs) a dead worker left behind
        self.artifacts_for = artifacts_for
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()

    # -- the monitor loop ------------------------------------------------
    def run(
        self, tasks: Sequence[tuple[str, Callable, tuple]]
    ) -> list[TaskOutcome]:
        cfg = self.config
        order = [task_id for task_id, _, _ in tasks]
        pending: list[_Pending] = [
            _Pending(task_id, fn, tuple(args), attempt=1,
                     not_before=0.0, first_started=None)
            for task_id, fn, args in tasks
        ]
        running: dict[str, _Running] = {}
        results = self._ctx.Queue()
        arrived: dict[tuple[str, int], tuple[bool, object]] = {}
        outcomes: dict[str, TaskOutcome] = {}

        try:
            while pending or running:
                now = time.monotonic()
                self._launch_ready(pending, running, results, now)
                self._drain(results, arrived)
                progressed = self._reap(
                    pending, running, arrived, outcomes, results
                )
                if not progressed and (pending or running):
                    time.sleep(cfg.poll_interval)
        except KeyboardInterrupt:
            self._kill_all(running)
            raise SupervisorInterrupt(
                [outcomes[t] for t in order if t in outcomes]
            ) from None
        finally:
            results.close()

        return [outcomes[task_id] for task_id in order]

    # -- loop phases -----------------------------------------------------
    def _launch_ready(self, pending, running, results, now) -> None:
        cfg = self.config
        index = 0
        while len(running) < cfg.jobs and index < len(pending):
            item = pending[index]
            if item.not_before > now or item.task_id in running:
                index += 1
                continue
            pending.pop(index)
            if item.first_started is None:
                item.first_started = now
            process = self._ctx.Process(
                target=_entry,
                args=(item.fn, item.args, results, item.task_id,
                      item.attempt),
                daemon=True,
            )
            process.start()
            running[item.task_id] = _Running(item, process, now)

    def _drain(self, results, arrived) -> None:
        while True:
            try:
                task_id, attempt, ok, payload = results.get_nowait()
            except queue_module.Empty:
                return
            arrived[(task_id, attempt)] = (ok, payload)

    def _reap(self, pending, running, arrived, outcomes, results) -> bool:
        cfg = self.config
        progressed = False
        for task_id, record in list(running.items()):
            item = record.pending
            now = time.monotonic()
            key = (task_id, item.attempt)

            if key in arrived:
                ok, payload = arrived.pop(key)
                record.process.join()
                del running[task_id]
                if ok:
                    self._finish(outcomes, item, now, result=payload)
                else:
                    self._fail(pending, outcomes, item, now, str(payload))
                progressed = True
                continue

            if (
                cfg.timeout is not None
                and now - record.started > cfg.timeout
            ):
                self._kill(record.process)
                del running[task_id]
                self._fail(
                    pending, outcomes, item, now,
                    f"timeout: no result within {cfg.timeout:.1f}s "
                    "(worker killed)",
                )
                progressed = True
                continue

            if not record.process.is_alive():
                # Exit and result can race: give the queue feeder a
                # grace period before declaring the worker dead.
                if record.dead_since is None:
                    record.dead_since = now
                self._drain(results, arrived)
                if key in arrived:
                    continue  # handled next pass
                if now - record.dead_since < cfg.death_grace:
                    continue
                exitcode = record.process.exitcode
                record.process.join()
                del running[task_id]
                self._fail(
                    pending, outcomes, item, now,
                    f"worker died without a result (exitcode {exitcode})",
                )
                progressed = True
        return progressed

    # -- attempt bookkeeping ---------------------------------------------
    def _finish(self, outcomes, item: _Pending, now, result) -> None:
        outcome = TaskOutcome(
            task_id=item.task_id,
            ok=True,
            quarantined=False,
            attempts=item.attempt,
            seconds=now - (item.first_started or now),
            result=result,
            failures=tuple(item.failures),
            retry_delays=tuple(item.retry_delays),
        )
        outcomes[item.task_id] = outcome
        if self.on_complete is not None:
            self.on_complete(outcome)

    def _fail(self, pending, outcomes, item: _Pending, now, error) -> None:
        cfg = self.config
        item.failures.append(f"attempt {item.attempt}: {error}")
        if item.attempt <= cfg.max_retries:
            delay = min(
                cfg.backoff_cap,
                cfg.backoff_base * (2 ** (item.attempt - 1)),
            )
            # deterministic per (task, attempt): the same batch replays
            # the same retry schedule, but concurrent casualties of a
            # shared failure do not relaunch in lockstep
            stream = SeededStream(
                cfg.seed, "supervisor-retry", item.task_id, item.attempt
            )
            delay *= 1.0 + cfg.jitter * stream.random()
            item.retry_delays.append(delay)
            pending.append(
                _Pending(
                    item.task_id, item.fn, item.args,
                    attempt=item.attempt + 1,
                    not_before=now + delay,
                    first_started=item.first_started,
                    failures=item.failures,
                    retry_delays=item.retry_delays,
                )
            )
            return
        artifacts: tuple = ()
        if self.artifacts_for is not None:
            try:
                artifacts = tuple(self.artifacts_for(item.task_id))
            except Exception:  # pragma: no cover - best-effort salvage
                artifacts = ()
        outcome = TaskOutcome(
            task_id=item.task_id,
            ok=False,
            quarantined=True,
            attempts=item.attempt,
            seconds=now - (item.first_started or now),
            error=error.strip().splitlines()[-1] if error else "failed",
            failures=tuple(item.failures),
            artifacts=artifacts,
            retry_delays=tuple(item.retry_delays),
        )
        outcomes[item.task_id] = outcome
        if self.on_complete is not None:
            self.on_complete(outcome)

    # -- teardown --------------------------------------------------------
    @staticmethod
    def _kill(process) -> None:
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - stubborn worker
            process.kill()
            process.join()

    def _kill_all(self, running: dict) -> None:
        for record in running.values():
            self._kill(record.process)
        running.clear()
