"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner list
    python -m repro.experiments.runner fig11
    python -m repro.experiments.runner fig2 fig10 --seed 3
    python -m repro.experiments.runner all --jobs 4 --timeout 900
    python -m repro.experiments.runner all --jobs 4 --resume

Results are memoized on disk (keyed by experiment name, seed and a
hash of the source tree) so a re-run without code changes replays the
stored report instead of re-simulating; ``--no-cache`` bypasses the
cache and ``--cache-dir`` relocates it.

Multi-experiment runs are supervised: each finished experiment is
persisted to a state file as it completes, so a run killed midway can
pick up where it left off with ``--resume``.  With ``--jobs N`` the
fan-out additionally enforces per-experiment ``--timeout`` limits,
detects dead workers, retries infrastructure failures with exponential
backoff and quarantines experiments that fail every attempt instead of
aborting the batch.

Exit codes: 0 all experiments passed; 1 at least one failed or was
quarantined; 2 usage error (unknown experiment); 130 interrupted
(partial results were saved — rerun with ``--resume``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import tempfile
import time
import traceback
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import (
    ablations,
    chaos,
    distributed,
    flood_routing,
    largescale,
    fig1_traffic,
    fig2_faults,
    fig8_overhead,
    fig10_speedup,
    fig11_backpressure,
    fig12_qos,
    load_curve,
    reinstate,
    table1_tasp,
    table2_mitigation,
)
from repro.experiments.supervisor import (
    Supervisor,
    SupervisorConfig,
    SupervisorInterrupt,
    TaskOutcome,
)
from repro.obs.profiler import ENV_FLAG as _PROFILE_ENV
from repro.sim import ENGINE_ENV, ResultCache, spec_hash

EXPERIMENTS = {
    "fig1": (fig1_traffic, "Blackscholes traffic distributions"),
    "fig2": (fig2_faults, "latency vs distance per fault type"),
    "fig8": (fig8_overhead, "TASP power/area pies"),
    "fig9": (table1_tasp, "TASP target-variant areas (same data as Table I)"),
    "fig10": (fig10_speedup, "L-Ob vs rerouting speedup"),
    "fig11": (fig11_backpressure, "back-pressure build-up under attack"),
    "fig12": (fig12_qos, "TDM containment vs proposed mitigation"),
    "table1": (table1_tasp, "TASP variant area/power/timing"),
    "table2": (table2_mitigation, "mitigation overhead"),
    "ablations": (ablations, "design-choice ablations"),
    "flood": (flood_routing, "flood DoS vs routing algorithms; flood vs trojan"),
    "load": (load_curve, "load-latency curves; xy vs adaptive saturation"),
    "chaos": (chaos, "resilience ladder under chaos campaigns"),
    "distributed": (
        distributed,
        "coordinated multi-trojan + DDoS survival with containment",
    ),
    "reinstate": (
        reinstate,
        "self-healing: probation reinstatement + flap damping",
    ),
    "largescale": (
        largescale,
        "topology-robust containment: 16x16 mesh + torus with localization",
    ),
}

#: layout version of the runner's resume state file
STATE_FORMAT = 1


def execution_plan(names: Optional[Sequence[str]] = None) -> list[str]:
    """The experiments that will actually run, aliases folded.

    ``fig9``/``table1`` (and any future aliases) share a module; only
    the first name wins a slot, so ``all`` never runs the same module
    twice while both CLI spellings stay valid.
    """
    if names is None:
        names = list(EXPERIMENTS)
    seen: set = set()
    plan: list[str] = []
    for name in names:
        module, _ = EXPERIMENTS[name]
        if module in seen:
            continue
        seen.add(module)
        plan.append(name)
    return plan


def _derived_json_path(json_path: str, name: str) -> str:
    """Per-experiment output file for multi-experiment mode:
    results.json -> results-fig2.json etc."""
    path = Path(json_path)
    suffix = path.suffix or ".json"
    return str(path.with_name(f"{path.stem}-{name}{suffix}"))


def _seed_kwargs(module, seed: Optional[int]) -> dict:
    """Thread ``--seed`` into ``module.run`` only when the flag was
    given and the experiment is seedable; otherwise the module's own
    defaults apply and published numbers do not move."""
    if seed is None:
        return {}
    if "seed" in inspect.signature(module.run).parameters:
        return {"seed": seed}
    return {}


def _cache_key(module, seed: Optional[int]) -> str:
    # keyed on the module (so aliases share one entry) and the seed;
    # ResultCache adds the source-tree version on top
    return spec_hash({"experiment": module.__name__, "seed": seed})


def run_experiment(
    name: str,
    json_path: Optional[str] = None,
    seed: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    obs_dir: Optional[str] = None,
) -> str:
    from repro.experiments.export import save_result, to_jsonable
    from repro.obs import profiler as obs_profiler
    from repro.obs.exporters import disabled_manifest

    module, _ = EXPERIMENTS[name]
    started = time.time()
    # with --obs-dir the run must actually execute (the exports are the
    # point), so the cache is bypassed both ways
    use_cache = cache is not None and obs_dir is None
    cached = cache.get(_cache_key(module, seed)) if use_cache else None
    metrics = disabled_manifest()
    verdict_stream = None
    if cached is not None:
        report = cached["report"]
        jsonable = cached["result"]
        metrics = cached.get("metrics", metrics)
    else:
        obs = None
        pipeline = None
        if obs_dir is not None:
            from repro.obs.instrument import (
                ObsConfig,
                disable_ambient,
                enable_ambient,
            )
            from repro.serve.classify import ZScoreClassifier
            from repro.serve.pipeline import DetectionPipeline

            obs_root = Path(obs_dir) / name
            obs = enable_ambient(
                ObsConfig(
                    events_jsonl=str(obs_root / "events.jsonl"),
                    metrics_json=str(obs_root / "metrics.json"),
                    prometheus=str(obs_root / "metrics.prom"),
                )
            )
            # streaming detection riding the same bus: the z-score
            # classifier (topology not known here, channels first-seen)
            # folds the event stream into the embedded verdict_stream
            pipeline = DetectionPipeline([ZScoreClassifier()]).attach(obs)
        try:
            result = module.run(**_seed_kwargs(module, seed))
        finally:
            if obs is not None:
                disable_ambient()
        report = module.format_result(result)
        jsonable = to_jsonable(result)
        if pipeline is not None:
            pipeline.finish()
            verdict_stream = pipeline.verdict_stream()
        if obs is not None:
            metrics = obs.export()
            report += f"\n[observability exported to {obs_root}]"
        prof = obs_profiler.current()
        if prof is not None and prof.seconds:
            # per-experiment attribution: report, then reset the laps
            report += "\n\n" + prof.report()
            prof.reset()
        if use_cache:
            cache.put(
                _cache_key(module, seed),
                {"report": report, "result": jsonable, "metrics": metrics},
            )
    elapsed = time.time() - started
    if json_path:
        if cached is not None:
            # same file format as save_result, replayed from the cache
            Path(json_path).write_text(
                json.dumps(
                    {
                        "experiment": name,
                        "result": jsonable,
                        "metrics": metrics,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            save_result(
                result,
                json_path,
                experiment=name,
                metrics=metrics,
                verdict_stream=verdict_stream,
            )
        report += f"\n[result saved to {json_path}]"
    note = " (cached)" if cached is not None else ""
    return f"{report}\n\n[{name} completed in {elapsed:.1f}s{note}]"


def _worker(task: tuple) -> tuple[str, bool, float, str, str]:
    """One experiment in a worker process; never raises.

    Experiment-level exceptions become a failed row right here, so the
    supervisor only ever retries *infrastructure* failures (hangs,
    killed workers) — a deterministic bug in an experiment is reported
    once, not retried into quarantine.

    With a forensics directory set, every engine run inside the
    experiment is armed (via ``REPRO_FORENSICS_DIR``) to leave a
    ``*.repro`` bundle on failure; the bundle path lands in the row's
    error column, and ``shrink`` additionally minimizes the failing
    scenario right here in the worker.
    """
    (
        name, seed, json_path, cache_dir, use_cache,
        forensics_dir, shrink, obs_dir,
    ) = task
    cache = ResultCache(cache_dir) if use_cache else None
    started = time.time()
    try:
        if forensics_dir:
            os.environ["REPRO_FORENSICS_DIR"] = str(
                Path(forensics_dir) / name
            )
        try:
            report = run_experiment(
                name, json_path=json_path, seed=seed, cache=cache,
                obs_dir=obs_dir,
            )
        finally:
            if forensics_dir:
                os.environ.pop("REPRO_FORENSICS_DIR", None)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        report = traceback.format_exc()
        bundle = getattr(exc, "repro_bundle", None)
        if bundle is not None:
            error += f" [bundle: {bundle}]"
            report += f"\n[repro bundle: {bundle}]"
            if shrink:
                try:
                    from repro.sim.shrink import shrink_bundle

                    result, shrunk = shrink_bundle(bundle)
                    error += f" [shrunk: {shrunk}]"
                    report += (
                        f"[shrunk bundle: {shrunk}]\n" + result.diff()
                    )
                except Exception as shrink_exc:
                    report += f"\n[shrink failed: {shrink_exc}]"
        return (name, False, time.time() - started, report, error)
    return (name, True, time.time() - started, report, "")


# -- resume state ---------------------------------------------------------
def _default_state_path(cache_dir: Optional[str]) -> Path:
    root = cache_dir or os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    return Path(root) / "runner-state.json"


def _state_key(
    plan: Sequence[str],
    seed: Optional[int],
    json_path: Optional[str],
    no_cache: bool,
    obs_dir: Optional[str] = None,
) -> str:
    """Digest of everything that makes stored rows replayable: the
    same plan invoked with a different seed, output path or export
    directory must not resume from this state."""
    return spec_hash(
        {
            "plan": list(plan),
            "seed": seed,
            "json": json_path,
            "no_cache": no_cache,
            "obs": obs_dir,
        }
    )


def _load_state(path: Path, key: str) -> tuple[dict, dict]:
    """Completed rows (and per-task retry timing) from a previous
    interrupted run, or empty dicts when the file is missing, damaged,
    or belongs to a different invocation."""
    try:
        with open(path, encoding="utf-8") as fh:
            state = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError,
            OSError):
        return {}, {}
    if not isinstance(state, dict):
        return {}, {}
    if state.get("format") != STATE_FORMAT or state.get("key") != key:
        return {}, {}
    rows = state.get("rows")
    if not isinstance(rows, dict):
        return {}, {}
    out = {}
    for name, row in rows.items():
        if isinstance(row, list) and len(row) == 5:
            out[name] = tuple(row)
    retries = state.get("retries")
    if not isinstance(retries, dict):
        retries = {}
    return out, {
        name: info
        for name, info in retries.items()
        if name in out and isinstance(info, dict)
    }


def _save_state(
    path: Path, key: str, rows: dict, retries: Optional[dict] = None
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    state = {
        "format": STATE_FORMAT,
        "key": key,
        "rows": {name: list(row) for name, row in rows.items()},
        "retries": dict(retries or {}),
    }
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _quarantine_row(outcome: TaskOutcome) -> tuple:
    """A table row for a task the supervisor gave up on; any repro
    bundles a dying worker left behind are named so the failure stays
    diagnosable."""
    report = (
        f"[{outcome.task_id} quarantined after {outcome.attempts} "
        "failed attempts]\n" + "\n".join(outcome.failures)
    )
    error = f"quarantined: {outcome.error}"
    if outcome.artifacts:
        report += "\nrepro bundles:\n" + "\n".join(
            f"  {path}" for path in outcome.artifacts
        )
        error += f" [bundles: {', '.join(outcome.artifacts)}]"
    return (
        outcome.task_id,
        False,
        outcome.seconds,
        report,
        error,
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures.",
        epilog="exit codes: 0 all passed, 1 failure/quarantine, "
        "2 usage error, 130 interrupted (resume with --resume)",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--json",
        default=None,
        help="also save the structured result to this JSON file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run experiments in N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the seed of every seedable experiment",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate, and do not store results",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
        "./.repro-cache)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="with --jobs: kill and retry an experiment that runs "
        "longer than this many seconds",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="with --jobs: retries before a hanging/crashing "
        "experiment is quarantined (default: 2)",
    )
    parser.add_argument(
        "--state",
        default=None,
        help="progress file for --resume (default: "
        "<cache dir>/runner-state.json)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed successfully by a "
        "previous interrupted run with the same arguments",
    )
    parser.add_argument(
        "--forensics-dir",
        default=None,
        help="arm failure forensics: a failing experiment leaves a "
        "replayable *.repro bundle under DIR/<experiment>",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="with --forensics-dir: delta-debug each failure's "
        "scenario to a 1-minimal shrunk bundle",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        help="arm full observability per experiment and export "
        "events.jsonl / metrics.json / metrics.prom under "
        "DIR/<experiment> (bypasses the result cache)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile simulator phases (wall-clock per step phase); "
        "implies --no-cache and appends the breakdown to each report",
    )
    parser.add_argument(
        "--engine",
        choices=("sweep", "event"),
        default=None,
        help="simulation engine for every experiment: 'sweep' steps "
        "every cycle, 'event' teleports over provably idle spans "
        "(byte-identical results; see docs/performance.md).  Cached "
        "results are shared between engines — pass --no-cache to "
        "force fresh runs, e.g. for an oracle comparison",
    )
    args = parser.parse_args(argv)
    if args.shrink and not args.forensics_dir:
        print("--shrink requires --forensics-dir", file=sys.stderr)
        return 2
    if args.profile:
        # the env flag survives the fork into worker processes, where
        # each process then keeps its own per-experiment profiler
        os.environ[_PROFILE_ENV] = "1"
        args.no_cache = True
    if args.engine:
        # same fork-inheritance trick as --profile: worker processes
        # pick the engine up from the environment
        os.environ[ENGINE_ENV] = args.engine

    if "list" in args.experiments:
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0

    if "all" in args.experiments:
        names = list(EXPERIMENTS)
    else:
        for name in args.experiments:
            if name not in EXPERIMENTS:
                print(
                    f"unknown experiment {name!r}; try 'list'",
                    file=sys.stderr,
                )
                return 2
        names = list(args.experiments)
    plan = execution_plan(names)
    multi = "all" in args.experiments or len(plan) > 1

    tasks = [
        (
            name,
            args.seed,
            _derived_json_path(args.json, name)
            if args.json and multi
            else args.json,
            args.cache_dir,
            not args.no_cache,
            args.forensics_dir,
            args.shrink,
            args.obs_dir,
        )
        for name in plan
    ]

    state_path = (
        Path(args.state) if args.state else _default_state_path(args.cache_dir)
    )
    state_key = _state_key(
        plan, args.seed, args.json, args.no_cache, args.obs_dir
    )
    rows_by_name: dict = {}
    retries_by_name: dict = {}
    if args.resume:
        # only successful rows are replayed; failures run again
        loaded_rows, retries_by_name = _load_state(state_path, state_key)
        rows_by_name = {
            name: row for name, row in loaded_rows.items() if row[1]
        }
        retries_by_name = {
            name: info
            for name, info in retries_by_name.items()
            if name in rows_by_name
        }
    to_run = [task for task in tasks if task[0] not in rows_by_name]

    def record(row: tuple, outcome: Optional[TaskOutcome] = None) -> None:
        rows_by_name[row[0]] = row
        if outcome is not None and outcome.attempts > 1:
            retries_by_name[row[0]] = {
                "attempts": outcome.attempts,
                "delays": [round(d, 3) for d in outcome.retry_delays],
                "seconds": round(outcome.seconds, 3),
            }
        _save_state(state_path, state_key, rows_by_name, retries_by_name)

    def bundles_for(task_id: str) -> list[str]:
        """Repro bundles a failed experiment's workers left on disk."""
        if not args.forensics_dir:
            return []
        root = Path(args.forensics_dir) / task_id
        return sorted(str(p) for p in root.glob("*.repro"))

    interrupted = False
    if args.jobs > 1 and len(to_run) > 1:
        supervisor = Supervisor(
            SupervisorConfig(
                jobs=args.jobs,
                timeout=args.timeout,
                max_retries=args.max_retries,
            ),
            on_complete=lambda outcome: record(
                outcome.result if outcome.ok else _quarantine_row(outcome),
                outcome,
            ),
            artifacts_for=bundles_for,
        )
        try:
            supervisor.run([(task[0], _worker, (task,)) for task in to_run])
        except SupervisorInterrupt:
            interrupted = True
    else:
        try:
            for task in to_run:
                record(_worker(task))
        except KeyboardInterrupt:
            interrupted = True

    results = [rows_by_name[name] for name in plan if name in rows_by_name]
    outcomes: list[tuple[str, bool, float, str]] = []
    for name, ok, seconds, report, error in results:
        # report holds the traceback when the experiment failed; one
        # broken experiment must not silence the rest
        print(report, file=sys.stdout if ok else sys.stderr)
        outcomes.append((name, ok, seconds, error))
        if multi:
            print("\n" + "=" * 72 + "\n")

    failed = sum(1 for _, ok, _, _ in outcomes if not ok)
    if multi or interrupted:
        from repro.experiments.common import format_table

        rows = [
            [name, "pass" if ok else "FAIL", f"{seconds:.1f}s", error]
            for name, ok, seconds, error in outcomes
        ]
        print(format_table(["experiment", "status", "time", "error"], rows))
        print(
            f"\n{len(outcomes) - failed}/{len(outcomes)} experiments passed"
        )
        quarantined = [
            name
            for name, ok, _, error in outcomes
            if not ok and error.startswith("quarantined:")
        ]
        if quarantined:
            print("quarantined: " + " ".join(quarantined))

    if interrupted:
        remaining = len(plan) - len(outcomes)
        print(
            f"\ninterrupted with {remaining} experiment(s) left; "
            f"progress saved to {state_path} — rerun with --resume",
            file=sys.stderr,
        )
        return 130
    if not failed:
        # a clean batch leaves nothing to resume
        try:
            state_path.unlink()
        except OSError:
            pass
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
