"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner list
    python -m repro.experiments.runner fig11
    python -m repro.experiments.runner all
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path

from repro.experiments import (
    ablations,
    chaos,
    flood_routing,
    fig1_traffic,
    fig2_faults,
    fig8_overhead,
    fig10_speedup,
    fig11_backpressure,
    fig12_qos,
    load_curve,
    table1_tasp,
    table2_mitigation,
)

EXPERIMENTS = {
    "fig1": (fig1_traffic, "Blackscholes traffic distributions"),
    "fig2": (fig2_faults, "latency vs distance per fault type"),
    "fig8": (fig8_overhead, "TASP power/area pies"),
    "fig9": (table1_tasp, "TASP target-variant areas (same data as Table I)"),
    "fig10": (fig10_speedup, "L-Ob vs rerouting speedup"),
    "fig11": (fig11_backpressure, "back-pressure build-up under attack"),
    "fig12": (fig12_qos, "TDM containment vs proposed mitigation"),
    "table1": (table1_tasp, "TASP variant area/power/timing"),
    "table2": (table2_mitigation, "mitigation overhead"),
    "ablations": (ablations, "design-choice ablations"),
    "flood": (flood_routing, "flood DoS vs routing algorithms; flood vs trojan"),
    "load": (load_curve, "load-latency curves; xy vs adaptive saturation"),
    "chaos": (chaos, "resilience ladder under chaos campaigns"),
}


def _derived_json_path(json_path: str, name: str) -> str:
    """Per-experiment output file for 'all' mode: results.json ->
    results-fig2.json etc."""
    path = Path(json_path)
    suffix = path.suffix or ".json"
    return str(path.with_name(f"{path.stem}-{name}{suffix}"))


def run_experiment(name: str, json_path: str | None = None) -> str:
    module, _ = EXPERIMENTS[name]
    started = time.time()
    result = module.run()
    report = module.format_result(result)
    elapsed = time.time() - started
    if json_path:
        from repro.experiments.export import save_result

        save_result(result, json_path, experiment=name)
        report += f"\n[result saved to {json_path}]"
    return f"{report}\n\n[{name} completed in {elapsed:.1f}s]"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--json",
        default=None,
        help="also save the structured result to this JSON file",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0

    if args.experiment == "all":
        from repro.experiments.common import format_table

        seen = set()
        outcomes: list[tuple[str, bool, float, str]] = []
        for name, (module, _) in EXPERIMENTS.items():
            if module in seen:
                continue
            seen.add(module)
            json_path = (
                _derived_json_path(args.json, name) if args.json else None
            )
            started = time.time()
            try:
                print(run_experiment(name, json_path=json_path))
            except Exception as exc:
                # one broken experiment must not silence the rest
                traceback.print_exc()
                outcomes.append(
                    (name, False, time.time() - started,
                     f"{type(exc).__name__}: {exc}")
                )
            else:
                outcomes.append((name, True, time.time() - started, ""))
            print("\n" + "=" * 72 + "\n")
        rows = [
            [name, "pass" if ok else "FAIL", f"{seconds:.1f}s", error]
            for name, ok, seconds, error in outcomes
        ]
        print(format_table(["experiment", "status", "time", "error"], rows))
        failed = sum(1 for _, ok, _, _ in outcomes if not ok)
        print(
            f"\n{len(outcomes) - failed}/{len(outcomes)} experiments passed"
        )
        return 1 if failed else 0

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    print(run_experiment(args.experiment, json_path=args.json))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
