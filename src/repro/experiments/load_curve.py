"""Load-latency curves: the simulator's own validation study.

Every credible NoC simulator must produce the canonical curve — flat
zero-load latency, a knee, then saturation — and the paper's §III-A
reasoning about injection rates only makes sense against it.  This
experiment sweeps offered load under uniform-random traffic for the
available routing algorithms, reporting latency and delivered
throughput per point, and doubles as the energy-accounting demo: the
attack experiment can cite pJ/flit from the same machinery.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import format_table
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.power.energy import EnergyReport, energy_report
from repro.sim import Scenario, Simulation, SyntheticTraffic


@dataclass(frozen=True)
class LoadPoint:
    routing: str
    #: offered load, packets per core per cycle
    offered: float
    mean_latency: Optional[float]
    p99_latency: Optional[int]
    #: delivered flits per cycle during the measurement window
    throughput: float
    completed_fraction: float
    energy: EnergyReport


@dataclass(frozen=True)
class LoadCurveResult:
    points: list[LoadPoint]
    duration: int

    def series(self, routing: str) -> list[LoadPoint]:
        return [p for p in self.points if p.routing == routing]

    def saturation_load(
        self, routing: str, knee_factor: float = 5.0
    ) -> Optional[float]:
        """First offered load whose mean latency exceeds ``knee_factor``
        times the series' zero-load latency (the classic knee)."""
        series = self.series(routing)
        if not series or series[0].mean_latency is None:
            return None
        base = series[0].mean_latency
        for p in series:
            if p.mean_latency is not None and p.mean_latency > knee_factor * base:
                return p.offered
        return None

    def sustained_throughput(self, routing: str) -> float:
        """Peak delivered flits/cycle across the sweep."""
        return max(p.throughput for p in self.series(routing))


def run(
    cfg: NoCConfig = PAPER_CONFIG,
    loads: Sequence[float] = (0.005, 0.02, 0.08, 0.15, 0.25),
    routings: Sequence[str] = ("xy", "west-first"),
    duration: int = 500,
    drain_cycles: int = 4000,
    payload_words: int = 1,
    seed: int = 0,
) -> LoadCurveResult:
    points: list[LoadPoint] = []
    for routing in routings:
        net_cfg = dataclasses.replace(cfg, routing=routing)
        for load in loads:
            sim = Simulation(
                Scenario(
                    name=f"load-{routing}-{load:.3f}",
                    cfg=net_cfg,
                    traffic=(
                        SyntheticTraffic(
                            injection_rate=load,
                            payload_words=payload_words,
                            duration=duration,
                            seed=seed,
                        ),
                    ),
                    max_cycles=drain_cycles,
                    stall_limit=2000,
                    seed=seed,
                )
            )
            sim.run_until_drained(drain_cycles, stall_limit=2000)
            net = sim.network
            stats = net.stats
            completed = (
                stats.packets_completed / stats.packets_injected
                if stats.packets_injected
                else 1.0
            )
            points.append(
                LoadPoint(
                    routing=routing,
                    offered=load,
                    mean_latency=stats.mean_total_latency(),
                    p99_latency=stats.latency_percentile(0.99),
                    throughput=stats.flits_ejected / max(1, net.cycle),
                    completed_fraction=completed,
                    energy=energy_report(net),
                )
            )
    return LoadCurveResult(points=points, duration=duration)


def format_result(result: LoadCurveResult) -> str:
    headers = ["routing", "offered", "mean lat", "p99 lat", "thr f/cyc",
               "done", "pJ/flit"]
    rows = []
    for p in result.points:
        rows.append([
            p.routing,
            f"{p.offered:.3f}",
            f"{p.mean_latency:.1f}" if p.mean_latency else "-",
            p.p99_latency if p.p99_latency is not None else "-",
            f"{p.throughput:.3f}",
            f"{100 * p.completed_fraction:.0f}%",
            f"{p.energy.pj_per_delivered_flit:.1f}",
        ])
    return (
        "Load-latency curves (uniform random traffic)\n"
        + format_table(headers, rows)
    )
