"""Credit-based flow control between adjacent routers.

Each direction output port tracks, per downstream VC, how many buffer
slots it may still claim.  A credit is consumed when a flit is committed
to the output (enters the retransmission buffer — the slot downstream
must stay reserved across retransmissions), and returned when the flit
eventually leaves the downstream input buffer.

Credit exhaustion is the mechanism by which the paper's DoS attack
propagates: a pinned retransmission slot keeps the downstream slot
reserved, upstream credits never return, and the stall climbs toward
the sources (tree saturation).
"""

from __future__ import annotations


class CreditTracker:
    """Upstream view of one downstream input port's VC buffers."""

    __slots__ = ("num_vcs", "depth", "latency", "_credits", "_pending",
                 "consumed_total", "released_total", "frozen")

    def __init__(self, num_vcs: int, depth: int, latency: int = 1):
        if num_vcs <= 0 or depth <= 0:
            raise ValueError("num_vcs and depth must be positive")
        if latency < 0:
            raise ValueError("credit latency must be non-negative")
        self.num_vcs = num_vcs
        self.depth = depth
        self.latency = latency
        self._credits = [depth] * num_vcs
        #: (visible_cycle, vc) credit returns still in flight
        self._pending: list[tuple[int, int]] = []
        self.consumed_total = 0
        self.released_total = 0
        #: chaos-injection hook: while frozen, returned credits stay
        #: pending (delayed, never lost — conservation still holds)
        self.frozen = False

    def tick(self, cycle: int) -> None:
        """Apply credit returns that have become visible by ``cycle``."""
        if self.frozen or not self._pending:
            return
        still = []
        for visible, vc in self._pending:
            if visible <= cycle:
                self._credits[vc] += 1
                if self._credits[vc] > self.depth:
                    raise RuntimeError(
                        f"credit overflow on vc {vc}: flow control broken"
                    )
            else:
                still.append((visible, vc))
        self._pending = still

    def available(self, vc: int) -> int:
        return self._credits[vc]

    def consume(self, vc: int) -> None:
        if self._credits[vc] <= 0:
            raise RuntimeError(
                f"consuming credit on empty vc {vc}: allocator bug"
            )
        self._credits[vc] -= 1
        self.consumed_total += 1

    def release(self, vc: int, cycle: int) -> None:
        """Downstream freed a slot of ``vc`` at ``cycle``."""
        if not 0 <= vc < self.num_vcs:
            raise ValueError(f"vc {vc} out of range")
        self._pending.append((cycle + self.latency, vc))
        self.released_total += 1

    @property
    def in_flight(self) -> int:
        """Credits granted back but not yet visible."""
        return len(self._pending)

    def next_visible_cycle(self) -> Optional[int]:
        """Earliest cycle a pending credit return becomes visible, or
        ``None`` when nothing is in flight.  Frozen trackers still
        report their pending returns (conservative: the thaw itself is
        driven by a monitor, which separately pins the clock)."""
        if not self._pending:
            return None
        return min(visible for visible, _vc in self._pending)

    def outstanding(self, vc: int) -> int:
        """Slots of ``vc`` currently claimed by this upstream port."""
        pending_vc = sum(1 for _, v in self._pending if v == vc)
        return self.depth - self._credits[vc] - pending_vc

    def snapshot(self) -> list[int]:
        return list(self._credits)
