"""Concentrated 2-D mesh topology helpers."""

from __future__ import annotations

import enum

from repro.noc.config import NoCConfig


class Direction(enum.IntEnum):
    """Mesh link directions; also the direction-port indices of a router."""

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3


OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

#: (dx, dy) per direction; y grows to the north
DELTA = {
    Direction.NORTH: (0, 1),
    Direction.EAST: (1, 0),
    Direction.SOUTH: (0, -1),
    Direction.WEST: (-1, 0),
}

#: A unidirectional link is identified by its source router and the
#: direction it leaves through.
LinkKey = tuple[int, Direction]


def neighbor(cfg: NoCConfig, router: int, direction: Direction) -> int | None:
    """Adjacent router in ``direction`` or ``None`` at the mesh edge."""
    x, y = cfg.router_xy(router)
    dx, dy = DELTA[direction]
    nx, ny = x + dx, y + dy
    if 0 <= nx < cfg.mesh_width and 0 <= ny < cfg.mesh_height:
        return cfg.router_at(nx, ny)
    return None


def neighbors(cfg: NoCConfig, router: int) -> dict[Direction, int]:
    """All adjacent routers of ``router``."""
    out: dict[Direction, int] = {}
    for direction in Direction:
        n = neighbor(cfg, router, direction)
        if n is not None:
            out[direction] = n
    return out


def all_links(cfg: NoCConfig) -> list[LinkKey]:
    """Every unidirectional router-to-router link, in a canonical order.

    For the paper's 4x4 mesh this enumerates the 48 links an attacker
    could infect.
    """
    links: list[LinkKey] = []
    for router in range(cfg.num_routers):
        for direction in Direction:
            if neighbor(cfg, router, direction) is not None:
                links.append((router, direction))
    return links


def link_endpoints(cfg: NoCConfig, key: LinkKey) -> tuple[int, int]:
    """(source router, destination router) of a link."""
    src, direction = key
    dst = neighbor(cfg, src, direction)
    if dst is None:
        raise ValueError(f"{key} is not a valid link")
    return src, dst


def links_on_xy_path(cfg: NoCConfig, src: int, dst: int) -> list[LinkKey]:
    """The links an xy-routed packet traverses from ``src`` to ``dst``."""
    path: list[LinkKey] = []
    cur = src
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    while cx != dx:
        direction = Direction.EAST if dx > cx else Direction.WEST
        path.append((cur, direction))
        cur = neighbor(cfg, cur, direction)
        cx, cy = cfg.router_xy(cur)
    while cy != dy:
        direction = Direction.NORTH if dy > cy else Direction.SOUTH
        path.append((cur, direction))
        cur = neighbor(cfg, cur, direction)
        cx, cy = cfg.router_xy(cur)
    return path
