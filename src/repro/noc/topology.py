"""Topology helpers: concentrated 2-D mesh, torus, and express channels.

The shape of the network is described by :class:`TopologySpec` (derived
from :class:`NoCConfig`).  Three kinds exist:

- ``mesh`` — the paper's planar concentrated 2-D mesh.
- ``torus`` — every row and column closes into a ring via wrap links.
  Deadlock freedom comes from a *dateline* VC discipline enforced at VC
  allocation (see :func:`dateline_high`), not from extra flit state.
- ``express`` — a mesh where every router additionally drives links
  spanning ``express_interval`` hops per direction (when the target is
  in-mesh).  Dimension-order routing over express links is monotone in
  each axis, so the mesh deadlock argument carries over unchanged.

All helpers below are wrap- and express-aware; on a plain mesh they
behave exactly as before the topology layer existed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.noc.config import NoCConfig


class Direction(enum.IntEnum):
    """Link directions; also the direction-port indices of a router.

    The first four members are the planar mesh directions; the
    ``EXPRESS_*`` members span ``cfg.express_interval`` hops and only
    materialize on express-channel configurations (:func:`neighbor`
    returns ``None`` for them otherwise, so mesh link enumeration is
    byte-identical to the pre-topology-layer order).
    """

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    EXPRESS_NORTH = 4
    EXPRESS_EAST = 5
    EXPRESS_SOUTH = 6
    EXPRESS_WEST = 7


OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.EXPRESS_NORTH: Direction.EXPRESS_SOUTH,
    Direction.EXPRESS_SOUTH: Direction.EXPRESS_NORTH,
    Direction.EXPRESS_EAST: Direction.EXPRESS_WEST,
    Direction.EXPRESS_WEST: Direction.EXPRESS_EAST,
}

#: (dx, dy) per *base* direction; y grows to the north.  Express
#: displacement depends on ``cfg.express_interval`` — use
#: :func:`step_delta`.
DELTA = {
    Direction.NORTH: (0, 1),
    Direction.EAST: (1, 0),
    Direction.SOUTH: (0, -1),
    Direction.WEST: (-1, 0),
}

BASE_DIRECTIONS = (
    Direction.NORTH,
    Direction.EAST,
    Direction.SOUTH,
    Direction.WEST,
)

#: express variant of each base direction (and back)
EXPRESS_OF = {
    Direction.NORTH: Direction.EXPRESS_NORTH,
    Direction.EAST: Direction.EXPRESS_EAST,
    Direction.SOUTH: Direction.EXPRESS_SOUTH,
    Direction.WEST: Direction.EXPRESS_WEST,
}
BASE_OF = {express: base for base, express in EXPRESS_OF.items()}

#: A unidirectional link is identified by its source router and the
#: direction it leaves through.
LinkKey = tuple[int, Direction]


def is_express(direction: Direction) -> bool:
    """True for the span-k express members of :class:`Direction`."""
    return direction >= Direction.EXPRESS_NORTH


def base_direction(direction: Direction) -> Direction:
    """The planar direction class of a link (express folds to base)."""
    return BASE_OF.get(direction, direction)


@dataclass(frozen=True)
class TopologySpec:
    """Resolved shape of the network graph."""

    kind: str  # "mesh" | "torus" | "express"
    width: int
    height: int
    express_interval: int = 0

    @property
    def wraps(self) -> bool:
        return self.kind == "torus"


def topology_spec(cfg: NoCConfig) -> TopologySpec:
    """The :class:`TopologySpec` a config resolves to."""
    if cfg.topology == "torus":
        kind = "torus"
    elif cfg.express_interval:
        kind = "express"
    else:
        kind = "mesh"
    return TopologySpec(
        kind, cfg.mesh_width, cfg.mesh_height, cfg.express_interval
    )


def step_delta(cfg: NoCConfig, direction: Direction) -> tuple[int, int]:
    """(dx, dy) displacement of one hop through ``direction``."""
    if is_express(direction):
        dx, dy = DELTA[BASE_OF[direction]]
        k = cfg.express_interval
        return dx * k, dy * k
    return DELTA[direction]


def neighbor(cfg: NoCConfig, router: int, direction: Direction) -> int | None:
    """Adjacent router in ``direction`` or ``None`` where no link exists.

    Torus wrap links connect the edges of every ring; express links
    exist only when the spanned target is in-mesh (they never wrap).
    """
    x, y = cfg.router_xy(router)
    dx, dy = step_delta(cfg, direction)
    if is_express(direction) and not cfg.express_interval:
        return None
    nx, ny = x + dx, y + dy
    if cfg.topology == "torus":
        return cfg.router_at(nx % cfg.mesh_width, ny % cfg.mesh_height)
    if 0 <= nx < cfg.mesh_width and 0 <= ny < cfg.mesh_height:
        return cfg.router_at(nx, ny)
    return None


def neighbors(cfg: NoCConfig, router: int) -> dict[Direction, int]:
    """All adjacent routers of ``router``."""
    out: dict[Direction, int] = {}
    for direction in Direction:
        n = neighbor(cfg, router, direction)
        if n is not None:
            out[direction] = n
    return out


def all_links(cfg: NoCConfig) -> list[LinkKey]:
    """Every unidirectional router-to-router link, in a canonical order.

    For the paper's 4x4 mesh this enumerates the 48 links an attacker
    could infect.  Wrap and express links slot into the same canonical
    (router ascending, direction ascending) order.
    """
    links: list[LinkKey] = []
    for router in range(cfg.num_routers):
        for direction in Direction:
            if neighbor(cfg, router, direction) is not None:
                links.append((router, direction))
    return links


def link_endpoints(cfg: NoCConfig, key: LinkKey) -> tuple[int, int]:
    """(source router, destination router) of a link."""
    src, direction = key
    dst = neighbor(cfg, src, direction)
    if dst is None:
        raise ValueError(f"{key} is not a valid link")
    return src, dst


def min_hops(cfg: NoCConfig, router_a: int, router_b: int) -> int:
    """Minimal hop count between two routers on this topology."""
    return cfg.hop_distance(router_a, router_b)


# -- dimension-order stepping (shared by routing and path enumeration) --

def x_step(cfg: NoCConfig, cx: int, dx: int) -> Direction:
    """Next-hop direction to correct ``cx`` toward ``dx`` (cx != dx)."""
    if cfg.topology == "torus":
        width = cfg.mesh_width
        east = (dx - cx) % width
        west = (cx - dx) % width
        # shorter arc; ties break east — the choice re-derives
        # consistently at every position along the chosen arc
        return Direction.EAST if east <= west else Direction.WEST
    k = cfg.express_interval
    if dx > cx:
        return Direction.EXPRESS_EAST if k and dx - cx >= k else Direction.EAST
    return Direction.EXPRESS_WEST if k and cx - dx >= k else Direction.WEST


def y_step(cfg: NoCConfig, cy: int, dy: int) -> Direction:
    """Next-hop direction to correct ``cy`` toward ``dy`` (cy != dy)."""
    if cfg.topology == "torus":
        height = cfg.mesh_height
        north = (dy - cy) % height
        south = (cy - dy) % height
        return Direction.NORTH if north <= south else Direction.SOUTH
    k = cfg.express_interval
    if dy > cy:
        return (
            Direction.EXPRESS_NORTH if k and dy - cy >= k else Direction.NORTH
        )
    return Direction.EXPRESS_SOUTH if k and cy - dy >= k else Direction.SOUTH


def links_on_xy_path(cfg: NoCConfig, src: int, dst: int) -> list[LinkKey]:
    """The links an xy-routed packet traverses from ``src`` to ``dst``.

    Mirrors :func:`repro.noc.routing.xy_route` exactly, including torus
    arc choice and express-link usage.
    """
    path: list[LinkKey] = []
    cur = src
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    while cx != dx:
        direction = x_step(cfg, cx, dx)
        path.append((cur, direction))
        cur = neighbor(cfg, cur, direction)
        cx, cy = cfg.router_xy(cur)
    while cy != dy:
        direction = y_step(cfg, cy, dy)
        path.append((cur, direction))
        cur = neighbor(cfg, cur, direction)
        cx, cy = cfg.router_xy(cur)
    return path


# -- torus dateline VC discipline --------------------------------------

def dateline_high(
    cfg: NoCConfig, router: int, src_router: int, direction: Direction
) -> bool:
    """Torus dateline class of the hop leaving ``router`` via ``direction``.

    ``True`` once the packet's traversal of that ring has crossed (or is
    about to cross) the ring's wrap edge.  Because dimension-order arc
    routing crosses each ring's wrap link at most once, the class is a
    pure function of the current position and the packet's source
    position — no flit state is needed:

    - EAST: high iff ``x == width-1`` (allocating the wrap hop) or
      ``x < sx`` (already wrapped; post-wrap positions are strictly
      below the source column since the arc is shorter than the ring).
    - WEST/NORTH/SOUTH: mirrored.

    VC allocation restricts torus packets to the low VC half before the
    dateline and the high half after it; each half's channel-dependency
    chain misses one ring link, so both halves are acyclic and the only
    inter-half edge (low -> high at the wrap) is one-directional.
    """
    if cfg.topology != "torus":
        return False
    x, y = cfg.router_xy(router)
    sx, sy = cfg.router_xy(src_router)
    if direction is Direction.EAST:
        return x == cfg.mesh_width - 1 or x < sx
    if direction is Direction.WEST:
        return x == 0 or x > sx
    if direction is Direction.NORTH:
        return y == cfg.mesh_height - 1 or y < sy
    if direction is Direction.SOUTH:
        return y == 0 or y > sy
    return False


# -- ring arc helpers (torus containment routing) ----------------------

def arc_sources(frm: int, to: int, size: int, positive: bool) -> list[int]:
    """Ring positions whose outgoing link the arc ``frm -> to`` uses.

    ``positive`` walks in increasing-coordinate direction (east/north),
    wrapping modulo ``size``; the result excludes ``to`` itself.
    """
    out: list[int] = []
    cur = frm
    while cur != to:
        out.append(cur)
        cur = (cur + 1) % size if positive else (cur - 1) % size
    return out
