"""Unidirectional router-to-router links.

A link carries ECC codewords and is the attack surface: every tamperer
attached to it (transient noise, stuck-at wires, a TASP trojan) sees and
may alter each codeword in flight.  The reverse ACK/NACK wires of the
link are modelled as a separate delayed queue — per the paper's threat
model the trojan taps the forward data wires only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.noc.retrans import NackAdvice
from repro.noc.topology import Direction

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.lob import ObDescriptor
    from repro.noc.flit import Flit


@dataclass(slots=True)
class Transmission:
    """One codeword in flight on a link."""

    tag: int
    vc: int
    #: per-(link, VC) sequence number for receiver-side resequencing
    vc_seq: int
    codeword: int
    flit: "Flit"
    ob: Optional["ObDescriptor"]
    launch_cycle: int


@dataclass(slots=True)
class AckMessage:
    """ACK/NACK travelling on the reverse wires."""

    tag: int
    ok: bool
    advice: Optional[NackAdvice] = None
    #: obfuscation method that succeeded (for upstream method logging)
    ob_success: Optional["ObDescriptor"] = None
    flow_signature: Optional[tuple] = None


class Link:
    """One unidirectional link between adjacent routers."""

    __slots__ = (
        "src_router",
        "direction",
        "dst_router",
        "latency",
        "ack_latency",
        "tamperers",
        "launch_hooks",
        "ack_hooks",
        "_in_flight",
        "_acks",
        "traversals",
        "corrupted_traversals",
        "disabled",
        "paused",
    )

    def __init__(
        self,
        src_router: int,
        direction: Direction,
        dst_router: int,
        latency: int = 1,
        ack_latency: int = 1,
    ):
        self.src_router = src_router
        self.direction = direction
        self.dst_router = dst_router
        self.latency = latency
        self.ack_latency = ack_latency
        self.tamperers: list = []
        #: callbacks (tx, cycle, original_codeword) after tampering
        self.launch_hooks: list = []
        #: callbacks (ack, cycle, flit) fired when the upstream router
        #: processes an ACK/NACK (wired by FlitTracer)
        self.ack_hooks: list = []
        self._in_flight: list[tuple[int, Transmission]] = []
        self._acks: list[tuple[int, AckMessage]] = []
        self.traversals = 0
        self.corrupted_traversals = 0
        #: set by rerouting mitigation when the link is taken out of service
        self.disabled = False
        #: chaos-injection hook (router stall / brownout): launches are
        #: withheld while paused but nothing in flight is lost, so the
        #: stall is flow-control-safe and fully reversible
        self.paused = False

    @property
    def key(self) -> tuple[int, Direction]:
        return (self.src_router, self.direction)

    # -- forward data wires ---------------------------------------------
    def apply_tamper(self, codeword: int, cycle: int) -> int:
        """Fold the tamper chain over a codeword (also used by BIST)."""
        for tamperer in self.tamperers:
            codeword = tamperer.tamper(codeword, cycle)
        return codeword

    def launch(self, tx: Transmission, cycle: int) -> None:
        """Put a transmission on the wire; tampering happens here."""
        original = tx.codeword
        tx.codeword = self.apply_tamper(tx.codeword, cycle)
        self.traversals += 1
        if tx.codeword != original:
            self.corrupted_traversals += 1
        self._in_flight.append((cycle + self.latency, tx))
        for hook in self.launch_hooks:
            hook(tx, cycle, original)

    def pop_arrivals(self, cycle: int) -> list[Transmission]:
        """Transmissions reaching the downstream router at ``cycle``."""
        if not self._in_flight:
            return []
        arrived = [tx for when, tx in self._in_flight if when <= cycle]
        if arrived:
            self._in_flight = [
                (when, tx) for when, tx in self._in_flight if when > cycle
            ]
        return arrived

    # -- reverse ACK wires ------------------------------------------------
    def send_ack(self, ack: AckMessage, cycle: int) -> None:
        self._acks.append((cycle + self.ack_latency, ack))

    def pop_acks(self, cycle: int) -> list[AckMessage]:
        if not self._acks:
            return []
        ready = [ack for when, ack in self._acks if when <= cycle]
        if ready:
            self._acks = [(when, ack) for when, ack in self._acks if when > cycle]
        return ready

    # ---------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return not self._in_flight and not self._acks

    def next_event_cycle(self) -> Optional[int]:
        """Earliest arrival cycle of anything on the wire (forward
        codewords or reverse ACKs), or ``None`` when the link is idle.
        Consulted by the event engine before skipping the clock."""
        best: Optional[int] = None
        for when, _tx in self._in_flight:
            if best is None or when < best:
                best = when
        for when, _ack in self._acks:
            if best is None or when < best:
                best = when
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Link({self.src_router}--{self.direction.name}-->"
            f"{self.dst_router})"
        )
