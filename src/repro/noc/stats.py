"""Network statistics.

Two kinds of measurement, matching the paper's evaluation:

* **flow metrics** — per-packet latency/hops/throughput (Fig. 2, Fig. 10);
* **back-pressure metrics** — the buffer-utilization and blocked-router
  time series of Figs. 11/12, which make a *stalling* attack visible
  where latency alone would not ("similar to measuring routing
  dead-locks, the result of TASP stalling packets may not be evident
  unless we have a way of measuring the back-pressure building among
  network resources").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.obs.series import SampleSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.flit import Flit


@dataclass(slots=True)
class Sample:
    """One back-pressure snapshot (paper Figs. 11/12 time series)."""

    cycle: int
    #: occupied flit slots in direction input VC buffers, chip-wide
    input_utilization: int
    #: occupied retransmission-buffer slots, chip-wide
    output_utilization: int
    #: occupied flit slots in core injection ports, chip-wide
    injection_utilization: int
    #: routers with at least one output port completely stalled
    routers_with_blocked_port: int
    #: routers whose local cores are all blocked at injection
    routers_all_cores_full: int
    #: routers with more than half their cores blocked
    routers_half_cores_full: int


@dataclass(slots=True)
class PacketRecord:
    pkt_id: int
    src_core: int
    dst_core: int
    num_flits: int
    created_cycle: int
    head_injected_cycle: int = -1
    tail_ejected_cycle: int = -1
    flits_ejected: int = 0
    retransmissions: int = 0
    hops: int = 0
    misdelivered: bool = False

    @property
    def complete(self) -> bool:
        return self.flits_ejected >= self.num_flits

    @property
    def network_latency(self) -> int:
        """Head injection to tail ejection."""
        return self.tail_ejected_cycle - self.head_injected_cycle

    @property
    def total_latency(self) -> int:
        """Creation (source queueing included) to tail ejection."""
        return self.tail_ejected_cycle - self.created_cycle


class NetworkStats:
    """Aggregates collected while a :class:`repro.noc.network.Network` runs."""

    def __init__(self) -> None:
        #: back-pressure snapshots; a list (bytes-compatible with the
        #: historical ``list[Sample]``) that also records the sampling
        #: cadence and offers windowed rollups (repro.obs.series)
        self.samples: SampleSeries = SampleSeries()
        self.packets: dict[int, PacketRecord] = {}
        self.packets_completed = 0
        self.packets_injected = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.misdeliveries = 0
        self.dropped_flits = 0
        self.last_delivery_cycle = -1
        self.link_traversals: dict[tuple, int] = {}
        # -- graceful-degradation counters (resilience subsystem) --------
        #: flits abandoned by the bounded-retry path (subset of
        #: ``dropped_flits``)
        self.degraded_flits = 0
        #: packets the watchdog condemned for end-to-end resubmission
        self.degraded_packets = 0
        #: packets re-offered end-to-end after a degradation drop
        self.packets_resubmitted = 0
        #: exponential-backoff deferrals applied to pinned slots
        self.retrans_backoffs = 0
        #: obfuscation escalations driven by the watchdog ladder
        self.lob_escalations = 0

    # -- packet lifecycle ---------------------------------------------------
    def on_packet_created(self, record: PacketRecord) -> None:
        self.packets[record.pkt_id] = record
        self.packets_injected += 1

    def on_flit_injected(self, flit: "Flit", cycle: int) -> None:
        self.flits_injected += 1
        record = self.packets.get(flit.pkt_id)
        if record is not None and flit.is_head:
            record.head_injected_cycle = cycle

    def on_flit_degraded(self, flit: "Flit") -> None:
        """A flit left the network through the bounded-retry drop path
        (watchdog degradation) rather than by ejection."""
        self.dropped_flits += 1
        self.degraded_flits += 1

    def on_flit_ejected(self, flit: "Flit", cycle: int, at_core: int) -> None:
        self.flits_ejected += 1
        self.last_delivery_cycle = cycle
        record = self.packets.get(flit.pkt_id)
        if record is None:
            return
        record.flits_ejected += 1
        record.retransmissions += flit.retransmissions
        if at_core != record.dst_core:
            record.misdelivered = True
        if flit.is_tail:
            record.tail_ejected_cycle = cycle
            record.hops = flit.hops
        if record.complete:
            self.packets_completed += 1
            if record.misdelivered:
                self.misdeliveries += 1

    # -- summaries ------------------------------------------------------------
    def completed_records(self) -> list[PacketRecord]:
        return [
            r
            for r in self.packets.values()
            if r.complete and not r.misdelivered
        ]

    def mean_network_latency(self) -> Optional[float]:
        done = self.completed_records()
        if not done:
            return None
        return sum(r.network_latency for r in done) / len(done)

    def mean_total_latency(self) -> Optional[float]:
        done = self.completed_records()
        if not done:
            return None
        return sum(r.total_latency for r in done) / len(done)

    def latency_percentile(
        self, fraction: float, total: bool = True
    ) -> Optional[int]:
        """Latency percentile over completed packets (``fraction`` in
        [0, 1]; ``total`` selects creation-to-ejection vs network-only).
        Tail percentiles expose congestion/attack effects that means
        hide."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        done = self.completed_records()
        if not done:
            return None
        values = sorted(
            (r.total_latency if total else r.network_latency) for r in done
        )
        index = min(len(values) - 1, int(fraction * len(values)))
        return values[index]

    def latency_histogram(
        self, bucket: int = 10, total: bool = True
    ) -> dict[int, int]:
        """Latency histogram (bucket lower bound -> packet count)."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        hist: dict[int, int] = {}
        for r in self.completed_records():
            value = r.total_latency if total else r.network_latency
            key = (value // bucket) * bucket
            hist[key] = hist.get(key, 0) + 1
        return dict(sorted(hist.items()))

    def throughput(self, cycles: int) -> float:
        """Delivered flits per cycle."""
        return self.flits_ejected / cycles if cycles > 0 else 0.0

    def stalled_for(self, cycle: int) -> int:
        """Cycles since the last flit was delivered (deadlock signal)."""
        if self.last_delivery_cycle < 0:
            return cycle
        return cycle - self.last_delivery_cycle

    def summary(self) -> dict:
        return {
            "packets_injected": self.packets_injected,
            "packets_completed": self.packets_completed,
            "flits_injected": self.flits_injected,
            "flits_ejected": self.flits_ejected,
            "misdeliveries": self.misdeliveries,
            "dropped_flits": self.dropped_flits,
            "degraded_flits": self.degraded_flits,
            "degraded_packets": self.degraded_packets,
            "packets_resubmitted": self.packets_resubmitted,
            "retrans_backoffs": self.retrans_backoffs,
            "lob_escalations": self.lob_escalations,
            "mean_network_latency": self.mean_network_latency(),
            "mean_total_latency": self.mean_total_latency(),
        }
