"""Arbiters and allocators (paper: round-robin arbitration).

The router uses a *separable input-first* allocator built from
round-robin arbiters for both VC allocation and switch allocation —
the standard light-weight scheme for 5-stage VC routers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` requesters.

    After a grant, priority moves to the requester *after* the winner,
    which guarantees starvation freedom under persistent requests.
    """

    __slots__ = ("size", "_pointer", "grants")

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("arbiter size must be positive")
        self.size = size
        self._pointer = 0
        self.grants = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted ``requests``; ``None`` if none."""
        if len(requests) != self.size:
            raise ValueError("request vector width mismatch")
        for offset in range(self.size):
            idx = (self._pointer + offset) % self.size
            if requests[idx]:
                self._pointer = (idx + 1) % self.size
                self.grants += 1
                return idx
        return None

    def grant_indices(self, indices: Iterable[int]) -> Optional[int]:
        """Grant among a sparse set of requesting indices."""
        requests = [False] * self.size
        any_req = False
        for i in indices:
            requests[i] = True
            any_req = True
        if not any_req:
            return None
        return self.grant(requests)

    def peek_priority(self) -> int:
        """Current priority pointer (exposed for tests)."""
        return self._pointer


class MatrixArbiter:
    """Least-recently-granted matrix arbiter (provided for the ablation
    comparing arbitration schemes; the paper's routers use round-robin).
    """

    __slots__ = ("size", "_matrix", "grants")

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("arbiter size must be positive")
        self.size = size
        # _matrix[i][j] True means i has priority over j.
        self._matrix = [[i < j for j in range(size)] for i in range(size)]
        self.grants = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.size:
            raise ValueError("request vector width mismatch")
        winner = None
        for i in range(self.size):
            if not requests[i]:
                continue
            if all(
                not (requests[j] and self._matrix[j][i])
                for j in range(self.size)
                if j != i
            ):
                winner = i
                break
        if winner is not None:
            for j in range(self.size):
                if j != winner:
                    self._matrix[winner][j] = False
                    self._matrix[j][winner] = True
            self.grants += 1
        return winner
