"""Flit-level event tracing.

Attach a :class:`FlitTracer` to a network to record the life of every
flit (or a filtered subset) as structured events: injection, link
launches, corruption, NACKs, deliveries, ejection.  This is the
debugging view that makes attack forensics legible::

    tracer = FlitTracer.attach(net, pkt_ids={7})
    net.run(500)
    print(tracer.render(pkt_id=7))

Events are captured through the network's public hook points plus a
launch callback on each link, so tracing composes with any mitigation
or policy configuration.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, TYPE_CHECKING

from repro.noc.network import Network
from repro.noc.topology import LinkKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.flit import Flit
    from repro.noc.link import Transmission


class EventKind(enum.Enum):
    INJECTED = "injected"
    LAUNCHED = "launched"
    CORRUPTED = "corrupted"
    NACKED = "nacked"
    ACKED = "acked"
    EJECTED = "ejected"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    cycle: int
    kind: EventKind
    pkt_id: int
    seq: int
    #: link the event happened on (None for inject/eject)
    link: Optional[LinkKey] = None
    detail: str = ""

    def __str__(self) -> str:
        where = (
            f"link {self.link[0]}->{self.link[1].name}" if self.link else "NI"
        )
        tail = f" {self.detail}" if self.detail else ""
        return (
            f"[{self.cycle:6d}] pkt {self.pkt_id} flit {self.seq}: "
            f"{self.kind.value:9s} @ {where}{tail}"
        )


class _LaunchHook:
    """Picklable per-link launch callback (a lambda here would make the
    network un-checkpointable)."""

    __slots__ = ("tracer", "key")

    def __init__(self, tracer: "FlitTracer", key: LinkKey):
        self.tracer = tracer
        self.key = key

    def __call__(self, tx, cycle, original) -> None:
        self.tracer._on_launch(self.key, tx, cycle, original)


class _AckHook:
    """Picklable per-link ACK/NACK callback."""

    __slots__ = ("tracer", "key")

    def __init__(self, tracer: "FlitTracer", key: LinkKey):
        self.tracer = tracer
        self.key = key

    def __call__(self, ack, cycle, flit) -> None:
        self.tracer._on_ack(self.key, ack, cycle, flit)


class FlitTracer:
    """Collects :class:`TraceEvent`s for selected packets.

    ``ring=False`` (the default) keeps the *first* ``capacity`` events
    and stops recording — the debugging view.  ``ring=True`` keeps the
    *last* ``capacity`` events, evicting the oldest — the forensics
    view: when a run dies, the window ends at the failure.
    """

    def __init__(
        self,
        pkt_ids: Optional[Iterable[int]] = None,
        capacity: int = 100_000,
        *,
        ring: bool = False,
    ):
        self.pkt_ids = set(pkt_ids) if pkt_ids is not None else None
        self.capacity = capacity
        self.ring = ring
        self.events = (
            deque(maxlen=capacity) if ring else []
        )
        self.truncated = False

    # -- wiring -----------------------------------------------------------
    @classmethod
    def attach(
        cls,
        network: Network,
        pkt_ids: Optional[Iterable[int]] = None,
        capacity: int = 100_000,
        *,
        ring: bool = False,
    ) -> "FlitTracer":
        tracer = cls(pkt_ids, capacity, ring=ring)

        network.injection_hooks.append(tracer._on_inject)
        network.ejection_hooks.append(tracer._on_eject)
        for key, link in network.links.items():
            link.launch_hooks.append(_LaunchHook(tracer, key))
            link.ack_hooks.append(_AckHook(tracer, key))
        return tracer

    # -- capture ------------------------------------------------------------
    def _wants(self, pkt_id: int) -> bool:
        return self.pkt_ids is None or pkt_id in self.pkt_ids

    def _record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.capacity:
            self.truncated = True
            if not self.ring:
                return
        self.events.append(event)

    def _on_inject(self, flit: "Flit", cycle: int) -> None:
        if self._wants(flit.pkt_id):
            self._record(
                TraceEvent(cycle, EventKind.INJECTED, flit.pkt_id, flit.seq)
            )

    def _on_eject(self, flit: "Flit", cycle: int, core: int) -> None:
        if self._wants(flit.pkt_id):
            self._record(
                TraceEvent(
                    cycle, EventKind.EJECTED, flit.pkt_id, flit.seq,
                    detail=f"core {core}",
                )
            )

    def _on_launch(
        self, key: LinkKey, tx: "Transmission", cycle: int, original: int
    ) -> None:
        if not self._wants(tx.flit.pkt_id):
            return
        ob = f" ob={tx.ob.method.value}" if tx.ob is not None else ""
        self._record(
            TraceEvent(
                cycle, EventKind.LAUNCHED, tx.flit.pkt_id, tx.flit.seq,
                link=key, detail=f"tag {tx.tag}{ob}",
            )
        )
        if tx.codeword != original:
            flipped = bin(tx.codeword ^ original).count("1")
            self._record(
                TraceEvent(
                    cycle, EventKind.CORRUPTED, tx.flit.pkt_id, tx.flit.seq,
                    link=key, detail=f"{flipped} bit(s) flipped",
                )
            )

    def _on_ack(self, key: LinkKey, ack, cycle: int, flit) -> None:
        if flit is None or not self._wants(flit.pkt_id):
            return
        kind = EventKind.ACKED if ack.ok else EventKind.NACKED
        detail = ""
        if not ack.ok and ack.advice is not None and ack.advice.enable_obfuscation:
            detail = f"advice: obfuscate (method {ack.advice.method_index})"
        self._record(
            TraceEvent(cycle, kind, flit.pkt_id, flit.seq, link=key,
                       detail=detail)
        )

    # -- views -------------------------------------------------------------
    def for_packet(self, pkt_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.pkt_id == pkt_id]

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def render(self, pkt_id: Optional[int] = None) -> str:
        events = (
            self.for_packet(pkt_id) if pkt_id is not None else self.events
        )
        lines = [str(e) for e in events]
        if self.truncated:
            lines.append("... trace truncated at capacity ...")
        return "\n".join(lines)
