"""Cycle-accurate NoC simulator substrate.

This package implements the evaluation platform of the paper from
scratch: a 64-core concentrated 4x4 mesh with 4 VCs/port, 4-deep 64-bit
VC buffers, a 5-stage router pipeline, xy routing, round-robin
arbitration, switch-to-switch SECDED links with selective-repeat
retransmission buffers after the crossbar, and credit-based flow
control.
"""

from repro.noc.adaptive import AdaptiveRouting
from repro.noc.config import NoCConfig, PAPER_CONFIG
from repro.noc.invariants import InvariantViolation, NetworkValidator
from repro.noc.tracing import EventKind, FlitTracer, TraceEvent
from repro.noc.flit import Flit, FlitType, Packet, pack_header, unpack_header
from repro.noc.link import AckMessage, Link, Transmission
from repro.noc.network import Network, TrafficSource
from repro.noc.receiver import EccReceiver
from repro.noc.retrans import EntryState, NackAdvice, RetransBuffer
from repro.noc.router import Router, SchedulingPolicy
from repro.noc.routing import TableRouting, make_route_fn, xy_route, yx_route
from repro.noc.stats import NetworkStats, PacketRecord, Sample
from repro.noc.topology import (
    Direction,
    OPPOSITE,
    all_links,
    link_endpoints,
    links_on_xy_path,
    neighbor,
    neighbors,
)

__all__ = [
    "AdaptiveRouting",
    "InvariantViolation",
    "NetworkValidator",
    "EventKind",
    "FlitTracer",
    "TraceEvent",
    "NoCConfig",
    "PAPER_CONFIG",
    "Flit",
    "FlitType",
    "Packet",
    "pack_header",
    "unpack_header",
    "AckMessage",
    "Link",
    "Transmission",
    "Network",
    "TrafficSource",
    "EccReceiver",
    "EntryState",
    "NackAdvice",
    "RetransBuffer",
    "Router",
    "SchedulingPolicy",
    "TableRouting",
    "make_route_fn",
    "xy_route",
    "yx_route",
    "NetworkStats",
    "PacketRecord",
    "Sample",
    "Direction",
    "OPPOSITE",
    "all_links",
    "link_endpoints",
    "links_on_xy_path",
    "neighbor",
    "neighbors",
]
