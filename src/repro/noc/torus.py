"""Torus clear-arc routing for containment.

On a torus every row and column is a ring, so each dimension offers
*two* arcs to the destination coordinate.  The containment reroute
model for tori exploits exactly that redundancy: route dimension-order
(x then y) but, per dimension, take the shorter arc unless it crosses
an avoided (condemned/quarantined) link, in which case take the other
arc when it is clear.  When both arcs are blocked the short arc is
taken anyway — steering into a draining avoided link feeds the
watchdog's drop-and-resubmit path, the same belt-and-braces fallback
the mesh turn models use (:class:`repro.noc.adaptive.AdaptiveRouting`).

Deadlock freedom: the choice is still strict dimension order, and the
dateline VC discipline (:func:`repro.noc.topology.dateline_high`) is a
pure position function, so it applies to long arcs exactly as to short
ones — each ring direction's channel-dependency chain misses one link
per VC class and stays acyclic.

Arc-choice consistency: the decision re-derives at every hop, and it is
stable along the chosen arc — moving along a clear arc keeps its
remaining suffix clear, while the rejected arc only *grows* (it must
come back through the positions already passed), so it stays rejected.
A packet therefore never ping-pongs between arcs while the avoid set is
unchanged.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.noc.config import NoCConfig
from repro.noc.topology import Direction, LinkKey, arc_sources


class TorusArcRouting:
    """Clear-arc dimension-order routing, usable as a ``route_fn``.

    Picklable (plain attributes only), like every other route function:
    checkpoints serialize live networks holding their route callable.
    """

    __slots__ = ("cfg", "avoid")

    #: reroute-model name, mirroring ``AdaptiveRouting.model``
    model = "torus-arc"

    def __init__(self, cfg: NoCConfig, avoid: Iterable[LinkKey] = ()):
        if cfg.topology != "torus":
            raise ValueError("TorusArcRouting requires a torus topology")
        self.cfg = cfg
        #: links removed from arc choice (condemned/quarantined)
        self.avoid: frozenset[LinkKey] = frozenset(avoid)

    # -- per-dimension arc choice --------------------------------------
    def _x_choice(self, cx: int, cy: int, dx: int) -> Direction:
        width = self.cfg.mesh_width
        east = (dx - cx) % width
        west = (cx - dx) % width
        short = Direction.EAST if east <= west else Direction.WEST
        if not self.avoid:
            return short
        other = (
            Direction.WEST if short is Direction.EAST else Direction.EAST
        )
        if self._x_arc_clear(cx, cy, dx, short):
            return short
        if self._x_arc_clear(cx, cy, dx, other):
            return other
        return short  # both blocked: drain into the watchdog drop path

    def _y_choice(self, cx: int, cy: int, dy: int) -> Direction:
        height = self.cfg.mesh_height
        north = (dy - cy) % height
        south = (cy - dy) % height
        short = Direction.NORTH if north <= south else Direction.SOUTH
        if not self.avoid:
            return short
        other = (
            Direction.SOUTH if short is Direction.NORTH else Direction.NORTH
        )
        if self._y_arc_clear(cx, cy, dy, short):
            return short
        if self._y_arc_clear(cx, cy, dy, other):
            return other
        return short

    def _x_arc_clear(
        self, cx: int, cy: int, dx: int, direction: Direction
    ) -> bool:
        positive = direction is Direction.EAST
        for x in arc_sources(cx, dx, self.cfg.mesh_width, positive):
            if (self.cfg.router_at(x, cy), direction) in self.avoid:
                return False
        return True

    def _y_arc_clear(
        self, cx: int, cy: int, dy: int, direction: Direction
    ) -> bool:
        positive = direction is Direction.NORTH
        for y in arc_sources(cy, dy, self.cfg.mesh_height, positive):
            if (self.cfg.router_at(cx, y), direction) in self.avoid:
                return False
        return True

    # -- route_fn interface --------------------------------------------
    def route(
        self,
        cur: int,
        dst: int,
        src: Optional[int] = None,
        router=None,
    ) -> Optional[Direction]:
        if cur == dst:
            return None
        cx, cy = self.cfg.router_xy(cur)
        dx, dy = self.cfg.router_xy(dst)
        if cx != dx:
            return self._x_choice(cx, cy, dx)
        return self._y_choice(cx, cy, dy)


def torus_connected(cfg: NoCConfig, avoid: Iterable[LinkKey]) -> bool:
    """True iff clear-arc routing reaches every dst from every src with
    the ``avoid`` links removed.

    The admission analogue of
    :func:`repro.noc.adaptive.turn_model_connected` for tori: a pair is
    routable iff some x-arc in the source row is clear *and* some y-arc
    in the destination column is clear (routing is strict dimension
    order, so those are exactly the arcs a packet can use).
    """
    avoid = frozenset(avoid)
    if not avoid:
        return True
    width, height = cfg.mesh_width, cfg.mesh_height
    # avoided positions per ring and ring-direction
    east_blocked: dict[int, set[int]] = {}
    west_blocked: dict[int, set[int]] = {}
    north_blocked: dict[int, set[int]] = {}
    south_blocked: dict[int, set[int]] = {}
    for router, direction in avoid:
        x, y = cfg.router_xy(router)
        if direction is Direction.EAST:
            east_blocked.setdefault(y, set()).add(x)
        elif direction is Direction.WEST:
            west_blocked.setdefault(y, set()).add(x)
        elif direction is Direction.NORTH:
            north_blocked.setdefault(x, set()).add(y)
        elif direction is Direction.SOUTH:
            south_blocked.setdefault(x, set()).add(y)

    def arc_clear(frm, to, size, blocked, positive):
        return not any(
            p in blocked for p in arc_sources(frm, to, size, positive)
        )

    for src in range(cfg.num_routers):
        sx, sy = cfg.router_xy(src)
        for dst in range(cfg.num_routers):
            if src == dst:
                continue
            dx, dy = cfg.router_xy(dst)
            if sx != dx:
                east_ok = arc_clear(
                    sx, dx, width, east_blocked.get(sy, ()), True
                )
                west_ok = arc_clear(
                    sx, dx, width, west_blocked.get(sy, ()), False
                )
                if not (east_ok or west_ok):
                    return False
            if sy != dy:
                north_ok = arc_clear(
                    sy, dy, height, north_blocked.get(dx, ()), True
                )
                south_ok = arc_clear(
                    sy, dy, height, south_blocked.get(dx, ()), False
                )
                if not (north_ok or south_ok):
                    return False
    return True
