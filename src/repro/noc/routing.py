"""Routing functions.

``xy`` dimension-order routing is the paper's baseline (deadlock-free on
a mesh).  ``yx`` is provided for symmetry, and :class:`TableRouting`
supports arbitrary per-hop tables — the substrate the Ariadne-style
rerouting baseline programs after disabling infected links (see
:mod:`repro.baselines.reroute`).

A routing function returns the :class:`Direction` of the next hop, or
``None`` when the flit has reached its destination router (eject).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.noc.config import NoCConfig
from repro.noc.topology import Direction, neighbor, x_step, y_step

#: route(cur_router, dst_router, src_router=None, router=None)
RouteFn = Callable[..., Optional[Direction]]


def xy_route(cfg: NoCConfig, cur: int, dst: int) -> Optional[Direction]:
    """Dimension-order routing: correct x first, then y.

    On a torus each dimension takes the shorter ring arc (ties break
    east/north); on an express mesh it takes span-k express hops while
    the remaining displacement allows.  Both are still strict
    dimension order, so the deadlock arguments are per-dimension.
    """
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    if cx != dx:
        return x_step(cfg, cx, dx)
    if cy != dy:
        return y_step(cfg, cy, dy)
    return None


def yx_route(cfg: NoCConfig, cur: int, dst: int) -> Optional[Direction]:
    """Dimension-order routing, y first."""
    cx, cy = cfg.router_xy(cur)
    dx, dy = cfg.router_xy(dst)
    if cy != dy:
        return y_step(cfg, cy, dy)
    if cx != dx:
        return x_step(cfg, cx, dx)
    return None


class TableRouting:
    """Per-(current, destination) next-hop table.

    The table must be *complete* for every pair that traffic will use;
    :meth:`route` raises on a missing entry so misprogrammed tables fail
    loudly rather than silently dropping flits.
    """

    def __init__(self, cfg: NoCConfig, table: dict[tuple[int, int], Direction]):
        self.cfg = cfg
        self._table = dict(table)
        self._validate()

    def _validate(self) -> None:
        for (cur, dst), direction in self._table.items():
            if cur == dst:
                raise ValueError(f"table routes ({cur},{dst}) at destination")
            if neighbor(self.cfg, cur, direction) is None:
                raise ValueError(
                    f"table sends ({cur}->{dst}) off the mesh via {direction}"
                )

    def route(
        self, cur: int, dst: int, src=None, router=None
    ) -> Optional[Direction]:
        if cur == dst:
            return None
        try:
            return self._table[(cur, dst)]
        except KeyError:
            raise KeyError(
                f"routing table has no entry for current={cur} dest={dst}"
            ) from None

    def next_router(self, cur: int, dst: int) -> int:
        direction = self.route(cur, dst)
        if direction is None:
            return cur
        nxt = neighbor(self.cfg, cur, direction)
        assert nxt is not None
        return nxt

    def path(self, src: int, dst: int, max_hops: int | None = None) -> list[int]:
        """Router sequence from ``src`` to ``dst`` (inclusive)."""
        limit = max_hops if max_hops is not None else 4 * self.cfg.num_routers
        path = [src]
        cur = src
        for _ in range(limit):
            if cur == dst:
                return path
            cur = self.next_router(cur, dst)
            path.append(cur)
        raise RuntimeError(
            f"table routing loops between {src} and {dst}: {path[:12]}..."
        )

    @classmethod
    def from_xy(cls, cfg: NoCConfig) -> "TableRouting":
        """Table equivalent of xy routing (useful as a starting point)."""
        table: dict[tuple[int, int], Direction] = {}
        for cur in range(cfg.num_routers):
            for dst in range(cfg.num_routers):
                if cur == dst:
                    continue
                direction = xy_route(cfg, cur, dst)
                assert direction is not None
                table[(cur, dst)] = direction
        return cls(cfg, table)


class DimensionOrderRouting:
    """``xy``/``yx`` routing as a picklable callable.

    Checkpointing serializes live networks (which hold their route
    function), so the resolved callable must survive pickling — a
    closure over ``cfg`` would not.
    """

    __slots__ = ("cfg", "order")

    def __init__(self, cfg: NoCConfig, order: str):
        if order not in ("xy", "yx"):
            raise ValueError(f"unknown dimension order {order!r}")
        self.cfg = cfg
        self.order = order

    def __call__(
        self, cur: int, dst: int, src=None, router=None
    ) -> Optional[Direction]:
        fn = xy_route if self.order == "xy" else yx_route
        return fn(self.cfg, cur, dst)


def make_route_fn(cfg: NoCConfig, table: TableRouting | None = None) -> RouteFn:
    """Resolve the configured routing algorithm to a callable.

    Every returned callable is picklable (plain object or bound
    method), so a wired network can be snapshot with the rest of the
    simulation state.
    """
    if cfg.routing in ("xy", "yx"):
        return DimensionOrderRouting(cfg, cfg.routing)
    if cfg.routing == "table":
        if table is None:
            raise ValueError("routing='table' requires a TableRouting")
        return table.route
    if cfg.routing in ("west-first", "odd-even"):
        from repro.noc.adaptive import AdaptiveRouting

        return AdaptiveRouting(cfg, cfg.routing).route
    raise ValueError(f"unknown routing {cfg.routing!r}")
