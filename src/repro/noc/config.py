"""NoC configuration.

Defaults mirror the paper's evaluation platform (§V): a 64-core,
16-router concentrated 2-D mesh (4 cores per router), two unidirectional
links between adjacent routers, 4 VCs per port with four 64-bit buffer
slots per VC, a 5-stage router pipeline (BW/RC, VA, SA, ST, LT), xy
dimension-order routing, round-robin arbitration, and retransmission
buffers located after the crossbar (the paper's stated worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NoCConfig:
    """All microarchitectural parameters of the simulated NoC."""

    #: mesh dimensions in routers
    mesh_width: int = 4
    mesh_height: int = 4
    #: cores per router ("concentration")
    concentration: int = 4
    #: virtual channels per port
    num_vcs: int = 4
    #: flit slots per VC buffer
    vc_depth: int = 4
    #: flit payload width on the wire (before ECC check bits)
    flit_bits: int = 64
    #: slots in the per-output retransmission buffer (after the crossbar)
    retrans_depth: int = 8
    #: ejection queue depth per core (drained one flit/cycle by the core)
    ejection_depth: int = 2
    #: link traversal latency in cycles
    link_latency: int = 1
    #: cycles for an ACK/NACK to travel back upstream
    ack_latency: int = 1
    #: cycles for a returned credit to become visible upstream
    credit_latency: int = 1
    #: routing algorithm: "xy", "yx", "table", "west-first" or "odd-even"
    routing: str = "xy"
    #: maximum packet length in flits (head + payload)
    max_packet_flits: int = 5
    #: root seed for all stochastic components
    seed: int = 0
    #: network shape: "mesh" (planar) or "torus" (wrap-around rings)
    topology: str = "mesh"
    #: express-channel span in hops; 0 disables (mesh only)
    express_interval: int = 0

    def __post_init__(self) -> None:
        if self.mesh_width < 1 or self.mesh_height < 1:
            raise ValueError("mesh dimensions must be at least 1x1")
        if self.topology not in ("mesh", "torus"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "torus":
            if self.mesh_width < 3 or self.mesh_height < 3:
                raise ValueError(
                    "torus rings need at least 3 routers per dimension "
                    "(a 2-ring wrap link duplicates the mesh link)"
                )
            if self.num_vcs % 2:
                raise ValueError(
                    "torus needs an even num_vcs: the dateline discipline "
                    "splits each port's VCs into low/high halves"
                )
            if self.routing != "xy":
                raise ValueError(
                    "torus supports routing='xy' only (dateline VC classes "
                    "are proven acyclic for dimension-order arcs)"
                )
            if self.express_interval:
                raise ValueError("express channels require a mesh topology")
        if self.express_interval:
            if not 2 <= self.express_interval < max(
                self.mesh_width, self.mesh_height
            ):
                raise ValueError(
                    "express_interval must be in 2..max(mesh dimension)-1"
                )
            if self.routing == "odd-even":
                raise ValueError(
                    "odd-even routing does not model express channels"
                )
        if self.num_routers > 16:
            # Beyond the paper's 16 routers the header layout widens
            # (flit.layout_for); router ids, vc and mem plus at least a
            # 2-bit type and 1-bit pkt-id field must still fit the flit.
            rb = (self.num_routers - 1).bit_length()
            if 2 * rb + 36 >= self.flit_bits:
                raise ValueError(
                    f"{self.num_routers} routers need {rb}-bit ids; the "
                    f"widened header does not fit a {self.flit_bits}-bit flit"
                )
        if self.concentration < 1:
            raise ValueError("concentration must be at least 1")
        if self.num_vcs < 1 or self.num_vcs > 4:
            raise ValueError("num_vcs must be 1..4 (2-bit VC field)")
        if self.vc_depth < 1:
            raise ValueError("vc_depth must be at least 1")
        if self.retrans_depth < 2:
            raise ValueError(
                "retrans_depth must be >= 2 (scramble needs a partner slot)"
            )
        if self.routing not in ("xy", "yx", "table", "west-first", "odd-even"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.max_packet_flits < 1:
            raise ValueError("packets need at least one flit")
        if self.link_latency < 1 or self.ack_latency < 0:
            raise ValueError("latencies out of range")

    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def num_cores(self) -> int:
        return self.num_routers * self.concentration

    @property
    def num_links(self) -> int:
        """Unidirectional router-to-router links (48 for a 4x4 mesh)."""
        if self.topology == "torus":
            # every router drives all four directions (wrap included)
            return 4 * self.num_routers
        horizontal = (self.mesh_width - 1) * self.mesh_height
        vertical = self.mesh_width * (self.mesh_height - 1)
        base = 2 * (horizontal + vertical)
        k = self.express_interval
        if k:
            express_h = max(self.mesh_width - k, 0) * self.mesh_height
            express_v = max(self.mesh_height - k, 0) * self.mesh_width
            base += 2 * (express_h + express_v)
        return base

    # -- id mapping ----------------------------------------------------
    def router_xy(self, router: int) -> tuple[int, int]:
        """Coordinates of ``router`` (x grows east, y grows north)."""
        self._check_router(router)
        return router % self.mesh_width, router // self.mesh_width

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.mesh_width and 0 <= y < self.mesh_height):
            raise ValueError(f"({x},{y}) outside the mesh")
        return y * self.mesh_width + x

    def router_of_core(self, core: int) -> int:
        self._check_core(core)
        return core // self.concentration

    def local_index(self, core: int) -> int:
        """Index of ``core`` among its router's local ports."""
        self._check_core(core)
        return core % self.concentration

    def core_of(self, router: int, local_index: int) -> int:
        self._check_router(router)
        if not 0 <= local_index < self.concentration:
            raise ValueError("local index out of range")
        return router * self.concentration + local_index

    def hop_distance(self, router_a: int, router_b: int) -> int:
        """Minimal hop count between two routers (wrap/express aware)."""
        ax, ay = self.router_xy(router_a)
        bx, by = self.router_xy(router_b)
        return (
            self._axis_hops(bx - ax, self.mesh_width)
            + self._axis_hops(by - ay, self.mesh_height)
        )

    def _axis_hops(self, delta: int, size: int) -> int:
        d = abs(delta)
        if self.topology == "torus":
            d = min(d, size - d)
        k = self.express_interval
        if k:
            # greedy is optimal for span-k express hops (k >= 2)
            d = d // k + d % k
        return d

    # ------------------------------------------------------------------
    def _check_router(self, router: int) -> None:
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")


#: The paper's evaluation platform.
PAPER_CONFIG = NoCConfig()
